//! Hand-rolled JSON wire format for the `haven-serve` binary.
//!
//! The workspace's `serde_json` is an offline stub (typecheck-only), so —
//! like the eval journal and the bench report emitters — the serving
//! protocol serializes by hand. The format is real JSON: one
//! [`ServeRequest`] object per input line, one [`ServeReply`] object per
//! output line.
//!
//! ```text
//! > {"id":"r1","prompt":"Implement ...","deadline_ms":2000}
//! < {"id":"r1","outcome":{"type":"completed","response":{...}},...}
//! ```

use crate::request::{
    Rejection, RequestTrace, ServeOutcome, ServeReply, ServeRequest, ServeResponse, ServeVerdict,
};
use haven_spec::cosim::Verdict;
use haven_verilog::analyze_static::Severity;
use haven_verilog::StaticFinding;

// ---------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------

/// Escapes a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn str_field(name: &str, value: &str) -> String {
    format!("\"{name}\":\"{}\"", escape(value))
}

fn verdict_json(v: &ServeVerdict) -> String {
    match v {
        ServeVerdict::Unchecked { reason } => {
            format!("{{\"type\":\"unchecked\",{}}}", str_field("reason", reason))
        }
        ServeVerdict::Checked(v) => match v {
            Verdict::Pass => "{\"type\":\"pass\"}".into(),
            Verdict::SyntaxError(d) => {
                format!("{{\"type\":\"syntax_error\",{}}}", str_field("detail", d))
            }
            Verdict::InterfaceError(d) => {
                format!(
                    "{{\"type\":\"interface_error\",{}}}",
                    str_field("detail", d)
                )
            }
            Verdict::FunctionalMismatch { at_check, detail } => format!(
                "{{\"type\":\"functional_mismatch\",\"at_check\":{at_check},{}}}",
                str_field("detail", detail)
            ),
            Verdict::SimulationError(d) => {
                format!(
                    "{{\"type\":\"simulation_error\",{}}}",
                    str_field("detail", d)
                )
            }
            Verdict::ResourceExhausted(d) => format!(
                "{{\"type\":\"resource_exhausted\",{}}}",
                str_field("detail", d)
            ),
            Verdict::HarnessFault(d) => {
                format!("{{\"type\":\"harness_fault\",{}}}", str_field("detail", d))
            }
        },
    }
}

fn finding_json(f: &StaticFinding) -> String {
    let signal = match &f.signal {
        Some(s) => format!(",{}", str_field("signal", s)),
        None => String::new(),
    };
    format!(
        "{{\"rule\":\"{}\",\"severity\":\"{}\",{},\"line\":{},\"col\":{},\"confirmation\":\"{}\"{signal}}}",
        f.rule.code(),
        match f.severity {
            Severity::Warn => "warn",
            Severity::Error => "error",
        },
        str_field("message", &f.message),
        f.span.line,
        f.span.col,
        f.confirmation.label(),
    )
}

fn response_json(r: &ServeResponse) -> String {
    let findings: Vec<String> = r.findings.iter().map(finding_json).collect();
    format!(
        "{{{},\"verdict\":{},\"findings\":[{}],\"gated\":{}}}",
        str_field("code", &r.code),
        verdict_json(&r.verdict),
        findings.join(","),
        r.gated,
    )
}

fn rejection_json(r: &Rejection) -> String {
    match r {
        Rejection::QueueFull { capacity } => {
            format!("{{\"type\":\"queue_full\",\"capacity\":{capacity}}}")
        }
        Rejection::Invalid { reason } => {
            format!("{{\"type\":\"invalid\",{}}}", str_field("reason", reason))
        }
        Rejection::DeadlineExceeded { stage, elapsed_ms } => format!(
            "{{\"type\":\"deadline_exceeded\",\"stage\":\"{}\",\"elapsed_ms\":{elapsed_ms}}}",
            stage.label()
        ),
        Rejection::ShuttingDown => "{\"type\":\"shutting_down\"}".into(),
        Rejection::Retrying { retry_after_ms } => {
            format!("{{\"type\":\"retrying\",\"retry_after_ms\":{retry_after_ms}}}")
        }
    }
}

fn outcome_json(o: &ServeOutcome) -> String {
    match o {
        ServeOutcome::Completed(r) => format!(
            "{{\"type\":\"completed\",\"response\":{}}}",
            response_json(r)
        ),
        ServeOutcome::Rejected(r) => format!(
            "{{\"type\":\"rejected\",\"rejection\":{}}}",
            rejection_json(r)
        ),
        ServeOutcome::Failed { detail } => {
            format!("{{\"type\":\"failed\",{}}}", str_field("detail", detail))
        }
    }
}

fn trace_json(t: &RequestTrace) -> String {
    format!(
        "{{\"queue_us\":{},\"normalize_us\":{},\"generate_us\":{},\"lint_us\":{},\
         \"simulate_us\":{},\"total_us\":{},\"retries\":{}}}",
        t.queue_us, t.normalize_us, t.generate_us, t.lint_us, t.simulate_us, t.total_us, t.retries,
    )
}

/// Renders one reply as a single JSON line (no trailing newline).
pub fn reply_json(reply: &ServeReply) -> String {
    format!(
        "{{{},\"outcome\":{},\"cache_hit\":{},\"sicot_steps\":{},\"trace\":{}}}",
        str_field("id", &reply.id),
        outcome_json(&reply.outcome),
        reply.cache_hit,
        reply.sicot_steps,
        trace_json(&reply.trace),
    )
}

/// Renders one request as a single JSON line (load generators, tests).
pub fn request_json(request: &ServeRequest) -> String {
    let deadline = match request.deadline_ms {
        Some(ms) => format!(",\"deadline_ms\":{ms}"),
        None => String::new(),
    };
    format!(
        "{{{},{}{deadline}}}",
        str_field("id", &request.id),
        str_field("prompt", &request.prompt),
    )
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// A parsed JSON value — the minimal tree the wire protocol needs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse_json(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(input, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(input: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(input, bytes, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key must be a string at byte {pos}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                members.push((key, parse_value(input, bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(input, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(input, bytes, pos).map(Json::Str),
        Some(b't') if input[*pos..].starts_with("true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if input[*pos..].starts_with("false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if input[*pos..].starts_with("null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            input[start..*pos]
                .parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("invalid number at byte {start}"))
        }
    }
}

fn parse_string(input: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".into());
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = input
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        // Surrogate pairs are not needed by this protocol;
                        // lone surrogates degrade to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape in string".into()),
                }
                *pos += 1;
            }
            _ => {
                // Consume one full UTF-8 scalar from the source.
                let rest = &input[*pos..];
                let c = rest.chars().next().ok_or("invalid utf-8 boundary")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<ServeRequest, String> {
    let value = parse_json(line)?;
    let id = value
        .get("id")
        .and_then(Json::as_str)
        .ok_or("missing string field \"id\"")?
        .to_string();
    let prompt = value
        .get("prompt")
        .and_then(Json::as_str)
        .ok_or("missing string field \"prompt\"")?
        .to_string();
    let deadline_ms = match value.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_f64()
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .ok_or("\"deadline_ms\" must be a non-negative integer")? as u64,
        ),
    };
    Ok(ServeRequest {
        id,
        prompt,
        deadline_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Stage;
    use haven_verilog::analyze_static::StaticRule;
    use haven_verilog::error::Span;

    #[test]
    fn request_line_round_trips_through_emit_and_parse() {
        let r = ServeRequest {
            id: "r\"1\"".into(),
            prompt: "line1\nline2\ttabbed \\ slash \u{263a}".into(),
            deadline_ms: Some(250),
        };
        assert_eq!(parse_request(&request_json(&r)), Ok(r.clone()));
        let without = ServeRequest {
            deadline_ms: None,
            ..r
        };
        assert_eq!(parse_request(&request_json(&without)), Ok(without));
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(parse_request("").is_err());
        assert!(parse_request("{\"id\":\"x\"}").is_err(), "prompt required");
        assert!(parse_request("{\"id\":1,\"prompt\":\"p\"}").is_err());
        assert!(parse_request("{\"id\":\"x\",\"prompt\":\"p\",\"deadline_ms\":-1}").is_err());
        assert!(parse_request("{\"id\":\"x\",\"prompt\":\"p\"} junk").is_err());
    }

    #[test]
    fn reply_json_is_parseable_and_carries_the_verdict() {
        let reply = ServeReply {
            id: "req-7".into(),
            outcome: ServeOutcome::Completed(ServeResponse {
                code: "module m;\nendmodule\n".into(),
                verdict: ServeVerdict::Checked(Verdict::Pass),
                findings: vec![StaticFinding {
                    rule: StaticRule::WidthTrunc,
                    severity: Severity::Warn,
                    message: "assignment \"wider\" than target".into(),
                    span: Span { line: 3, col: 7 },
                    signal: Some("q".into()),
                    confirmation: haven_verilog::Confirmation::Structural,
                    evidence: None,
                }],
                gated: false,
            }),
            cache_hit: true,
            sicot_steps: 2,
            trace: RequestTrace {
                queue_us: 10,
                total_us: 1500,
                ..RequestTrace::default()
            },
        };
        let line = reply_json(&reply);
        assert!(
            line.contains("\"confirmation\":\"structural\""),
            "findings carry the analyzer-v2 confirmation label: {line}"
        );
        let parsed = parse_json(&line).expect("reply must be valid JSON");
        assert_eq!(parsed.get("id").and_then(Json::as_str), Some("req-7"));
        assert_eq!(parsed.get("cache_hit").and_then(Json::as_bool), Some(true));
        let outcome = parsed.get("outcome").unwrap();
        assert_eq!(
            outcome.get("type").and_then(Json::as_str),
            Some("completed")
        );
        let response = outcome.get("response").unwrap();
        assert_eq!(
            response
                .get("verdict")
                .unwrap()
                .get("type")
                .and_then(Json::as_str),
            Some("pass")
        );
        let Some(Json::Arr(findings)) = response.get("findings") else {
            panic!("findings must be an array");
        };
        assert_eq!(
            findings[0].get("rule").and_then(Json::as_str),
            Some("SA-WIDTH")
        );
        assert_eq!(
            parsed
                .get("trace")
                .unwrap()
                .get("total_us")
                .and_then(Json::as_f64),
            Some(1500.0)
        );
    }

    #[test]
    fn rejection_replies_name_their_stage() {
        let reply = ServeReply {
            id: "r".into(),
            outcome: ServeOutcome::Rejected(Rejection::DeadlineExceeded {
                stage: Stage::Generate,
                elapsed_ms: 42,
            }),
            cache_hit: false,
            sicot_steps: 0,
            trace: RequestTrace::default(),
        };
        let parsed = parse_json(&reply_json(&reply)).unwrap();
        let rejection = parsed.get("outcome").unwrap().get("rejection").unwrap();
        assert_eq!(
            rejection.get("type").and_then(Json::as_str),
            Some("deadline_exceeded")
        );
        assert_eq!(
            rejection.get("stage").and_then(Json::as_str),
            Some("generate")
        );
    }

    #[test]
    fn parser_handles_nesting_whitespace_and_escapes() {
        let v = parse_json(
            " { \"a\" : [ 1 , 2.5 , -3e2 ] , \"b\" : { \"c\" : null , \"d\" : \"\\u0041\\n\" } } ",
        )
        .unwrap();
        let Some(Json::Arr(a)) = v.get("a") else {
            panic!()
        };
        assert_eq!(a[2].as_f64(), Some(-300.0));
        assert_eq!(
            v.get("b").unwrap().get("d").and_then(Json::as_str),
            Some("A\n")
        );
        assert!(parse_json("{\"k\":}").is_err());
        assert!(parse_json("[1,]").is_err());
    }
}
