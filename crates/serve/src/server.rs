//! The server: bounded admission queue, worker pool, retry loop with
//! panic isolation, and graceful shutdown that drains everything admitted.
//!
//! ## Admission accounting
//!
//! Every request presented to [`Server::submit`] is either refused
//! *before* admission (counted `invalid` or `queue_full`, reply delivered
//! synchronously) or *admitted* — and every admitted request terminates in
//! exactly one of `completed` / `rejected` / `failed`, even when workers
//! panic or deadlines expire mid-pipeline. Shutdown drains the queue
//! (queued jobs still run) so the invariant holds at quiesce; it never
//! abandons admitted work.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use haven_eval::RetryPolicy;
use haven_lm::model::CodeGenModel;

use crate::cache::ResponseCache;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::pipeline::{AttemptOutcome, DeadlineClock, Engine, EngineConfig};
use crate::request::{
    Rejection, RequestTrace, ServeOutcome, ServeReply, ServeRequest, ServeVerdict, Stage,
};
use haven_spec::cosim::Verdict;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// Admission queue capacity; a full queue refuses with
    /// [`Rejection::QueueFull`] (backpressure, never blocking the caller).
    pub queue_capacity: usize,
    /// Default per-request deadline, measured from admission.
    pub default_deadline: Duration,
    /// Verified-response cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Retry policy for fault-class outcomes (panics, harness faults,
    /// budget exhaustion) — same machinery as the eval harness.
    pub retry: RetryPolicy,
    /// Pipeline configuration (static gate, budgets, inference latency,
    /// fault injection).
    pub engine: EngineConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            default_deadline: Duration::from_secs(10),
            cache_capacity: 1024,
            retry: RetryPolicy::default(),
            engine: EngineConfig::default(),
        }
    }
}

/// One admitted unit of work.
struct Job {
    request: ServeRequest,
    admitted_at: Instant,
    deadline: Duration,
    reply_to: Sender<ServeReply>,
}

/// Queue states shared between `submit` and the workers.
struct QueueState {
    jobs: VecDeque<Job>,
    shutting_down: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signals workers that a job arrived or shutdown began.
    wake: Condvar,
    /// Signals `shutdown` that the queue fully drained.
    drained: Condvar,
    engine: Engine,
    metrics: Arc<Metrics>,
    cache: Arc<ResponseCache>,
    retry: RetryPolicy,
    queue_capacity: usize,
}

/// The concurrent spec-to-RTL server.
pub struct Server {
    shared: Arc<Shared>,
    default_deadline: Duration,
    workers: Vec<JoinHandle<()>>,
    stopped: AtomicBool,
}

impl Server {
    /// Starts the worker pool.
    pub fn start(model: CodeGenModel, config: ServeConfig) -> Server {
        let metrics = Arc::new(Metrics::default());
        let cache = Arc::new(ResponseCache::new(config.cache_capacity));
        let engine = Engine::new(model, config.engine.clone(), cache.clone(), metrics.clone());
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutting_down: false,
            }),
            wake: Condvar::new(),
            drained: Condvar::new(),
            engine,
            metrics,
            cache,
            retry: config.retry,
            queue_capacity: config.queue_capacity.max(1),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Server {
            shared,
            default_deadline: config.default_deadline,
            workers,
            stopped: AtomicBool::new(false),
        }
    }

    /// Submits a request. The reply is delivered on `reply_to` — either
    /// synchronously (pre-admission refusal) or from a worker once the
    /// pipeline finishes. Returns whether the request was admitted.
    pub fn submit(&self, request: ServeRequest, reply_to: Sender<ServeReply>) -> bool {
        let metrics = &self.shared.metrics;
        Metrics::inc(&metrics.submitted);
        if let Err(reason) = validate(&request) {
            Metrics::inc(&metrics.invalid);
            refuse(&request, Rejection::Invalid { reason }, &reply_to);
            return false;
        }
        let deadline = request
            .deadline_ms
            .map(Duration::from_millis)
            .unwrap_or(self.default_deadline);
        let mut state = self.shared.state.lock().expect("queue lock poisoned");
        if state.shutting_down {
            drop(state);
            refuse(&request, Rejection::ShuttingDown, &reply_to);
            return false;
        }
        if state.jobs.len() >= self.shared.queue_capacity {
            drop(state);
            Metrics::inc(&metrics.queue_full);
            refuse(
                &request,
                Rejection::QueueFull {
                    capacity: self.shared.queue_capacity,
                },
                &reply_to,
            );
            return false;
        }
        Metrics::inc(&metrics.admitted);
        state.jobs.push_back(Job {
            request,
            admitted_at: Instant::now(),
            deadline,
            reply_to,
        });
        drop(state);
        self.shared.wake.notify_one();
        true
    }

    /// Convenience: submit and block for the reply. Pre-admission refusals
    /// return immediately; admitted requests wait for a worker.
    pub fn serve(&self, request: ServeRequest) -> ServeReply {
        let (tx, rx) = std::sync::mpsc::channel();
        self.submit(request, tx);
        rx.recv().expect("server dropped the reply channel")
    }

    /// Snapshot of the metrics registry.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Prometheus-style text rendering of the metrics registry.
    pub fn metrics_text(&self) -> String {
        self.metrics().render_text()
    }

    /// Entries currently in the verified-response cache.
    pub fn cache_len(&self) -> usize {
        self.shared.cache.len()
    }

    /// Stops admission, waits for every queued job to finish, and joins
    /// the workers. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let mut state = self.shared.state.lock().expect("queue lock poisoned");
            state.shutting_down = true;
            self.shared.wake.notify_all();
            // Drain: admitted work still runs, so the accounting
            // invariant holds exactly at quiesce.
            while !state.jobs.is_empty() {
                state = self
                    .shared
                    .drained
                    .wait(state)
                    .expect("queue lock poisoned");
            }
        }
        self.shared.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn validate(request: &ServeRequest) -> Result<(), String> {
    if request.prompt.trim().is_empty() {
        return Err("empty prompt".into());
    }
    if request.prompt.contains('\0') {
        return Err("prompt contains NUL bytes".into());
    }
    Ok(())
}

/// Delivers a pre-admission refusal. Send errors are ignored — the caller
/// hanging up is their prerogative.
fn refuse(request: &ServeRequest, rejection: Rejection, reply_to: &Sender<ServeReply>) {
    let _ = reply_to.send(ServeReply {
        id: request.id.clone(),
        outcome: ServeOutcome::Rejected(rejection),
        cache_hit: false,
        sicot_steps: 0,
        trace: RequestTrace::default(),
    });
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("queue lock poisoned");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    if state.jobs.is_empty() {
                        shared.drained.notify_all();
                    }
                    break Some(job);
                }
                if state.shutting_down {
                    break None;
                }
                state = shared.wake.wait(state).expect("queue lock poisoned");
            }
        };
        let Some(job) = job else { return };
        run_job(shared, job);
    }
}

/// Runs one admitted job to its terminal state and delivers the reply.
fn run_job(shared: &Shared, job: Job) {
    let metrics = &shared.metrics;
    let clock = DeadlineClock::new(job.admitted_at, job.deadline);
    let queue_us = job.admitted_at.elapsed().as_micros() as u64;
    metrics.record_stage(Stage::QueueWait, queue_us);

    let mut trace = RequestTrace {
        queue_us,
        ..RequestTrace::default()
    };
    let mut cache_hit = false;
    let mut sicot_steps = 0;

    // Deadline may already have expired while queued (admission control
    // under overload): typed rejection, no pipeline work.
    let outcome = if let Err(r) = clock.check(Stage::QueueWait) {
        metrics.record_deadline(Stage::QueueWait);
        ServeOutcome::Rejected(r)
    } else {
        run_attempts(
            shared,
            &job,
            &clock,
            &mut trace,
            &mut cache_hit,
            &mut sicot_steps,
        )
    };

    match &outcome {
        ServeOutcome::Completed(response) => {
            Metrics::inc(&metrics.completed);
            record_pipeline_stages(metrics, &trace);
            debug_assert!(
                !matches!(
                    response.verdict,
                    ServeVerdict::Checked(Verdict::HarnessFault(_))
                ),
                "harness faults must terminate as Failed, not Completed"
            );
        }
        // Deadline rejections inside the pipeline were already counted by
        // `run_attempts` (with their stage); nothing more to do here.
        ServeOutcome::Rejected(_) => {
            record_pipeline_stages(metrics, &trace);
        }
        ServeOutcome::Failed { .. } => {
            Metrics::inc(&metrics.failed);
            record_pipeline_stages(metrics, &trace);
        }
    }
    trace.total_us = job.admitted_at.elapsed().as_micros() as u64;
    metrics.total_latency.record(trace.total_us);

    let _ = job.reply_to.send(ServeReply {
        id: job.request.id.clone(),
        outcome,
        cache_hit,
        sicot_steps,
        trace,
    });
}

fn record_pipeline_stages(metrics: &Metrics, trace: &RequestTrace) {
    for (stage, us) in [
        (Stage::Normalize, trace.normalize_us),
        (Stage::Generate, trace.generate_us),
        (Stage::Lint, trace.lint_us),
        (Stage::Simulate, trace.simulate_us),
    ] {
        if us > 0 {
            metrics.record_stage(stage, us);
        }
    }
}

/// The retry loop: attempts are panic-isolated; fault-class outcomes
/// (panics, harness faults, budget exhaustion) burn retry budget with
/// bounded deterministic backoff, exactly like the eval harness.
fn run_attempts(
    shared: &Shared,
    job: &Job,
    clock: &DeadlineClock,
    trace: &mut RequestTrace,
    cache_hit: &mut bool,
    sicot_steps: &mut usize,
) -> ServeOutcome {
    let metrics = &shared.metrics;
    let max_attempts = shared.retry.max_attempts.max(1);
    let mut last_fault = String::new();
    for attempt in 0..max_attempts {
        if attempt > 0 {
            Metrics::inc(&metrics.retries);
            trace.retries += 1;
            backoff(&shared.retry, attempt - 1);
            // The deadline keeps running through backoff.
            if let Err(r) = clock.check(Stage::Generate) {
                metrics.record_deadline(Stage::Generate);
                return ServeOutcome::Rejected(r);
            }
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            shared
                .engine
                .run_attempt(&job.request.prompt, clock, attempt)
        }));
        match result {
            Err(payload) => {
                // A worker panic mid-attempt: isolated here, retried like
                // any other fault-class outcome.
                last_fault = format!("worker panic: {}", panic_message(payload.as_ref()));
                continue;
            }
            Ok(attempt_result) => {
                *sicot_steps = attempt_result.sicot_steps;
                merge_trace(trace, &attempt_result.trace);
                match attempt_result.outcome {
                    AttemptOutcome::Deadline(rejection) => {
                        if let Rejection::DeadlineExceeded { stage, .. } = rejection {
                            metrics.record_deadline(stage);
                        }
                        return ServeOutcome::Rejected(rejection);
                    }
                    AttemptOutcome::Response(response) => {
                        match &response.verdict {
                            ServeVerdict::Checked(Verdict::HarnessFault(detail)) => {
                                last_fault = detail.clone();
                                continue;
                            }
                            // Budget exhaustion is fault-class (retried),
                            // but if it persists it is a *result* — the
                            // candidate genuinely outran the budget — so
                            // the final attempt completes with it.
                            ServeVerdict::Checked(Verdict::ResourceExhausted(detail))
                                if attempt + 1 < max_attempts =>
                            {
                                last_fault = detail.clone();
                                continue;
                            }
                            _ => {
                                *cache_hit = attempt_result.cache_hit;
                                return ServeOutcome::Completed(Arc::unwrap_or_clone(response));
                            }
                        }
                    }
                }
            }
        }
    }
    ServeOutcome::Failed { detail: last_fault }
}

/// Deterministic bounded backoff, mirroring the eval harness
/// (`base << attempt`, capped at 50 ms).
fn backoff(retry: &RetryPolicy, attempt: usize) {
    let ms = (retry.backoff_base_ms << attempt.min(16)).min(50);
    if ms > 0 {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// Accumulates stage timings across attempts (retries add up).
fn merge_trace(into: &mut RequestTrace, attempt: &RequestTrace) {
    into.normalize_us += attempt.normalize_us;
    into.generate_us += attempt.generate_us;
    into.lint_us += attempt.lint_us;
    into.simulate_us += attempt.simulate_us;
}

/// Renders a panic payload (mirrors the eval harness's helper).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}
