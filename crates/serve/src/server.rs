//! The server: bounded admission queue, worker pool, retry loop with
//! panic isolation, and graceful shutdown that drains everything admitted.
//!
//! ## Admission accounting
//!
//! Every request presented to [`Server::submit`] is either refused
//! *before* admission (counted `invalid` or `queue_full`, reply delivered
//! synchronously) or *admitted* — and every admitted request terminates in
//! exactly one of `completed` / `rejected` / `failed`, even when workers
//! panic or deadlines expire mid-pipeline. Shutdown drains the queue
//! (queued jobs still run) so the invariant holds at quiesce; it never
//! abandons admitted work.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use haven_eval::RetryPolicy;
use haven_lm::model::CodeGenModel;

use crate::cache::ResponseCache;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::pipeline::{AttemptOutcome, DeadlineClock, Engine, EngineConfig};
use crate::request::{
    Rejection, RequestTrace, ServeOutcome, ServeReply, ServeRequest, ServeVerdict, Stage,
};
use haven_spec::cosim::Verdict;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// Admission queue capacity; a full queue refuses with
    /// [`Rejection::QueueFull`] (backpressure, never blocking the caller).
    pub queue_capacity: usize,
    /// Default per-request deadline, measured from admission.
    pub default_deadline: Duration,
    /// Verified-response cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Retry policy for fault-class outcomes (panics, harness faults,
    /// budget exhaustion) — same machinery as the eval harness.
    pub retry: RetryPolicy,
    /// Pipeline configuration (static gate, budgets, inference latency,
    /// fault injection).
    pub engine: EngineConfig,
    /// Watchdog threshold: a job still running this long after a worker
    /// picked it up is declared stalled — the watchdog resolves it with a
    /// typed failure and recycles the worker. `None` disables the
    /// watchdog. Queue wait does not count toward the threshold.
    pub stall_timeout: Option<Duration>,
    /// Store write failures tolerated before the server enters degraded
    /// mode (cache hits still served, fresh compiles shed).
    pub store_failure_threshold: u64,
    /// How long degraded mode lasts before normal serving resumes (also
    /// the retry-after hint sent with [`Rejection::Retrying`]).
    pub degraded_cooldown: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            default_deadline: Duration::from_secs(10),
            cache_capacity: 1024,
            retry: RetryPolicy::default(),
            engine: EngineConfig::default(),
            stall_timeout: Some(Duration::from_secs(2)),
            store_failure_threshold: 3,
            degraded_cooldown: Duration::from_millis(250),
        }
    }
}

/// One admitted unit of work.
struct Job {
    request: ServeRequest,
    admitted_at: Instant,
    deadline: Duration,
    reply_to: Sender<ServeReply>,
}

/// Queue states shared between `submit` and the workers.
struct QueueState {
    jobs: VecDeque<Job>,
    shutting_down: bool,
    /// Jobs popped from the queue but not yet terminally resolved.
    /// Shutdown drains until `jobs.is_empty() && in_flight == 0`, so
    /// already-admitted requests always get their reply before workers
    /// exit — queue emptiness alone is not quiescence.
    in_flight: usize,
}

/// A popped job's entry in the watchdog registry. Whoever wins the
/// `claimed` CAS — the worker finishing the pipeline, or the watchdog
/// declaring it stalled — delivers the one and only terminal reply.
struct Inflight {
    claimed: Arc<AtomicBool>,
    reply_to: Sender<ServeReply>,
    id: String,
    started: Instant,
}

/// Store-health tracker driving degraded mode.
struct Health {
    /// Store write failures since the last degraded-mode entry.
    store_failures: AtomicU64,
    /// While `Some(t)` with `t` in the future, the server is degraded:
    /// cache hits are served, fresh compiles are shed with a typed
    /// `Retrying` rejection. Cleared lazily once the cooldown passes.
    degraded_until: Mutex<Option<Instant>>,
}

impl Health {
    /// Remaining degraded time, clearing the flag once expired.
    fn degraded_remaining(&self) -> Option<Duration> {
        let mut until = self.degraded_until.lock().expect("health lock poisoned");
        match *until {
            Some(t) => {
                let now = Instant::now();
                if now < t {
                    Some(t - now)
                } else {
                    *until = None;
                    None
                }
            }
            None => None,
        }
    }

    /// Records one store write failure; crossing `threshold` enters (or
    /// extends) degraded mode for `cooldown`.
    fn note_store_failure(&self, threshold: u64, cooldown: Duration, metrics: &Metrics) {
        let n = self.store_failures.fetch_add(1, Ordering::SeqCst) + 1;
        if n >= threshold.max(1) {
            self.store_failures.store(0, Ordering::SeqCst);
            let mut until = self.degraded_until.lock().expect("health lock poisoned");
            let now = Instant::now();
            if !matches!(*until, Some(t) if t > now) {
                Metrics::inc(&metrics.degraded_entered);
            }
            *until = Some(now + cooldown);
        }
    }
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signals workers that a job arrived or shutdown began.
    wake: Condvar,
    /// Signals `shutdown` that the queue fully drained.
    drained: Condvar,
    engine: Engine,
    metrics: Arc<Metrics>,
    cache: Arc<ResponseCache>,
    retry: RetryPolicy,
    queue_capacity: usize,
    /// Jobs currently being worked, by serial — what the watchdog scans.
    inflight: Mutex<HashMap<u64, Inflight>>,
    job_serial: AtomicU64,
    /// Worker pool handles. Lives in `Shared` (not `Server`) so the
    /// watchdog can push replacement workers after recycling a stalled
    /// one; shutdown joins whatever is here at quiesce.
    workers: Mutex<Vec<JoinHandle<()>>>,
    worker_serial: AtomicU64,
    health: Health,
    store_failure_threshold: u64,
    degraded_cooldown: Duration,
}

/// The concurrent spec-to-RTL server.
pub struct Server {
    shared: Arc<Shared>,
    default_deadline: Duration,
    watchdog: Option<JoinHandle<()>>,
    stopped: AtomicBool,
}

impl Server {
    /// Starts the worker pool.
    pub fn start(model: CodeGenModel, config: ServeConfig) -> Server {
        let metrics = Arc::new(Metrics::default());
        let cache = Arc::new(ResponseCache::new(config.cache_capacity));
        let engine = Engine::new(model, config.engine.clone(), cache.clone(), metrics.clone());
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutting_down: false,
                in_flight: 0,
            }),
            wake: Condvar::new(),
            drained: Condvar::new(),
            engine,
            metrics,
            cache,
            retry: config.retry,
            queue_capacity: config.queue_capacity.max(1),
            inflight: Mutex::new(HashMap::new()),
            job_serial: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
            worker_serial: AtomicU64::new(0),
            health: Health {
                store_failures: AtomicU64::new(0),
                degraded_until: Mutex::new(None),
            },
            store_failure_threshold: config.store_failure_threshold,
            degraded_cooldown: config.degraded_cooldown,
        });
        for _ in 0..config.workers.max(1) {
            spawn_worker(&shared);
        }
        let watchdog = config.stall_timeout.map(|stall| {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("serve-watchdog".into())
                .spawn(move || watchdog_loop(&shared, stall))
                .expect("spawn watchdog thread")
        });
        Server {
            shared,
            default_deadline: config.default_deadline,
            watchdog,
            stopped: AtomicBool::new(false),
        }
    }

    /// Submits a request. The reply is delivered on `reply_to` — either
    /// synchronously (pre-admission refusal) or from a worker once the
    /// pipeline finishes. Returns whether the request was admitted.
    pub fn submit(&self, request: ServeRequest, reply_to: Sender<ServeReply>) -> bool {
        let metrics = &self.shared.metrics;
        Metrics::inc(&metrics.submitted);
        if let Err(reason) = validate(&request) {
            Metrics::inc(&metrics.invalid);
            refuse(&request, Rejection::Invalid { reason }, &reply_to);
            return false;
        }
        let deadline = request
            .deadline_ms
            .map(Duration::from_millis)
            .unwrap_or(self.default_deadline);
        let mut state = self.shared.state.lock().expect("queue lock poisoned");
        if state.shutting_down {
            drop(state);
            refuse(&request, Rejection::ShuttingDown, &reply_to);
            return false;
        }
        if state.jobs.len() >= self.shared.queue_capacity {
            drop(state);
            Metrics::inc(&metrics.queue_full);
            refuse(
                &request,
                Rejection::QueueFull {
                    capacity: self.shared.queue_capacity,
                },
                &reply_to,
            );
            return false;
        }
        Metrics::inc(&metrics.admitted);
        state.jobs.push_back(Job {
            request,
            admitted_at: Instant::now(),
            deadline,
            reply_to,
        });
        drop(state);
        self.shared.wake.notify_one();
        true
    }

    /// Convenience: submit and block for the reply. Pre-admission refusals
    /// return immediately; admitted requests wait for a worker.
    pub fn serve(&self, request: ServeRequest) -> ServeReply {
        let (tx, rx) = std::sync::mpsc::channel();
        self.submit(request, tx);
        rx.recv().expect("server dropped the reply channel")
    }

    /// Snapshot of the metrics registry.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Prometheus-style text rendering of the metrics registry.
    pub fn metrics_text(&self) -> String {
        self.metrics().render_text()
    }

    /// Entries currently in the verified-response cache.
    pub fn cache_len(&self) -> usize {
        self.shared.cache.len()
    }

    /// Stops admission, waits for every admitted job — queued *and*
    /// in-flight — to reach its terminal reply, and joins the workers.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.stopped.swap(true, Ordering::SeqCst) {
            return;
        }
        {
            let mut state = self.shared.state.lock().expect("queue lock poisoned");
            state.shutting_down = true;
            self.shared.wake.notify_all();
            // Drain: admitted work still runs, and a job a worker already
            // picked up must deliver its reply before quiesce — so the
            // accounting invariant holds exactly at shutdown. A wedged
            // worker cannot stall this forever: the watchdog resolves its
            // job with a typed failure and the drain proceeds.
            while !state.jobs.is_empty() || state.in_flight > 0 {
                state = self
                    .shared
                    .drained
                    .wait(state)
                    .expect("queue lock poisoned");
            }
        }
        self.shared.wake.notify_all();
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
        let workers = std::mem::take(&mut *self.shared.workers.lock().expect("workers lock"));
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn validate(request: &ServeRequest) -> Result<(), String> {
    if request.prompt.trim().is_empty() {
        return Err("empty prompt".into());
    }
    if request.prompt.contains('\0') {
        return Err("prompt contains NUL bytes".into());
    }
    Ok(())
}

/// Delivers a pre-admission refusal. Send errors are ignored — the caller
/// hanging up is their prerogative.
fn refuse(request: &ServeRequest, rejection: Rejection, reply_to: &Sender<ServeReply>) {
    let _ = reply_to.send(ServeReply {
        id: request.id.clone(),
        outcome: ServeOutcome::Rejected(rejection),
        cache_hit: false,
        sicot_steps: 0,
        trace: RequestTrace::default(),
    });
}

/// Spawns one worker thread and registers its handle for shutdown.
/// Called at startup and by the watchdog when recycling a stalled worker.
fn spawn_worker(shared: &Arc<Shared>) {
    let i = shared.worker_serial.fetch_add(1, Ordering::SeqCst);
    let cloned = shared.clone();
    let handle = std::thread::Builder::new()
        .name(format!("serve-worker-{i}"))
        .spawn(move || worker_loop(&cloned))
        .expect("spawn worker thread");
    shared
        .workers
        .lock()
        .expect("workers lock poisoned")
        .push(handle);
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("queue lock poisoned");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    state.in_flight += 1;
                    break Some(job);
                }
                if state.shutting_down {
                    break None;
                }
                state = shared.wake.wait(state).expect("queue lock poisoned");
            }
        };
        let Some(job) = job else { return };
        if !run_job(shared, job) {
            // The watchdog declared this worker stalled, resolved its job
            // and already spawned a replacement: retire quietly.
            return;
        }
    }
}

/// Marks one in-flight job terminally resolved and wakes `shutdown` if
/// that was the last piece of admitted work.
fn finish_job(shared: &Shared) {
    let mut state = shared.state.lock().expect("queue lock poisoned");
    state.in_flight -= 1;
    if state.jobs.is_empty() && state.in_flight == 0 {
        shared.drained.notify_all();
    }
}

/// Scans the in-flight registry for jobs running longer than `stall`,
/// resolves each with a typed failure, and recycles the wedged worker by
/// spawning a replacement. The stalled thread itself eventually wakes,
/// loses the delivery race, and retires.
fn watchdog_loop(shared: &Arc<Shared>, stall: Duration) {
    let poll = (stall / 8).max(Duration::from_millis(1));
    loop {
        {
            let state = shared.state.lock().expect("queue lock poisoned");
            if state.shutting_down && state.jobs.is_empty() && state.in_flight == 0 {
                return;
            }
        }
        let stalled: Vec<(u64, Arc<AtomicBool>, Sender<ServeReply>, String, Instant)> = {
            let registry = shared.inflight.lock().expect("inflight lock poisoned");
            registry
                .iter()
                .filter(|(_, e)| e.started.elapsed() >= stall)
                .map(|(&serial, e)| {
                    (
                        serial,
                        e.claimed.clone(),
                        e.reply_to.clone(),
                        e.id.clone(),
                        e.started,
                    )
                })
                .collect()
        };
        for (serial, claimed, reply_to, id, started) in stalled {
            if claimed.swap(true, Ordering::SeqCst) {
                continue; // The worker delivered in the meantime.
            }
            shared
                .inflight
                .lock()
                .expect("inflight lock poisoned")
                .remove(&serial);
            Metrics::inc(&shared.metrics.failed);
            Metrics::inc(&shared.metrics.watchdog_recycles);
            let elapsed_ms = started.elapsed().as_millis() as u64;
            let _ = reply_to.send(ServeReply {
                id,
                outcome: ServeOutcome::Failed {
                    detail: format!(
                        "watchdog: worker stalled for {elapsed_ms} ms; \
                         request abandoned, worker recycled"
                    ),
                },
                cache_hit: false,
                sicot_steps: 0,
                trace: RequestTrace {
                    total_us: started.elapsed().as_micros() as u64,
                    ..RequestTrace::default()
                },
            });
            finish_job(shared);
            spawn_worker(shared);
        }
        std::thread::sleep(poll);
    }
}

/// Runs one admitted job to its terminal state and delivers the reply.
/// Returns whether this worker should keep serving (`false` means the
/// watchdog claimed the job first — the worker has been replaced).
fn run_job(shared: &Shared, job: Job) -> bool {
    let metrics = &shared.metrics;
    let clock = DeadlineClock::new(job.admitted_at, job.deadline);
    let queue_us = job.admitted_at.elapsed().as_micros() as u64;
    metrics.record_stage(Stage::QueueWait, queue_us);

    // Register with the watchdog before any pipeline work.
    let serial = shared.job_serial.fetch_add(1, Ordering::SeqCst);
    let claimed = Arc::new(AtomicBool::new(false));
    shared
        .inflight
        .lock()
        .expect("inflight lock poisoned")
        .insert(
            serial,
            Inflight {
                claimed: claimed.clone(),
                reply_to: job.reply_to.clone(),
                id: job.request.id.clone(),
                started: Instant::now(),
            },
        );

    let mut trace = RequestTrace {
        queue_us,
        ..RequestTrace::default()
    };
    let mut cache_hit = false;
    let mut sicot_steps = 0;

    // Deadline may already have expired while queued (admission control
    // under overload): typed rejection, no pipeline work.
    let outcome = if let Err(r) = clock.check(Stage::QueueWait) {
        metrics.record_deadline(Stage::QueueWait);
        ServeOutcome::Rejected(r)
    } else if let Some(remaining) = shared.health.degraded_remaining() {
        // Degraded mode: the store (or workers) are unhealthy. Serve what
        // the verified-response cache already holds; shed fresh compiles
        // with a typed retry hint instead of risking more damage.
        let (hit, steps) = shared.engine.lookup_cached(&job.request.prompt);
        sicot_steps = steps;
        match hit {
            Some(response) => {
                cache_hit = true;
                Metrics::inc(&metrics.degraded_hits);
                ServeOutcome::Completed(Arc::unwrap_or_clone(response))
            }
            None => {
                Metrics::inc(&metrics.rejected);
                Metrics::inc(&metrics.degraded_shed);
                ServeOutcome::Rejected(Rejection::Retrying {
                    retry_after_ms: (remaining.as_millis() as u64).max(1),
                })
            }
        }
    } else {
        run_attempts(
            shared,
            &job,
            &clock,
            &mut trace,
            &mut cache_hit,
            &mut sicot_steps,
        )
    };

    // Terminal delivery: race the watchdog for the claim. The loser must
    // not touch counters or the reply channel — the job was already
    // resolved once, and resolving it twice would break the accounting
    // invariant.
    let won = !claimed.swap(true, Ordering::SeqCst);
    shared
        .inflight
        .lock()
        .expect("inflight lock poisoned")
        .remove(&serial);
    if !won {
        return false;
    }

    match &outcome {
        ServeOutcome::Completed(response) => {
            Metrics::inc(&metrics.completed);
            record_pipeline_stages(metrics, &trace);
            debug_assert!(
                !matches!(
                    response.verdict,
                    ServeVerdict::Checked(Verdict::HarnessFault(_))
                ),
                "harness faults must terminate as Failed, not Completed"
            );
        }
        // Deadline rejections inside the pipeline were already counted by
        // `run_attempts` (with their stage); nothing more to do here.
        ServeOutcome::Rejected(_) => {
            record_pipeline_stages(metrics, &trace);
        }
        ServeOutcome::Failed { .. } => {
            Metrics::inc(&metrics.failed);
            record_pipeline_stages(metrics, &trace);
        }
    }
    trace.total_us = job.admitted_at.elapsed().as_micros() as u64;
    metrics.total_latency.record(trace.total_us);

    let _ = job.reply_to.send(ServeReply {
        id: job.request.id.clone(),
        outcome,
        cache_hit,
        sicot_steps,
        trace,
    });
    finish_job(shared);
    true
}

fn record_pipeline_stages(metrics: &Metrics, trace: &RequestTrace) {
    for (stage, us) in [
        (Stage::Normalize, trace.normalize_us),
        (Stage::Generate, trace.generate_us),
        (Stage::Lint, trace.lint_us),
        (Stage::Simulate, trace.simulate_us),
    ] {
        if us > 0 {
            metrics.record_stage(stage, us);
        }
    }
}

/// The retry loop: attempts are panic-isolated; fault-class outcomes
/// (panics, harness faults, budget exhaustion) burn retry budget with
/// bounded deterministic backoff, exactly like the eval harness.
fn run_attempts(
    shared: &Shared,
    job: &Job,
    clock: &DeadlineClock,
    trace: &mut RequestTrace,
    cache_hit: &mut bool,
    sicot_steps: &mut usize,
) -> ServeOutcome {
    let metrics = &shared.metrics;
    let max_attempts = shared.retry.max_attempts.max(1);
    let mut last_fault = String::new();
    for attempt in 0..max_attempts {
        if attempt > 0 {
            Metrics::inc(&metrics.retries);
            trace.retries += 1;
            backoff(&shared.retry, attempt - 1);
            // The deadline keeps running through backoff.
            if let Err(r) = clock.check(Stage::Generate) {
                metrics.record_deadline(Stage::Generate);
                return ServeOutcome::Rejected(r);
            }
        }
        let result = catch_unwind(AssertUnwindSafe(|| {
            shared
                .engine
                .run_attempt(&job.request.prompt, clock, attempt)
        }));
        match result {
            Err(payload) => {
                // A worker panic mid-attempt: isolated here, retried like
                // any other fault-class outcome.
                last_fault = format!("worker panic: {}", panic_message(payload.as_ref()));
                continue;
            }
            Ok(attempt_result) => {
                *sicot_steps = attempt_result.sicot_steps;
                merge_trace(trace, &attempt_result.trace);
                if attempt_result.store_write_failed {
                    // The response still goes out; repeated failures tip
                    // the server into degraded mode.
                    shared.health.note_store_failure(
                        shared.store_failure_threshold,
                        shared.degraded_cooldown,
                        metrics,
                    );
                }
                match attempt_result.outcome {
                    AttemptOutcome::Deadline(rejection) => {
                        if let Rejection::DeadlineExceeded { stage, .. } = rejection {
                            metrics.record_deadline(stage);
                        }
                        return ServeOutcome::Rejected(rejection);
                    }
                    AttemptOutcome::Response(response) => {
                        match &response.verdict {
                            ServeVerdict::Checked(Verdict::HarnessFault(detail)) => {
                                last_fault = detail.clone();
                                continue;
                            }
                            // Budget exhaustion is fault-class (retried),
                            // but if it persists it is a *result* — the
                            // candidate genuinely outran the budget — so
                            // the final attempt completes with it.
                            ServeVerdict::Checked(Verdict::ResourceExhausted(detail))
                                if attempt + 1 < max_attempts =>
                            {
                                last_fault = detail.clone();
                                continue;
                            }
                            _ => {
                                *cache_hit = attempt_result.cache_hit;
                                return ServeOutcome::Completed(Arc::unwrap_or_clone(response));
                            }
                        }
                    }
                }
            }
        }
    }
    ServeOutcome::Failed { detail: last_fault }
}

/// Deterministic bounded backoff, mirroring the eval harness
/// (`base << attempt`, capped at 50 ms).
fn backoff(retry: &RetryPolicy, attempt: usize) {
    let ms = (retry.backoff_base_ms << attempt.min(16)).min(50);
    if ms > 0 {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// Accumulates stage timings across attempts (retries add up).
fn merge_trace(into: &mut RequestTrace, attempt: &RequestTrace) {
    into.normalize_us += attempt.normalize_us;
    into.generate_us += attempt.generate_us;
    into.lint_us += attempt.lint_us;
    into.simulate_us += attempt.simulate_us;
}

/// Renders a panic payload (mirrors the eval harness's helper).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}
