//! Lock-free serving metrics: counters for the admission accounting
//! invariant and log-bucketed latency histograms per pipeline stage.
//!
//! The registry is written on the hot path by every worker, so everything
//! is relaxed atomics — no locks, no allocation. Reads produce a
//! [`MetricsSnapshot`], a consistent-enough view for dashboards (each
//! counter is individually atomic; the snapshot is taken between requests
//! in tests, where the invariant `admitted == completed + rejected +
//! failed` must hold exactly).

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::request::Stage;

/// Sub-buckets per octave. Log-linear bucketing: each power-of-two
/// octave is split into 16 linear sub-buckets, so the quantile estimate
/// (a bucket upper bound) overshoots the true value by at most 6.25% —
/// the resolution that lets p95 and p99 separate instead of saturating
/// into the same power of two, which is what made BENCH_serve.json
/// report p95 == p99 at every worker count under the old log2 scheme.
const SUB: usize = 16;
/// log2(SUB): the first octave that gets sub-bucketed.
const SUB_SHIFT: usize = SUB.trailing_zeros() as usize;
/// Values 0..SUB get exact buckets; octaves SUB_SHIFT..=63 get SUB
/// sub-buckets each, covering the full `u64` microsecond range with no
/// overflow bucket.
const BUCKETS: usize = SUB + (64 - SUB_SHIFT) * SUB;

/// One log-linear latency histogram (microseconds).
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

/// The bucket index holding `us`.
fn bucket_for(us: u64) -> usize {
    if us < SUB as u64 {
        return us as usize;
    }
    let octave = 63 - us.leading_zeros() as usize;
    let sub = ((us - (1u64 << octave)) >> (octave - SUB_SHIFT)) as usize;
    SUB + (octave - SUB_SHIFT) * SUB + sub
}

/// The largest value that lands in `bucket` (its inclusive upper bound).
fn bucket_upper(bucket: usize) -> u64 {
    if bucket < SUB {
        return bucket as u64;
    }
    let octave = SUB_SHIFT + (bucket - SUB) / SUB;
    let sub = ((bucket - SUB) % SUB) as u128;
    let upper = (1u128 << octave) + (sub + 1) * (1u128 << (octave - SUB_SHIFT)) - 1;
    u64::try_from(upper).unwrap_or(u64::MAX)
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, us: u64) {
        self.counts[bucket_for(us)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let max_us = self.max_us.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us,
            p50_us: quantile(&counts, count, max_us, 0.50),
            p95_us: quantile(&counts, count, max_us, 0.95),
            p99_us: quantile(&counts, count, max_us, 0.99),
        }
    }
}

/// Upper bound of the bucket holding quantile `q` (0 when empty),
/// clamped by the exact recorded maximum — a quantile can never exceed
/// the largest observation, so the clamp tightens the tail estimate for
/// free (and makes `p99 <= max` exact).
fn quantile(counts: &[u64], total: u64, max_us: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let rank = (q * total as f64).ceil() as u64;
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_upper(i).min(max_us);
        }
    }
    max_us
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations (µs).
    pub sum_us: u64,
    /// Largest observation (µs).
    pub max_us: u64,
    /// Median estimate (bucket upper bound, µs).
    pub p50_us: u64,
    /// 95th-percentile estimate (µs).
    pub p95_us: u64,
    /// 99th-percentile estimate (µs).
    pub p99_us: u64,
}

impl HistogramSnapshot {
    /// Mean in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }
}

/// The registry every worker writes into.
#[derive(Default)]
pub struct Metrics {
    /// Requests presented to `submit` (admitted or not).
    pub submitted: AtomicU64,
    /// Pre-admission refusals: malformed requests.
    pub invalid: AtomicU64,
    /// Pre-admission refusals: queue at capacity (backpressure).
    pub queue_full: AtomicU64,
    /// Requests that entered the queue. Everything admitted must end up in
    /// exactly one of `completed` / `rejected` / `failed`.
    pub admitted: AtomicU64,
    /// Admitted requests that produced a response (including cache hits,
    /// gated responses, and unchecked responses).
    pub completed: AtomicU64,
    /// Admitted requests refused after admission (deadline, shutdown).
    pub rejected: AtomicU64,
    /// Admitted requests that died as harness faults after retries.
    pub failed: AtomicU64,
    /// Verified-response cache hits.
    pub cache_hits: AtomicU64,
    /// Verified-response cache misses (lookups that ran the full pipeline).
    pub cache_misses: AtomicU64,
    /// Requests served by waiting out another in-flight request with the
    /// same cache key instead of computing a duplicate payload
    /// (single-flight coalescing).
    pub coalesced: AtomicU64,
    /// Retry attempts spent on fault-class outcomes.
    pub retries: AtomicU64,
    /// Admitted requests terminated by the watchdog after their worker
    /// stalled past the stall timeout (counted inside `failed` too; this
    /// attributes them).
    pub watchdog_recycles: AtomicU64,
    /// Durable-store / WAL writes that failed (disk trouble or injected
    /// chaos). Consecutive failures push the server into degraded mode.
    pub store_write_failures: AtomicU64,
    /// Injected silent store corruptions (chaos drills only; detected
    /// and quarantined by the next restart's replay).
    pub store_corruptions: AtomicU64,
    /// Requests shed with [`crate::Rejection::Retrying`] while degraded.
    pub degraded_shed: AtomicU64,
    /// Requests served from the verified-response cache while degraded.
    pub degraded_hits: AtomicU64,
    /// Times the server entered degraded mode.
    pub degraded_entered: AtomicU64,
    /// Cosim `Pass` verdicts escalated to the formal equivalence oracle.
    pub formal_checked: AtomicU64,
    /// Formal checks that proved candidate ≡ golden.
    pub formal_equivalent: AtomicU64,
    /// Formal checks that refuted a cosim pass with a replay-confirmed
    /// counterexample (the stimulus program had missed the bug).
    pub formal_refuted: AtomicU64,
    /// Formal checks that came back undecided (typed `Unknown`: resource
    /// cap, x-abstraction taint, unsupported construct) — the cosim
    /// verdict stood.
    pub formal_unknown: AtomicU64,
    /// Responses replayed into the cache from the WAL at startup.
    pub wal_replayed: AtomicU64,
    /// Responses appended to the WAL (durable across restarts).
    pub responses_persisted: AtomicU64,
    /// Deadline rejections by the stage where time ran out.
    pub deadline_by_stage: [AtomicU64; 5],
    /// Latency histograms by stage.
    pub stage_latency: [Histogram; 5],
    /// Admission-to-reply latency of every finished request.
    pub total_latency: Histogram,
}

impl Metrics {
    /// Bumps a counter by one.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a stage latency.
    pub fn record_stage(&self, stage: Stage, us: u64) {
        self.stage_latency[stage.index()].record(us);
    }

    /// Records a deadline rejection at `stage`.
    pub fn record_deadline(&self, stage: Stage) {
        Metrics::inc(&self.rejected);
        Metrics::inc(&self.deadline_by_stage[stage.index()]);
    }

    /// Takes a snapshot of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted: load(&self.submitted),
            invalid: load(&self.invalid),
            queue_full: load(&self.queue_full),
            admitted: load(&self.admitted),
            completed: load(&self.completed),
            rejected: load(&self.rejected),
            failed: load(&self.failed),
            cache_hits: load(&self.cache_hits),
            cache_misses: load(&self.cache_misses),
            coalesced: load(&self.coalesced),
            retries: load(&self.retries),
            watchdog_recycles: load(&self.watchdog_recycles),
            store_write_failures: load(&self.store_write_failures),
            store_corruptions: load(&self.store_corruptions),
            degraded_shed: load(&self.degraded_shed),
            degraded_hits: load(&self.degraded_hits),
            degraded_entered: load(&self.degraded_entered),
            formal_checked: load(&self.formal_checked),
            formal_equivalent: load(&self.formal_equivalent),
            formal_refuted: load(&self.formal_refuted),
            formal_unknown: load(&self.formal_unknown),
            wal_replayed: load(&self.wal_replayed),
            responses_persisted: load(&self.responses_persisted),
            deadline_by_stage: Stage::ALL
                .iter()
                .map(|s| {
                    (
                        s.label().to_string(),
                        load(&self.deadline_by_stage[s.index()]),
                    )
                })
                .collect(),
            stages: Stage::ALL
                .iter()
                .map(|s| {
                    (
                        s.label().to_string(),
                        self.stage_latency[s.index()].snapshot(),
                    )
                })
                .collect(),
            total: self.total_latency.snapshot(),
        }
    }
}

/// A serializable point-in-time view of the whole registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Requests presented to `submit`.
    pub submitted: u64,
    /// Malformed-request refusals (pre-admission).
    pub invalid: u64,
    /// Backpressure refusals (pre-admission).
    pub queue_full: u64,
    /// Requests that entered the queue.
    pub admitted: u64,
    /// Responses delivered.
    pub completed: u64,
    /// Post-admission rejections (deadline, shutdown).
    pub rejected: u64,
    /// Harness faults that survived the retry budget.
    pub failed: u64,
    /// Verified-response cache hits.
    pub cache_hits: u64,
    /// Cache lookups that missed.
    pub cache_misses: u64,
    /// Requests coalesced onto an in-flight duplicate's result.
    #[serde(default)]
    pub coalesced: u64,
    /// Retry attempts spent on fault-class outcomes.
    pub retries: u64,
    /// Watchdog-terminated stalled requests.
    pub watchdog_recycles: u64,
    /// Failed durable-store / WAL writes.
    pub store_write_failures: u64,
    /// Injected silent store corruptions (chaos drills).
    pub store_corruptions: u64,
    /// Requests shed with a typed retry-after while degraded.
    pub degraded_shed: u64,
    /// Cache hits served while degraded.
    pub degraded_hits: u64,
    /// Degraded-mode entries.
    pub degraded_entered: u64,
    /// Cosim passes escalated to the formal oracle. Absent in snapshots
    /// serialized before the oracle existed.
    #[serde(default)]
    pub formal_checked: u64,
    /// Formal proofs of equivalence.
    #[serde(default)]
    pub formal_equivalent: u64,
    /// Cosim passes overturned by a replay-confirmed counterexample.
    #[serde(default)]
    pub formal_refuted: u64,
    /// Undecided formal checks (typed `Unknown`).
    #[serde(default)]
    pub formal_unknown: u64,
    /// Responses replayed from the WAL at startup.
    pub wal_replayed: u64,
    /// Responses appended to the WAL.
    pub responses_persisted: u64,
    /// Deadline rejections by stage label.
    pub deadline_by_stage: Vec<(String, u64)>,
    /// Per-stage latency, by stage label.
    pub stages: Vec<(String, HistogramSnapshot)>,
    /// Admission-to-reply latency.
    pub total: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// The admission accounting invariant: every admitted request ended in
    /// exactly one terminal bucket. Holds exactly whenever no request is
    /// in flight (the server quiesced or was shut down).
    pub fn accounted(&self) -> bool {
        self.admitted == self.completed + self.rejected + self.failed
    }

    /// Cache hit rate over all lookups (0.0 when the cache was never
    /// consulted).
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// Plain-text rendering in the style of a Prometheus exposition: one
    /// `name value` line per counter, latency lines labelled by stage.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut line = |k: &str, v: u64| out.push_str(&format!("serve_{k} {v}\n"));
        line("submitted_total", self.submitted);
        line("invalid_total", self.invalid);
        line("queue_full_total", self.queue_full);
        line("admitted_total", self.admitted);
        line("completed_total", self.completed);
        line("rejected_total", self.rejected);
        line("failed_total", self.failed);
        line("cache_hits_total", self.cache_hits);
        line("cache_misses_total", self.cache_misses);
        line("coalesced_total", self.coalesced);
        line("retries_total", self.retries);
        line("watchdog_recycles_total", self.watchdog_recycles);
        line("store_write_failures_total", self.store_write_failures);
        line("store_corruptions_total", self.store_corruptions);
        line("degraded_shed_total", self.degraded_shed);
        line("degraded_hits_total", self.degraded_hits);
        line("degraded_entered_total", self.degraded_entered);
        line("formal_checked_total", self.formal_checked);
        line("formal_equivalent_total", self.formal_equivalent);
        line("formal_refuted_total", self.formal_refuted);
        line("formal_unknown_total", self.formal_unknown);
        line("wal_replayed_total", self.wal_replayed);
        line("responses_persisted_total", self.responses_persisted);
        for (stage, n) in &self.deadline_by_stage {
            out.push_str(&format!(
                "serve_deadline_exceeded_total{{stage=\"{stage}\"}} {n}\n"
            ));
        }
        let mut hist = |name: &str, label: &str, h: &HistogramSnapshot| {
            // `max` is the exact largest observation, not an estimate —
            // the one number bucketing can never blur.
            for (q, v) in [
                ("p50", h.p50_us),
                ("p95", h.p95_us),
                ("p99", h.p99_us),
                ("max", h.max_us),
            ] {
                out.push_str(&format!(
                    "serve_{name}_us{{{label},quantile=\"{q}\"}} {v}\n"
                ));
            }
            out.push_str(&format!("serve_{name}_us_count{{{label}}} {}\n", h.count));
            out.push_str(&format!("serve_{name}_us_sum{{{label}}} {}\n", h.sum_us));
        };
        for (stage, h) in &self.stages {
            hist("stage", &format!("stage=\"{stage}\""), h);
        }
        hist("total", "stage=\"total\"", &self.total);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bound_observations() {
        let h = Histogram::default();
        for us in [1u64, 2, 3, 100, 1000, 10_000] {
            h.record(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum_us, 11_106);
        assert_eq!(s.max_us, 10_000);
        // Log-linear bucket upper bounds: within 6.25% above the true
        // quantile (exact below 16 µs, and the tail clamps to max).
        assert_eq!(s.p50_us, 3, "{}", s.p50_us);
        assert!(s.p99_us >= 10_000 && s.p99_us <= 11_250, "{}", s.p99_us);
        assert!(s.p50_us <= s.p95_us && s.p95_us <= s.p99_us);
    }

    #[test]
    fn buckets_are_exhaustive_and_tight() {
        // Every value lands in a bucket whose upper bound is >= the value
        // and overshoots by at most 1/SUB (exact below SUB).
        let mut us = 1u64;
        while us < u64::MAX / 3 {
            for v in [us, us + us / 3, us.saturating_mul(2) - 1] {
                let b = bucket_for(v);
                let ub = bucket_upper(b);
                assert!(ub >= v, "upper bound {ub} below value {v}");
                assert!(
                    b == 0 || bucket_upper(b - 1) < v,
                    "value {v} fits an earlier bucket"
                );
                if v >= SUB as u64 {
                    assert!(
                        (ub - v) as f64 / v as f64 <= 1.0 / SUB as f64,
                        "bucket error for {v}: upper {ub}"
                    );
                }
            }
            us = us.saturating_mul(2);
        }
        assert!(bucket_for(u64::MAX) < BUCKETS);
        assert_eq!(bucket_upper(bucket_for(u64::MAX)), u64::MAX);
    }

    #[test]
    fn p95_and_p99_separate_under_a_bimodal_tail() {
        // The regression the log2 scheme had: a tail one octave out
        // collapsed p95 and p99 into the same power of two. With linear
        // sub-buckets per octave they must separate.
        let h = Histogram::default();
        for _ in 0..95 {
            h.record(1_000);
        }
        for _ in 0..5 {
            h.record(5_000);
        }
        let s = h.snapshot();
        assert!(s.p95_us >= 1_000 && s.p95_us <= 1_125, "{}", s.p95_us);
        assert!(s.p99_us >= 5_000 && s.p99_us <= 5_625, "{}", s.p99_us);
        assert!(
            s.p95_us < s.p99_us,
            "p95 {} must not equal p99 {}",
            s.p95_us,
            s.p99_us
        );
        assert_eq!(s.max_us, 5_000, "exact max is reported alongside");
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!((s.count, s.p50_us, s.p99_us, s.max_us), (0, 0, 0, 0));
        assert_eq!(s.mean_us(), 0.0);
    }

    #[test]
    fn oversized_observation_is_covered_without_an_overflow_bucket() {
        let h = Histogram::default();
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50_us, u64::MAX, "quantile clamps to the exact max");
        assert_eq!(s.max_us, u64::MAX);
    }

    #[test]
    fn accounting_invariant_checks_terminal_buckets() {
        let m = Metrics::default();
        Metrics::inc(&m.admitted);
        Metrics::inc(&m.admitted);
        Metrics::inc(&m.completed);
        assert!(!m.snapshot().accounted());
        m.record_deadline(Stage::Generate);
        let s = m.snapshot();
        assert!(s.accounted());
        assert_eq!(s.deadline_by_stage[Stage::Generate.index()].1, 1);
    }

    #[test]
    fn text_rendering_contains_every_counter_and_stage() {
        let m = Metrics::default();
        m.record_stage(Stage::Simulate, 250);
        m.total_latency.record(400);
        let text = m.snapshot().render_text();
        for needle in [
            "serve_admitted_total 0",
            "serve_cache_hits_total 0",
            "serve_watchdog_recycles_total 0",
            "serve_store_write_failures_total 0",
            "serve_degraded_shed_total 0",
            "serve_formal_checked_total 0",
            "serve_formal_refuted_total 0",
            "serve_formal_unknown_total 0",
            "stage=\"queue_wait\"",
            "stage=\"simulate\"",
            "quantile=\"max\"",
            "serve_total_us_count{stage=\"total\"} 1",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn hit_rate_is_guarded_against_zero_lookups() {
        let m = Metrics::default();
        assert_eq!(m.snapshot().cache_hit_rate(), 0.0);
        Metrics::inc(&m.cache_hits);
        Metrics::inc(&m.cache_misses);
        assert_eq!(m.snapshot().cache_hit_rate(), 0.5);
    }
}
