//! Lock-free serving metrics: counters for the admission accounting
//! invariant and log-bucketed latency histograms per pipeline stage.
//!
//! The registry is written on the hot path by every worker, so everything
//! is relaxed atomics — no locks, no allocation. Reads produce a
//! [`MetricsSnapshot`], a consistent-enough view for dashboards (each
//! counter is individually atomic; the snapshot is taken between requests
//! in tests, where the invariant `admitted == completed + rejected +
//! failed` must hold exactly).

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::request::Stage;

/// Histogram bucket count: powers of two from 1 µs up, last bucket is
/// overflow. 2^26 µs ≈ 67 s, far beyond any sane request deadline.
const BUCKETS: usize = 27;

/// One log2-bucketed latency histogram (microseconds).
#[derive(Default)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, us: u64) {
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        HistogramSnapshot {
            count,
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
            p50_us: quantile(&counts, count, 0.50),
            p95_us: quantile(&counts, count, 0.95),
            p99_us: quantile(&counts, count, 0.99),
        }
    }
}

/// Upper bound of the bucket holding quantile `q` (0 when empty). Bucket
/// `i` holds observations in `[2^(i-1), 2^i)` µs, so the estimate is the
/// bucket's upper bound — pessimistic by at most 2x, stable, and cheap.
fn quantile(counts: &[u64], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let rank = (q * total as f64).ceil() as u64;
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return 1u64 << i;
        }
    }
    1u64 << (BUCKETS - 1)
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations (µs).
    pub sum_us: u64,
    /// Largest observation (µs).
    pub max_us: u64,
    /// Median estimate (bucket upper bound, µs).
    pub p50_us: u64,
    /// 95th-percentile estimate (µs).
    pub p95_us: u64,
    /// 99th-percentile estimate (µs).
    pub p99_us: u64,
}

impl HistogramSnapshot {
    /// Mean in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }
}

/// The registry every worker writes into.
#[derive(Default)]
pub struct Metrics {
    /// Requests presented to `submit` (admitted or not).
    pub submitted: AtomicU64,
    /// Pre-admission refusals: malformed requests.
    pub invalid: AtomicU64,
    /// Pre-admission refusals: queue at capacity (backpressure).
    pub queue_full: AtomicU64,
    /// Requests that entered the queue. Everything admitted must end up in
    /// exactly one of `completed` / `rejected` / `failed`.
    pub admitted: AtomicU64,
    /// Admitted requests that produced a response (including cache hits,
    /// gated responses, and unchecked responses).
    pub completed: AtomicU64,
    /// Admitted requests refused after admission (deadline, shutdown).
    pub rejected: AtomicU64,
    /// Admitted requests that died as harness faults after retries.
    pub failed: AtomicU64,
    /// Verified-response cache hits.
    pub cache_hits: AtomicU64,
    /// Verified-response cache misses (lookups that ran the full pipeline).
    pub cache_misses: AtomicU64,
    /// Retry attempts spent on fault-class outcomes.
    pub retries: AtomicU64,
    /// Deadline rejections by the stage where time ran out.
    pub deadline_by_stage: [AtomicU64; 5],
    /// Latency histograms by stage.
    pub stage_latency: [Histogram; 5],
    /// Admission-to-reply latency of every finished request.
    pub total_latency: Histogram,
}

impl Metrics {
    /// Bumps a counter by one.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a stage latency.
    pub fn record_stage(&self, stage: Stage, us: u64) {
        self.stage_latency[stage.index()].record(us);
    }

    /// Records a deadline rejection at `stage`.
    pub fn record_deadline(&self, stage: Stage) {
        Metrics::inc(&self.rejected);
        Metrics::inc(&self.deadline_by_stage[stage.index()]);
    }

    /// Takes a snapshot of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted: load(&self.submitted),
            invalid: load(&self.invalid),
            queue_full: load(&self.queue_full),
            admitted: load(&self.admitted),
            completed: load(&self.completed),
            rejected: load(&self.rejected),
            failed: load(&self.failed),
            cache_hits: load(&self.cache_hits),
            cache_misses: load(&self.cache_misses),
            retries: load(&self.retries),
            deadline_by_stage: Stage::ALL
                .iter()
                .map(|s| {
                    (
                        s.label().to_string(),
                        load(&self.deadline_by_stage[s.index()]),
                    )
                })
                .collect(),
            stages: Stage::ALL
                .iter()
                .map(|s| {
                    (
                        s.label().to_string(),
                        self.stage_latency[s.index()].snapshot(),
                    )
                })
                .collect(),
            total: self.total_latency.snapshot(),
        }
    }
}

/// A serializable point-in-time view of the whole registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Requests presented to `submit`.
    pub submitted: u64,
    /// Malformed-request refusals (pre-admission).
    pub invalid: u64,
    /// Backpressure refusals (pre-admission).
    pub queue_full: u64,
    /// Requests that entered the queue.
    pub admitted: u64,
    /// Responses delivered.
    pub completed: u64,
    /// Post-admission rejections (deadline, shutdown).
    pub rejected: u64,
    /// Harness faults that survived the retry budget.
    pub failed: u64,
    /// Verified-response cache hits.
    pub cache_hits: u64,
    /// Cache lookups that missed.
    pub cache_misses: u64,
    /// Retry attempts spent on fault-class outcomes.
    pub retries: u64,
    /// Deadline rejections by stage label.
    pub deadline_by_stage: Vec<(String, u64)>,
    /// Per-stage latency, by stage label.
    pub stages: Vec<(String, HistogramSnapshot)>,
    /// Admission-to-reply latency.
    pub total: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// The admission accounting invariant: every admitted request ended in
    /// exactly one terminal bucket. Holds exactly whenever no request is
    /// in flight (the server quiesced or was shut down).
    pub fn accounted(&self) -> bool {
        self.admitted == self.completed + self.rejected + self.failed
    }

    /// Cache hit rate over all lookups (0.0 when the cache was never
    /// consulted).
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// Plain-text rendering in the style of a Prometheus exposition: one
    /// `name value` line per counter, latency lines labelled by stage.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut line = |k: &str, v: u64| out.push_str(&format!("serve_{k} {v}\n"));
        line("submitted_total", self.submitted);
        line("invalid_total", self.invalid);
        line("queue_full_total", self.queue_full);
        line("admitted_total", self.admitted);
        line("completed_total", self.completed);
        line("rejected_total", self.rejected);
        line("failed_total", self.failed);
        line("cache_hits_total", self.cache_hits);
        line("cache_misses_total", self.cache_misses);
        line("retries_total", self.retries);
        for (stage, n) in &self.deadline_by_stage {
            out.push_str(&format!(
                "serve_deadline_exceeded_total{{stage=\"{stage}\"}} {n}\n"
            ));
        }
        let mut hist = |name: &str, label: &str, h: &HistogramSnapshot| {
            for (q, v) in [("p50", h.p50_us), ("p95", h.p95_us), ("p99", h.p99_us)] {
                out.push_str(&format!(
                    "serve_{name}_us{{{label},quantile=\"{q}\"}} {v}\n"
                ));
            }
            out.push_str(&format!("serve_{name}_us_count{{{label}}} {}\n", h.count));
            out.push_str(&format!("serve_{name}_us_sum{{{label}}} {}\n", h.sum_us));
        };
        for (stage, h) in &self.stages {
            hist("stage", &format!("stage=\"{stage}\""), h);
        }
        hist("total", "stage=\"total\"", &self.total);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bound_observations() {
        let h = Histogram::default();
        for us in [1u64, 2, 3, 100, 1000, 10_000] {
            h.record(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum_us, 11_106);
        assert_eq!(s.max_us, 10_000);
        // Bucket upper bounds: within 2x above the true quantile.
        assert!(s.p50_us >= 3 && s.p50_us <= 8, "{}", s.p50_us);
        assert!(s.p99_us >= 10_000 && s.p99_us <= 20_000, "{}", s.p99_us);
        assert!(s.p50_us <= s.p95_us && s.p95_us <= s.p99_us);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!((s.count, s.p50_us, s.p99_us, s.max_us), (0, 0, 0, 0));
        assert_eq!(s.mean_us(), 0.0);
    }

    #[test]
    fn oversized_observation_lands_in_overflow_bucket() {
        let h = Histogram::default();
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.p50_us, 1u64 << (BUCKETS - 1));
    }

    #[test]
    fn accounting_invariant_checks_terminal_buckets() {
        let m = Metrics::default();
        Metrics::inc(&m.admitted);
        Metrics::inc(&m.admitted);
        Metrics::inc(&m.completed);
        assert!(!m.snapshot().accounted());
        m.record_deadline(Stage::Generate);
        let s = m.snapshot();
        assert!(s.accounted());
        assert_eq!(s.deadline_by_stage[Stage::Generate.index()].1, 1);
    }

    #[test]
    fn text_rendering_contains_every_counter_and_stage() {
        let m = Metrics::default();
        m.record_stage(Stage::Simulate, 250);
        m.total_latency.record(400);
        let text = m.snapshot().render_text();
        for needle in [
            "serve_admitted_total 0",
            "serve_cache_hits_total 0",
            "stage=\"queue_wait\"",
            "stage=\"simulate\"",
            "serve_total_us_count{stage=\"total\"} 1",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn hit_rate_is_guarded_against_zero_lookups() {
        let m = Metrics::default();
        assert_eq!(m.snapshot().cache_hit_rate(), 0.0);
        Metrics::inc(&m.cache_hits);
        Metrics::inc(&m.cache_misses);
        assert_eq!(m.snapshot().cache_hit_rate(), 0.5);
    }
}
