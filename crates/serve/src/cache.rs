//! The verified-response cache: content-addressed by the hash of the
//! *normalized* request (plus the serving-model fingerprint), storing only
//! deterministic, fully-processed [`ServeResponse`] payloads.
//!
//! Keying on the normalized prompt — the text *after* SI-CoT rewriting —
//! means two users who phrase the same intent with, say, the same truth
//! table but different surrounding prose still collide onto one entry
//! whenever normalization canonicalizes them identically, and it
//! generalizes the eval harness's per-task verdict memoization (same
//! canonical key function, [`haven_hash::content_key`]) across requests
//! and sessions.
//!
//! What is *never* cached, by construction:
//! * rejected requests (deadline, queue-full) — they have no response;
//! * fault-class outcomes (worker panics, budget exhaustion) — possibly
//!   transient, so replaying them would pin an infrastructure hiccup to a
//!   content key ([`ServeResponse::cacheable`]).

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;
use std::sync::Mutex;

use crate::request::ServeResponse;

/// A bounded, thread-safe, content-addressed response cache with FIFO
/// eviction. FIFO (rather than LRU) keeps the hot path to one short
/// critical section and is deterministic — eviction order depends only on
/// insertion order, never on racy access timestamps.
pub struct ResponseCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    map: HashMap<u64, Arc<ServeResponse>>,
    order: VecDeque<u64>,
}

impl ResponseCache {
    /// A cache holding at most `capacity` responses. Capacity 0 disables
    /// caching entirely (every lookup misses, every insert is dropped).
    pub fn new(capacity: usize) -> ResponseCache {
        ResponseCache {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Builds the content key for a normalized request served by a given
    /// engine configuration. The structured
    /// [`EngineFingerprint`](haven_engine::EngineFingerprint) captures
    /// everything besides the prompt that changes the deterministic
    /// response — model name and temperature, simulation backend and
    /// budget, analyzer rule-set version, static-gate switch — so any
    /// configuration change rolls the key instead of replaying a payload
    /// computed under different rules.
    pub fn key(normalized_prompt: &str, fingerprint: &haven_engine::EngineFingerprint) -> u64 {
        haven_hash::ContentHasher::new()
            .part(normalized_prompt)
            .word(fingerprint.key())
            .finish()
    }

    /// Looks up a response by key.
    pub fn get(&self, key: u64) -> Option<Arc<ServeResponse>> {
        self.inner
            .lock()
            .expect("cache lock poisoned")
            .map
            .get(&key)
            .cloned()
    }

    /// Inserts a response, evicting the oldest entry when full. Responses
    /// that are not [`ServeResponse::cacheable`] are refused here as a
    /// second line of defense (workers also check before calling).
    /// Returns whether a new entry was stored — the signal the durable
    /// WAL uses to append exactly one redo record per unique payload.
    pub fn insert(&self, key: u64, response: Arc<ServeResponse>) -> bool {
        if self.capacity == 0 || !response.cacheable() {
            return false;
        }
        let mut inner = self.inner.lock().expect("cache lock poisoned");
        if inner.map.contains_key(&key) {
            return false; // First write wins; entries are deterministic anyway.
        }
        if inner.map.len() >= self.capacity {
            if let Some(oldest) = inner.order.pop_front() {
                inner.map.remove(&oldest);
            }
        }
        inner.map.insert(key, response);
        inner.order.push_back(key);
        true
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock poisoned").map.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ServeVerdict;
    use haven_spec::cosim::Verdict;

    fn response(code: &str, verdict: ServeVerdict) -> Arc<ServeResponse> {
        Arc::new(ServeResponse {
            code: code.into(),
            verdict,
            findings: vec![],
            gated: false,
        })
    }

    fn fingerprint() -> haven_engine::EngineFingerprint {
        use haven_engine::{EngineFingerprint, SimBackend};
        EngineFingerprint::new(
            SimBackend::Compiled,
            haven_spec::cosim::SimBudget::default(),
        )
        .with_model("m", 0.2)
    }

    #[test]
    fn hit_returns_the_exact_inserted_payload() {
        let cache = ResponseCache::new(4);
        let key = ResponseCache::key("prompt", &fingerprint());
        let r = response("module m; endmodule", ServeVerdict::Checked(Verdict::Pass));
        cache.insert(key, r.clone());
        assert_eq!(cache.get(key).as_deref(), Some(r.as_ref()));
        assert_eq!(cache.get(key ^ 1), None);
    }

    /// The satellite contract for the structured fingerprint: identical
    /// configurations share a key; a change to the prompt, model,
    /// backend, budget, static gate or analyzer rule-set version each
    /// rolls it.
    #[test]
    fn key_depends_on_every_fingerprint_field() {
        use haven_engine::{EngineFingerprint, SimBackend};
        use haven_spec::cosim::SimBudget;
        let fp = fingerprint();
        let k = ResponseCache::key("p", &fp);
        assert_eq!(
            k,
            ResponseCache::key("p", &fingerprint()),
            "identical configuration must produce an identical key"
        );
        assert_ne!(k, ResponseCache::key("p2", &fp), "prompt");
        assert_ne!(
            k,
            ResponseCache::key("p", &fingerprint().with_model("m", 0.5)),
            "temperature"
        );
        assert_ne!(
            k,
            ResponseCache::key("p", &fingerprint().with_model("m2", 0.2)),
            "model name"
        );
        assert_ne!(
            k,
            ResponseCache::key(
                "p",
                &EngineFingerprint::new(SimBackend::Interpreter, SimBudget::default())
                    .with_model("m", 0.2)
            ),
            "backend"
        );
        assert_ne!(
            k,
            ResponseCache::key(
                "p",
                &EngineFingerprint::new(SimBackend::Compiled, SimBudget::starved())
                    .with_model("m", 0.2)
            ),
            "budget"
        );
        assert_ne!(
            k,
            ResponseCache::key("p", &fingerprint().with_static_gate(false)),
            "static gate"
        );
        let bumped = haven_engine::EngineFingerprint {
            analyzer_version: fp.analyzer_version + 1,
            ..fp
        };
        assert_ne!(k, ResponseCache::key("p", &bumped), "analyzer version");
    }

    #[test]
    fn fifo_eviction_bounds_the_cache() {
        let cache = ResponseCache::new(2);
        for i in 0..5u64 {
            cache.insert(i, response("m", ServeVerdict::Checked(Verdict::Pass)));
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.get(0).is_none(), "oldest entry must be evicted");
        assert!(cache.get(4).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResponseCache::new(0);
        cache.insert(1, response("m", ServeVerdict::Checked(Verdict::Pass)));
        assert!(cache.is_empty());
        assert_eq!(cache.get(1), None);
    }

    #[test]
    fn fault_class_responses_are_refused() {
        let cache = ResponseCache::new(4);
        cache.insert(
            1,
            response(
                "m",
                ServeVerdict::Checked(Verdict::HarnessFault("x".into())),
            ),
        );
        cache.insert(
            2,
            response(
                "m",
                ServeVerdict::Checked(Verdict::ResourceExhausted("t".into())),
            ),
        );
        assert!(cache.is_empty());
    }

    #[test]
    fn first_write_wins_for_concurrent_fills() {
        let cache = ResponseCache::new(4);
        let a = response("a", ServeVerdict::Checked(Verdict::Pass));
        let b = response("b", ServeVerdict::Checked(Verdict::Pass));
        cache.insert(9, a.clone());
        cache.insert(9, b);
        assert_eq!(cache.get(9).unwrap().code, "a");
        assert_eq!(cache.len(), 1);
    }
}
