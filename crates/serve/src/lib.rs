//! # haven-serve
//!
//! The concurrent spec-to-RTL serving layer: what the HaVen pipeline
//! looks like as a *service* rather than a batch evaluation.
//!
//! One request carries an instruction text (optionally with symbolic
//! modality blocks — truth tables, waveform charts, state diagrams) and
//! flows through:
//!
//! 1. **Normalize** — SI-CoT rewriting ([`haven_sicot`]);
//! 2. **Generate** — the CodeGen-LLM call ([`haven_lm`]), seeded by the
//!    content key of the *normalized* text so identical intents produce
//!    identical code;
//! 3. **Lint** — compile + dataflow static analysis
//!    ([`haven_verilog::analyze_design`]), with the same short-circuit
//!    gate the eval harness uses;
//! 4. **Simulate** — budgeted co-simulation against the perceived golden
//!    model on the compiled backend ([`haven_spec::cosim`]).
//!
//! Around the pipeline sit the serving concerns this crate exists for:
//!
//! * **Admission control** ([`Server`]) — a bounded queue with typed
//!   backpressure ([`Rejection::QueueFull`]) and per-request deadlines
//!   ([`Rejection::DeadlineExceeded`] names the stage that ran out of
//!   time). Overload degrades to rejections, never to panics or unbounded
//!   queues.
//! * **Panic isolation + retries** — fault-class outcomes (worker panics,
//!   harness faults, budget exhaustion) burn a bounded retry budget with
//!   deterministic backoff, reusing the eval harness's
//!   [`haven_eval::RetryPolicy`] and [`haven_eval::FaultPlan`] machinery.
//! * **Verified-response cache** ([`ResponseCache`]) — content-addressed
//!   by the hash of the *normalized* request ([`haven_hash`], the same
//!   key function as the eval memoizer), replaying fully-verified
//!   payloads bit-identically. Fault-class and rejected requests are
//!   never cached.
//! * **Metrics** ([`Metrics`]) — lock-free counters and per-stage latency
//!   histograms with the admission accounting invariant
//!   `admitted == completed + rejected + failed`.
//!
//! ## Quickstart
//!
//! ```
//! use haven_lm::{profiles, CodeGenModel};
//! use haven_serve::{ServeConfig, ServeRequest, Server};
//!
//! let model = CodeGenModel::new(profiles::ModelProfile::uniform("demo", 1.0), 0.2);
//! let server = Server::start(model, ServeConfig::default());
//! let reply = server.serve(ServeRequest::new(
//!     "r1",
//!     "Implement the truth table below\na b out\n0 0 0\n0 1 0\n1 0 0\n1 1 1\n\
//!      The module header is: `module and_gate (input a, input b, output out);`",
//! ));
//! match reply.outcome {
//!     haven_serve::ServeOutcome::Completed(response) => {
//!         assert!(response.verdict.verified_pass());
//!     }
//!     other => panic!("{other:?}"),
//! }
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod metrics;
pub mod pipeline;
pub mod request;
pub mod server;
pub mod wire;

pub use cache::ResponseCache;
pub use metrics::{Histogram, HistogramSnapshot, Metrics, MetricsSnapshot};
pub use pipeline::{Attempt, AttemptOutcome, DeadlineClock, Engine, EngineConfig};
pub use request::{
    Rejection, RequestTrace, ServeOutcome, ServeReply, ServeRequest, ServeResponse, ServeVerdict,
    Stage,
};
pub use server::{ServeConfig, Server};
