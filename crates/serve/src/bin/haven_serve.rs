//! `haven-serve` — the serving layer as a process.
//!
//! Two transports over the same [`haven_serve::Server`]:
//!
//! * **stdin mode** (default): one JSON [`ServeRequest`] per input line,
//!   one JSON [`ServeReply`] per output line, in completion order. EOF
//!   drains the queue, prints the metrics snapshot to stderr, exits 0.
//! * **TCP mode** (`--listen 127.0.0.1:PORT`): same JSONL protocol per
//!   connection; loopback only, one thread per connection. `GET /metrics`
//!   style probing is replaced by the literal line `"metrics"`, which
//!   returns the text snapshot.
//!
//! ```text
//! haven-serve [--model NAME] [--temperature T] [--workers N]
//!             [--queue-capacity N] [--deadline-ms MS] [--cache-capacity N]
//!             [--inference-latency-ms MS] [--no-static-gate] [--formal-oracle]
//!             [--fault-rate R --fault-seed S [--fault-permanent]]
//!             [--store-dir DIR] [--stall-timeout-ms MS]
//!             [--listen ADDR] [--metrics-every N]
//! ```
//!
//! `--store-dir DIR` makes the server durable: compile artifacts persist
//! under `DIR/artifacts` and verified responses are redo-logged to
//! `DIR/responses.wal`, so a restart warm-starts both caches from disk.
//!
//! Model names: `codeqwen`, `deepseek`, `codellama` (base profiles), or
//! `perfect` (a uniform full-skill profile, useful for smoke tests).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Duration;

use haven_eval::FaultPlan;
use haven_lm::model::CodeGenModel;
use haven_lm::profiles;
use haven_serve::wire;
use haven_serve::{ServeConfig, Server};

struct Options {
    model: String,
    temperature: f64,
    config: ServeConfig,
    listen: Option<String>,
    metrics_every: usize,
}

fn usage() -> &'static str {
    "usage: haven-serve [--model codeqwen|deepseek|codellama|perfect] [--temperature T]\n\
     \x20                  [--workers N] [--queue-capacity N] [--deadline-ms MS]\n\
     \x20                  [--cache-capacity N] [--inference-latency-ms MS] [--no-static-gate]\n\
     \x20                  [--formal-oracle]\n\
     \x20                  [--fault-rate R] [--fault-seed S] [--fault-permanent]\n\
     \x20                  [--store-dir DIR] [--stall-timeout-ms MS]\n\
     \x20                  [--listen 127.0.0.1:PORT] [--metrics-every N]\n\
     reads one JSON request {\"id\":..,\"prompt\":..[,\"deadline_ms\":..]} per line,\n\
     writes one JSON reply per line; EOF drains and prints metrics to stderr"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        model: "codeqwen".into(),
        temperature: 0.2,
        config: ServeConfig::default(),
        listen: None,
        metrics_every: 0,
    };
    let mut fault_rate = 0.0f64;
    let mut fault_seed = 0u64;
    let mut fault_permanent = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--model" => opts.model = value("--model")?,
            "--temperature" => {
                opts.temperature = value("--temperature")?
                    .parse()
                    .map_err(|e| format!("--temperature: {e}"))?;
            }
            "--workers" => {
                opts.config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue-capacity" => {
                opts.config.queue_capacity = value("--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("--queue-capacity: {e}"))?;
            }
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
                opts.config.default_deadline = Duration::from_millis(ms);
            }
            "--cache-capacity" => {
                opts.config.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("--cache-capacity: {e}"))?;
            }
            "--inference-latency-ms" => {
                let ms: u64 = value("--inference-latency-ms")?
                    .parse()
                    .map_err(|e| format!("--inference-latency-ms: {e}"))?;
                opts.config.engine.inference_latency = Duration::from_millis(ms);
            }
            "--no-static-gate" => opts.config.engine.static_gate = false,
            "--formal-oracle" => opts.config.engine.formal_oracle = true,
            "--fault-rate" => {
                fault_rate = value("--fault-rate")?
                    .parse()
                    .map_err(|e| format!("--fault-rate: {e}"))?;
            }
            "--fault-seed" => {
                fault_seed = value("--fault-seed")?
                    .parse()
                    .map_err(|e| format!("--fault-seed: {e}"))?;
            }
            "--fault-permanent" => fault_permanent = true,
            "--store-dir" => {
                opts.config.engine.store_dir = Some(value("--store-dir")?.into());
            }
            "--stall-timeout-ms" => {
                let ms: u64 = value("--stall-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--stall-timeout-ms: {e}"))?;
                opts.config.stall_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "--listen" => opts.listen = Some(value("--listen")?),
            "--metrics-every" => {
                opts.metrics_every = value("--metrics-every")?
                    .parse()
                    .map_err(|e| format!("--metrics-every: {e}"))?;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if fault_rate > 0.0 {
        opts.config.engine.fault_plan = Some(if fault_permanent {
            FaultPlan::permanent(fault_seed, fault_rate)
        } else {
            FaultPlan::transient(fault_seed, fault_rate)
        });
    }
    Ok(opts)
}

fn model_for(name: &str, temperature: f64) -> Result<CodeGenModel, String> {
    let profile = match name {
        "codeqwen" => profiles::base_codeqwen(),
        "deepseek" => profiles::base_deepseek(),
        "codellama" => profiles::base_codellama(),
        "perfect" => profiles::ModelProfile::uniform("perfect", 1.0),
        other => return Err(format!("unknown model {other}")),
    };
    Ok(CodeGenModel::new(profile, temperature))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                eprintln!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("haven-serve: {msg}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let model = match model_for(&opts.model, opts.temperature) {
        Ok(m) => m,
        Err(msg) => {
            eprintln!("haven-serve: {msg}");
            return ExitCode::from(2);
        }
    };
    let server = Server::start(model, opts.config.clone());
    match &opts.listen {
        Some(addr) => run_tcp(server, addr),
        None => run_stdin(server, opts.metrics_every),
    }
}

/// JSONL over stdin/stdout. Replies stream in completion order; the `id`
/// field correlates them with requests.
fn run_stdin(mut server: Server, metrics_every: usize) -> ExitCode {
    let stdin = std::io::stdin();
    let (reply_tx, reply_rx) = channel();
    // Printer thread: serializes replies to stdout as they complete.
    let printer = std::thread::spawn(move || {
        let mut out = std::io::stdout().lock();
        let mut printed = 0usize;
        for reply in reply_rx {
            let line = wire::reply_json(&reply);
            if writeln!(out, "{line}").is_err() {
                break; // Downstream hung up; keep draining the channel.
            }
            printed += 1;
            if metrics_every > 0 && printed.is_multiple_of(metrics_every) {
                let _ = out.flush();
            }
        }
        let _ = out.flush();
    });
    let mut bad_lines = 0usize;
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("haven-serve: stdin read error: {e}");
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        match wire::parse_request(&line) {
            Ok(request) => {
                server.submit(request, reply_tx.clone());
            }
            Err(e) => {
                bad_lines += 1;
                eprintln!("haven-serve: bad request line: {e}");
            }
        }
    }
    // EOF: drain everything admitted, then let the printer finish.
    server.shutdown();
    eprintln!("{}", server.metrics_text());
    drop(reply_tx);
    let _ = printer.join();
    if bad_lines > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// JSONL over loopback TCP: one thread per connection, same protocol as
/// stdin mode, plus the literal line `metrics` for a text snapshot.
fn run_tcp(server: Server, addr: &str) -> ExitCode {
    if !addr.starts_with("127.0.0.1:") && !addr.starts_with("[::1]:") {
        eprintln!("haven-serve: --listen only binds loopback (127.0.0.1:PORT)");
        return ExitCode::from(2);
    }
    let listener = match TcpListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("haven-serve: bind {addr}: {e}");
            return ExitCode::from(2);
        }
    };
    // The actual port (addr may say :0), printed for test harnesses.
    match listener.local_addr() {
        Ok(local) => println!("listening on {local}"),
        Err(e) => eprintln!("haven-serve: local_addr: {e}"),
    }
    let server = Arc::new(server);
    let mut connections = Vec::new();
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("haven-serve: accept: {e}");
                continue;
            }
        };
        let server = server.clone();
        connections.push(std::thread::spawn(move || {
            let reader = BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("haven-serve: clone stream: {e}");
                    return;
                }
            });
            let mut writer = stream;
            for line in reader.lines() {
                let Ok(line) = line else { break };
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                if trimmed == "metrics" {
                    if writer
                        .write_all(server.metrics().render_text().as_bytes())
                        .is_err()
                    {
                        break;
                    }
                    continue;
                }
                let reply = match wire::parse_request(trimmed) {
                    Ok(request) => server.serve(request),
                    Err(e) => {
                        let msg = wire::escape(&format!("bad request: {e}"));
                        if writeln!(writer, "{{\"error\":\"{msg}\"}}").is_err() {
                            break;
                        }
                        continue;
                    }
                };
                if writeln!(writer, "{}", wire::reply_json(&reply)).is_err() {
                    break;
                }
            }
        }));
        // Reap finished connection threads so the vec stays bounded.
        connections.retain(|h| !h.is_finished());
    }
    for handle in connections {
        let _ = handle.join();
    }
    ExitCode::SUCCESS
}
