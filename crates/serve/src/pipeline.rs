//! The per-request pipeline: SI-CoT normalization → generation → static
//! lint gate → budgeted co-simulation, under a deadline clock.
//!
//! One [`Engine`] is shared by every worker. An *attempt* is one pass of
//! a request through the pipeline; the worker pool wraps attempts in
//! `catch_unwind` and retries fault-class outcomes, so everything here
//! returns typed results and may freely panic only where a fault was
//! *injected* (the panic-isolation path under test).
//!
//! ## Determinism and the cache boundary
//!
//! The generation stage seeds the model with `gen_id` — the hex of the
//! content key of the *normalized* text — never with the caller's request
//! id. Together with the deterministic model, analyzer and simulator this
//! makes the produced [`ServeResponse`] a pure function of (normalized
//! prompt, engine fingerprint), which is the property the
//! verified-response cache relies on to replay payloads bit-identically.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use haven_engine::{Engine as CompileEngine, EngineFingerprint, EngineOptions, FormalOracle};
use haven_formal::{EquivOptions, EquivVerdict};
use haven_eval::fault::{corrupt_source, FaultKind, ServeFaultKind};
use haven_eval::FaultPlan;
use haven_lm::model::CodeGenModel;
use haven_lm::perception::perceive;
use haven_sicot::SiCot;
use haven_spec::cosim::{cosimulate_batch, CosimOptions, SimBackend, SimBudget, Verdict};
use haven_spec::stimuli::stimuli_for;
use haven_store::Wal;

use crate::cache::ResponseCache;
use crate::metrics::Metrics;
use crate::request::{Rejection, RequestTrace, ServeResponse, ServeVerdict, Stage};

/// Everything that shapes the deterministic response payload, plus the
/// serving knobs that do not (inference latency, fault plan).
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Short-circuit co-simulation when the dataflow analyzer proves the
    /// design defective (mirrors the eval harness's static gate).
    pub static_gate: bool,
    /// Consult the formal equivalence oracle (AIG + SAT, `haven-formal`)
    /// after a candidate passes budgeted co-simulation. A replay-confirmed
    /// counterexample overturns the `Pass` into a functional mismatch —
    /// catching hallucinations the stimulus program happened to miss —
    /// while `Unknown` outcomes leave the cosim verdict standing and are
    /// surfaced as typed telemetry. The flag is folded into the engine
    /// fingerprint, so cached responses never cross the on/off boundary.
    pub formal_oracle: bool,
    /// Resource budget for each candidate co-simulation.
    pub budget: SimBudget,
    /// Execution backend for the candidate design.
    pub backend: SimBackend,
    /// Capacity of the shared compile-artifact cache (`haven-engine`):
    /// repeated generations — common, since the cache key is the
    /// *generated source* and low-temperature models repeat themselves —
    /// skip the parse → elaborate → analyze → bytecode ladder. 0 turns
    /// artifact caching off.
    pub artifact_cache: usize,
    /// Simulated wall-clock latency of the remote CodeGen-LLM inference
    /// call. Workers block on it, so it is what concurrency overlaps;
    /// it is capped at the request's remaining deadline.
    pub inference_latency: Duration,
    /// Fault injection at the generation boundary (tests, chaos drills).
    pub fault_plan: Option<FaultPlan>,
    /// Durable state directory. When set, compile artifacts persist under
    /// `<dir>/artifacts` and verified responses are redo-logged to
    /// `<dir>/responses.wal`, so a restarted server warm-starts both
    /// caches from disk. `None` keeps everything in memory.
    pub store_dir: Option<PathBuf>,
    /// Serve-level fault injection (worker hangs, disk-write failures,
    /// store corruption, slow clients) — exercised by chaos drills; the
    /// generation-boundary `fault_plan` above stays independent.
    pub serve_fault_plan: Option<FaultPlan>,
    /// How long an injected [`ServeFaultKind::WorkerHang`] blocks the
    /// worker. Long enough for the watchdog under test to fire, short
    /// enough that the detached thread drains promptly afterwards.
    pub hang_duration: Duration,
    /// Added latency for an injected [`ServeFaultKind::SlowClient`]
    /// (models a reader draining its reply slowly).
    pub slow_client_delay: Duration,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            static_gate: true,
            formal_oracle: false,
            budget: SimBudget::default(),
            backend: SimBackend::default(),
            artifact_cache: 256,
            inference_latency: Duration::ZERO,
            fault_plan: None,
            store_dir: None,
            serve_fault_plan: None,
            hang_duration: Duration::from_millis(1500),
            slow_client_delay: Duration::from_millis(20),
        }
    }
}

/// Tracks one request's deadline from the moment it was admitted.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineClock {
    admitted: Instant,
    deadline: Duration,
}

impl DeadlineClock {
    /// A clock started at `admitted` with `deadline` to spend.
    pub fn new(admitted: Instant, deadline: Duration) -> DeadlineClock {
        DeadlineClock { admitted, deadline }
    }

    /// Milliseconds since admission.
    pub fn elapsed_ms(&self) -> u64 {
        self.admitted.elapsed().as_millis() as u64
    }

    /// Time left before the deadline, zero once expired.
    pub fn remaining(&self) -> Duration {
        self.deadline.saturating_sub(self.admitted.elapsed())
    }

    /// Errors with a typed rejection if the deadline has expired, naming
    /// the stage that was running (or about to run).
    pub fn check(&self, stage: Stage) -> Result<(), Rejection> {
        if self.admitted.elapsed() >= self.deadline {
            Err(Rejection::DeadlineExceeded {
                stage,
                elapsed_ms: self.elapsed_ms(),
            })
        } else {
            Ok(())
        }
    }
}

/// How one pipeline attempt ended. Fault-class verdicts come back as
/// `Response` too — the worker pool inspects them to drive retries.
#[derive(Debug)]
pub enum AttemptOutcome {
    /// The pipeline produced a payload (possibly fault-class).
    Response(Arc<ServeResponse>),
    /// The deadline expired mid-pipeline.
    Deadline(Rejection),
}

/// The result of one attempt, with per-stage timings and cache telemetry.
#[derive(Debug)]
pub struct Attempt {
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
    /// Whether the payload was replayed from the verified-response cache.
    pub cache_hit: bool,
    /// SI-CoT steps fired while normalizing (always runs, even on hits).
    pub sicot_steps: usize,
    /// Stage timings for this attempt (queue/total filled by the worker).
    pub trace: RequestTrace,
    /// The durable store failed to accept this attempt's redo record
    /// (injected or real). The response itself is unaffected — the worker
    /// feeds this into server health to drive degraded mode.
    pub store_write_failed: bool,
}

/// The shared request pipeline: SI-CoT refiner, serving model, static
/// gate, co-simulation oracle, verified-response cache.
pub struct Engine {
    sicot: SiCot,
    model: CodeGenModel,
    /// The shared compile engine: artifact cache + session factory.
    compiler: CompileEngine,
    /// Everything besides the prompt that changes the payload, baked into
    /// the cache key as a structured [`EngineFingerprint`]: model name
    /// and temperature, simulation backend and budget, analyzer rule-set
    /// version, static-gate switch.
    fingerprint: EngineFingerprint,
    /// The formal equivalence oracle (present only when configured): its
    /// verdict cache rides the same artifact fingerprints as the compile
    /// ladder, so repeated generations replay equivalence proofs too.
    formal: Option<FormalOracle>,
    config: EngineConfig,
    cache: Arc<ResponseCache>,
    metrics: Arc<Metrics>,
    /// Redo log of verified responses (`None` when serving in-memory).
    /// Installed only *after* startup replay, so replay can never append
    /// the records it is reading back.
    wal: Mutex<Option<Wal>>,
    /// Cache keys with a pipeline attempt currently computing them.
    /// Duplicate requests park on [`Engine::inflight_cv`] and replay the
    /// leader's cache fill instead of recomputing (single-flight).
    inflight: Mutex<HashSet<u64>>,
    /// Wakes coalesced waiters when a leader finishes (either way).
    inflight_cv: Condvar,
}

/// Single-flight leadership over one cache key. Dropping the guard —
/// normal return, deadline rejection, or unwind from an injected panic —
/// releases the key and wakes every coalesced waiter so they can re-check
/// the cache (and, if the leader produced nothing cacheable, race to
/// become the new leader).
struct FlightGuard<'a> {
    key: u64,
    inflight: &'a Mutex<HashSet<u64>>,
    cv: &'a Condvar,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        let mut set = match self.inflight.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        set.remove(&self.key);
        drop(set);
        self.cv.notify_all();
    }
}

/// Whether an attempt serves a live request or replays a WAL record at
/// startup. Replay skips fault draws, the modeled inference latency, and
/// cache-traffic metrics: it must reconstruct yesterday's payloads, not
/// re-roll today's dice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttemptMode {
    Live,
    Replay,
}

impl Engine {
    /// Builds the engine. The SI-CoT refiner wraps the serving model
    /// itself, as in the paper (the CoT prompting model and the CodeGen
    /// model are the same pre-trained LLM).
    pub fn new(
        model: CodeGenModel,
        config: EngineConfig,
        cache: Arc<ResponseCache>,
        metrics: Arc<Metrics>,
    ) -> Engine {
        let options = EngineOptions {
            backend: config.backend,
            budget: config.budget,
            cache_capacity: config.artifact_cache,
            ..EngineOptions::default()
        };
        // Durable mode: compile artifacts persist under <dir>/artifacts.
        // Persistence is an optimization, so an unusable directory
        // degrades to in-memory serving rather than refusing to start.
        let compiler = match &config.store_dir {
            Some(dir) => CompileEngine::open_durable(options, dir.join("artifacts"))
                .unwrap_or_else(|_| CompileEngine::new(options)),
            None => CompileEngine::new(options),
        };
        let fingerprint = compiler
            .fingerprint()
            .with_static_gate(config.static_gate)
            .with_formal_oracle(config.formal_oracle)
            .with_model(&model.profile.name, model.temperature);
        let formal = config
            .formal_oracle
            .then(|| FormalOracle::new(EquivOptions::default()));
        let engine = Engine {
            sicot: SiCot::new(model.clone()),
            model,
            compiler,
            fingerprint,
            formal,
            config,
            cache,
            metrics,
            wal: Mutex::new(None),
            inflight: Mutex::new(HashSet::new()),
            inflight_cv: Condvar::new(),
        };
        if let Some(dir) = engine.config.store_dir.clone() {
            engine.warm_start(&dir);
        }
        engine
    }

    /// Opens the response WAL and replays every committed record whose
    /// fingerprint matches the current configuration, refilling the
    /// verified-response cache by re-running each prompt through a
    /// fault-free pipeline attempt. The WAL handle is installed only once
    /// replay is done.
    fn warm_start(&self, dir: &std::path::Path) {
        let Ok((wal, replay)) = Wal::open(dir.join("responses.wal")) else {
            return;
        };
        let fp_key = self.fingerprint.key().to_le_bytes();
        let mut seen = std::collections::HashSet::new();
        let clock = DeadlineClock::new(Instant::now(), Duration::from_secs(3600));
        for record in &replay.records {
            // Record layout: fingerprint key (u64 LE) ++ raw prompt bytes.
            if record.len() <= 8 || record[..8] != fp_key {
                continue; // Stale configuration: recompute on demand.
            }
            let Ok(prompt) = std::str::from_utf8(&record[8..]) else {
                continue;
            };
            if !seen.insert(haven_hash::content_key(&[prompt])) {
                continue;
            }
            let attempt = self.attempt_inner(prompt, &clock, 0, AttemptMode::Replay);
            if matches!(attempt.outcome, AttemptOutcome::Response(_)) {
                Metrics::inc(&self.metrics.wal_replayed);
            }
        }
        *self.wal.lock().expect("wal lock poisoned") = Some(wal);
    }

    /// The structured fingerprint of this engine's serving configuration
    /// — the second half of every response-cache key.
    pub fn fingerprint(&self) -> &EngineFingerprint {
        &self.fingerprint
    }

    /// Compile-artifact cache telemetry for this engine.
    pub fn artifact_stats(&self) -> haven_engine::CacheStats {
        self.compiler.stats()
    }

    /// Bit-parallel simulation telemetry (batched sweeps, lanes, scalar
    /// fallbacks) for this engine.
    pub fn batch_stats(&self) -> haven_engine::BatchStats {
        self.compiler.batch_stats()
    }

    /// Runs one pipeline attempt under `clock`. `attempt` is the retry
    /// index (0 = first try); it selects the injected fault (if any) and
    /// gates cache telemetry so retries don't double-count.
    ///
    /// # Panics
    ///
    /// Panics when the fault plan schedules [`FaultKind::WorkerPanic`]
    /// for this attempt — the worker pool's `catch_unwind` is the
    /// production recovery path and is exercised for real.
    pub fn run_attempt(&self, prompt: &str, clock: &DeadlineClock, attempt: usize) -> Attempt {
        self.attempt_inner(prompt, clock, attempt, AttemptMode::Live)
    }

    /// Cache-only lookup for degraded mode: normalizes the prompt and
    /// consults the verified-response cache without generating, touching
    /// the store, or bumping cache-traffic metrics. Returns the payload
    /// (if cached) and the SI-CoT step count for the reply envelope.
    pub fn lookup_cached(&self, prompt: &str) -> (Option<Arc<ServeResponse>>, usize) {
        let raw_id = haven_hash::hex16(haven_hash::content_key(&[prompt]));
        let refined = self.sicot.refine(prompt, &raw_id);
        let key = ResponseCache::key(&refined.text, &self.fingerprint);
        (self.cache.get(key), refined.steps.len())
    }

    fn attempt_inner(
        &self,
        prompt: &str,
        clock: &DeadlineClock,
        attempt: usize,
        mode: AttemptMode,
    ) -> Attempt {
        let mut trace = RequestTrace::default();

        // --- Normalize: SI-CoT rewriting of symbolic modality blocks ---
        if let Err(r) = clock.check(Stage::Normalize) {
            return deadline(r, 0, trace);
        }
        let t = Instant::now();
        // Normalization is seeded by the *raw* prompt's content key, so
        // its CoT interpretation is stable for identical raw text but
        // never leaks the caller's request id into the payload.
        let raw_id = haven_hash::hex16(haven_hash::content_key(&[prompt]));
        let refined = self.sicot.refine(prompt, &raw_id);
        trace.normalize_us = t.elapsed().as_micros() as u64;
        let sicot_steps = refined.steps.len();

        // Everything downstream depends only on the normalized text.
        let gen_key = haven_hash::content_key(&[&refined.text]);
        let gen_id = haven_hash::hex16(gen_key);
        let (fault, serve_fault) = if mode == AttemptMode::Live {
            (
                self.config
                    .fault_plan
                    .as_ref()
                    .and_then(|p| p.fault_at(&gen_id, self.model.temperature, 0, attempt)),
                self.config
                    .serve_fault_plan
                    .as_ref()
                    .and_then(|p| p.serve_fault_at(&gen_id, attempt)),
            )
        } else {
            // Replay reconstructs committed payloads: no dice.
            (None, None)
        };
        if fault == Some(FaultKind::WorkerPanic) {
            panic!("injected worker panic (gen {gen_id}, attempt {attempt})");
        }
        if serve_fault == Some(ServeFaultKind::WorkerHang) {
            // The worker thread wedges here — the watchdog's job to notice.
            // It eventually wakes and finishes the attempt, then loses the
            // delivery race to the watchdog's typed failure.
            std::thread::sleep(self.config.hang_duration);
        }

        // --- Cache lookup (bypassed when a fault is injected: the fault
        // must reach the pipeline, and its outcome must never be stored).
        let cache_key = ResponseCache::key(&refined.text, &self.fingerprint);
        if fault.is_none() {
            if let Some(hit) = self.cache.get(cache_key) {
                if attempt == 0 && mode == AttemptMode::Live {
                    Metrics::inc(&self.metrics.cache_hits);
                }
                return Attempt {
                    outcome: AttemptOutcome::Response(hit),
                    cache_hit: true,
                    sicot_steps,
                    trace,
                    store_write_failed: false,
                };
            }
            if attempt == 0 && mode == AttemptMode::Live {
                Metrics::inc(&self.metrics.cache_misses);
            }
        }

        // --- Coalesce: if another worker is already computing this exact
        // payload (same normalized prompt, same fingerprint), park on its
        // result instead of duplicating generate → lint → simulate. The
        // wait is deadline-bounded; on each wake the cache is re-checked
        // and, if the leader produced nothing replayable, the waiters
        // race to take over leadership. Faulted attempts bypass this the
        // same way they bypass the cache: sabotage must reach the
        // pipeline and its outcome must never be shared.
        let mut _flight: Option<FlightGuard<'_>> = None;
        if fault.is_none() && mode == AttemptMode::Live {
            loop {
                let mut set = match self.inflight.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                if set.insert(cache_key) {
                    drop(set);
                    _flight = Some(FlightGuard {
                        key: cache_key,
                        inflight: &self.inflight,
                        cv: &self.inflight_cv,
                    });
                    break;
                }
                if let Err(r) = clock.check(Stage::Generate) {
                    return deadline(r, sicot_steps, trace);
                }
                // Bounded nap: wake on the leader's notify, or shortly
                // anyway in case the notify raced past before we parked.
                let wait = clock.remaining().min(Duration::from_millis(25));
                let parked = self
                    .inflight_cv
                    .wait_timeout(set, wait)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                drop(parked);
                if let Some(hit) = self.cache.get(cache_key) {
                    Metrics::inc(&self.metrics.coalesced);
                    return Attempt {
                        outcome: AttemptOutcome::Response(hit),
                        cache_hit: true,
                        sicot_steps,
                        trace,
                        store_write_failed: false,
                    };
                }
            }
        }

        // --- Generate: the (simulated) remote CodeGen-LLM call ---------
        if let Err(r) = clock.check(Stage::Generate) {
            return deadline(r, sicot_steps, trace);
        }
        let t = Instant::now();
        if !self.config.inference_latency.is_zero() && mode == AttemptMode::Live {
            // Block for the modeled inference latency, but never past the
            // deadline: a too-slow model call times out *here*, at the
            // generate stage, like a real RPC timeout would. Replay skips
            // it — warm restart must not re-pay yesterday's inference.
            std::thread::sleep(self.config.inference_latency.min(clock.remaining()));
        }
        let mut source = self.model.generate(&refined.text, &gen_id, 0);
        trace.generate_us = t.elapsed().as_micros() as u64;
        if let Err(r) = clock.check(Stage::Generate) {
            return deadline(r, sicot_steps, trace);
        }
        if fault == Some(FaultKind::SourceCorruption) {
            source = corrupt_source(&source);
        }
        // Harness boundary sanity check (same contract as the eval
        // harness): damage on the wire is an infrastructure fault, not a
        // property of the prompt.
        if source.is_empty() || source.contains('\0') {
            let detail = if source.is_empty() {
                "model returned empty source".to_string()
            } else {
                "model returned source with NUL bytes".to_string()
            };
            return self.respond(
                ServeResponse {
                    code: String::new(),
                    verdict: ServeVerdict::Checked(Verdict::HarnessFault(detail)),
                    findings: vec![],
                    gated: false,
                },
                cache_key,
                fault,
                serve_fault,
                prompt,
                mode,
                sicot_steps,
                trace,
            );
        }

        // --- Lint: one engine prepare climbs the whole artifact ladder
        // (parse → elaborate → analyze → bytecode), answering from the
        // shared artifact cache for repeated generations. ---------------
        if let Err(r) = clock.check(Stage::Lint) {
            return deadline(r, sicot_steps, trace);
        }
        let t = Instant::now();
        let artifact = match self.compiler.prepare(&source) {
            Ok(a) => a,
            Err(e) => {
                trace.lint_us = t.elapsed().as_micros() as u64;
                return self.respond(
                    ServeResponse {
                        code: source,
                        verdict: ServeVerdict::Checked(Verdict::SyntaxError(e.to_string())),
                        findings: vec![],
                        gated: false,
                    },
                    cache_key,
                    fault,
                    serve_fault,
                    prompt,
                    mode,
                    sicot_steps,
                    trace,
                );
            }
        };
        let report = artifact.report.clone();
        trace.lint_us = t.elapsed().as_micros() as u64;
        if self.config.static_gate && report.has_errors() {
            // Same short-circuit (and same detail string) as the eval
            // harness: simulating a provably defective design could only
            // confirm the failure.
            return self.respond(
                ServeResponse {
                    code: source,
                    verdict: ServeVerdict::Checked(Verdict::FunctionalMismatch {
                        at_check: 0,
                        detail: "skipped by static gate: analyzer proved the design defective"
                            .into(),
                    }),
                    findings: report.findings,
                    gated: true,
                },
                cache_key,
                fault,
                serve_fault,
                prompt,
                mode,
                sicot_steps,
                trace,
            );
        }

        // --- Simulate: budgeted co-simulation against the golden model -
        if let Err(r) = clock.check(Stage::Simulate) {
            return deadline(r, sicot_steps, trace);
        }
        let t = Instant::now();
        let verdict = match perceive(&refined.text) {
            Err(e) => ServeVerdict::Unchecked {
                reason: e.to_string(),
            },
            Ok(perception) => {
                let stimuli = stimuli_for(&perception.spec, gen_key);
                let options = CosimOptions {
                    mid_tick_checks: true,
                    // An injected stall starves the simulator through the
                    // real budget machinery — the recovery path under
                    // test is the production one.
                    budget: if fault == Some(FaultKind::SimStall) {
                        SimBudget::starved()
                    } else {
                        self.config.budget
                    },
                    backend: self.config.backend,
                };
                // Bit-parallel when the program and artifact qualify
                // (scalar fallback tallied on the engine) — the verdict
                // is bit-identical either way.
                let mut verdict = cosimulate_batch(
                    &perception.spec,
                    &self.compiler,
                    &artifact,
                    &stimuli,
                    &options,
                )
                .verdict;
                // --- Formal oracle: only a cosim Pass is escalated; a
                // replay-confirmed counterexample demotes it (the stimulus
                // program missed the bug), Unknown leaves it standing.
                // Deterministic, so replay reconstructs the same verdict;
                // only the telemetry is live-gated.
                if let (Verdict::Pass, Some(oracle)) = (&verdict, self.formal.as_ref()) {
                    let live = mode == AttemptMode::Live;
                    if live {
                        Metrics::inc(&self.metrics.formal_checked);
                    }
                    let outcome = haven_spec::formal::formal_check(
                        &self.compiler,
                        oracle,
                        &perception.spec,
                        &source,
                    );
                    match outcome.as_ref().map(|o| &o.report.verdict) {
                        Some(EquivVerdict::Counterexample(trace)) => {
                            if live {
                                Metrics::inc(&self.metrics.formal_refuted);
                            }
                            verdict = Verdict::FunctionalMismatch {
                                at_check: trace.mismatch_step,
                                detail: format!(
                                    "formal counterexample on `{}` (cosim stimuli missed it)",
                                    trace.mismatch_output
                                ),
                            };
                        }
                        Some(EquivVerdict::Equivalent) => {
                            if live {
                                Metrics::inc(&self.metrics.formal_equivalent);
                            }
                        }
                        // Undecided (or unblastable): typed telemetry, the
                        // cosim verdict stands.
                        Some(EquivVerdict::Unknown(_)) | None => {
                            if live {
                                Metrics::inc(&self.metrics.formal_unknown);
                            }
                        }
                    }
                }
                ServeVerdict::Checked(verdict)
            }
        };
        trace.simulate_us = t.elapsed().as_micros() as u64;
        self.respond(
            ServeResponse {
                code: source,
                verdict,
                findings: report.findings,
                gated: false,
            },
            cache_key,
            fault,
            serve_fault,
            prompt,
            mode,
            sicot_steps,
            trace,
        )
    }

    /// Wraps a freshly computed payload, filling the cache when the
    /// attempt was fault-free and the payload is cacheable, and appending
    /// one redo record to the response WAL per fresh cache fill.
    #[allow(clippy::too_many_arguments)]
    fn respond(
        &self,
        response: ServeResponse,
        cache_key: u64,
        fault: Option<FaultKind>,
        serve_fault: Option<ServeFaultKind>,
        prompt: &str,
        mode: AttemptMode,
        sicot_steps: usize,
        trace: RequestTrace,
    ) -> Attempt {
        let response = Arc::new(response);
        // An attempt with an injected fault never writes the cache: its
        // payload was produced under sabotage (corrupted source, starved
        // budget) and must not be replayed for honest requests.
        let mut store_write_failed = false;
        if fault.is_none() {
            let inserted = self.cache.insert(cache_key, response.clone());
            // One WAL record per *fresh* cacheable fill (insert returning
            // false means non-cacheable, capacity 0, or already present —
            // none of which need a redo record). Replay never appends:
            // the WAL handle is not even installed until replay finishes.
            if inserted && mode == AttemptMode::Live {
                store_write_failed = self.persist(prompt, serve_fault);
            }
        }
        if mode == AttemptMode::Live && serve_fault == Some(ServeFaultKind::SlowClient) {
            // The reply sits in the worker while the modeled client
            // drains slowly; payload and accounting are unaffected.
            std::thread::sleep(self.config.slow_client_delay);
        }
        Attempt {
            outcome: AttemptOutcome::Response(response),
            cache_hit: false,
            sicot_steps,
            trace,
            store_write_failed,
        }
    }

    /// Appends one redo record (fingerprint key ++ raw prompt) to the
    /// response WAL, honoring injected store faults. Returns whether the
    /// write failed — the health signal that drives degraded mode. A
    /// missing WAL (in-memory serving) is not a failure.
    fn persist(&self, prompt: &str, serve_fault: Option<ServeFaultKind>) -> bool {
        let mut guard = self.wal.lock().expect("wal lock poisoned");
        let Some(wal) = guard.as_mut() else {
            return false;
        };
        let mut record = Vec::with_capacity(8 + prompt.len());
        record.extend_from_slice(&self.fingerprint.key().to_le_bytes());
        record.extend_from_slice(prompt.as_bytes());
        match serve_fault {
            Some(ServeFaultKind::DiskWriteFail) => {
                // The disk refused the write: the response still goes out,
                // the record is simply not durable.
                Metrics::inc(&self.metrics.store_write_failures);
                true
            }
            Some(ServeFaultKind::StoreCorruption) => {
                // Silent media corruption: the append "succeeds" and only
                // the next restart's replay can detect and quarantine it.
                let _ = wal.append_corrupt(&record);
                Metrics::inc(&self.metrics.store_corruptions);
                false
            }
            _ => match wal.append(&record) {
                Ok(()) => {
                    Metrics::inc(&self.metrics.responses_persisted);
                    false
                }
                Err(_) => {
                    Metrics::inc(&self.metrics.store_write_failures);
                    true
                }
            },
        }
    }
}

fn deadline(rejection: Rejection, sicot_steps: usize, trace: RequestTrace) -> Attempt {
    Attempt {
        outcome: AttemptOutcome::Deadline(rejection),
        cache_hit: false,
        sicot_steps,
        trace,
        store_write_failed: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haven_lm::profiles;

    fn engine(config: EngineConfig) -> Engine {
        engine_with(config, Arc::new(ResponseCache::new(64)))
    }

    fn engine_with(config: EngineConfig, cache: Arc<ResponseCache>) -> Engine {
        let model = CodeGenModel::new(profiles::ModelProfile::uniform("perfect", 1.0), 0.2);
        Engine::new(model, config, cache, Arc::new(Metrics::default()))
    }

    fn far_clock() -> DeadlineClock {
        DeadlineClock::new(Instant::now(), Duration::from_secs(60))
    }

    const AND_PROMPT: &str = "Implement the truth table below\n\
        a b out\n0 0 0\n0 1 0\n1 0 0\n1 1 1\n\
        The module header is: `module and_gate (input a, input b, output out);`";

    #[test]
    fn perfect_model_serves_a_verified_pass() {
        let e = engine(EngineConfig::default());
        let a = e.run_attempt(AND_PROMPT, &far_clock(), 0);
        match a.outcome {
            AttemptOutcome::Response(r) => {
                assert!(r.verdict.verified_pass(), "{:?}", r.verdict);
                assert!(r.code.contains("module and_gate"));
                assert!(!r.gated);
            }
            AttemptOutcome::Deadline(r) => panic!("unexpected deadline: {r}"),
        }
        assert!(!a.cache_hit);
        assert!(a.sicot_steps > 0, "truth table should trigger SI-CoT");
    }

    #[test]
    fn second_identical_request_hits_the_cache_bit_identically() {
        let e = engine(EngineConfig::default());
        let cold = e.run_attempt(AND_PROMPT, &far_clock(), 0);
        let warm = e.run_attempt(AND_PROMPT, &far_clock(), 0);
        let (AttemptOutcome::Response(a), AttemptOutcome::Response(b)) =
            (cold.outcome, warm.outcome)
        else {
            panic!("both attempts must produce responses");
        };
        assert!(!cold.cache_hit);
        assert!(warm.cache_hit);
        assert_eq!(a.as_ref(), b.as_ref(), "cache must replay bit-identically");
        // Envelope data still computed per request on hits.
        assert_eq!(cold.sicot_steps, warm.sicot_steps);
    }

    #[test]
    fn concurrent_duplicates_coalesce_onto_one_compute() {
        let metrics = Arc::new(Metrics::default());
        let model = CodeGenModel::new(profiles::ModelProfile::uniform("perfect", 1.0), 0.2);
        // A slow modeled inference call keeps the leader in flight long
        // enough for the other three workers to park on its result.
        let e = Arc::new(Engine::new(
            model,
            EngineConfig {
                inference_latency: Duration::from_millis(150),
                ..EngineConfig::default()
            },
            Arc::new(ResponseCache::new(64)),
            metrics.clone(),
        ));
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let e = e.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    let a = e.run_attempt(AND_PROMPT, &far_clock(), 0);
                    match a.outcome {
                        AttemptOutcome::Response(r) => r,
                        AttemptOutcome::Deadline(r) => panic!("unexpected deadline: {r}"),
                    }
                })
            })
            .collect();
        let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &responses {
            assert_eq!(
                r.as_ref(),
                responses[0].as_ref(),
                "coalesced replies must be bit-identical"
            );
        }
        let s = metrics.snapshot();
        // Exactly one request computed; the rest were served from its
        // fill — either by parking on it (coalesced) or, had a thread
        // been scheduled late, by an ordinary cache hit.
        assert_eq!(s.coalesced + s.cache_hits, 3, "{s:?}");
        assert!(s.coalesced > 0, "{s:?}");
    }

    #[test]
    fn formal_oracle_confirms_a_perfect_pass_and_counts_it() {
        let metrics = Arc::new(Metrics::default());
        let model = CodeGenModel::new(profiles::ModelProfile::uniform("perfect", 1.0), 0.2);
        let e = Engine::new(
            model,
            EngineConfig {
                formal_oracle: true,
                ..EngineConfig::default()
            },
            Arc::new(ResponseCache::new(64)),
            metrics.clone(),
        );
        let a = e.run_attempt(AND_PROMPT, &far_clock(), 0);
        match a.outcome {
            AttemptOutcome::Response(r) => {
                assert!(r.verdict.verified_pass(), "{:?}", r.verdict);
            }
            AttemptOutcome::Deadline(r) => panic!("unexpected deadline: {r}"),
        }
        let s = metrics.snapshot();
        assert_eq!(s.formal_checked, 1, "{s:?}");
        assert_eq!(s.formal_equivalent, 1, "{s:?}");
        assert_eq!((s.formal_refuted, s.formal_unknown), (0, 0), "{s:?}");
        // A cache replay of the same prompt must not re-check.
        let warm = e.run_attempt(AND_PROMPT, &far_clock(), 0);
        assert!(warm.cache_hit);
        assert_eq!(metrics.snapshot().formal_checked, 1);
    }

    #[test]
    fn formal_oracle_flag_partitions_the_response_cache() {
        // Same prompt, same shared cache: the fingerprint folds the
        // formal-oracle bit, so an oracle-on engine must not replay a
        // payload verified without the oracle (and vice versa).
        let cache = Arc::new(ResponseCache::new(64));
        let off = engine_with(EngineConfig::default(), cache.clone());
        let on = engine_with(
            EngineConfig {
                formal_oracle: true,
                ..EngineConfig::default()
            },
            cache,
        );
        assert_ne!(off.fingerprint().key(), on.fingerprint().key());
        let cold = off.run_attempt(AND_PROMPT, &far_clock(), 0);
        assert!(!cold.cache_hit);
        let cross = on.run_attempt(AND_PROMPT, &far_clock(), 0);
        assert!(
            !cross.cache_hit,
            "oracle-on engine must not replay an oracle-off payload"
        );
    }

    #[test]
    fn expired_deadline_rejects_before_generation() {
        let e = engine(EngineConfig::default());
        let clock = DeadlineClock::new(Instant::now() - Duration::from_secs(1), Duration::ZERO);
        let a = e.run_attempt(AND_PROMPT, &clock, 0);
        match a.outcome {
            AttemptOutcome::Deadline(Rejection::DeadlineExceeded { stage, .. }) => {
                assert_eq!(stage, Stage::Normalize);
            }
            other => panic!("expected deadline rejection, got {other:?}"),
        }
    }

    #[test]
    fn inference_latency_is_capped_by_the_remaining_deadline() {
        let e = engine(EngineConfig {
            inference_latency: Duration::from_secs(30),
            ..EngineConfig::default()
        });
        let clock = DeadlineClock::new(Instant::now(), Duration::from_millis(30));
        let started = Instant::now();
        let a = e.run_attempt(AND_PROMPT, &clock, 0);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "sleep must be capped at the deadline, not the full latency"
        );
        match a.outcome {
            AttemptOutcome::Deadline(Rejection::DeadlineExceeded { stage, .. }) => {
                assert_eq!(stage, Stage::Generate);
            }
            other => panic!("expected generate-stage deadline, got {other:?}"),
        }
    }

    #[test]
    fn injected_panic_escapes_for_the_worker_to_catch() {
        let e = engine(EngineConfig {
            fault_plan: Some(FaultPlan::permanent(7, 1.0)),
            ..EngineConfig::default()
        });
        // rate 1.0 schedules a fault every attempt; find a prompt whose
        // scheduled fault is the panic (the kind is content-addressed).
        let mut panicked = false;
        for i in 0..32 {
            let prompt = format!("{AND_PROMPT}\n// v{i}");
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                e.run_attempt(&prompt, &far_clock(), 0)
            }));
            if r.is_err() {
                panicked = true;
                break;
            }
        }
        assert!(panicked, "some prompt must draw the WorkerPanic fault");
    }

    #[test]
    fn faulted_attempts_bypass_the_cache_in_both_directions() {
        let cache = Arc::new(ResponseCache::new(64));
        // Permanent faults at rate 1.0: every attempt is sabotaged.
        let faulty = engine_with(
            EngineConfig {
                fault_plan: Some(FaultPlan::permanent(11, 1.0)),
                ..EngineConfig::default()
            },
            cache.clone(),
        );
        for i in 0..16 {
            let prompt = format!("{AND_PROMPT}\n// f{i}");
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                faulty.run_attempt(&prompt, &far_clock(), 0)
            }));
        }
        assert!(
            cache.is_empty(),
            "attempts running under an injected fault must never fill the cache"
        );
    }
}
