//! End-to-end tests of the serving layer: admission accounting under
//! faults and deadlines, cache soundness, and worker-count invariance.

use std::sync::mpsc::channel;
use std::time::Duration;

use haven_eval::{FaultPlan, RetryPolicy};
use haven_lm::model::CodeGenModel;
use haven_lm::profiles;
use haven_serve::{
    EngineConfig, Rejection, ServeConfig, ServeOutcome, ServeReply, ServeRequest, ServeResponse,
    Server,
};

fn model(name: &str) -> CodeGenModel {
    CodeGenModel::new(profiles::ModelProfile::uniform(name, 1.0), 0.2)
}

fn flaky_model() -> CodeGenModel {
    // Mid-skill model: produces a mix of passing, mismatching and
    // syntax-broken designs across prompts — a realistic serving mix.
    CodeGenModel::new(profiles::ModelProfile::uniform("flaky", 0.55), 0.5)
}

/// A small mix of prompts: canonical benchmark tasks (distinct intents,
/// so distinct cache keys) plus one the perception layer cannot
/// understand (→ Unchecked).
fn prompt_mix() -> Vec<String> {
    let mut prompts: Vec<String> = haven_eval::suites::verilog_eval_machine(1)
        .into_iter()
        .take(8)
        .map(|t| t.prompt)
        .collect();
    assert_eq!(prompts.len(), 8);
    prompts.push("Ponder the sound of one hand clapping.".to_string());
    prompts
}

fn drain_all(server: &Server, requests: Vec<ServeRequest>) -> Vec<ServeReply> {
    let (tx, rx) = channel();
    for request in requests {
        server.submit(request, tx.clone());
    }
    drop(tx);
    rx.into_iter().collect()
}

fn payload(reply: &ServeReply) -> Option<&ServeResponse> {
    match &reply.outcome {
        ServeOutcome::Completed(r) => Some(r),
        _ => None,
    }
}

#[test]
fn every_admitted_request_is_accounted_under_fault_injection() {
    let mut server = Server::start(
        flaky_model(),
        ServeConfig {
            workers: 4,
            // High transient fault rate: panics, stalls and corruption
            // all fire, and retries must clear the transient ones.
            engine: EngineConfig {
                fault_plan: Some(FaultPlan::transient(42, 0.5)),
                ..EngineConfig::default()
            },
            retry: RetryPolicy {
                max_attempts: 3,
                backoff_base_ms: 0,
            },
            ..ServeConfig::default()
        },
    );
    let requests: Vec<ServeRequest> = prompt_mix()
        .into_iter()
        .cycle()
        .take(40)
        .enumerate()
        .map(|(i, p)| ServeRequest::new(format!("q{i}"), format!("{p} // variant {}", i % 20)))
        .collect();
    let replies = drain_all(&server, requests);
    assert_eq!(replies.len(), 40, "every request gets exactly one reply");
    server.shutdown();

    let m = server.metrics();
    assert_eq!(m.submitted, 40);
    assert_eq!(m.admitted, 40);
    assert!(
        m.accounted(),
        "admitted ({}) != completed ({}) + rejected ({}) + failed ({})",
        m.admitted,
        m.completed,
        m.rejected,
        m.failed
    );
    // Transient faults at rate 0.5 across 40 requests: retries certainly
    // fired, and with 3 attempts vs 2 persist-attempts they all cleared.
    assert!(m.retries > 0, "transient faults must burn retries");
    assert_eq!(m.failed, 0, "transient faults must clear within retries");
}

#[test]
fn permanent_faults_surface_as_typed_failures_not_panics() {
    let mut server = Server::start(
        model("perfect"),
        ServeConfig {
            workers: 2,
            engine: EngineConfig {
                fault_plan: Some(FaultPlan::permanent(7, 1.0)),
                ..EngineConfig::default()
            },
            retry: RetryPolicy {
                max_attempts: 2,
                backoff_base_ms: 0,
            },
            ..ServeConfig::default()
        },
    );
    let requests: Vec<ServeRequest> = prompt_mix()
        .into_iter()
        .enumerate()
        .map(|(i, p)| ServeRequest::new(format!("f{i}"), p))
        .collect();
    let n = requests.len() as u64;
    let replies = drain_all(&server, requests);
    assert_eq!(replies.len() as u64, n);
    server.shutdown();

    let m = server.metrics();
    assert!(m.accounted(), "accounting must survive permanent faults");
    // Rate 1.0 faults every attempt; WorkerPanic / SourceCorruption end
    // as Failed, SimStall persists into a ResourceExhausted completion —
    // except on unverifiable prompts, where the starved budget is never
    // reached and the response stays Unchecked.
    for reply in &replies {
        match &reply.outcome {
            ServeOutcome::Failed { detail } => assert!(!detail.is_empty()),
            ServeOutcome::Completed(r) => assert!(
                !r.cacheable() || matches!(r.verdict, haven_serve::ServeVerdict::Unchecked { .. }),
                "a permanently faulted completion must be fault-class: {:?}",
                r.verdict
            ),
            ServeOutcome::Rejected(r) => panic!("unexpected rejection: {r}"),
        }
    }
    assert_eq!(
        server.cache_len(),
        0,
        "no faulted outcome may enter the cache"
    );
}

#[test]
fn cache_hit_is_bit_identical_to_the_cold_response() {
    let mut server = Server::start(flaky_model(), ServeConfig::default());
    let prompts = prompt_mix();
    let cold: Vec<ServeReply> = prompts
        .iter()
        .enumerate()
        .map(|(i, p)| server.serve(ServeRequest::new(format!("cold{i}"), p.clone())))
        .collect();
    let warm: Vec<ServeReply> = prompts
        .iter()
        .enumerate()
        .map(|(i, p)| server.serve(ServeRequest::new(format!("warm{i}"), p.clone())))
        .collect();
    for (c, w) in cold.iter().zip(&warm) {
        let (cp, wp) = (payload(c).unwrap(), payload(w).unwrap());
        assert_eq!(cp, wp, "cached payload must replay bit-identically");
        assert!(!c.cache_hit);
        assert!(w.cache_hit, "identical prompt must hit the cache");
        // Envelope stays per-request: ids differ, payloads don't.
        assert_ne!(c.id, w.id);
    }
    server.shutdown();
    let m = server.metrics();
    assert_eq!(m.cache_hits, warm.len() as u64);
    assert_eq!(m.cache_misses, cold.len() as u64);
    assert!(m.accounted());
}

#[test]
fn deadline_rejected_requests_are_typed_and_never_cached() {
    let mut server = Server::start(
        model("perfect"),
        ServeConfig {
            workers: 1,
            // The modeled inference call takes far longer than the
            // deadline, so every request times out at the generate stage.
            engine: EngineConfig {
                inference_latency: Duration::from_secs(5),
                ..EngineConfig::default()
            },
            default_deadline: Duration::from_millis(30),
            ..ServeConfig::default()
        },
    );
    let reply = server.serve(ServeRequest::new("d0", prompt_mix().remove(0)));
    match &reply.outcome {
        ServeOutcome::Rejected(Rejection::DeadlineExceeded { elapsed_ms, .. }) => {
            assert!(*elapsed_ms >= 30, "deadline fired early: {elapsed_ms} ms");
        }
        other => panic!("expected deadline rejection, got {other:?}"),
    }
    assert_eq!(
        server.cache_len(),
        0,
        "deadline-rejected requests must never be cached"
    );
    server.shutdown();
    let m = server.metrics();
    assert_eq!(m.rejected, 1);
    assert!(m.accounted());
    assert!(
        m.deadline_by_stage.iter().any(|(_, n)| *n > 0),
        "the rejection must be attributed to a stage"
    );
}

#[test]
fn full_queue_rejects_with_backpressure() {
    let mut server = Server::start(
        model("perfect"),
        ServeConfig {
            workers: 1,
            queue_capacity: 2,
            // Slow the pipeline down so the queue actually fills.
            engine: EngineConfig {
                inference_latency: Duration::from_millis(200),
                ..EngineConfig::default()
            },
            default_deadline: Duration::from_secs(30),
            ..ServeConfig::default()
        },
    );
    let prompts = prompt_mix();
    let (tx, rx) = channel();
    // Burst far past capacity: 1 in flight + 2 queued fit; the rest must
    // be refused synchronously with a typed QueueFull.
    let mut admitted = 0;
    for i in 0..10 {
        if server.submit(
            ServeRequest::new(format!("b{i}"), prompts[i % prompts.len()].clone()),
            tx.clone(),
        ) {
            admitted += 1;
        }
    }
    drop(tx);
    let replies: Vec<ServeReply> = rx.into_iter().collect();
    assert_eq!(replies.len(), 10, "refusals also produce replies");
    let queue_full = replies
        .iter()
        .filter(|r| {
            matches!(
                r.outcome,
                ServeOutcome::Rejected(Rejection::QueueFull { capacity: 2 })
            )
        })
        .count();
    assert!(queue_full >= 10 - 3, "burst must shed load: {queue_full}");
    assert_eq!(admitted + queue_full, 10);
    server.shutdown();
    let m = server.metrics();
    assert_eq!(m.queue_full as usize, queue_full);
    assert_eq!(m.admitted as usize, admitted);
    assert!(m.accounted());
}

#[test]
fn invalid_requests_are_refused_before_admission() {
    let mut server = Server::start(model("perfect"), ServeConfig::default());
    let empty = server.serve(ServeRequest::new("e", "   "));
    assert!(matches!(
        empty.outcome,
        ServeOutcome::Rejected(Rejection::Invalid { .. })
    ));
    let nul = server.serve(ServeRequest::new("n", "prompt\0with nul"));
    assert!(matches!(
        nul.outcome,
        ServeOutcome::Rejected(Rejection::Invalid { .. })
    ));
    server.shutdown();
    let m = server.metrics();
    assert_eq!(m.invalid, 2);
    assert_eq!(m.admitted, 0);
    assert!(m.accounted());
}

#[test]
fn reply_payloads_are_invariant_across_worker_counts() {
    let prompts = prompt_mix();
    let run = |workers: usize| -> Vec<(String, Option<ServeResponse>)> {
        let mut server = Server::start(
            flaky_model(),
            ServeConfig {
                workers,
                cache_capacity: 0, // isolate the pipeline, not the cache
                ..ServeConfig::default()
            },
        );
        let requests: Vec<ServeRequest> = prompts
            .iter()
            .enumerate()
            .map(|(i, p)| ServeRequest::new(format!("w{i}"), p.clone()))
            .collect();
        let mut replies = drain_all(&server, requests);
        server.shutdown();
        assert!(server.metrics().accounted());
        replies.sort_by(|a, b| a.id.cmp(&b.id));
        replies
            .into_iter()
            .map(|r| {
                let payload = match r.outcome {
                    ServeOutcome::Completed(response) => Some(response),
                    _ => None,
                };
                (r.id, payload)
            })
            .collect()
    };
    let single = run(1);
    for workers in [2, 4] {
        assert_eq!(
            single,
            run(workers),
            "payloads must not depend on worker-pool size"
        );
    }
}

#[test]
fn metrics_text_snapshot_renders_after_traffic() {
    let mut server = Server::start(model("perfect"), ServeConfig::default());
    server.serve(ServeRequest::new("t", prompt_mix().remove(0)));
    server.shutdown();
    let text = server.metrics_text();
    for needle in [
        "serve_admitted_total 1",
        "serve_completed_total 1",
        "stage=\"generate\"",
        "quantile=\"p99\"",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
}
