//! Chaos drills for the hardened serving layer: seeded serve-level fault
//! injection (worker hangs, disk-write failures, silent store corruption,
//! slow clients), the per-worker watchdog, degraded mode, shutdown drain,
//! and WAL-backed warm restart.
//!
//! The load-bearing contract, checked for every seed: the admission
//! accounting invariant `admitted == completed + rejected + failed` holds
//! at quiesce, and every payload a faulted run *does* complete is
//! bit-identical to the fault-free run's payload for the same prompt.

use std::collections::HashMap;
use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

use haven_eval::{FaultPlan, RetryPolicy};
use haven_lm::model::CodeGenModel;
use haven_lm::profiles;
use haven_serve::{
    EngineConfig, Rejection, ServeConfig, ServeOutcome, ServeReply, ServeRequest, ServeResponse,
    Server,
};

fn flaky_model() -> CodeGenModel {
    CodeGenModel::new(profiles::ModelProfile::uniform("flaky", 0.55), 0.5)
}

fn prompt_mix() -> Vec<String> {
    let mut prompts: Vec<String> = haven_eval::suites::verilog_eval_machine(1)
        .into_iter()
        .take(8)
        .map(|t| t.prompt)
        .collect();
    prompts.push("Ponder the sound of one hand clapping.".to_string());
    prompts
}

fn drain_all(server: &Server, requests: Vec<ServeRequest>) -> Vec<ServeReply> {
    let (tx, rx) = channel();
    for request in requests {
        server.submit(request, tx.clone());
    }
    drop(tx);
    rx.into_iter().collect()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "haven-serve-chaos-{tag}-{}-{}",
        std::process::id(),
        Instant::now().elapsed().as_nanos(),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn requests_for(prompts: &[String]) -> Vec<ServeRequest> {
    prompts
        .iter()
        .enumerate()
        .map(|(i, p)| ServeRequest::new(format!("r{i}"), p.clone()))
        .collect()
}

/// Payloads by prompt id from a batch of replies (completed only).
fn payloads(replies: &[ServeReply]) -> HashMap<String, ServeResponse> {
    replies
        .iter()
        .filter_map(|r| match &r.outcome {
            ServeOutcome::Completed(response) => Some((r.id.clone(), response.clone())),
            _ => None,
        })
        .collect()
}

/// The acceptance drill: under every seeded serve fault plan, accounting
/// holds and whatever completes is bit-identical to the fault-free run.
/// Each chaotic run is durable, and a restart from its (possibly
/// corrupted) store must still replay only bit-identical payloads.
#[test]
fn every_seeded_fault_plan_preserves_accounting_and_payloads() {
    let prompts = prompt_mix();

    // Fault-free baseline, in-memory.
    let mut baseline_server = Server::start(flaky_model(), ServeConfig::default());
    let baseline = payloads(&drain_all(&baseline_server, requests_for(&prompts)));
    baseline_server.shutdown();
    assert!(
        baseline.len() >= prompts.len() - 1,
        "baseline mostly completes"
    );

    for seed in [1u64, 7, 42, 1999] {
        let store = temp_dir(&format!("plan{seed}"));
        let chaotic = ServeConfig {
            workers: 3,
            engine: EngineConfig {
                // Rate 1.0: every unique prompt draws one of the four
                // serve fault kinds. Hangs are short and the watchdog is
                // generous here, so hung requests complete late rather
                // than being recycled — the watchdog drill is separate.
                serve_fault_plan: Some(FaultPlan::transient(seed, 1.0)),
                hang_duration: Duration::from_millis(30),
                slow_client_delay: Duration::from_millis(5),
                store_dir: Some(store.clone()),
                ..EngineConfig::default()
            },
            stall_timeout: Some(Duration::from_secs(10)),
            retry: RetryPolicy {
                max_attempts: 3,
                backoff_base_ms: 0,
            },
            ..ServeConfig::default()
        };
        let mut server = Server::start(flaky_model(), chaotic.clone());
        let replies = drain_all(&server, requests_for(&prompts));
        assert_eq!(replies.len(), prompts.len(), "seed {seed}: one reply each");
        server.shutdown();
        let m = server.metrics();
        assert!(
            m.accounted(),
            "seed {seed}: admitted ({}) != completed ({}) + rejected ({}) + failed ({})",
            m.admitted,
            m.completed,
            m.rejected,
            m.failed
        );
        for (id, payload) in payloads(&replies) {
            assert_eq!(
                baseline.get(&id),
                Some(&payload),
                "seed {seed}: faulted completion for {id} must be bit-identical"
            );
        }

        // Restart from the chaos-era store: injected corruption may have
        // cost durability (quarantined tail), never correctness.
        let mut restarted = Server::start(
            flaky_model(),
            ServeConfig {
                engine: EngineConfig {
                    serve_fault_plan: None,
                    store_dir: Some(store.clone()),
                    ..EngineConfig::default()
                },
                ..ServeConfig::default()
            },
        );
        let replayed = payloads(&drain_all(&restarted, requests_for(&prompts)));
        restarted.shutdown();
        for (id, payload) in &replayed {
            assert_eq!(
                baseline.get(id),
                Some(payload),
                "seed {seed}: post-restart payload for {id} must be bit-identical"
            );
        }
        let _ = std::fs::remove_dir_all(&store);
    }
}

/// The watchdog drill: a wedged worker is detected, its request resolved
/// with a typed failure, and a replacement worker keeps the pool serving
/// — all without breaking accounting.
#[test]
fn watchdog_recycles_stalled_workers_and_accounting_survives() {
    let prompts = prompt_mix();
    let mut server = Server::start(
        flaky_model(),
        ServeConfig {
            workers: 1,
            engine: EngineConfig {
                // Rate 1.0 over many unique prompts: roughly a quarter
                // draw WorkerHang, wedging the lone worker well past the
                // stall timeout.
                serve_fault_plan: Some(FaultPlan::permanent(5, 1.0)),
                hang_duration: Duration::from_millis(400),
                slow_client_delay: Duration::ZERO,
                ..EngineConfig::default()
            },
            stall_timeout: Some(Duration::from_millis(60)),
            default_deadline: Duration::from_secs(30),
            retry: RetryPolicy {
                max_attempts: 1,
                backoff_base_ms: 0,
            },
            ..ServeConfig::default()
        },
    );
    let requests: Vec<ServeRequest> = prompts
        .iter()
        .cycle()
        .take(12)
        .enumerate()
        .map(|(i, p)| ServeRequest::new(format!("w{i}"), format!("{p} // hang variant {i}")))
        .collect();
    let n = requests.len();
    let replies = drain_all(&server, requests);
    assert_eq!(replies.len(), n, "every request gets exactly one reply");
    let watchdog_failures = replies
        .iter()
        .filter(|r| {
            matches!(&r.outcome, ServeOutcome::Failed { detail } if detail.contains("watchdog"))
        })
        .count();
    // The pool must still serve *after* recycling: a fresh request on the
    // replacement worker completes normally.
    let after = server.serve(ServeRequest::new("after", prompts[0].clone()));
    assert!(
        matches!(after.outcome, ServeOutcome::Completed(_)),
        "replacement worker must serve: {:?}",
        after.outcome
    );
    server.shutdown();
    let m = server.metrics();
    assert!(m.watchdog_recycles >= 1, "some hang must trip the watchdog");
    assert_eq!(m.watchdog_recycles as usize, watchdog_failures);
    assert!(
        m.accounted(),
        "admitted ({}) != completed ({}) + rejected ({}) + failed ({})",
        m.admitted,
        m.completed,
        m.rejected,
        m.failed
    );
}

/// Degraded mode: store write failures past the threshold flip the server
/// into cache-only serving — hits still answered, fresh compiles shed
/// with a typed `Retrying` carrying a retry-after hint.
#[test]
fn store_failures_degrade_to_cache_only_serving() {
    let store = temp_dir("degraded");
    let prompts = prompt_mix();
    let mut server = Server::start(
        flaky_model(),
        ServeConfig {
            workers: 1,
            engine: EngineConfig {
                serve_fault_plan: Some(FaultPlan::permanent(11, 1.0)),
                hang_duration: Duration::from_millis(10),
                slow_client_delay: Duration::ZERO,
                store_dir: Some(store.clone()),
                ..EngineConfig::default()
            },
            stall_timeout: None,
            store_failure_threshold: 1,
            degraded_cooldown: Duration::from_secs(30),
            retry: RetryPolicy {
                max_attempts: 1,
                backoff_base_ms: 0,
            },
            ..ServeConfig::default()
        },
    );
    // Serve unique prompts until one draws DiskWriteFail (seeded, so the
    // sequence is deterministic); threshold 1 then enters degraded mode.
    let mut served_before: Vec<(String, ServeReply)> = Vec::new();
    for (i, p) in prompts.iter().cycle().take(24).enumerate() {
        let prompt = format!("{p} // degrade variant {i}");
        let reply = server.serve(ServeRequest::new(format!("d{i}"), prompt.clone()));
        if server.metrics().degraded_entered > 0 {
            break;
        }
        if matches!(reply.outcome, ServeOutcome::Completed(_)) {
            served_before.push((prompt, reply));
        }
    }
    let m = server.metrics();
    assert!(m.store_write_failures >= 1, "a DiskWriteFail must be drawn");
    assert_eq!(
        m.degraded_entered, 1,
        "threshold 1 must enter degraded mode"
    );
    let (cached_prompt, cached_reply) = served_before
        .last()
        .expect("at least one completion before degrading")
        .clone();

    // A fresh prompt is shed with a typed retry-after...
    let shed = server.serve(ServeRequest::new(
        "shed",
        format!("{cached_prompt} // fresh"),
    ));
    match &shed.outcome {
        ServeOutcome::Rejected(Rejection::Retrying { retry_after_ms }) => {
            assert!(*retry_after_ms >= 1, "retry hint must be positive");
        }
        other => panic!("expected Retrying rejection while degraded, got {other:?}"),
    }
    // ...while a cached prompt is still served, bit-identically.
    let hit = server.serve(ServeRequest::new("hit", cached_prompt));
    match (&hit.outcome, &cached_reply.outcome) {
        (ServeOutcome::Completed(now), ServeOutcome::Completed(before)) => {
            assert_eq!(now, before, "degraded cache hit must be bit-identical");
        }
        other => panic!("expected degraded cache hit to complete, got {other:?}"),
    }
    assert!(hit.cache_hit);
    server.shutdown();
    let m = server.metrics();
    assert!(m.degraded_shed >= 1);
    assert!(m.degraded_hits >= 1);
    assert!(m.accounted());
    let _ = std::fs::remove_dir_all(&store);
}

/// The graceful-shutdown satellite: shutdown called with requests still
/// queued and in flight must deliver every admitted reply before workers
/// exit, with the accounting invariant holding exactly at quiesce.
#[test]
fn shutdown_drains_admitted_requests_before_workers_exit() {
    let prompts = prompt_mix();
    let mut server = Server::start(
        flaky_model(),
        ServeConfig {
            workers: 4,
            engine: EngineConfig {
                // Slow the pipeline so shutdown lands mid-flight.
                inference_latency: Duration::from_millis(40),
                ..EngineConfig::default()
            },
            default_deadline: Duration::from_secs(30),
            ..ServeConfig::default()
        },
    );
    let (tx, rx) = channel();
    let mut admitted = 0u64;
    for (i, p) in prompts.iter().cycle().take(16).enumerate() {
        if server.submit(
            ServeRequest::new(format!("s{i}"), format!("{p} // drain {i}")),
            tx.clone(),
        ) {
            admitted += 1;
        }
    }
    drop(tx);
    // Shut down immediately: most requests are still queued or mid-pipeline.
    server.shutdown();
    let replies: Vec<ServeReply> = rx.into_iter().collect();
    assert_eq!(
        replies.len() as u64,
        admitted,
        "every admitted request must be answered before shutdown returns"
    );
    let m = server.metrics();
    assert_eq!(m.admitted, admitted);
    assert!(
        m.accounted(),
        "admitted ({}) != completed ({}) + rejected ({}) + failed ({})",
        m.admitted,
        m.completed,
        m.rejected,
        m.failed
    );
}

/// Warm restart: a durable server's second life replays the response WAL
/// into the cache, so every previously served prompt is a bit-identical
/// cache hit — and a fingerprint change invalidates instead of replaying.
#[test]
fn restart_replays_the_wal_into_bit_identical_cache_hits() {
    let store = temp_dir("restart");
    let prompts = prompt_mix();
    let durable = |store: &std::path::Path| ServeConfig {
        workers: 2,
        engine: EngineConfig {
            store_dir: Some(store.to_path_buf()),
            ..EngineConfig::default()
        },
        ..ServeConfig::default()
    };

    let mut first = Server::start(flaky_model(), durable(&store));
    let cold = payloads(&drain_all(&first, requests_for(&prompts)));
    first.shutdown();
    let m1 = first.metrics();
    assert!(m1.responses_persisted > 0, "completions must reach the WAL");
    drop(first);

    let mut second = Server::start(flaky_model(), durable(&store));
    let m2 = second.metrics();
    assert!(
        m2.wal_replayed >= m1.responses_persisted,
        "replay must refill the cache ({} replayed, {} persisted)",
        m2.wal_replayed,
        m1.responses_persisted
    );
    assert!(second.cache_len() > 0, "cache must be warm before traffic");
    let warm_replies = drain_all(&second, requests_for(&prompts));
    for reply in &warm_replies {
        assert!(
            reply.cache_hit,
            "{}: warm restart must serve from the replayed cache",
            reply.id
        );
    }
    let warm = payloads(&warm_replies);
    assert_eq!(warm, cold, "replayed payloads must be bit-identical");
    second.shutdown();
    assert!(second.metrics().accounted());
    drop(second);

    // A different serving model rolls the fingerprint: stale WAL records
    // are skipped, not replayed into wrong answers.
    let mut other_model = Server::start(
        CodeGenModel::new(profiles::ModelProfile::uniform("other", 0.9), 0.2),
        durable(&store),
    );
    assert_eq!(
        other_model.metrics().wal_replayed,
        0,
        "a rolled fingerprint must invalidate the WAL, not replay it"
    );
    assert_eq!(other_model.cache_len(), 0);
    other_model.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}
