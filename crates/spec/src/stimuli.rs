//! Stimulus generation: derives a deterministic test program from a spec.
//!
//! The program is designed to *discriminate*, not just to cover: it
//! includes episodes that only pass when the DUT implements the right
//! reset style (async asserts without a clock edge), the right enable
//! polarity (a disabled hold window), and the right corner cases
//! (exhaustive sweeps for small combinational cones).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::ir::{Behavior, Spec};

/// One step of a test program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StimulusStep {
    /// Drive an input.
    Set(String, u64),
    /// One clock cycle on the spec's clock.
    Tick,
    /// Compare every output against the golden model.
    Check,
}

/// A deterministic test program for one spec.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stimuli {
    /// Steps in execution order.
    pub steps: Vec<StimulusStep>,
}

impl Stimuli {
    /// Number of [`StimulusStep::Check`] samples.
    pub fn check_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, StimulusStep::Check))
            .count()
    }
}

/// Inputs wider than this get random rather than exhaustive sweeps.
const EXHAUSTIVE_LIMIT_BITS: usize = 10;

/// Random vectors used when a sweep is not exhaustive.
const RANDOM_VECTORS: usize = 64;

/// Clock cycles driven for sequential specs.
const SEQ_CYCLES: usize = 48;

/// Builds the test program for `spec`. Deterministic in `seed`.
pub fn stimuli_for(spec: &Spec, seed: u64) -> Stimuli {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5743_1fd0_9e1b_77a3);
    if spec.behavior.is_sequential() {
        sequential_program(spec, &mut rng)
    } else {
        combinational_program(spec, &mut rng)
    }
}

fn combinational_program(spec: &Spec, rng: &mut StdRng) -> Stimuli {
    let mut steps = Vec::new();
    let total_bits = spec.data_input_bits();
    if total_bits <= EXHAUSTIVE_LIMIT_BITS {
        for v in 0..(1u64 << total_bits) {
            set_packed(spec, v, &mut steps);
            steps.push(StimulusStep::Check);
        }
    } else {
        for _ in 0..RANDOM_VECTORS {
            for p in &spec.inputs {
                steps.push(StimulusStep::Set(p.name.clone(), rng.gen::<u64>()));
            }
            steps.push(StimulusStep::Check);
        }
    }
    Stimuli { steps }
}

/// Unpacks bits of `v` into the spec's data inputs, first input = high bits.
fn set_packed(spec: &Spec, v: u64, steps: &mut Vec<StimulusStep>) {
    let mut shift = spec.data_input_bits();
    for p in &spec.inputs {
        shift -= p.width;
        let mask = if p.width >= 64 {
            u64::MAX
        } else {
            (1u64 << p.width) - 1
        };
        steps.push(StimulusStep::Set(p.name.clone(), v >> shift & mask));
    }
}

fn sequential_program(spec: &Spec, rng: &mut StdRng) -> Stimuli {
    let mut steps = Vec::new();
    let reset = spec.attrs.reset.clone();
    let enable = spec.attrs.enable.clone();

    let assert_level = |asserted: bool, r: &crate::ir::ResetSpec| -> u64 {
        // asserted_by(level) — find the level that matches.
        u64::from(r.asserted_by(true) == asserted)
    };

    // Drive all data inputs to 0 first so nothing floats.
    for p in &spec.inputs {
        steps.push(StimulusStep::Set(p.name.clone(), 0));
    }
    if let Some(en) = &enable {
        steps.push(StimulusStep::Set(
            en.name.clone(),
            u64::from(en.active_high),
        ));
    }

    // Episode 1: reset. Async resets must take effect *without* an edge —
    // that check is what separates async from sync implementations.
    if let Some(r) = &reset {
        steps.push(StimulusStep::Set(r.name.clone(), assert_level(true, r)));
        if r.kind.is_async() {
            steps.push(StimulusStep::Check);
        }
        steps.push(StimulusStep::Tick);
        steps.push(StimulusStep::Check);
        steps.push(StimulusStep::Set(r.name.clone(), assert_level(false, r)));
    }

    // Episode 2: free-running operation with randomized data inputs.
    let midpoint = SEQ_CYCLES / 2;
    for cycle in 0..SEQ_CYCLES {
        for p in &spec.inputs {
            steps.push(StimulusStep::Set(p.name.clone(), rng.gen::<u64>()));
        }
        steps.push(StimulusStep::Tick);
        steps.push(StimulusStep::Check);

        // Episode 3 (embedded): a disabled hold window.
        if cycle == midpoint {
            if let Some(en) = &enable {
                steps.push(StimulusStep::Set(
                    en.name.clone(),
                    u64::from(!en.active_high),
                ));
                for _ in 0..3 {
                    for p in &spec.inputs {
                        steps.push(StimulusStep::Set(p.name.clone(), rng.gen::<u64>()));
                    }
                    steps.push(StimulusStep::Tick);
                    steps.push(StimulusStep::Check);
                }
                steps.push(StimulusStep::Set(
                    en.name.clone(),
                    u64::from(en.active_high),
                ));
            }
            // Episode 4 (embedded): mid-run reset pulse.
            if let Some(r) = &reset {
                steps.push(StimulusStep::Set(r.name.clone(), assert_level(true, r)));
                if r.kind.is_async() {
                    steps.push(StimulusStep::Check);
                } else {
                    steps.push(StimulusStep::Tick);
                    steps.push(StimulusStep::Check);
                }
                steps.push(StimulusStep::Set(r.name.clone(), assert_level(false, r)));
            }
        }
    }

    // FSM-style designs benefit from a directed walk of both input values.
    if matches!(spec.behavior, Behavior::Fsm(_)) {
        for pattern in [0u64, 1, 1, 0, 0, 0, 1, 0, 1, 1] {
            for p in &spec.inputs {
                steps.push(StimulusStep::Set(p.name.clone(), pattern));
            }
            steps.push(StimulusStep::Tick);
            steps.push(StimulusStep::Check);
        }
    }

    Stimuli { steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn combinational_small_is_exhaustive() {
        let spec = builders::gate("g", haven_verilog::ast::BinaryOp::BitAnd);
        let s = stimuli_for(&spec, 1);
        assert_eq!(s.check_count(), 4);
    }

    #[test]
    fn combinational_large_is_random_but_bounded() {
        let spec = builders::adder("a", 16);
        let s = stimuli_for(&spec, 1);
        assert_eq!(s.check_count(), RANDOM_VECTORS);
    }

    #[test]
    fn deterministic_in_seed() {
        let spec = builders::counter("c", 4, None);
        assert_eq!(stimuli_for(&spec, 7), stimuli_for(&spec, 7));
        assert_ne!(
            stimuli_for(&builders::adder("a", 16), 7),
            stimuli_for(&builders::adder("a", 16), 8)
        );
    }

    #[test]
    fn async_reset_gets_edge_free_check() {
        let spec = builders::counter("c", 4, None); // async rst_n
        let s = stimuli_for(&spec, 1);
        // The program must contain a Check immediately after the reset Set
        // with no intervening Tick.
        let idx = s
            .steps
            .iter()
            .position(|st| matches!(st, StimulusStep::Set(n, 0) if n == "rst_n"))
            .expect("reset assertion present");
        assert_eq!(s.steps[idx + 1], StimulusStep::Check);
    }

    #[test]
    fn enable_hold_window_present() {
        let mut spec = builders::counter("c", 4, None);
        spec.attrs.enable = Some(crate::ir::EnableSpec {
            name: "en".into(),
            active_high: true,
        });
        let s = stimuli_for(&spec, 1);
        assert!(s
            .steps
            .iter()
            .any(|st| matches!(st, StimulusStep::Set(n, 0) if n == "en")));
    }
}
