//! Emits Verilog source from a [`Spec`].
//!
//! [`EmitStyle`] exposes the convention-level choices an HDL engineer (or a
//! hallucinating model) makes: blocking vs non-blocking in sequential
//! blocks, `default` arms, reset style, clock edge and enable polarity.
//! `EmitStyle::correct()` emission is verified (in `cosim` tests) to match
//! the [`GoldenModel`](crate::golden::GoldenModel) cycle-for-cycle; each
//! deviation knob produces *compilable* Verilog that misbehaves in exactly
//! the way the corresponding hallucination sub-type describes.

use std::fmt::Write as _;

use haven_verilog::analyze::ResetKind;
use haven_verilog::ast::Edge;
use haven_verilog::pretty::pretty_expr;

use crate::ir::*;

/// Convention-level emission choices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmitStyle {
    /// Use `<=` in edge-triggered blocks (correct) or `=` (hallucinated).
    pub nonblocking_in_seq: bool,
    /// Emit `default` arms in combinational `case` statements.
    pub case_default: bool,
    /// Override the spec's reset style (misunderstanding-attributes
    /// hallucination); `None` keeps the spec's style.
    pub reset_kind_override: Option<ResetKind>,
    /// Override the clock edge; `None` keeps the spec's edge.
    pub edge_override: Option<Edge>,
    /// Invert the enable polarity (active-high ↔ active-low confusion).
    pub flip_enable_polarity: bool,
    /// Use an `always @(*)` block for combinational rules instead of
    /// `assign` (stylistic diversity for the synthetic corpus).
    pub comb_always_block: bool,
    /// Keep the reset port in the header but never use it (the
    /// missing-reset convention error); the module powers up unknown.
    pub ignore_reset: bool,
}

impl EmitStyle {
    /// The conventions a careful HDL engineer follows.
    pub fn correct() -> EmitStyle {
        EmitStyle {
            nonblocking_in_seq: true,
            case_default: true,
            reset_kind_override: None,
            edge_override: None,
            flip_enable_polarity: false,
            comb_always_block: false,
            ignore_reset: false,
        }
    }
}

impl Default for EmitStyle {
    fn default() -> EmitStyle {
        EmitStyle::correct()
    }
}

/// Renders a spec as a complete Verilog module.
///
/// # Examples
///
/// ```
/// use haven_spec::{builders, codegen::{emit, EmitStyle}};
/// use haven_verilog::elab::compile;
/// let src = emit(&builders::counter("cnt", 4, None), &EmitStyle::correct());
/// assert!(compile(&src).is_ok());
/// ```
pub fn emit(spec: &Spec, style: &EmitStyle) -> String {
    let mut ctx = Emitter {
        spec,
        style,
        out: String::new(),
    };
    ctx.module();
    ctx.out
}

/// The module header (name + port list) alone — what SI-CoT appends when a
/// prompt lacks one (Fig. 1 step 3).
pub fn emit_header(spec: &Spec) -> String {
    let mut ports = Vec::new();
    for p in spec.all_inputs() {
        ports.push(format!("input {}{}", range_of(p.width), p.name));
    }
    for p in &spec.outputs {
        ports.push(format!("output {}{}", range_of(p.width), p.name));
    }
    format!("module {} ({});", spec.name, ports.join(", "))
}

fn range_of(width: usize) -> String {
    if width == 1 {
        String::new()
    } else {
        format!("[{}:0] ", width - 1)
    }
}

fn lit(value: u64, width: usize) -> String {
    format!("{width}'d{value}")
}

struct Emitter<'a> {
    spec: &'a Spec,
    style: &'a EmitStyle,
    out: String,
}

impl Emitter<'_> {
    fn push(&mut self, s: &str) {
        self.out.push_str(s);
    }

    fn line(&mut self, indent: usize, s: &str) {
        for _ in 0..indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    /// Outputs written procedurally must be declared `reg`.
    fn output_is_reg(&self, name: &str) -> bool {
        match &self.spec.behavior {
            Behavior::Comb(_) => self.style.comb_always_block,
            Behavior::TruthTable(_) | Behavior::Alu(_) => true,
            Behavior::Fsm(f) => name == f.output,
            Behavior::Counter(c) => name == c.output,
            Behavior::ShiftReg(s) => name == s.output,
            Behavior::ClockDiv(c) => name == c.output,
            Behavior::Register(r) => name == r.output,
        }
    }

    fn module(&mut self) {
        let spec = self.spec;
        let mut ports = Vec::new();
        for p in spec.all_inputs() {
            ports.push(format!("input {}{}", range_of(p.width), p.name));
        }
        for p in &spec.outputs {
            let reg = if self.output_is_reg(&p.name) {
                "reg "
            } else {
                ""
            };
            ports.push(format!("output {reg}{}{}", range_of(p.width), p.name));
        }
        self.push(&format!(
            "module {} (\n    {}\n);\n",
            spec.name,
            ports.join(",\n    ")
        ));
        match &spec.behavior {
            Behavior::Comb(rules) => self.comb(rules),
            Behavior::TruthTable(tt) => self.truth_table(tt),
            Behavior::Fsm(f) => self.fsm(f),
            Behavior::Counter(c) => self.counter(c),
            Behavior::ShiftReg(s) => self.shift_reg(s),
            Behavior::ClockDiv(c) => self.clock_div(c),
            Behavior::Register(r) => self.register(r),
            Behavior::Alu(a) => self.alu(a),
        }
        self.push("endmodule\n");
    }

    // ---- sequential scaffolding ----------------------------------------

    fn reset(&self) -> Option<ResetSpec> {
        if self.style.ignore_reset {
            return None;
        }
        let mut reset = self.spec.attrs.reset.clone()?;
        if let Some(kind) = self.style.reset_kind_override {
            reset.kind = kind;
        }
        Some(reset)
    }

    fn edge(&self) -> Edge {
        self.style.edge_override.unwrap_or(self.spec.attrs.edge)
    }

    fn sensitivity(&self) -> String {
        let clk = &self.spec.attrs.clock;
        let edge = match self.edge() {
            Edge::Pos => "posedge",
            Edge::Neg => "negedge",
        };
        match self.reset() {
            Some(r) if r.kind.is_async() => {
                let redge = match r.kind {
                    ResetKind::AsyncActiveLow => "negedge",
                    _ => "posedge",
                };
                format!("@({edge} {clk} or {redge} {})", r.name)
            }
            _ => format!("@({edge} {clk})"),
        }
    }

    /// The expression that is true while reset is asserted.
    fn reset_cond(&self, r: &ResetSpec) -> String {
        let active_low = match r.kind {
            ResetKind::AsyncActiveLow => true,
            ResetKind::AsyncActiveHigh => false,
            ResetKind::Sync => r.name.ends_with("_n"),
        };
        if active_low {
            format!("!{}", r.name)
        } else {
            r.name.clone()
        }
    }

    fn enable_cond(&self) -> Option<String> {
        let en = self.spec.attrs.enable.as_ref()?;
        let active_high = en.active_high ^ self.style.flip_enable_polarity;
        Some(if active_high {
            en.name.clone()
        } else {
            format!("!{}", en.name)
        })
    }

    fn seq_assign(&self) -> &'static str {
        if self.style.nonblocking_in_seq {
            "<="
        } else {
            "="
        }
    }

    /// Emits a standard sequential block:
    /// reset → `reset_body`; else (under enable if any) → `update_body`.
    fn seq_block(&mut self, reset_body: &[String], update_body: &[String]) {
        let sens = self.sensitivity();
        self.line(1, &format!("always {sens}"));
        match self.reset() {
            Some(r) => {
                let cond = self.reset_cond(&r);
                if reset_body.len() == 1 {
                    self.line(2, &format!("if ({cond}) {}", reset_body[0]));
                } else {
                    self.line(2, &format!("if ({cond}) begin"));
                    for s in reset_body {
                        self.line(3, s);
                    }
                    self.line(2, "end");
                }
                match self.enable_cond() {
                    Some(en) => self.emit_branch(&format!("else if ({en})"), update_body),
                    None => self.emit_branch("else", update_body),
                }
            }
            None => match self.enable_cond() {
                Some(en) => self.emit_branch(&format!("if ({en})"), update_body),
                None => {
                    if update_body.len() == 1 {
                        self.line(2, &update_body[0]);
                    } else {
                        self.line(2, "begin");
                        for s in update_body {
                            self.line(3, s);
                        }
                        self.line(2, "end");
                    }
                }
            },
        }
    }

    fn emit_branch(&mut self, head: &str, body: &[String]) {
        if body.len() == 1 {
            self.line(2, &format!("{head} {}", body[0]));
        } else {
            self.line(2, &format!("{head} begin"));
            for s in body {
                self.line(3, s);
            }
            self.line(2, "end");
        }
    }

    // ---- behaviours ------------------------------------------------------

    fn comb(&mut self, rules: &[CombRule]) {
        if self.style.comb_always_block {
            self.line(1, "always @(*) begin");
            for rule in rules {
                let e = pretty_expr(&rule.expr);
                self.line(2, &format!("{} = {};", rule.output, e));
            }
            self.line(1, "end");
        } else {
            for rule in rules {
                let e = pretty_expr(&rule.expr);
                self.line(1, &format!("assign {} = {};", rule.output, e));
            }
        }
    }

    fn truth_table(&mut self, tt: &TruthTableSpec) {
        let sel = format!("{{{}}}", tt.inputs.join(", "));
        let n = tt.inputs.len();
        self.line(1, "always @(*)");
        self.line(2, &format!("case ({sel})"));
        for (i, o) in &tt.rows {
            let assigns: Vec<String> = tt
                .outputs
                .iter()
                .enumerate()
                .map(|(k, name)| {
                    let shift = tt.outputs.len() - 1 - k;
                    format!("{name} = {};", lit(o >> shift & 1, 1))
                })
                .collect();
            if assigns.len() == 1 {
                self.line(3, &format!("{}: {}", lit(*i, n), assigns[0]));
            } else {
                self.line(
                    3,
                    &format!("{}: begin {} end", lit(*i, n), assigns.join(" ")),
                );
            }
        }
        if self.style.case_default {
            let assigns: Vec<String> = tt
                .outputs
                .iter()
                .map(|name| format!("{name} = {};", lit(0, 1)))
                .collect();
            if assigns.len() == 1 {
                self.line(3, &format!("default: {}", assigns[0]));
            } else {
                self.line(3, &format!("default: begin {} end", assigns.join(" ")));
            }
        }
        self.line(2, "endcase");
    }

    fn fsm(&mut self, f: &FsmSpec) {
        let sw = f.state_width();
        let params: Vec<String> = f
            .states
            .iter()
            .enumerate()
            .map(|(i, s)| format!("S_{} = {}", s.to_uppercase(), lit(i as u64, sw)))
            .collect();
        self.line(1, &format!("localparam {};", params.join(", ")));
        self.line(1, &format!("reg [{}:0] state, next_state;", sw - 1));
        // 1: state register
        let asg = self.seq_assign();
        let init = format!("S_{}", f.states[f.initial].to_uppercase());
        self.seq_block(
            &[format!("state {asg} {init};")],
            &[format!("state {asg} next_state;")],
        );
        // 2: next-state logic
        self.line(1, "always @(*)");
        self.line(2, "case (state)");
        for (i, s) in f.states.iter().enumerate() {
            let (t0, t1) = f.transitions[i];
            self.line(
                3,
                &format!(
                    "S_{}: next_state = {} ? S_{} : S_{};",
                    s.to_uppercase(),
                    f.input,
                    f.states[t1].to_uppercase(),
                    f.states[t0].to_uppercase()
                ),
            );
        }
        if self.style.case_default {
            self.line(3, &format!("default: next_state = {init};"));
        }
        self.line(2, "endcase");
        // 3: output logic
        self.line(1, "always @(*)");
        self.line(2, "case (state)");
        for (i, s) in f.states.iter().enumerate() {
            self.line(
                3,
                &format!(
                    "S_{}: {} = {};",
                    s.to_uppercase(),
                    f.output,
                    lit(f.outputs[i], f.output_width)
                ),
            );
        }
        if self.style.case_default {
            self.line(
                3,
                &format!(
                    "default: {} = {};",
                    f.output,
                    lit(f.outputs[f.initial], f.output_width)
                ),
            );
        }
        self.line(2, "endcase");
    }

    fn counter(&mut self, c: &CounterSpec) {
        let asg = self.seq_assign();
        let q = &c.output;
        let w = c.width;
        // A modulus at or above the natural 2^width wrap is the natural wrap.
        let natural = if w >= 64 { u64::MAX } else { 1u64 << w };
        let modulus = c.modulus.filter(|&m| m < natural);
        let update = match (c.direction, modulus) {
            (CountDirection::Up, None) => vec![format!("{q} {asg} {q} + {};", lit(1, w))],
            (CountDirection::Down, None) => vec![format!("{q} {asg} {q} - {};", lit(1, w))],
            (CountDirection::Up, Some(m)) => vec![format!(
                "if ({q} == {}) {q} {asg} {}; else {q} {asg} {q} + {};",
                lit(m - 1, w),
                lit(0, w),
                lit(1, w)
            )],
            (CountDirection::Down, Some(m)) => vec![format!(
                "if ({q} == {}) {q} {asg} {}; else {q} {asg} {q} - {};",
                lit(0, w),
                lit(m - 1, w),
                lit(1, w)
            )],
        };
        self.seq_block(&[format!("{q} {asg} {};", lit(0, w))], &update);
    }

    fn shift_reg(&mut self, s: &ShiftRegSpec) {
        let asg = self.seq_assign();
        let q = &s.output;
        let w = s.width;
        let update = if w == 1 {
            vec![format!("{q} {asg} {};", s.serial_in)]
        } else {
            match s.direction {
                ShiftDirection::Left => {
                    vec![format!("{q} {asg} {{{q}[{}:0], {}}};", w - 2, s.serial_in)]
                }
                ShiftDirection::Right => {
                    vec![format!("{q} {asg} {{{}, {q}[{}:1]}};", s.serial_in, w - 1)]
                }
            }
        };
        self.seq_block(&[format!("{q} {asg} {};", lit(0, w))], &update);
    }

    fn clock_div(&mut self, c: &ClockDivSpec) {
        let asg = self.seq_assign();
        let q = &c.output;
        let cw = (64 - (c.half_period.max(2) - 1).leading_zeros()) as usize;
        self.line(1, &format!("reg [{}:0] cnt;", cw - 1));
        let update = vec![format!(
            "if (cnt == {}) begin cnt {asg} {}; {q} {asg} ~{q}; end else cnt {asg} cnt + {};",
            lit(c.half_period - 1, cw),
            lit(0, cw),
            lit(1, cw)
        )];
        self.seq_block(
            &[
                format!("cnt {asg} {};", lit(0, cw)),
                format!("{q} {asg} {};", lit(0, 1)),
            ],
            &update,
        );
    }

    fn register(&mut self, r: &RegisterSpec) {
        let asg = self.seq_assign();
        let w = r.width;
        if r.stages <= 1 {
            self.seq_block(
                &[format!("{} {asg} {};", r.output, lit(0, w))],
                &[format!("{} {asg} {};", r.output, r.input)],
            );
            return;
        }
        let mut decl = String::new();
        for i in 1..=r.stages - 1 {
            let _ = write!(decl, "stage{i}");
            if i < r.stages - 1 {
                decl.push_str(", ");
            }
        }
        self.line(1, &format!("reg {}{decl};", range_of(w)));
        let mut resets = vec![format!("{} {asg} {};", r.output, lit(0, w))];
        let mut updates = Vec::new();
        for i in 1..=r.stages - 1 {
            resets.push(format!("stage{i} {asg} {};", lit(0, w)));
        }
        updates.push(format!("stage1 {asg} {};", r.input));
        for i in 2..=r.stages - 1 {
            updates.push(format!("stage{i} {asg} stage{};", i - 1));
        }
        updates.push(format!("{} {asg} stage{};", r.output, r.stages - 1));
        self.seq_block(&resets, &updates);
    }

    fn alu(&mut self, a: &AluSpec) {
        let ow = a.op_width();
        self.line(1, "always @(*)");
        self.line(2, &format!("case ({})", a.op));
        for (i, op) in a.ops.iter().enumerate() {
            let expr = alu_expr(*op, &a.a, &a.b);
            self.line(3, &format!("{}: {} = {expr};", lit(i as u64, ow), a.y));
        }
        if self.style.case_default {
            let last = alu_expr(*a.ops.last().expect("ALU has ops"), &a.a, &a.b);
            self.line(3, &format!("default: {} = {last};", a.y));
        }
        self.line(2, "endcase");
    }
}

fn alu_expr(op: AluOp, a: &str, b: &str) -> String {
    match op {
        AluOp::Add => format!("{a} + {b}"),
        AluOp::Sub => format!("{a} - {b}"),
        AluOp::And => format!("{a} & {b}"),
        AluOp::Or => format!("{a} | {b}"),
        AluOp::Xor => format!("{a} ^ {b}"),
        AluOp::NotA => format!("~{a}"),
        AluOp::ShlA => format!("{a} << 1"),
        AluOp::ShrA => format!("{a} >> 1"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use haven_verilog::elab::compile;

    #[test]
    fn all_builders_emit_compilable_verilog() {
        let specs = vec![
            builders::gate("g", haven_verilog::ast::BinaryOp::BitAnd),
            builders::adder("a", 8),
            builders::mux2("m", 4),
            builders::comparator("cmp", 4),
            builders::decoder("dec", 3),
            builders::truth_table_spec(
                "tt",
                vec!["a".into(), "b".into(), "c".into()],
                vec!["y".into()],
                (0..8).map(|i| (i, (i % 3 == 0) as u64)).collect(),
            ),
            builders::fsm_ab("fsm"),
            builders::counter("cnt", 4, Some(10)),
            builders::down_counter("dcnt", 6, None),
            builders::shift_register("sr", 8, crate::ir::ShiftDirection::Right),
            builders::shift_register("sl", 1, crate::ir::ShiftDirection::Left),
            builders::clock_divider("cd", 4),
            builders::pipeline("pipe", 8, 3),
            builders::register("r", 16),
            builders::alu(
                "alu",
                8,
                vec![AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor],
            ),
        ];
        for spec in specs {
            let src = emit(&spec, &EmitStyle::correct());
            compile(&src).unwrap_or_else(|e| panic!("{}: {e}\n{src}", spec.name));
        }
    }

    #[test]
    fn style_knobs_still_compile() {
        let spec = builders::counter("c", 4, Some(12));
        for style in [
            EmitStyle {
                nonblocking_in_seq: false,
                ..EmitStyle::correct()
            },
            EmitStyle {
                reset_kind_override: Some(ResetKind::Sync),
                ..EmitStyle::correct()
            },
            EmitStyle {
                edge_override: Some(Edge::Neg),
                ..EmitStyle::correct()
            },
            EmitStyle {
                case_default: false,
                ..EmitStyle::correct()
            },
        ] {
            let src = emit(&spec, &style);
            compile(&src).unwrap_or_else(|e| panic!("{style:?}: {e}\n{src}"));
        }
    }

    #[test]
    fn header_lists_all_ports() {
        let h = emit_header(&builders::counter("c", 4, None));
        assert_eq!(h, "module c (input clk, input rst_n, output [3:0] q);");
    }

    #[test]
    fn wrong_reset_style_changes_sensitivity() {
        let spec = builders::counter("c", 4, None);
        let ok = emit(&spec, &EmitStyle::correct());
        assert!(ok.contains("negedge rst_n"));
        let bad = emit(
            &spec,
            &EmitStyle {
                reset_kind_override: Some(ResetKind::Sync),
                ..EmitStyle::correct()
            },
        );
        assert!(!bad.contains("negedge rst_n"));
        assert!(bad.contains("if (!rst_n)"));
    }
}
