//! Convenience constructors for common specs.
//!
//! These are the module classes the paper's exemplar library covers
//! (FSMs, clock dividers, counters, shift registers, ALUs, plus the
//! combinational staples used by the benchmark suites).

use haven_verilog::ast::{BinaryOp, Expr};

use crate::ir::*;

/// Two-input gate `y = a <op> b` (1-bit).
pub fn gate(name: &str, op: BinaryOp) -> Spec {
    Spec {
        name: name.to_string(),
        inputs: vec![PortSpec::bit("a"), PortSpec::bit("b")],
        outputs: vec![PortSpec::bit("y")],
        behavior: Behavior::Comb(vec![CombRule {
            output: "y".into(),
            expr: Expr::Binary(op, Box::new(Expr::ident("a")), Box::new(Expr::ident("b"))),
        }]),
        attrs: AttrSpec::default(),
    }
}

/// Arbitrary single-output combinational logic `y = expr(inputs)`.
pub fn comb(name: &str, inputs: Vec<PortSpec>, output: PortSpec, expr: Expr) -> Spec {
    Spec {
        name: name.to_string(),
        inputs,
        behavior: Behavior::Comb(vec![CombRule {
            output: output.name.clone(),
            expr,
        }]),
        outputs: vec![output],
        attrs: AttrSpec::default(),
    }
}

/// `width`-bit ripple adder `s = a + b` (no carry out).
pub fn adder(name: &str, width: usize) -> Spec {
    Spec {
        name: name.to_string(),
        inputs: vec![PortSpec::new("a", width), PortSpec::new("b", width)],
        outputs: vec![PortSpec::new("s", width)],
        behavior: Behavior::Comb(vec![CombRule {
            output: "s".into(),
            expr: Expr::Binary(
                BinaryOp::Add,
                Box::new(Expr::ident("a")),
                Box::new(Expr::ident("b")),
            ),
        }]),
        attrs: AttrSpec::default(),
    }
}

/// 2-to-1 multiplexer over `width`-bit data.
pub fn mux2(name: &str, width: usize) -> Spec {
    Spec {
        name: name.to_string(),
        inputs: vec![
            PortSpec::new("a", width),
            PortSpec::new("b", width),
            PortSpec::bit("sel"),
        ],
        outputs: vec![PortSpec::new("y", width)],
        behavior: Behavior::Comb(vec![CombRule {
            output: "y".into(),
            expr: Expr::Ternary(
                Box::new(Expr::ident("sel")),
                Box::new(Expr::ident("b")),
                Box::new(Expr::ident("a")),
            ),
        }]),
        attrs: AttrSpec::default(),
    }
}

/// Magnitude comparator `lt = a < b`.
pub fn comparator(name: &str, width: usize) -> Spec {
    Spec {
        name: name.to_string(),
        inputs: vec![PortSpec::new("a", width), PortSpec::new("b", width)],
        outputs: vec![PortSpec::bit("lt")],
        behavior: Behavior::Comb(vec![CombRule {
            output: "lt".into(),
            expr: Expr::Binary(
                BinaryOp::Lt,
                Box::new(Expr::ident("a")),
                Box::new(Expr::ident("b")),
            ),
        }]),
        attrs: AttrSpec::default(),
    }
}

/// Binary-to-one-hot decoder (`sel` bits in, `2^sel` bits out).
pub fn decoder(name: &str, sel_width: usize) -> Spec {
    let out_width = 1usize << sel_width;
    Spec {
        name: name.to_string(),
        inputs: vec![PortSpec::new("sel", sel_width)],
        outputs: vec![PortSpec::new("y", out_width)],
        behavior: Behavior::Comb(vec![CombRule {
            output: "y".into(),
            expr: Expr::Binary(
                BinaryOp::Shl,
                Box::new(Expr::lit(1, out_width)),
                Box::new(Expr::ident("sel")),
            ),
        }]),
        attrs: AttrSpec::default(),
    }
}

/// Truth-table spec over 1-bit columns.
pub fn truth_table_spec(
    name: &str,
    inputs: Vec<String>,
    outputs: Vec<String>,
    rows: Vec<(u64, u64)>,
) -> Spec {
    Spec {
        name: name.to_string(),
        inputs: inputs.iter().map(PortSpec::bit).collect(),
        outputs: outputs.iter().map(PortSpec::bit).collect(),
        behavior: Behavior::TruthTable(TruthTableSpec {
            inputs,
            outputs,
            rows,
        }),
        attrs: AttrSpec::default(),
    }
}

/// The paper's running two-state Moore FSM (Table I / Table III):
/// `A[out=0]-[x=0]->B, A-[x=1]->A, B[out=1]-[x=0]->A, B-[x=1]->B`.
pub fn fsm_ab(name: &str) -> Spec {
    fsm(
        name,
        vec!["A".into(), "B".into()],
        0,
        vec![(1, 0), (0, 1)],
        vec![0, 1],
    )
}

/// A Moore FSM over a 1-bit input `x` with output `out`.
pub fn fsm(
    name: &str,
    states: Vec<String>,
    initial: usize,
    transitions: Vec<(usize, usize)>,
    outputs: Vec<u64>,
) -> Spec {
    let output_width = outputs
        .iter()
        .map(|&o| 64 - o.leading_zeros() as usize)
        .max()
        .unwrap_or(1)
        .max(1);
    Spec {
        name: name.to_string(),
        inputs: vec![PortSpec::bit("x")],
        outputs: vec![PortSpec::new("out", output_width)],
        behavior: Behavior::Fsm(FsmSpec {
            states,
            initial,
            input: "x".into(),
            output: "out".into(),
            transitions,
            outputs,
            output_width,
        }),
        attrs: AttrSpec::conventional(),
    }
}

/// Up counter with optional modulus, conventional attributes, output `q`.
pub fn counter(name: &str, width: usize, modulus: Option<u64>) -> Spec {
    Spec {
        name: name.to_string(),
        inputs: vec![],
        outputs: vec![PortSpec::new("q", width)],
        behavior: Behavior::Counter(CounterSpec {
            width,
            direction: CountDirection::Up,
            modulus,
            output: "q".into(),
        }),
        attrs: AttrSpec::conventional(),
    }
}

/// Down counter.
pub fn down_counter(name: &str, width: usize, modulus: Option<u64>) -> Spec {
    let mut s = counter(name, width, modulus);
    if let Behavior::Counter(c) = &mut s.behavior {
        c.direction = CountDirection::Down;
    }
    s
}

/// Serial-in parallel-out shift register with input `din`, output `q`.
pub fn shift_register(name: &str, width: usize, direction: ShiftDirection) -> Spec {
    Spec {
        name: name.to_string(),
        inputs: vec![PortSpec::bit("din")],
        outputs: vec![PortSpec::new("q", width)],
        behavior: Behavior::ShiftReg(ShiftRegSpec {
            width,
            direction,
            serial_in: "din".into(),
            output: "q".into(),
        }),
        attrs: AttrSpec::conventional(),
    }
}

/// Clock divider with output `clk_out` toggling every `half_period` cycles.
pub fn clock_divider(name: &str, half_period: u64) -> Spec {
    Spec {
        name: name.to_string(),
        inputs: vec![],
        outputs: vec![PortSpec::bit("clk_out")],
        behavior: Behavior::ClockDiv(ClockDivSpec {
            half_period,
            output: "clk_out".into(),
        }),
        attrs: AttrSpec::conventional(),
    }
}

/// `stages`-deep pipeline register, input `d`, output `q`.
pub fn pipeline(name: &str, width: usize, stages: usize) -> Spec {
    Spec {
        name: name.to_string(),
        inputs: vec![PortSpec::new("d", width)],
        outputs: vec![PortSpec::new("q", width)],
        behavior: Behavior::Register(RegisterSpec {
            width,
            input: "d".into(),
            output: "q".into(),
            stages,
        }),
        attrs: AttrSpec::conventional(),
    }
}

/// Simple D register (1-stage pipeline).
pub fn register(name: &str, width: usize) -> Spec {
    pipeline(name, width, 1)
}

/// Combinational ALU over ports `a`, `b`, `op` → `y`.
pub fn alu(name: &str, width: usize, ops: Vec<AluOp>) -> Spec {
    let spec = AluSpec {
        width,
        ops,
        a: "a".into(),
        b: "b".into(),
        op: "op".into(),
        y: "y".into(),
    };
    Spec {
        name: name.to_string(),
        inputs: vec![
            PortSpec::new("a", width),
            PortSpec::new("b", width),
            PortSpec::new("op", spec.op_width()),
        ],
        outputs: vec![PortSpec::new("y", width)],
        behavior: Behavior::Alu(spec),
        attrs: AttrSpec::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_well_formed_specs() {
        for spec in [
            gate("g", BinaryOp::BitAnd),
            adder("a", 4),
            mux2("m", 8),
            comparator("c", 4),
            decoder("d", 2),
            fsm_ab("f"),
            counter("cnt", 4, Some(10)),
            down_counter("dc", 4, None),
            shift_register("sr", 8, ShiftDirection::Right),
            clock_divider("cd", 5),
            pipeline("p", 8, 3),
            alu(
                "alu",
                8,
                vec![AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or],
            ),
        ] {
            for p in spec.all_inputs().iter().chain(spec.outputs.iter()) {
                assert!(p.width >= 1 && p.width <= 64, "{}: {}", spec.name, p.name);
            }
            assert!(!spec.outputs.is_empty());
        }
    }

    #[test]
    fn sequential_specs_have_clocks() {
        assert!(counter("c", 4, None)
            .all_inputs()
            .iter()
            .any(|p| p.name == "clk"));
        assert!(!gate("g", BinaryOp::BitOr)
            .all_inputs()
            .iter()
            .any(|p| p.name == "clk"));
    }
}
