//! # haven-spec
//!
//! The hardware-intent IR shared by every stage of the HaVen reproduction.
//!
//! A [`ir::Spec`] describes *what a module should do*; this crate can turn
//! that intent into:
//!
//! * Verilog source — [`codegen::emit`] with convention knobs
//!   ([`codegen::EmitStyle`]) covering both correct and hallucinated styles;
//! * a reference interpreter — [`golden::GoldenModel`];
//! * a discriminating test program — [`stimuli::stimuli_for`];
//! * a functional verdict for any candidate source — [`cosim::cosimulate`].
//!
//! The crate's keystone invariant (enforced by tests): **correct emission
//! co-simulates exactly with the golden model**, while each deviation knob
//! produces compilable code that the co-simulation catches.
//!
//! ```
//! use haven_spec::{builders, codegen::{emit, EmitStyle}, cosim, stimuli};
//!
//! let spec = builders::fsm_ab("fsm");
//! let source = emit(&spec, &EmitStyle::correct());
//! let program = stimuli::stimuli_for(&spec, 42);
//! let report = cosim::cosimulate(&spec, &source, &program);
//! assert!(report.verdict.functional_ok());
//! ```

#![warn(missing_docs)]

pub mod builders;
pub mod codegen;
pub mod cosim;
pub mod describe;
pub mod formal;
pub mod golden;
pub mod ir;
pub mod stimuli;

pub use cosim::{
    cosimulate, cosimulate_artifact, cosimulate_batch, cosimulate_batch_planned,
    cosimulate_session, BatchPlan, CosimOptions, CosimReport, SimBackend, SimBudget, Verdict,
};
pub use golden::GoldenModel;
pub use ir::{Behavior, Spec};
