//! Golden behavioural models derived directly from a [`Spec`].
//!
//! A [`GoldenModel`] is the reference implementation the evaluation harness
//! co-simulates generated Verilog against. It is intentionally *not* built
//! from Verilog: having two independent executable interpretations of every
//! spec (this one, and the emitted code running on `haven-verilog`'s
//! simulator) is what gives the functional-pass metric its teeth.
//!
//! Unknown values are modelled with `Option` — `None` plays the role of
//! Verilog's `x`. The model's unknown-ness rules mirror what the *correct*
//! emitted code does under four-state simulation (e.g. an un-reset FSM
//! recovers through its `default` arm; an un-reset counter never recovers).

use std::collections::HashMap;
use std::collections::VecDeque;

use haven_verilog::ast::Expr;
use haven_verilog::eval::{eval_expr, SignalEnv};
use haven_verilog::logic::LogicVec;

use crate::ir::{Behavior, CountDirection, ShiftDirection, Spec};

/// Reference interpreter for a [`Spec`].
///
/// # Examples
///
/// ```
/// use haven_spec::{builders, golden::GoldenModel};
/// let spec = builders::counter("cnt", 4, None); // 4-bit up counter
/// let mut g = GoldenModel::new(&spec);
/// g.set_input("rst_n", 0);
/// g.tick();
/// g.set_input("rst_n", 1);
/// g.tick();
/// assert_eq!(g.output("q"), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct GoldenModel {
    spec: Spec,
    inputs: HashMap<String, u64>,
    state: GoldenState,
}

#[derive(Debug, Clone)]
enum GoldenState {
    /// Combinational behaviours carry no state.
    None,
    /// FSM state index; `None` = unknown.
    Fsm(Option<usize>),
    /// A scalar register value (counter); `None` = unknown.
    Value(Option<u64>),
    /// Shift register bits, LSB first; `None` bits are unknown.
    Bits(Vec<Option<bool>>),
    /// Clock divider: cycle counter and output phase.
    ClockDiv {
        count: Option<u64>,
        out: Option<bool>,
    },
    /// Pipeline stages, index 0 = oldest (drives the output).
    Pipeline(VecDeque<Option<u64>>),
}

impl GoldenModel {
    /// Creates the model in its power-up state (everything unknown).
    pub fn new(spec: &Spec) -> GoldenModel {
        let state = match &spec.behavior {
            Behavior::Comb(_) | Behavior::TruthTable(_) | Behavior::Alu(_) => GoldenState::None,
            Behavior::Fsm(_) => GoldenState::Fsm(None),
            Behavior::Counter(_) => GoldenState::Value(None),
            Behavior::ShiftReg(s) => GoldenState::Bits(vec![None; s.width]),
            Behavior::ClockDiv(_) => GoldenState::ClockDiv {
                count: None,
                out: None,
            },
            Behavior::Register(r) => {
                GoldenState::Pipeline(VecDeque::from(vec![None; r.stages.max(1)]))
            }
        };
        GoldenModel {
            spec: spec.clone(),
            inputs: HashMap::new(),
            state,
        }
    }

    /// The spec this model interprets.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// Drives an input (or control) signal; the value is masked to the
    /// port width. Asserting an asynchronous reset takes effect
    /// immediately, like the corresponding sensitivity-list entry.
    pub fn set_input(&mut self, name: &str, value: u64) {
        let width = self.spec.port_width(name).unwrap_or(1);
        let masked = mask(value, width);
        self.inputs.insert(name.to_string(), masked);
        if let Some(reset) = &self.spec.attrs.reset {
            if reset.kind.is_async() && reset.name == name && reset.asserted_by(masked != 0) {
                self.apply_reset();
            }
        }
    }

    /// One active clock edge.
    pub fn tick(&mut self) {
        if !self.spec.behavior.is_sequential() {
            return;
        }
        // Reset dominates (both styles behave identically *at* the edge).
        if let Some(reset) = &self.spec.attrs.reset {
            let level = self.inputs.get(&reset.name).copied();
            match level {
                Some(l) if reset.asserted_by(l != 0) => {
                    self.apply_reset();
                    return;
                }
                Some(_) => {}
                // Unknown reset level: state becomes unknown.
                None => {
                    self.invalidate();
                    return;
                }
            }
        }
        if let Some(en) = &self.spec.attrs.enable {
            match self.inputs.get(&en.name).copied() {
                Some(l) if (l != 0) != en.active_high => return, // hold
                Some(_) => {}
                None => {
                    self.invalidate();
                    return;
                }
            }
        }
        self.update_state();
    }

    /// Runs `n` clock edges with current inputs held.
    pub fn tick_n(&mut self, n: usize) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// Current value of one output; `None` = unknown (`x`).
    pub fn output(&self, name: &str) -> Option<u64> {
        self.outputs().get(name).copied().flatten()
    }

    /// All outputs; `None` entries are unknown (`x`).
    pub fn outputs(&self) -> HashMap<String, Option<u64>> {
        let mut out = HashMap::new();
        match (&self.spec.behavior, &self.state) {
            (Behavior::Comb(rules), _) => {
                let env = self.env();
                for rule in rules {
                    let v = eval_expr(&rule.expr, &env);
                    let width = self.spec.port_width(&rule.output).unwrap_or(v.width());
                    out.insert(rule.output.clone(), v.resized(width).to_u64());
                }
            }
            (Behavior::TruthTable(tt), _) => {
                let mut bits = Some(0u64);
                for name in &tt.inputs {
                    match (bits, self.inputs.get(name)) {
                        (Some(acc), Some(&v)) => bits = Some(acc << 1 | (v & 1)),
                        _ => bits = None,
                    }
                }
                let row = bits.map(|b| tt.lookup(b));
                for (i, name) in tt.outputs.iter().enumerate() {
                    let shift = tt.outputs.len() - 1 - i;
                    out.insert(name.clone(), row.map(|r| r >> shift & 1));
                }
            }
            (Behavior::Alu(alu), _) => {
                let a = self.inputs.get(&alu.a).copied();
                let b = self.inputs.get(&alu.b).copied();
                let op = self.inputs.get(&alu.op).copied();
                let y = match (a, b, op) {
                    (Some(a), Some(b), Some(op)) => {
                        // Out-of-range opcodes fall to the last op (the
                        // emitted `default` arm).
                        let idx = (op as usize).min(alu.ops.len() - 1);
                        Some(alu.ops[idx].apply(a, b, alu.width))
                    }
                    _ => None,
                };
                out.insert(alu.y.clone(), y);
            }
            (Behavior::Fsm(f), GoldenState::Fsm(s)) => {
                out.insert(f.output.clone(), s.map(|s| f.outputs[s]));
            }
            (Behavior::Counter(c), GoldenState::Value(v)) => {
                out.insert(c.output.clone(), *v);
            }
            (Behavior::ShiftReg(s), GoldenState::Bits(bits)) => {
                let mut v = Some(0u64);
                for (i, b) in bits.iter().enumerate() {
                    v = match (v, b) {
                        (Some(acc), Some(true)) => Some(acc | 1 << i),
                        (Some(acc), Some(false)) => Some(acc),
                        _ => None,
                    };
                }
                out.insert(s.output.clone(), v);
            }
            (Behavior::ClockDiv(c), GoldenState::ClockDiv { out: o, .. }) => {
                out.insert(c.output.clone(), o.map(u64::from));
            }
            (Behavior::Register(r), GoldenState::Pipeline(stages)) => {
                out.insert(r.output.clone(), stages.front().copied().flatten());
            }
            _ => unreachable!("state/behaviour mismatch"),
        }
        out
    }

    fn env(&self) -> GoldenEnv<'_> {
        GoldenEnv { model: self }
    }

    fn apply_reset(&mut self) {
        match (&self.spec.behavior, &mut self.state) {
            (Behavior::Fsm(f), GoldenState::Fsm(s)) => *s = Some(f.initial),
            (_, GoldenState::Value(v)) => *v = Some(0),
            (_, GoldenState::Bits(bits)) => bits.fill(Some(false)),
            (_, GoldenState::ClockDiv { count, out }) => {
                *count = Some(0);
                *out = Some(false);
            }
            (_, GoldenState::Pipeline(stages)) => stages.iter_mut().for_each(|s| *s = Some(0)),
            _ => {}
        }
    }

    fn invalidate(&mut self) {
        match &mut self.state {
            GoldenState::Fsm(s) => *s = None,
            GoldenState::Value(v) => *v = None,
            GoldenState::Bits(bits) => bits.fill(None),
            GoldenState::ClockDiv { count, out } => {
                *count = None;
                *out = None;
            }
            GoldenState::Pipeline(stages) => stages.iter_mut().for_each(|s| *s = None),
            GoldenState::None => {}
        }
    }

    fn update_state(&mut self) {
        match (&self.spec.behavior, &mut self.state) {
            (Behavior::Fsm(f), GoldenState::Fsm(s)) => {
                let input = self.inputs.get(&f.input).copied();
                *s = match (*s, input) {
                    (Some(cur), Some(x)) => {
                        let (t0, t1) = f.transitions[cur];
                        Some(if x & 1 == 1 { t1 } else { t0 })
                    }
                    // Unknown state: the conventional `default` arm steers
                    // next_state to the initial state, so the FSM recovers
                    // after one clock even without a reset.
                    (None, _) => Some(f.initial),
                    (Some(_), None) => None,
                }
            }
            (Behavior::Counter(c), GoldenState::Value(v)) => {
                let natural = 1u64 << c.width.min(63);
                let limit = c.modulus.unwrap_or(natural).min(natural);
                *v = v.map(|cur| match c.direction {
                    CountDirection::Up => {
                        if cur + 1 >= limit {
                            0
                        } else {
                            cur + 1
                        }
                    }
                    CountDirection::Down => {
                        if cur == 0 {
                            limit - 1
                        } else {
                            cur - 1
                        }
                    }
                });
            }
            (Behavior::ShiftReg(sr), GoldenState::Bits(bits)) => {
                let sin = self.inputs.get(&sr.serial_in).map(|&v| v & 1 == 1);
                match sr.direction {
                    ShiftDirection::Left => {
                        bits.pop();
                        bits.insert(0, sin);
                    }
                    ShiftDirection::Right => {
                        bits.remove(0);
                        bits.push(sin);
                    }
                }
            }
            (Behavior::ClockDiv(c), GoldenState::ClockDiv { count, out }) => {
                if let (Some(cnt), Some(o)) = (count.as_mut(), out.as_mut()) {
                    if *cnt + 1 >= c.half_period {
                        *cnt = 0;
                        *o = !*o;
                    } else {
                        *cnt += 1;
                    }
                }
            }
            (Behavior::Register(r), GoldenState::Pipeline(stages)) => {
                let din = self.inputs.get(&r.input).map(|&v| mask(v, r.width));
                stages.pop_front();
                stages.push_back(din);
            }
            _ => {}
        }
    }
}

struct GoldenEnv<'a> {
    model: &'a GoldenModel,
}

impl SignalEnv for GoldenEnv<'_> {
    fn value_of(&self, name: &str) -> Option<LogicVec> {
        let width = self.model.spec.port_width(name)?;
        match self.model.inputs.get(name) {
            Some(&v) => Some(LogicVec::from_u64(v, width)),
            None => Some(LogicVec::unknown(width)),
        }
    }
    fn lsb_of(&self, _name: &str) -> usize {
        0
    }
}

fn mask(value: u64, width: usize) -> u64 {
    if width >= 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    }
}

// `Expr` is re-exported for downstream convenience when building comb rules.
pub use haven_verilog::ast::Expr as CombExpr;

#[allow(unused)]
fn _assert_send_sync(m: GoldenModel) -> impl Send + Sync {
    m
}

#[allow(unused)]
fn _expr_is_used(_: Option<Expr>) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn comb_xor_gate() {
        let spec = builders::gate("xor2", haven_verilog::ast::BinaryOp::BitXor);
        let mut g = GoldenModel::new(&spec);
        assert_eq!(g.output("y"), None, "inputs not driven yet");
        g.set_input("a", 1);
        g.set_input("b", 1);
        assert_eq!(g.output("y"), Some(0));
        g.set_input("b", 0);
        assert_eq!(g.output("y"), Some(1));
    }

    #[test]
    fn counter_with_modulus_wraps() {
        let spec = builders::counter("c", 4, Some(10));
        let mut g = GoldenModel::new(&spec);
        g.set_input("rst_n", 0);
        g.set_input("rst_n", 1);
        for i in 1..=10 {
            g.tick();
            assert_eq!(g.output("q"), Some(i % 10), "cycle {i}");
        }
    }

    #[test]
    fn unreset_counter_stays_unknown() {
        let mut spec = builders::counter("c", 4, None);
        spec.attrs.reset = None;
        let mut g = GoldenModel::new(&spec);
        g.tick_n(5);
        assert_eq!(g.output("q"), None);
    }

    #[test]
    fn unreset_fsm_recovers_via_default() {
        let mut spec = builders::fsm_ab("f");
        spec.attrs.reset = None;
        let mut g = GoldenModel::new(&spec);
        g.set_input("x", 0);
        g.tick();
        // default arm steers to initial state A (out = 0)
        assert_eq!(g.output("out"), Some(0));
    }

    #[test]
    fn fsm_follows_paper_transitions() {
        // A[out=0]-[x=0]->B, A-[x=1]->A, B[out=1]-[x=0]->A, B-[x=1]->B
        let spec = builders::fsm_ab("f");
        let mut g = GoldenModel::new(&spec);
        g.set_input("rst_n", 0);
        g.set_input("rst_n", 1);
        g.set_input("x", 0);
        g.tick();
        assert_eq!(g.output("out"), Some(1), "A --0--> B");
        g.set_input("x", 1);
        g.tick();
        assert_eq!(g.output("out"), Some(1), "B --1--> B");
        g.set_input("x", 0);
        g.tick();
        assert_eq!(g.output("out"), Some(0), "B --0--> A");
    }

    #[test]
    fn shift_register_left() {
        let spec = builders::shift_register("s", 4, ShiftDirection::Left);
        let mut g = GoldenModel::new(&spec);
        g.set_input("rst_n", 0);
        g.set_input("rst_n", 1);
        for bit in [1u64, 1, 0, 1] {
            g.set_input("din", bit);
            g.tick();
        }
        // q = (((1 << 1 | 1) << 1 | 0) << 1 | 1) = 1101
        assert_eq!(g.output("q"), Some(0b1101));
    }

    #[test]
    fn enable_gates_updates() {
        let mut spec = builders::counter("c", 4, None);
        spec.attrs.enable = Some(crate::ir::EnableSpec {
            name: "en".into(),
            active_high: true,
        });
        let mut g = GoldenModel::new(&spec);
        g.set_input("rst_n", 0);
        g.set_input("rst_n", 1);
        g.set_input("en", 0);
        g.tick_n(3);
        assert_eq!(g.output("q"), Some(0), "disabled: holds");
        g.set_input("en", 1);
        g.tick_n(2);
        assert_eq!(g.output("q"), Some(2));
    }

    #[test]
    fn clock_divider_by_3_toggles() {
        let spec = builders::clock_divider("d", 3);
        let mut g = GoldenModel::new(&spec);
        g.set_input("rst_n", 0);
        g.set_input("rst_n", 1);
        let mut seen = Vec::new();
        for _ in 0..9 {
            g.tick();
            seen.push(g.output("clk_out").unwrap());
        }
        assert_eq!(seen, vec![0, 0, 1, 1, 1, 0, 0, 0, 1]);
    }

    #[test]
    fn pipeline_register_delays_by_stages() {
        let spec = builders::pipeline("p", 8, 2);
        let mut g = GoldenModel::new(&spec);
        g.set_input("rst_n", 0);
        g.set_input("rst_n", 1);
        g.set_input("d", 0xAB);
        g.tick();
        assert_eq!(g.output("q"), Some(0), "still flushing reset zeros");
        g.tick();
        assert_eq!(g.output("q"), Some(0xAB));
    }

    #[test]
    fn alu_selects_ops_and_clamps_opcode() {
        let spec = builders::alu("a", 8, vec![crate::ir::AluOp::Add, crate::ir::AluOp::Sub]);
        let mut g = GoldenModel::new(&spec);
        g.set_input("a", 7);
        g.set_input("b", 3);
        g.set_input("op", 0);
        assert_eq!(g.output("y"), Some(10));
        g.set_input("op", 1);
        assert_eq!(g.output("y"), Some(4));
    }

    #[test]
    fn truth_table_and_gate() {
        let spec = builders::truth_table_spec(
            "tt",
            vec!["a".into(), "b".into()],
            vec!["out".into()],
            vec![(0b00, 0), (0b01, 0), (0b10, 0), (0b11, 1)],
        );
        let mut g = GoldenModel::new(&spec);
        g.set_input("a", 1);
        g.set_input("b", 1);
        assert_eq!(g.output("out"), Some(1));
        g.set_input("b", 0);
        assert_eq!(g.output("out"), Some(0));
    }

    #[test]
    fn async_reset_applies_without_clock() {
        let spec = builders::counter("c", 4, None);
        let mut g = GoldenModel::new(&spec);
        g.set_input("rst_n", 1);
        g.tick_n(3); // state unknown: reset was never asserted
        assert_eq!(g.output("q"), None);
        g.set_input("rst_n", 0); // async assert, no clock needed
        assert_eq!(g.output("q"), Some(0));
    }
}
