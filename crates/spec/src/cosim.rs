//! Co-simulation: runs Verilog source and the golden model through the
//! same test program and compares outputs at every checkpoint.
//!
//! This is the reproduction's *functional correctness* oracle — the role
//! the paper's benchmark testbenches play.

use std::sync::Arc;

pub use haven_engine::SimBackend;
use haven_engine::{Artifact, DutSession, Engine};
use haven_verilog::batch::BatchSpill;
pub use haven_verilog::sim::SimBudget;
use haven_verilog::VerilogError;
use serde::{Deserialize, Serialize};

use crate::golden::GoldenModel;
use crate::ir::Spec;
use crate::stimuli::{Stimuli, StimulusStep};

/// Why a candidate failed (or that it passed).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Compiles and matches the golden model at every checkpoint.
    Pass,
    /// Lex/parse/elaboration failure — the syntax-fail bucket.
    SyntaxError(String),
    /// Compiles, but the interface doesn't bind (missing/renamed ports).
    InterfaceError(String),
    /// Compiles and binds, but outputs diverge from the golden model.
    FunctionalMismatch {
        /// First differing checkpoint (0-based).
        at_check: usize,
        /// Description of the first mismatch.
        detail: String,
    },
    /// A runtime simulation failure (combinational oscillation etc.).
    SimulationError(String),
    /// The candidate compiled but exhausted a resource budget
    /// ([`haven_verilog::sim::SimBudget`]) before the oracle finished —
    /// a runaway loop, a pathological settle, or simply more work than
    /// the harness is willing to spend on one sample.
    ResourceExhausted(String),
    /// The harness itself failed on this sample (worker panic, corrupted
    /// source at the harness boundary). Says nothing about the candidate;
    /// pass@k treats it conservatively as a failure, and the per-task
    /// fault counters keep it attributable.
    HarnessFault(String),
}

impl Verdict {
    /// Syntax-level success: everything except [`Verdict::SyntaxError`]
    /// and [`Verdict::HarnessFault`] (a faulted sample proved nothing, so
    /// it conservatively counts as no success at any level).
    pub fn syntax_ok(&self) -> bool {
        !matches!(self, Verdict::SyntaxError(_) | Verdict::HarnessFault(_))
    }

    /// Full functional success.
    pub fn functional_ok(&self) -> bool {
        matches!(self, Verdict::Pass)
    }

    /// Fault-class verdicts: outcomes that can be caused by transient
    /// infrastructure trouble (a panicking worker, a starved scheduler)
    /// rather than by the candidate itself. The harness retries these
    /// with bounded deterministic backoff before quarantining the sample.
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            Verdict::HarnessFault(_) | Verdict::ResourceExhausted(_)
        )
    }
}

/// Co-simulation statistics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CosimReport {
    /// Final verdict.
    pub verdict: Verdict,
    /// Checkpoints compared before stopping.
    pub checks_run: usize,
    /// Checkpoints where the golden model was fully known and compared.
    pub checks_compared: usize,
}

fn interface_or_sim_error(
    e: VerilogError,
    checks_run: usize,
    checks_compared: usize,
) -> CosimReport {
    let msg = e.to_string();
    let verdict = if e.is_budget() {
        Verdict::ResourceExhausted(msg)
    } else if msg.contains("no signal") || msg.contains("non-input") {
        Verdict::InterfaceError(msg)
    } else {
        Verdict::SimulationError(msg)
    };
    CosimReport {
        verdict,
        checks_run,
        checks_compared,
    }
}

/// Oracle options — exposed so the design choices documented in
/// `DESIGN.md` §5 can be ablated (see `haven-bench`'s `oracle_ablation`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CosimOptions {
    /// Compare outputs at clk-low inside every tick; this is what makes
    /// wrong-clock-edge implementations observable.
    pub mid_tick_checks: bool,
    /// Resource limits for the candidate's simulation. The oracle also
    /// enforces [`SimBudget::max_ticks`] over the stimulus program's
    /// `Tick` steps, since it drives the clock by poking edges directly.
    pub budget: SimBudget,
    /// Execution engine for the candidate design.
    pub backend: SimBackend,
}

impl Default for CosimOptions {
    fn default() -> CosimOptions {
        CosimOptions {
            mid_tick_checks: true,
            budget: SimBudget::default(),
            backend: SimBackend::default(),
        }
    }
}

/// Golden outputs in deterministic (name-sorted) order, so the first
/// mismatch reported at a checkpoint with several diverging outputs does
/// not depend on hash-map iteration order. Both scalar backends and the
/// batched path compare in this order, which is what makes their
/// `FunctionalMismatch` details bit-identical.
fn sorted_outputs(golden: &GoldenModel) -> Vec<(String, Option<u64>)> {
    let mut outs: Vec<(String, Option<u64>)> = golden.outputs().into_iter().collect();
    outs.sort_by(|a, b| a.0.cmp(&b.0));
    outs
}

/// Maps a session construction (or reset) failure — time-zero settle ran
/// and failed — to a verdict, exactly as direct backend construction did.
fn construction_error(e: VerilogError) -> CosimReport {
    let verdict = if e.is_budget() {
        Verdict::ResourceExhausted(e.to_string())
    } else {
        Verdict::SimulationError(e.to_string())
    };
    CosimReport {
        verdict,
        checks_run: 0,
        checks_compared: 0,
    }
}

/// Runs `source` against the golden model of `spec` under `stimuli`.
///
/// The first module in `source` is taken as the DUT. Output comparison is
/// skipped while the golden model is unknown (`x`), exactly as a careful
/// testbench masks don't-care windows.
pub fn cosimulate(spec: &Spec, source: &str, stimuli: &Stimuli) -> CosimReport {
    cosimulate_with(spec, source, stimuli, &CosimOptions::default())
}

/// [`cosimulate`] with explicit oracle options. One-shot: compiles
/// `source` through a cache-less [`Engine`]. Callers with repeated
/// sources (the eval harness, the serve pipeline) hold a shared engine
/// and use [`cosimulate_artifact`] instead.
pub fn cosimulate_with(
    spec: &Spec,
    source: &str,
    stimuli: &Stimuli,
    options: &CosimOptions,
) -> CosimReport {
    let engine = Engine::uncached(options.backend, options.budget);
    let artifact = match engine.prepare(source) {
        Ok(a) => a,
        Err(e) => {
            return CosimReport {
                verdict: Verdict::SyntaxError(e.to_string()),
                checks_run: 0,
                checks_compared: 0,
            }
        }
    };
    cosimulate_artifact(spec, &engine, &artifact, stimuli, options)
}

/// Co-simulates a prepared engine [`Artifact`]: opens a fresh
/// [`DutSession`] under `options.budget` and runs the stimulus program.
/// This is the entry point for engine-holding consumers — the artifact
/// may be a cache hit shared with other workers; the session is private.
pub fn cosimulate_artifact(
    spec: &Spec,
    engine: &Engine,
    artifact: &Arc<Artifact>,
    stimuli: &Stimuli,
    options: &CosimOptions,
) -> CosimReport {
    let mut session = match engine.session_with_budget(artifact, options.budget) {
        Ok(s) => s,
        Err(e) => return construction_error(e),
    };
    cosimulate_session(spec, &mut session, stimuli, options)
}

/// Batched co-simulation: like [`cosimulate_artifact`], but evaluates up
/// to [`haven_verilog::LANES`] (64) stimulus episodes of a combinational
/// program per settle sweep on the bit-parallel engine (DESIGN.md §15).
///
/// A tickless stimulus program is a sequence of Check-terminated
/// *episodes*; each episode's cumulative input state becomes one lane.
/// The verdict contract is strict: the returned [`CosimReport`] is
/// bit-identical to [`cosimulate_artifact`] on the same arguments —
/// pinned by the differential property suite. Programs or artifacts the
/// batched engine cannot reproduce exactly (clocked stimuli, sequential
/// designs, unsupported statements, tight budgets, unresolvable ports)
/// fall back to the scalar path, with the spill reason counted in
/// [`Engine::batch_stats`].
pub fn cosimulate_batch(
    spec: &Spec,
    engine: &Engine,
    artifact: &Arc<Artifact>,
    stimuli: &Stimuli,
    options: &CosimOptions,
) -> CosimReport {
    let plan = BatchPlan::new(spec, stimuli);
    cosimulate_batch_planned(spec, engine, artifact, stimuli, options, &plan)
}

/// [`cosimulate_batch`] with the candidate-independent half hoisted out:
/// `plan` must have been built by [`BatchPlan::new`] from the *same*
/// `spec` and `stimuli`. This is the screening entry point — one plan per
/// task amortizes the golden-model sweep across every candidate sample,
/// leaving pokes + settles + divergence masks as the whole per-candidate
/// cost.
pub fn cosimulate_batch_planned(
    spec: &Spec,
    engine: &Engine,
    artifact: &Arc<Artifact>,
    stimuli: &Stimuli,
    options: &CosimOptions,
    plan: &BatchPlan,
) -> CosimReport {
    match batch_attempt(plan, engine, artifact, options) {
        Ok(report) => report,
        Err(spill) => {
            if let Some(reason) = spill {
                // Program-level spills the engine cannot see; session-
                // level spills were already counted by `batch_session`.
                engine.record_batch_fallback(reason);
            }
            cosimulate_artifact(spec, engine, artifact, stimuli, options)
        }
    }
}

/// The candidate-independent half of a batched co-simulation: the
/// stimulus program walked once against the golden model, transposed into
/// ≤[`haven_verilog::LANES`]-lane groups of cumulative input state and
/// expected outputs.
///
/// Building a plan costs one golden-model sweep of the program; running a
/// candidate against it ([`cosimulate_batch_planned`]) costs only pokes,
/// settles and divergence masks. The eval harness builds one plan per
/// task and screens every sample through it.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    /// The program drives a clock: the batched engine cannot run it.
    sequential: bool,
    /// Total `Set` steps (batch-session budget qualification).
    set_count: usize,
    /// Poked input names, first-seen order.
    inputs: Vec<String>,
    /// Compared output names, sorted (the order both scalar backends and
    /// the batched path report the first mismatch in).
    outputs: Vec<String>,
    /// Check episodes, grouped and lane-transposed.
    groups: Vec<PlanGroup>,
}

/// One Check snapshot during the plan walk: (cumulative input state,
/// expected outputs), both in plan order.
type Episode = (Vec<Option<u64>>, Vec<Option<u64>>);

/// One ≤64-episode group of a [`BatchPlan`].
#[derive(Debug, Clone)]
struct PlanGroup {
    /// Episodes in this group.
    lanes: usize,
    /// Cumulative input state per lane: `pokes[input][lane]`; `None` =
    /// never poked (all-x, the scalar construction state).
    pokes: Vec<Vec<Option<u64>>>,
    /// Golden expectation per lane: `wants[output][lane]`; `None` =
    /// golden is x there (comparison masked).
    wants: Vec<Vec<Option<u64>>>,
    /// Lanes with at least one known expectation (what the scalar loop
    /// counts as `checks_compared`).
    compared: usize,
}

impl BatchPlan {
    /// Walks `stimuli` once against the golden model of `spec`. Cheap for
    /// sequential programs (detected and left for the scalar path).
    pub fn new(spec: &Spec, stimuli: &Stimuli) -> BatchPlan {
        let sequential = stimuli
            .steps
            .iter()
            .any(|s| matches!(s, StimulusStep::Tick));
        let set_count = stimuli
            .steps
            .iter()
            .filter(|s| matches!(s, StimulusStep::Set(..)))
            .count();
        let mut golden = GoldenModel::new(spec);
        let mut outputs: Vec<String> = golden.outputs().into_keys().collect();
        outputs.sort();
        if sequential {
            return BatchPlan {
                sequential,
                set_count,
                inputs: Vec::new(),
                outputs,
                groups: Vec::new(),
            };
        }

        // Walk the program: forward-fill cumulative input state, and at
        // every Check snapshot (inputs, expected outputs) as one episode.
        let mut inputs: Vec<String> = Vec::new();
        let mut cur: Vec<Option<u64>> = Vec::new();
        let mut episodes: Vec<Episode> = Vec::new();
        for step in &stimuli.steps {
            match step {
                StimulusStep::Set(name, value) => {
                    golden.set_input(name, *value);
                    let idx = match inputs.iter().position(|n| n == name) {
                        Some(i) => i,
                        None => {
                            inputs.push(name.clone());
                            cur.push(None);
                            inputs.len() - 1
                        }
                    };
                    cur[idx] = Some(*value);
                }
                StimulusStep::Tick => unreachable!("gated above"),
                StimulusStep::Check => {
                    let outs = golden.outputs();
                    let wants: Vec<Option<u64>> = outputs
                        .iter()
                        .map(|n| outs.get(n).copied().flatten())
                        .collect();
                    episodes.push((cur.clone(), wants));
                }
            }
        }

        // Lane-transpose into ≤LANES-episode groups. Episodes recorded
        // before an input's first Set have short snapshots; the missing
        // slots are "never poked" (all-x).
        let groups = episodes
            .chunks(haven_verilog::LANES)
            .map(|group| PlanGroup {
                lanes: group.len(),
                pokes: (0..inputs.len())
                    .map(|i| {
                        group
                            .iter()
                            .map(|(ins, _)| ins.get(i).copied().flatten())
                            .collect()
                    })
                    .collect(),
                wants: (0..outputs.len())
                    .map(|oi| group.iter().map(|(_, w)| w[oi]).collect())
                    .collect(),
                compared: group
                    .iter()
                    .filter(|(_, w)| w.iter().any(Option::is_some))
                    .count(),
            })
            .collect();
        BatchPlan {
            sequential,
            set_count,
            inputs,
            outputs,
            groups,
        }
    }
}

/// The batched fast path. `Err(Some(reason))` is a program-level spill
/// still to be counted; `Err(None)` was already counted by the engine.
fn batch_attempt(
    plan: &BatchPlan,
    engine: &Engine,
    artifact: &Arc<Artifact>,
    options: &CosimOptions,
) -> Result<CosimReport, Option<BatchSpill>> {
    if plan.sequential {
        return Err(Some(BatchSpill::SequentialProgram));
    }
    let mut session =
        match engine.batch_session_with_budget(artifact, options.budget, plan.set_count) {
            // Time-zero settle failed: the scalar session construction
            // fails with the same error, so answer directly.
            Err(e) => return Ok(construction_error(e)),
            Ok(Err(_already_counted)) => return Err(None),
            Ok(Ok(s)) => s,
        };

    // Interface gate: every poked name must be an input and every golden
    // output must resolve, otherwise the scalar path owns the error
    // wording (and the exact step it surfaces at).
    let mut in_ids = Vec::with_capacity(plan.inputs.len());
    for name in &plan.inputs {
        let Some(id) = session.input_id(name) else {
            return Err(Some(BatchSpill::BadInterface));
        };
        in_ids.push(id);
    }
    let mut out_ids = Vec::with_capacity(plan.outputs.len());
    for name in &plan.outputs {
        let Some(id) = session.signal_id(name) else {
            return Err(Some(BatchSpill::BadInterface));
        };
        out_ids.push(id);
    }

    // Sweep the groups, replaying the scalar Check loop's exact counting
    // and first-mismatch semantics per lane.
    let mut checks_run = 0usize;
    let mut checks_compared = 0usize;
    let mut prev_ops = haven_verilog::BatchOpStats::default();
    for group in &plan.groups {
        for (i, id) in in_ids.iter().enumerate() {
            session.poke_lanes(*id, &group.pokes[i]);
        }
        session.settle();
        let now = session.op_stats();
        engine.record_batch_run(
            group.lanes,
            haven_verilog::BatchOpStats {
                lane_serialized_ops: now.lane_serialized_ops - prev_ops.lane_serialized_ops,
                wide_value_spills: now.wide_value_spills - prev_ops.wide_value_spills,
            },
        );
        prev_ops = now;

        // Fast path: one divergence mask per output; all-zero means every
        // episode in the group matches.
        let mut combined = 0u64;
        for (oi, id) in out_ids.iter().enumerate() {
            combined |= session.divergence_mask(*id, &group.wants[oi]);
        }
        if combined == 0 {
            checks_run += group.lanes;
            checks_compared += group.compared;
            continue;
        }
        // Some lane diverged: replay the scalar per-check scan lane by
        // lane (program order) to reproduce the exact counters and
        // detail string of the first mismatch.
        for lane in 0..group.lanes {
            checks_run += 1;
            let mut known_any = false;
            for (oi, name) in plan.outputs.iter().enumerate() {
                let Some(want) = group.wants[oi][lane] else {
                    continue;
                };
                known_any = true;
                let got = session.peek_lane_u64(out_ids[oi], lane);
                if got != Some(want) {
                    let detail = match got {
                        Some(g) => format!("`{name}`: expected {want}, got {g}"),
                        None => format!("`{name}`: expected {want}, got x"),
                    };
                    return Ok(CosimReport {
                        verdict: Verdict::FunctionalMismatch {
                            at_check: checks_run - 1,
                            detail,
                        },
                        checks_run,
                        checks_compared: checks_compared + 1,
                    });
                }
            }
            if known_any {
                checks_compared += 1;
            }
        }
    }
    Ok(CosimReport {
        verdict: Verdict::Pass,
        checks_run,
        checks_compared,
    })
}

/// Co-simulates on an existing [`DutSession`], resetting it first if a
/// previous run drove it. Port handles resolved by earlier runs are
/// reused, so repeated runs of the same stimuli are bit-identical to a
/// fresh session (pinned by `repeated_session_runs_are_bit_identical`).
pub fn cosimulate_session(
    spec: &Spec,
    session: &mut DutSession,
    stimuli: &Stimuli,
    options: &CosimOptions,
) -> CosimReport {
    if let Err(e) = session.ensure_fresh() {
        return construction_error(e);
    }
    session.begin_run();
    let sim = session;
    let mut golden = GoldenModel::new(spec);
    let clock = spec.attrs.clock.clone();
    let mut checks_run = 0usize;
    let mut checks_compared = 0usize;
    let mut ticks_driven = 0usize;

    for step in &stimuli.steps {
        match step {
            StimulusStep::Set(name, value) => {
                golden.set_input(name, *value);
                if let Err(e) = sim.poke_u64(name, *value) {
                    // Distinguish missing-port binding errors and budget
                    // exhaustion from other runtime failures.
                    return interface_or_sim_error(e, checks_run, checks_compared);
                }
            }
            StimulusStep::Tick => {
                ticks_driven += 1;
                if ticks_driven > options.budget.max_ticks {
                    return CosimReport {
                        verdict: Verdict::ResourceExhausted(format!(
                            "clock-cycle budget exhausted (limit {})",
                            options.budget.max_ticks
                        )),
                        checks_run,
                        checks_compared,
                    };
                }
                // Falling edge first, with a *mid-tick checkpoint*: a DUT
                // built on the wrong clock edge has updated at the wrong
                // moment and gets caught here. For posedge specs the golden
                // model must still hold its pre-tick state at clk-low; for
                // negedge specs the falling edge IS the active edge, so the
                // golden model ticks first.
                if let Err(e) = sim.poke_u64(&clock, 0) {
                    return interface_or_sim_error(e, checks_run, checks_compared);
                }
                if spec.attrs.edge == haven_verilog::ast::Edge::Neg {
                    golden.tick();
                }
                if options.mid_tick_checks {
                    let expected = sorted_outputs(&golden);
                    for (name, want) in &expected {
                        let Some(want) = want else { continue };
                        let got = sim.peek_u64(name).ok().flatten();
                        if got != Some(*want) {
                            return CosimReport {
                                verdict: Verdict::FunctionalMismatch {
                                    at_check: checks_run,
                                    detail: format!(
                                        "`{name}` at clk-low: expected {want}, got {}",
                                        got.map_or("x".to_string(), |g| g.to_string())
                                    ),
                                },
                                checks_run,
                                checks_compared,
                            };
                        }
                    }
                }
                if spec.attrs.edge != haven_verilog::ast::Edge::Neg {
                    golden.tick();
                }
                if let Err(e) = sim.poke_u64(&clock, 1) {
                    return interface_or_sim_error(e, checks_run, checks_compared);
                }
            }
            StimulusStep::Check => {
                checks_run += 1;
                let expected = sorted_outputs(&golden);
                let mut known_any = false;
                for (name, want) in &expected {
                    let Some(want) = want else { continue };
                    known_any = true;
                    let got = match sim.peek_u64(name) {
                        Ok(v) => v,
                        Err(e) => {
                            return CosimReport {
                                verdict: Verdict::InterfaceError(e.to_string()),
                                checks_run,
                                checks_compared,
                            }
                        }
                    };
                    if got != Some(*want) {
                        let detail = match got {
                            Some(g) => format!("`{name}`: expected {want}, got {g}"),
                            None => format!("`{name}`: expected {want}, got x"),
                        };
                        return CosimReport {
                            verdict: Verdict::FunctionalMismatch {
                                at_check: checks_run - 1,
                                detail,
                            },
                            checks_run,
                            checks_compared: checks_compared + 1,
                        };
                    }
                }
                if known_any {
                    checks_compared += 1;
                }
            }
        }
    }
    CosimReport {
        verdict: Verdict::Pass,
        checks_run,
        checks_compared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::codegen::{emit, EmitStyle};
    use crate::stimuli::stimuli_for;
    use haven_verilog::analyze::ResetKind;

    fn check_correct(spec: &Spec) -> CosimReport {
        let src = emit(spec, &EmitStyle::correct());
        let stim = stimuli_for(spec, 42);
        cosimulate(spec, &src, &stim)
    }

    /// The keystone test: for every builder, correct emission must match
    /// the independently-written golden model at every checkpoint.
    #[test]
    fn correct_emission_matches_golden_for_all_builders() {
        use crate::ir::{AluOp, ShiftDirection};
        let specs = vec![
            builders::gate("g", haven_verilog::ast::BinaryOp::BitXor),
            builders::adder("a", 8),
            builders::mux2("m", 4),
            builders::comparator("cmp", 5),
            builders::decoder("dec", 3),
            builders::truth_table_spec(
                "tt",
                vec!["a".into(), "b".into(), "c".into()],
                vec!["y".into(), "z".into()],
                (0..8).map(|i| (i, i * 3 % 4)).collect(),
            ),
            builders::fsm_ab("fsm"),
            builders::fsm(
                "fsm4",
                vec!["S0".into(), "S1".into(), "S2".into(), "S3".into()],
                0,
                vec![(1, 0), (2, 1), (3, 0), (3, 3)],
                vec![0, 0, 1, 1],
            ),
            builders::counter("cnt", 4, Some(10)),
            builders::counter("cnt2", 6, None),
            builders::down_counter("dcnt", 4, Some(9)),
            builders::shift_register("sr", 8, ShiftDirection::Right),
            builders::shift_register("sl", 5, ShiftDirection::Left),
            builders::clock_divider("cd", 3),
            builders::pipeline("pipe", 8, 3),
            builders::register("r", 16),
            builders::alu(
                "alu",
                8,
                vec![AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Xor],
            ),
        ];
        for spec in specs {
            let report = check_correct(&spec);
            assert!(
                report.verdict.functional_ok(),
                "{}: {:?}\n{}",
                spec.name,
                report.verdict,
                emit(&spec, &EmitStyle::correct())
            );
            assert!(
                report.checks_compared > 0,
                "{}: nothing compared",
                spec.name
            );
        }
    }

    #[test]
    fn starved_tick_budget_is_resource_exhausted() {
        let spec = builders::counter("c", 4, None);
        let src = emit(&spec, &EmitStyle::correct());
        let options = CosimOptions {
            budget: SimBudget {
                max_ticks: 1,
                ..SimBudget::default()
            },
            ..CosimOptions::default()
        };
        let report = cosimulate_with(&spec, &src, &stimuli_for(&spec, 42), &options);
        assert!(
            matches!(report.verdict, Verdict::ResourceExhausted(_)),
            "{:?}",
            report.verdict
        );
        assert!(report.verdict.syntax_ok(), "compiled fine: still syntax-ok");
        assert!(report.verdict.is_fault());
        assert!(!report.verdict.functional_ok());
    }

    #[test]
    fn runaway_loop_is_resource_exhausted() {
        let spec = builders::adder("a", 4);
        let src = "module a(input [3:0] a, input [3:0] b, output reg [3:0] s);\n integer i;\n always @(*) begin\n  s = 4'd0;\n  for (i = 0; i < 100000; i = i + 1) s = s + a;\n end\nendmodule";
        let report = cosimulate(&spec, src, &stimuli_for(&spec, 1));
        assert!(
            matches!(report.verdict, Verdict::ResourceExhausted(_)),
            "{:?}",
            report.verdict
        );
    }

    #[test]
    fn wrong_reset_style_is_caught() {
        let spec = builders::counter("c", 4, None); // spec: async rst_n
        let src = emit(
            &spec,
            &EmitStyle {
                reset_kind_override: Some(ResetKind::Sync),
                ..EmitStyle::correct()
            },
        );
        let report = cosimulate(&spec, &src, &stimuli_for(&spec, 42));
        assert!(
            matches!(report.verdict, Verdict::FunctionalMismatch { .. }),
            "{:?}",
            report.verdict
        );
    }

    #[test]
    fn wrong_edge_is_caught() {
        use haven_verilog::ast::Edge;
        let spec = builders::counter("c", 4, None);
        let src = emit(
            &spec,
            &EmitStyle {
                edge_override: Some(Edge::Neg),
                ..EmitStyle::correct()
            },
        );
        let report = cosimulate(&spec, &src, &stimuli_for(&spec, 42));
        assert!(
            matches!(report.verdict, Verdict::FunctionalMismatch { .. }),
            "{:?}",
            report.verdict
        );
    }

    #[test]
    fn wrong_enable_polarity_is_caught() {
        let mut spec = builders::counter("c", 4, None);
        spec.attrs.enable = Some(crate::ir::EnableSpec {
            name: "en".into(),
            active_high: true,
        });
        let src = emit(
            &spec,
            &EmitStyle {
                flip_enable_polarity: true,
                ..EmitStyle::correct()
            },
        );
        let report = cosimulate(&spec, &src, &stimuli_for(&spec, 42));
        assert!(
            matches!(report.verdict, Verdict::FunctionalMismatch { .. }),
            "{:?}",
            report.verdict
        );
    }

    #[test]
    fn syntax_error_is_syntax_verdict() {
        let spec = builders::adder("a", 4);
        let report = cosimulate(
            &spec,
            "def adder(a, b): return a + b",
            &stimuli_for(&spec, 1),
        );
        assert!(matches!(report.verdict, Verdict::SyntaxError(_)));
        assert!(!report.verdict.syntax_ok());
    }

    #[test]
    fn wrong_ports_are_interface_errors() {
        let spec = builders::adder("a", 4);
        let src = "module a(input [3:0] x, input [3:0] y, output [3:0] s);\n assign s = x + y;\nendmodule";
        let report = cosimulate(&spec, src, &stimuli_for(&spec, 1));
        assert!(
            matches!(report.verdict, Verdict::InterfaceError(_)),
            "{:?}",
            report.verdict
        );
        assert!(
            report.verdict.syntax_ok(),
            "interface errors still count as syntactically valid"
        );
    }

    #[test]
    fn wrong_operator_is_functional_mismatch() {
        let spec = builders::gate("g", haven_verilog::ast::BinaryOp::BitAnd);
        // hallucinated: OR instead of AND
        let src = "module g(input a, input b, output y);\n assign y = a | b;\nendmodule";
        let report = cosimulate(&spec, src, &stimuli_for(&spec, 1));
        assert!(matches!(report.verdict, Verdict::FunctionalMismatch { .. }));
    }

    /// The satellite fix this refactor exists for: port handles are
    /// resolved once per artifact, and re-running the same stimuli on a
    /// reused session is bit-identical to a fresh one — for passing and
    /// failing candidates alike, on both backends.
    #[test]
    fn repeated_session_runs_are_bit_identical() {
        use haven_engine::{Engine, EngineOptions};
        let spec = builders::counter("c", 4, Some(10));
        let correct = emit(&spec, &EmitStyle::correct());
        let wrong = emit(
            &spec,
            &EmitStyle {
                reset_kind_override: Some(ResetKind::Sync),
                ..EmitStyle::correct()
            },
        );
        let stim = stimuli_for(&spec, 42);
        for backend in [SimBackend::Compiled, SimBackend::Interpreter] {
            let options = CosimOptions {
                backend,
                ..CosimOptions::default()
            };
            for src in [&correct, &wrong] {
                let engine = Engine::new(EngineOptions {
                    backend,
                    ..EngineOptions::default()
                });
                let artifact = engine.prepare(src).unwrap();
                let mut session = engine
                    .session_with_budget(&artifact, options.budget)
                    .unwrap();
                let first = cosimulate_session(&spec, &mut session, &stim, &options);
                let handles = session.handle_count();
                let second = cosimulate_session(&spec, &mut session, &stim, &options);
                let third = cosimulate_session(&spec, &mut session, &stim, &options);
                assert_eq!(first, second, "{backend:?}: run 2 diverged");
                assert_eq!(first, third, "{backend:?}: run 3 diverged");
                assert_eq!(
                    session.handle_count(),
                    handles,
                    "{backend:?}: later runs must not re-resolve ports"
                );
                assert_eq!(session.runs(), 3);
                // And the session answer matches the one-shot oracle.
                let one_shot = cosimulate_with(&spec, src, &stim, &options);
                assert_eq!(first, one_shot, "{backend:?}: session vs one-shot");
            }
        }
    }

    #[test]
    fn blocking_pipeline_bug_is_caught() {
        // 2-stage pipeline written with blocking assignments collapses to
        // 1 stage — the co-sim must see it.
        let spec = builders::pipeline("p", 4, 2);
        let src = emit(
            &spec,
            &EmitStyle {
                nonblocking_in_seq: false,
                ..EmitStyle::correct()
            },
        );
        let report = cosimulate(&spec, &src, &stimuli_for(&spec, 42));
        assert!(
            matches!(report.verdict, Verdict::FunctionalMismatch { .. }),
            "{:?}",
            report.verdict
        );
    }
}
