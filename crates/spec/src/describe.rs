//! Rendering specs as natural-language instructions.
//!
//! Two registers of instruction exist in the paper's world:
//!
//! * **Engineer style** — precise, convention-laden phrasing with explicit
//!   attributes and a module header: what VerilogEval-human tasks and the
//!   K-dataset exemplars look like.
//! * **Vanilla style** — the loose, underspecified captions a
//!   general-purpose LLM writes for scraped code (§III-C step 5): correct
//!   topic, but attributes and conventions dropped or vague.
//!
//! The engineer templates double as a *grammar*: the simulated CodeGen-LLM
//! in `haven-lm` parses these sentences back into specs, so every template
//! here has an inverse there. Symbolic tasks embed modality text blocks
//! (rendered by `haven-modality`) instead of sentences; this module leaves
//! a `{{TABLE}}`-style placeholder slot to the caller for those.

use haven_verilog::analyze::ResetKind;
use haven_verilog::ast::{BinaryOp, Edge, Expr, UnaryOp};
use haven_verilog::pretty::pretty_expr;

use crate::codegen::emit_header;
use crate::ir::*;

/// Instruction register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DescribeStyle {
    /// Precise HDL-engineer phrasing, attributes spelled out, header given.
    Engineer,
    /// Loose caption: topic right, attributes and header omitted.
    Vanilla,
}

/// Renders the attribute sentences (reset / edge / enable conventions).
pub fn attr_sentences(attrs: &AttrSpec) -> Vec<String> {
    let mut out = Vec::new();
    if let Some(r) = &attrs.reset {
        let s = match r.kind {
            ResetKind::AsyncActiveLow => {
                format!("Use an asynchronous active-low reset named `{}`.", r.name)
            }
            ResetKind::AsyncActiveHigh => {
                format!("Use an asynchronous active-high reset named `{}`.", r.name)
            }
            ResetKind::Sync => format!("Use a synchronous reset named `{}`.", r.name),
        };
        out.push(s);
    }
    if attrs.edge == Edge::Neg {
        out.push(format!(
            "Registers update on the negative edge of `{}`.",
            attrs.clock
        ));
    }
    if let Some(e) = &attrs.enable {
        let pol = if e.active_high {
            "active-high"
        } else {
            "active-low"
        };
        out.push(format!("Include an {pol} enable named `{}`.", e.name));
    }
    out
}

/// The header sentence (engineer prompts end with it; SI-CoT appends it
/// when missing).
pub fn header_sentence(spec: &Spec) -> String {
    format!("The module header is: `{}`", emit_header(spec))
}

fn port_list(ports: &[PortSpec]) -> String {
    ports
        .iter()
        .map(|p| {
            if p.width == 1 {
                format!("`{}` (1 bit)", p.name)
            } else {
                format!("`{}` ({} bits)", p.name, p.width)
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders the core engineer-style instruction body (without symbolic
/// blocks — the caller inserts those after the first sentence for
/// truth-table / waveform / state-diagram tasks).
pub fn describe(spec: &Spec, style: DescribeStyle) -> String {
    match style {
        DescribeStyle::Engineer => engineer(spec),
        DescribeStyle::Vanilla => vanilla(spec),
    }
}

fn engineer(spec: &Spec) -> String {
    let mut lines = Vec::new();
    match &spec.behavior {
        Behavior::Comb(rules) => {
            lines.push(format!(
                "Implement a combinational module named `{}`.",
                spec.name
            ));
            lines.push(format!("Inputs: {}.", port_list(&spec.inputs)));
            lines.push(format!("Outputs: {}.", port_list(&spec.outputs)));
            for r in rules {
                lines.push(format!(
                    "Function: {} = {};",
                    r.output,
                    pretty_expr(&r.expr)
                ));
            }
        }
        Behavior::TruthTable(tt) => {
            lines.push(format!(
                "Implement a combinational module named `{}` realizing the truth table below.",
                spec.name
            ));
            lines.push(truth_table_text(tt));
        }
        Behavior::Fsm(f) => {
            lines.push(format!(
                "Implement the finite state machine named `{}` described by the state diagram below, using the conventional three-process FSM style.",
                spec.name
            ));
            lines.push(state_diagram_text(f));
        }
        Behavior::Counter(c) => {
            let dir = match c.direction {
                CountDirection::Up => "up",
                CountDirection::Down => "down",
            };
            let mut s = format!(
                "Implement a {}-bit {dir} counter named `{}` with output `{}`.",
                c.width, spec.name, c.output
            );
            if let Some(m) = c.modulus {
                s.push_str(&format!(" The counter counts modulo {m}."));
            }
            lines.push(s);
        }
        Behavior::ShiftReg(s) => {
            let dir = match s.direction {
                ShiftDirection::Left => "left",
                ShiftDirection::Right => "right",
            };
            lines.push(format!(
                "Implement a {}-bit shift register named `{}` that shifts {dir}, with serial input `{}` and parallel output `{}`.",
                s.width, spec.name, s.serial_in, s.output
            ));
        }
        Behavior::ClockDiv(c) => {
            lines.push(format!(
                "Implement a clock divider named `{}` whose output `{}` toggles every {} clock cycles.",
                spec.name, c.output, c.half_period
            ));
        }
        Behavior::Register(r) => {
            if r.stages <= 1 {
                lines.push(format!(
                    "Implement a {}-bit D register named `{}` with input `{}` and output `{}`.",
                    r.width, spec.name, r.input, r.output
                ));
            } else {
                lines.push(format!(
                    "Implement a {}-stage pipeline register named `{}` with {}-bit input `{}` and output `{}`.",
                    r.stages, spec.name, r.width, r.input, r.output
                ));
            }
        }
        Behavior::Alu(a) => {
            let ops = a
                .ops
                .iter()
                .enumerate()
                .map(|(i, op)| format!("{i}: {}", op.mnemonic()))
                .collect::<Vec<_>>()
                .join("; ");
            lines.push(format!(
                "Implement a {}-bit ALU named `{}` with operands `{}` and `{}`, opcode `{}` and result `{}`. Opcodes: {}.",
                a.width, spec.name, a.a, a.b, a.op, a.y, ops
            ));
        }
    }
    if spec.behavior.is_sequential() {
        lines.extend(attr_sentences(&spec.attrs));
    }
    lines.push(header_sentence(spec));
    lines.join("\n")
}

fn vanilla(spec: &Spec) -> String {
    // Loose captions: topic preserved, everything else vague — this is
    // the "trivial and misaligned description" failure mode of Table I.
    match &spec.behavior {
        Behavior::Comb(_) | Behavior::TruthTable(_) => format!(
            "Write a Verilog module called {} that computes a logic function of its inputs.",
            spec.name
        ),
        Behavior::Fsm(_) => format!(
            "Write a Verilog module called {} that implements a state machine.",
            spec.name
        ),
        Behavior::Counter(c) => format!(
            "Write a Verilog module called {} that implements a {}-bit counter.",
            spec.name, c.width
        ),
        Behavior::ShiftReg(s) => format!(
            "Write a Verilog module called {} that implements a {}-bit shift register.",
            spec.name, s.width
        ),
        Behavior::ClockDiv(_) => format!(
            "Write a Verilog module called {} that divides the clock.",
            spec.name
        ),
        Behavior::Register(r) => format!(
            "Write a Verilog module called {} that registers a {}-bit value.",
            spec.name, r.width
        ),
        Behavior::Alu(a) => format!(
            "Write a Verilog module called {} that implements a {}-bit ALU.",
            spec.name, a.width
        ),
    }
}

/// Renders a truth table in the paper's tabular text format
/// (`haven-modality` parses this format; the duplication here avoids a
/// crate cycle and is pinned by cross-crate tests).
pub fn truth_table_text(tt: &TruthTableSpec) -> String {
    let mut out = String::new();
    out.push_str(&tt.inputs.join(" "));
    out.push(' ');
    out.push_str(&tt.outputs.join(" "));
    for (i, o) in &tt.rows {
        out.push('\n');
        let mut cells = Vec::new();
        for k in (0..tt.inputs.len()).rev() {
            cells.push((i >> k & 1).to_string());
        }
        for k in (0..tt.outputs.len()).rev() {
            cells.push((o >> k & 1).to_string());
        }
        out.push_str(&cells.join(" "));
    }
    out
}

/// Renders an FSM as the paper's state-diagram edge list
/// (`A[out=0]-[x=0]->B`).
pub fn state_diagram_text(f: &FsmSpec) -> String {
    let mut lines = Vec::new();
    for (i, s) in f.states.iter().enumerate() {
        let (t0, t1) = f.transitions[i];
        for (v, t) in [(0usize, t0), (1usize, t1)] {
            lines.push(format!(
                "{s}[out={}]-[{}={v}]->{}",
                f.outputs[i], f.input, f.states[t]
            ));
        }
    }
    lines.join("\n")
}

// ---- word-rendered logical expressions (L-dataset, §III-D) -------------

/// Renders a left-to-right operator chain the way the paper's Table II
/// example phrases it: `(a + b) | c` → "a plus b, then or c".
///
/// Only flat chains are rendered this way; the value folds left-to-right,
/// which is exactly the ambiguity that trips models without logical
/// fine-tuning.
pub fn render_chain_words(first: &str, rest: &[(BinaryOp, String)]) -> String {
    let mut s = first.to_string();
    for (i, (op, operand)) in rest.iter().enumerate() {
        let word = binop_word(*op);
        if i == 0 {
            s.push_str(&format!(" {word} {operand}"));
        } else {
            s.push_str(&format!(", then {word} {operand}"));
        }
    }
    s
}

/// The word for a binary operator in chain phrasing.
pub fn binop_word(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::Add => "plus",
        BinaryOp::Sub => "minus",
        BinaryOp::BitAnd => "and",
        BinaryOp::BitOr => "or",
        BinaryOp::BitXor => "xor",
        _ => "combined with",
    }
}

/// Parses a chain word back to its operator (inverse of [`binop_word`]).
pub fn word_binop(word: &str) -> Option<BinaryOp> {
    Some(match word {
        "plus" => BinaryOp::Add,
        "minus" => BinaryOp::Sub,
        "and" => BinaryOp::BitAnd,
        "or" => BinaryOp::BitOr,
        "xor" => BinaryOp::BitXor,
        _ => return None,
    })
}

/// Folds a chain into the left-associated expression it denotes.
pub fn chain_expr(first: &str, rest: &[(BinaryOp, String)]) -> Expr {
    let mut e = Expr::ident(first);
    for (op, operand) in rest {
        e = Expr::Binary(*op, Box::new(e), Box::new(Expr::ident(operand)));
    }
    e
}

// ---- instructional if/else chains (L-dataset, §III-D) ------------------

/// One arm of an instructional condition chain: all `(input, value)` pairs
/// must hold for `output_value` to apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainArm {
    /// Conjunction of equality tests.
    pub conditions: Vec<(String, u64)>,
    /// Output when the arm is taken.
    pub output_value: u64,
}

/// An if / else-if / else specification of a 1-output function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IfChain {
    /// Arms in priority order.
    pub arms: Vec<ChainArm>,
    /// Output when no arm matches.
    pub else_value: u64,
}

impl IfChain {
    /// Renders the pseudocode block the paper's Table II shows
    /// ("Implement the logic below: if a == 0 && b == 0; out = 0; ...").
    pub fn to_text(&self, output: &str) -> String {
        let mut lines = vec!["Implement the logic below:".to_string()];
        for (i, arm) in self.arms.iter().enumerate() {
            let kw = if i == 0 { "if" } else { "elif" };
            let conds = arm
                .conditions
                .iter()
                .map(|(n, v)| format!("{n} == {v}"))
                .collect::<Vec<_>>()
                .join(" && ");
            lines.push(format!("{kw} {conds}; {output} = {};", arm.output_value));
        }
        lines.push(format!("else; {output} = {};", self.else_value));
        lines.join("\n")
    }

    /// The nested-ternary expression the chain denotes. `widths` maps each
    /// input to its port width (for literal sizing).
    pub fn to_expr(&self, widths: &dyn Fn(&str) -> usize, out_width: usize) -> Expr {
        let mut expr = Expr::lit(self.else_value, out_width);
        for arm in self.arms.iter().rev() {
            let mut cond: Option<Expr> = None;
            for (name, value) in &arm.conditions {
                let test = Expr::Binary(
                    BinaryOp::Eq,
                    Box::new(Expr::ident(name)),
                    Box::new(Expr::lit(*value, widths(name))),
                );
                cond = Some(match cond {
                    Some(c) => Expr::Binary(BinaryOp::LogicAnd, Box::new(c), Box::new(test)),
                    None => test,
                });
            }
            expr = Expr::Ternary(
                Box::new(cond.expect("arm has conditions")),
                Box::new(Expr::lit(arm.output_value, out_width)),
                Box::new(expr),
            );
        }
        expr
    }
}

/// Renders an arbitrary expression to guarded English for simple forms;
/// falls back to Verilog syntax in backticks.
pub fn expr_phrase(e: &Expr) -> String {
    match e {
        Expr::Binary(op, a, b) => {
            if let (Expr::Ident(x), Expr::Ident(y)) = (a.as_ref(), b.as_ref()) {
                return format!("{x} {} {y}", binop_word(*op));
            }
            format!("`{}`", pretty_expr(e))
        }
        Expr::Unary(UnaryOp::BitNot, a) => {
            if let Expr::Ident(x) = a.as_ref() {
                return format!("not {x}");
            }
            format!("`{}`", pretty_expr(e))
        }
        _ => format!("`{}`", pretty_expr(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn engineer_counter_description_is_precise() {
        let d = describe(
            &builders::counter("cnt", 4, Some(10)),
            DescribeStyle::Engineer,
        );
        assert!(d.contains("4-bit up counter named `cnt`"), "{d}");
        assert!(d.contains("modulo 10"), "{d}");
        assert!(
            d.contains("asynchronous active-low reset named `rst_n`"),
            "{d}"
        );
        assert!(
            d.contains("module cnt (input clk, input rst_n, output [3:0] q);"),
            "{d}"
        );
    }

    #[test]
    fn vanilla_counter_description_is_vague() {
        let d = describe(
            &builders::counter("cnt", 4, Some(10)),
            DescribeStyle::Vanilla,
        );
        assert!(!d.contains("rst_n"), "{d}");
        assert!(!d.contains("modulo"), "{d}");
        assert!(d.contains("counter"), "{d}");
    }

    #[test]
    fn chain_words_match_paper_example() {
        // "the output signal equals a plus b, then or c" = (a + b) | c
        let rest = vec![
            (BinaryOp::Add, "b".to_string()),
            (BinaryOp::BitOr, "c".to_string()),
        ];
        assert_eq!(render_chain_words("a", &rest), "a plus b, then or c");
        let e = chain_expr("a", &rest);
        assert_eq!(pretty_expr(&e), "(a + b) | c");
    }

    #[test]
    fn if_chain_text_and_expr_agree() {
        use haven_verilog::eval::eval_expr;
        use haven_verilog::logic::LogicVec;
        use std::collections::HashMap;

        let chain = IfChain {
            arms: vec![
                ChainArm {
                    conditions: vec![("a".into(), 0), ("b".into(), 0)],
                    output_value: 0,
                },
                ChainArm {
                    conditions: vec![("a".into(), 1), ("b".into(), 0)],
                    output_value: 0,
                },
            ],
            else_value: 1,
        };
        let text = chain.to_text("out");
        assert!(text.contains("if a == 0 && b == 0; out = 0;"), "{text}");
        assert!(text.contains("else; out = 1;"), "{text}");

        struct E(HashMap<String, u64>);
        impl haven_verilog::eval::SignalEnv for E {
            fn value_of(&self, n: &str) -> Option<LogicVec> {
                self.0.get(n).map(|&v| LogicVec::from_u64(v, 1))
            }
            fn lsb_of(&self, _: &str) -> usize {
                0
            }
        }
        let expr = chain.to_expr(&|_| 1, 1);
        for (a, b, want) in [(0, 0, 0u64), (1, 0, 0), (0, 1, 1), (1, 1, 1)] {
            let env = E([("a".to_string(), a), ("b".to_string(), b)]
                .into_iter()
                .collect());
            assert_eq!(eval_expr(&expr, &env).to_u64(), Some(want), "a={a} b={b}");
        }
    }

    #[test]
    fn all_builders_describe_without_panicking() {
        use crate::ir::{AluOp, ShiftDirection};
        for spec in [
            builders::gate("g", BinaryOp::BitAnd),
            builders::adder("a", 8),
            builders::mux2("m", 4),
            builders::fsm_ab("f"),
            builders::counter("c", 4, None),
            builders::shift_register("s", 8, ShiftDirection::Left),
            builders::clock_divider("d", 3),
            builders::pipeline("p", 8, 2),
            builders::alu("alu", 8, vec![AluOp::Add, AluOp::Sub]),
            builders::truth_table_spec("t", vec!["a".into()], vec!["y".into()], vec![(0, 1)]),
        ] {
            for style in [DescribeStyle::Engineer, DescribeStyle::Vanilla] {
                assert!(!describe(&spec, style).is_empty());
            }
        }
    }
}
