//! Spec-aware entry points to the formal equivalence oracle.
//!
//! The oracle itself ([`haven_engine::FormalOracle`]) is spec-agnostic:
//! it compares two compiled designs under an explicit clock and reset
//! preamble. This module derives those from a [`Spec`] — the clock from
//! the sequential attributes and a constant reset protocol mirroring
//! episode 1 of [`crate::stimuli::stimuli_for`] (data inputs parked at
//! zero, enable active, reset asserted across one cycle then released) —
//! and runs `candidate ≡ correct-emission` for any candidate source.
//!
//! The formal verdict complements co-simulation rather than replacing
//! it: cosim drives a finite stimulus program and can false-pass a
//! candidate that only misbehaves off-program, while the oracle decides
//! all input assignments at once (within the unroll bound for
//! sequential designs). `prop_formal.rs` pins the agreement direction:
//! formal never calls a pair equivalent where cosim exhibits a real
//! mismatch.

use std::sync::Arc;

use haven_engine::{Engine, FormalOracle, FormalOutcome};
use haven_formal::{EquivOptions, PreambleOp};

use crate::codegen::{emit, EmitStyle};
use crate::ir::Spec;

/// Specializes `base` options to `spec`: clock and reset preamble for
/// sequential behaviours, pure combinational query otherwise.
pub fn equiv_options_for(spec: &Spec, base: &EquivOptions) -> EquivOptions {
    if !spec.behavior.is_sequential() {
        return EquivOptions {
            clock: None,
            preamble: Vec::new(),
            postamble: Vec::new(),
            ..base.clone()
        };
    }
    let mut preamble = Vec::new();
    // Park data inputs and activate the enable, exactly like the
    // stimulus generator's reset episode, so the two oracles agree on
    // what "after reset" means.
    for p in &spec.inputs {
        preamble.push(PreambleOp::Set(p.name.clone(), 0));
    }
    if let Some(en) = &spec.attrs.enable {
        preamble.push(PreambleOp::Set(en.name.clone(), u64::from(en.active_high)));
    }
    let mut postamble = Vec::new();
    if let Some(r) = &spec.attrs.reset {
        let assert = u64::from(r.asserted_by(true));
        preamble.push(PreambleOp::Set(r.name.clone(), assert));
        preamble.push(PreambleOp::Tick);
        preamble.push(PreambleOp::Set(r.name.clone(), 1 - assert));
        // Mid-run reset probe, mirroring the stimulus generator's reset
        // episode 4. The reset pin is edge-watched for async styles and
        // therefore held constant during the free steps; re-asserting it
        // here — with an output comparison *before* the next clock edge —
        // is what separates async from sync reset implementations.
        postamble.push(PreambleOp::Set(r.name.clone(), assert));
        postamble.push(PreambleOp::Tick);
    }
    EquivOptions {
        clock: Some(spec.attrs.clock.clone()),
        preamble,
        postamble,
        ..base.clone()
    }
}

/// Checks `candidate_source` against the spec's correct emission.
///
/// Returns `None` when either side fails to prepare (candidate syntax
/// errors are already the cosim `SyntaxError` bucket; the formal rung
/// only speaks about compilable designs).
pub fn formal_check(
    engine: &Engine,
    oracle: &FormalOracle,
    spec: &Spec,
    candidate_source: &str,
) -> Option<Arc<FormalOutcome>> {
    let golden = engine.prepare(&emit(spec, &EmitStyle::correct())).ok()?;
    let candidate = engine.prepare(candidate_source).ok()?;
    let opts = equiv_options_for(spec, oracle.options());
    Some(oracle.check_with(&golden, &candidate, &opts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use haven_verilog::analyze::ResetKind;
    use haven_engine::EngineOptions;
    use haven_formal::EquivVerdict;

    fn rig() -> (Engine, FormalOracle) {
        (
            Engine::new(EngineOptions::default()),
            FormalOracle::new(EquivOptions::default()),
        )
    }

    #[test]
    fn correct_emission_is_self_equivalent() {
        let (engine, oracle) = rig();
        for spec in [
            builders::adder("add", 8),
            builders::mux2("mux", 4),
            builders::counter("ctr", 4, None),
            builders::shift_register("shr", 4, crate::ir::ShiftDirection::Left),
        ] {
            let source = emit(&spec, &EmitStyle::correct());
            let outcome = formal_check(&engine, &oracle, &spec, &source)
                .expect("correct emission must prepare");
            assert_eq!(
                outcome.report.verdict,
                EquivVerdict::Equivalent,
                "{}",
                spec.name
            );
        }
    }

    #[test]
    fn blocking_assignment_hallucination_is_refuted() {
        // `=` instead of `<=` in a pipeline collapses the stages; the
        // formal oracle must find a distinguishing stimulus and confirm
        // it by replay.
        let (engine, oracle) = rig();
        let spec = builders::pipeline("pipe", 4, 2);
        let sabotaged = emit(
            &spec,
            &EmitStyle {
                nonblocking_in_seq: false,
                ..EmitStyle::correct()
            },
        );
        let outcome =
            formal_check(&engine, &oracle, &spec, &sabotaged).expect("sabotage still compiles");
        assert!(
            matches!(outcome.report.verdict, EquivVerdict::Counterexample(_)),
            "got {:?}",
            outcome.report.verdict
        );
        assert!(outcome.replay_confirmed);
    }

    #[test]
    fn reset_style_confusion_is_not_called_equivalent() {
        let (engine, oracle) = rig();
        let spec = builders::counter("ctr", 4, None);
        let sabotaged = emit(
            &spec,
            &EmitStyle {
                reset_kind_override: Some(ResetKind::Sync),
                ..EmitStyle::correct()
            },
        );
        let outcome =
            formal_check(&engine, &oracle, &spec, &sabotaged).expect("sabotage still compiles");
        // The reset pin is edge-watched on the async side and therefore
        // held constant during the free steps; only the postamble probe
        // separates the two styles, and it must do so with a confirmed
        // concrete trace, not merely a refusal to prove equivalence.
        assert!(
            matches!(outcome.report.verdict, EquivVerdict::Counterexample(_)),
            "got {:?}",
            outcome.report.verdict
        );
        assert!(outcome.replay_confirmed);
    }

    #[test]
    fn syntax_error_candidates_are_out_of_scope() {
        let (engine, oracle) = rig();
        let spec = builders::adder("add", 4);
        assert!(formal_check(&engine, &oracle, &spec, "not verilog").is_none());
    }
}
