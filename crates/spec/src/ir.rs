//! The hardware-intent intermediate representation.
//!
//! A [`Spec`] captures *what a module is supposed to do*, independent of
//! any Verilog text. Everything in the reproduction meets here:
//!
//! * the dataset generators produce specs and render them to prompts + code;
//! * the simulated LLM parses prompts back into (possibly corrupted) specs;
//! * the evaluation harness derives golden models and stimuli from specs.
//!
//! Combinational behaviour reuses [`haven_verilog::ast::Expr`] as its
//! expression language, so golden evaluation and code emission share the
//! battle-tested evaluator and pretty-printer from `haven-verilog`.

use haven_verilog::analyze::{ResetKind, Topic};
use haven_verilog::ast::{Edge, Expr};
use serde::{Deserialize, Serialize};

/// One named port with a width.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortSpec {
    /// Port name.
    pub name: String,
    /// Bit width (1..=64).
    pub width: usize,
}

impl PortSpec {
    /// Creates a port.
    pub fn new(name: impl Into<String>, width: usize) -> PortSpec {
        PortSpec {
            name: name.into(),
            width,
        }
    }

    /// One-bit port shorthand.
    pub fn bit(name: impl Into<String>) -> PortSpec {
        PortSpec::new(name, 1)
    }
}

/// Sequential-control attributes: clocking, reset and enable conventions
/// (§III-C: "critical Verilog attributes").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttrSpec {
    /// Clock signal name (present for all sequential behaviours).
    pub clock: String,
    /// Active clock edge.
    pub edge: Edge,
    /// Reset signal and style, if the design has one.
    pub reset: Option<ResetSpec>,
    /// Enable signal, if the design has one.
    pub enable: Option<EnableSpec>,
}

impl Default for AttrSpec {
    fn default() -> AttrSpec {
        AttrSpec {
            clock: "clk".to_string(),
            edge: Edge::Pos,
            reset: None,
            enable: None,
        }
    }
}

impl AttrSpec {
    /// Conventional attributes: posedge clk, async active-low `rst_n`.
    pub fn conventional() -> AttrSpec {
        AttrSpec {
            clock: "clk".into(),
            edge: Edge::Pos,
            reset: Some(ResetSpec {
                name: "rst_n".into(),
                kind: ResetKind::AsyncActiveLow,
            }),
            enable: None,
        }
    }

    /// Control ports implied by these attributes, in conventional order.
    pub fn control_ports(&self) -> Vec<PortSpec> {
        let mut ports = vec![PortSpec::bit(self.clock.clone())];
        if let Some(r) = &self.reset {
            ports.push(PortSpec::bit(r.name.clone()));
        }
        if let Some(e) = &self.enable {
            ports.push(PortSpec::bit(e.name.clone()));
        }
        ports
    }
}

/// Reset signal description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResetSpec {
    /// Signal name (`rst`, `rst_n`, `reset`…).
    pub name: String,
    /// Style: sync / async, polarity.
    pub kind: ResetKind,
}

impl ResetSpec {
    /// Whether the given signal level asserts the reset.
    pub fn asserted_by(&self, level: bool) -> bool {
        match self.kind {
            ResetKind::AsyncActiveLow => !level,
            ResetKind::AsyncActiveHigh => level,
            // The name decides polarity of a sync reset: `_n` = active low.
            ResetKind::Sync => {
                if self.name.ends_with("_n") {
                    !level
                } else {
                    level
                }
            }
        }
    }
}

/// Enable signal description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnableSpec {
    /// Signal name.
    pub name: String,
    /// `true` if the design updates when the signal is high.
    pub active_high: bool,
}

/// A single combinational rule: `output = expr(inputs)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CombRule {
    /// Driven output port.
    pub output: String,
    /// Expression over input port names.
    pub expr: Expr,
}

/// An explicit truth table over 1-bit inputs and outputs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TruthTableSpec {
    /// Input column names (MSB-first in the row encoding).
    pub inputs: Vec<String>,
    /// Output column names.
    pub outputs: Vec<String>,
    /// `rows[i] = (input_bits, output_bits)`; input bits are packed with
    /// `inputs[0]` as the most significant bit. Missing combinations read
    /// as all-zero outputs.
    pub rows: Vec<(u64, u64)>,
}

impl TruthTableSpec {
    /// Output bits for an input combination (0 if the row is absent).
    pub fn lookup(&self, input_bits: u64) -> u64 {
        self.rows
            .iter()
            .find(|(i, _)| *i == input_bits)
            .map(|(_, o)| *o)
            .unwrap_or(0)
    }
}

/// A Moore finite state machine over a single 1-bit input.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FsmSpec {
    /// State names (`A`, `B`, …); index is the binary encoding.
    pub states: Vec<String>,
    /// Reset / initial state index.
    pub initial: usize,
    /// The 1-bit input the transitions depend on.
    pub input: String,
    /// The Moore output port.
    pub output: String,
    /// `transitions[s] = (next_if_input_0, next_if_input_1)`.
    pub transitions: Vec<(usize, usize)>,
    /// `outputs[s]` = output value in state `s`.
    pub outputs: Vec<u64>,
    /// Width of the output port.
    pub output_width: usize,
}

impl FsmSpec {
    /// Bits needed to encode the state register.
    pub fn state_width(&self) -> usize {
        (usize::BITS - (self.states.len().max(2) - 1).leading_zeros()) as usize
    }
}

/// Counter direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CountDirection {
    /// Increments.
    Up,
    /// Decrements.
    Down,
}

/// An up/down counter, optionally modulo-N.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSpec {
    /// Count register width.
    pub width: usize,
    /// Direction.
    pub direction: CountDirection,
    /// Wrap at this value (`None` = natural 2^width wrap). For `Up`, the
    /// counter counts `0..modulus-1`; for `Down`, `modulus-1..0`.
    pub modulus: Option<u64>,
    /// Output port name.
    pub output: String,
}

/// Shift direction (towards MSB = left).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShiftDirection {
    /// Serial input enters at bit 0.
    Left,
    /// Serial input enters at the MSB.
    Right,
}

/// A serial-in parallel-out shift register.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShiftRegSpec {
    /// Register width.
    pub width: usize,
    /// Shift direction.
    pub direction: ShiftDirection,
    /// Serial data input port.
    pub serial_in: String,
    /// Parallel output port.
    pub output: String,
}

/// A clock divider producing a square wave at `clk / (2 * half_period)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockDivSpec {
    /// Input-clock cycles per output half-period (≥ 1).
    pub half_period: u64,
    /// Divided-clock output port.
    pub output: String,
}

/// A D register / pipeline stage with optional enable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterSpec {
    /// Data width.
    pub width: usize,
    /// Data input port.
    pub input: String,
    /// Registered output port.
    pub output: String,
    /// Pipeline depth (1 = simple register).
    pub stages: usize,
}

/// Operations an [`AluSpec`] can select between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a & b`
    And,
    /// `a | b`
    Or,
    /// `a ^ b`
    Xor,
    /// `~a`
    NotA,
    /// `a << 1`
    ShlA,
    /// `a >> 1`
    ShrA,
}

impl AluOp {
    /// Applies the operation on `width`-bit operands.
    pub fn apply(self, a: u64, b: u64, width: usize) -> u64 {
        let mask = if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let r = match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::NotA => !a,
            AluOp::ShlA => a << 1,
            AluOp::ShrA => (a & mask) >> 1,
        };
        r & mask
    }

    /// Short mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "ADD",
            AluOp::Sub => "SUB",
            AluOp::And => "AND",
            AluOp::Or => "OR",
            AluOp::Xor => "XOR",
            AluOp::NotA => "NOT",
            AluOp::ShlA => "SHL",
            AluOp::ShrA => "SHR",
        }
    }
}

/// A combinational ALU with an opcode select.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AluSpec {
    /// Operand width.
    pub width: usize,
    /// Selected operations; opcode `i` selects `ops[i]`.
    pub ops: Vec<AluOp>,
    /// First operand port.
    pub a: String,
    /// Second operand port.
    pub b: String,
    /// Opcode port.
    pub op: String,
    /// Result port.
    pub y: String,
}

impl AluSpec {
    /// Opcode port width.
    pub fn op_width(&self) -> usize {
        (usize::BITS - (self.ops.len().max(2) - 1).leading_zeros()) as usize
    }
}

/// What a module does.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Behavior {
    /// One expression per output.
    Comb(Vec<CombRule>),
    /// Explicit truth table.
    TruthTable(TruthTableSpec),
    /// Moore FSM.
    Fsm(FsmSpec),
    /// Counter.
    Counter(CounterSpec),
    /// Shift register.
    ShiftReg(ShiftRegSpec),
    /// Clock divider.
    ClockDiv(ClockDivSpec),
    /// D register / pipeline.
    Register(RegisterSpec),
    /// ALU.
    Alu(AluSpec),
}

impl Behavior {
    /// Whether the behaviour needs a clock.
    pub fn is_sequential(&self) -> bool {
        !matches!(
            self,
            Behavior::Comb(_) | Behavior::TruthTable(_) | Behavior::Alu(_)
        )
    }

    /// The design topic this behaviour corresponds to.
    pub fn topic(&self) -> Topic {
        match self {
            Behavior::Comb(_) => Topic::CombLogic,
            Behavior::TruthTable(_) => Topic::CombLogic,
            Behavior::Fsm(_) => Topic::Fsm,
            Behavior::Counter(_) => Topic::Counter,
            Behavior::ShiftReg(_) => Topic::ShiftRegister,
            Behavior::ClockDiv(_) => Topic::ClockDivider,
            Behavior::Register(_) => Topic::Register,
            Behavior::Alu(_) => Topic::Alu,
        }
    }
}

/// A complete module specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Spec {
    /// Module name.
    pub name: String,
    /// Data input ports (control ports come from `attrs`).
    pub inputs: Vec<PortSpec>,
    /// Output ports.
    pub outputs: Vec<PortSpec>,
    /// Behaviour.
    pub behavior: Behavior,
    /// Sequential attributes; ignored for combinational behaviours.
    pub attrs: AttrSpec,
}

impl Spec {
    /// All input ports including clock/reset/enable, in header order.
    pub fn all_inputs(&self) -> Vec<PortSpec> {
        let mut ports = Vec::new();
        if self.behavior.is_sequential() {
            ports.extend(self.attrs.control_ports());
        }
        ports.extend(self.inputs.iter().cloned());
        ports
    }

    /// Looks up the width of any port (input, control or output).
    pub fn port_width(&self, name: &str) -> Option<usize> {
        self.all_inputs()
            .iter()
            .chain(self.outputs.iter())
            .find(|p| p.name == name)
            .map(|p| p.width)
    }

    /// Sum of data-input widths (drives exhaustive-vs-random stimulus).
    pub fn data_input_bits(&self) -> usize {
        self.inputs.iter().map(|p| p.width).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsm_state_width() {
        let mk = |n: usize| FsmSpec {
            states: (0..n).map(|i| format!("S{i}")).collect(),
            initial: 0,
            input: "x".into(),
            output: "out".into(),
            transitions: vec![(0, 0); n],
            outputs: vec![0; n],
            output_width: 1,
        };
        assert_eq!(mk(2).state_width(), 1);
        assert_eq!(mk(3).state_width(), 2);
        assert_eq!(mk(4).state_width(), 2);
        assert_eq!(mk(5).state_width(), 3);
    }

    #[test]
    fn reset_assertion_levels() {
        let r = ResetSpec {
            name: "rst_n".into(),
            kind: ResetKind::AsyncActiveLow,
        };
        assert!(r.asserted_by(false));
        assert!(!r.asserted_by(true));
        let r = ResetSpec {
            name: "rst".into(),
            kind: ResetKind::Sync,
        };
        assert!(r.asserted_by(true));
        let r = ResetSpec {
            name: "srst_n".into(),
            kind: ResetKind::Sync,
        };
        assert!(r.asserted_by(false));
    }

    #[test]
    fn alu_ops_mask_to_width() {
        assert_eq!(AluOp::Add.apply(0xF, 1, 4), 0);
        assert_eq!(AluOp::Sub.apply(0, 1, 4), 0xF);
        assert_eq!(AluOp::NotA.apply(0b1010, 0, 4), 0b0101);
        assert_eq!(AluOp::ShrA.apply(0b1000, 0, 4), 0b0100);
    }

    #[test]
    fn control_ports_in_order() {
        let mut attrs = AttrSpec::conventional();
        attrs.enable = Some(EnableSpec {
            name: "en".into(),
            active_high: true,
        });
        let names: Vec<String> = attrs.control_ports().into_iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["clk", "rst_n", "en"]);
    }

    #[test]
    fn truth_table_lookup_defaults_to_zero() {
        let tt = TruthTableSpec {
            inputs: vec!["a".into(), "b".into()],
            outputs: vec!["y".into()],
            rows: vec![(0b11, 1)],
        };
        assert_eq!(tt.lookup(0b11), 1);
        assert_eq!(tt.lookup(0b01), 0);
    }
}
