//! Differential property tests for the netlist pass pipeline: across the
//! full builder population, every emission style (correct plus each
//! hallucination class) and randomized stimulus programs, bytecode
//! emitted from the *optimized* word-level netlist must produce
//! [`CosimReport`]s bit-identical to the reference interpreter — under
//! every individual pass and under the full pipeline. A second family of
//! properties pins that the pipeline is invisible to *budget* accounting:
//! two compiled engines that differ only in [`PassConfig`] report
//! bit-identically under arbitrary (including starved) budgets, because
//! work is charged per process activation and loop iteration, never per
//! bytecode op.
//!
//! Generation is hand-rolled and seeded (xorshift) like
//! `prop_backends.rs`, so every case executes in the offline build and
//! failures replay deterministically.

use haven_engine::{Engine, EngineOptions};
use haven_spec::builders;
use haven_spec::codegen::{emit, EmitStyle};
use haven_spec::cosim::{
    cosimulate_artifact, cosimulate_with, CosimOptions, CosimReport, SimBackend, SimBudget,
};
use haven_spec::ir::{AluOp, ShiftDirection};
use haven_spec::stimuli::{stimuli_for, Stimuli};
use haven_spec::Spec;
use haven_verilog::analyze::ResetKind;
use haven_verilog::ast::Edge;
use haven_verilog::PassConfig;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The full builder population — every design family the oracle sees.
fn population() -> Vec<Spec> {
    vec![
        builders::gate("d_gate", haven_verilog::ast::BinaryOp::BitXor),
        builders::adder("d_add", 8),
        builders::mux2("d_mux", 4),
        builders::comparator("d_cmp", 5),
        builders::decoder("d_dec", 3),
        builders::truth_table_spec(
            "d_tt",
            vec!["a".into(), "b".into(), "c".into()],
            vec!["y".into(), "z".into()],
            (0..8).map(|i| (i, i * 3 % 4)).collect(),
        ),
        builders::fsm_ab("d_fsm"),
        builders::fsm(
            "d_fsm4",
            vec!["S0".into(), "S1".into(), "S2".into(), "S3".into()],
            0,
            vec![(1, 0), (2, 1), (3, 0), (3, 3)],
            vec![0, 0, 1, 1],
        ),
        builders::counter("d_cnt", 4, Some(10)),
        builders::counter("d_cnt2", 6, None),
        builders::down_counter("d_dcnt", 4, Some(9)),
        builders::shift_register("d_sr", 8, ShiftDirection::Right),
        builders::shift_register("d_sl", 5, ShiftDirection::Left),
        builders::clock_divider("d_cd", 3),
        builders::pipeline("d_pipe", 8, 3),
        builders::register("d_reg", 16),
        builders::alu(
            "d_alu",
            8,
            vec![AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Xor],
        ),
    ]
}

/// Emission styles covering pass verdicts and every hallucination class
/// the oracle distinguishes.
fn styles() -> Vec<EmitStyle> {
    vec![
        EmitStyle::correct(),
        EmitStyle {
            edge_override: Some(Edge::Neg),
            ..EmitStyle::correct()
        },
        EmitStyle {
            reset_kind_override: Some(ResetKind::Sync),
            ..EmitStyle::correct()
        },
        EmitStyle {
            flip_enable_polarity: true,
            ..EmitStyle::correct()
        },
        EmitStyle {
            nonblocking_in_seq: false,
            ..EmitStyle::correct()
        },
    ]
}

/// Each pass in isolation, the empty pipeline, and the full pipeline.
fn configs() -> Vec<(&'static str, PassConfig)> {
    let only = |f: fn(&mut PassConfig)| {
        let mut p = PassConfig::none();
        f(&mut p);
        p
    };
    vec![
        ("none", PassConfig::none()),
        ("normalize", only(|p| p.normalize = true)),
        ("constfold", only(|p| p.constfold = true)),
        ("lower", only(|p| p.lower = true)),
        ("rebalance", only(|p| p.rebalance = true)),
        ("full", PassConfig::full()),
    ]
}

fn compiled_with(
    passes: PassConfig,
    spec: &Spec,
    source: &str,
    stim: &Stimuli,
    budget: SimBudget,
) -> CosimReport {
    let engine = Engine::new(EngineOptions {
        backend: SimBackend::Compiled,
        budget,
        cache_capacity: 4,
        passes,
    });
    let options = CosimOptions {
        mid_tick_checks: true,
        budget,
        backend: SimBackend::Compiled,
    };
    match engine.prepare(source) {
        Ok(artifact) => cosimulate_artifact(spec, &engine, &artifact, stim, &options),
        // Syntax failures never reach the pipeline; mirror the one-shot
        // path's classification so reports stay comparable.
        Err(_) => cosimulate_with(spec, source, stim, &options),
    }
}

fn interpreter(spec: &Spec, source: &str, stim: &Stimuli, budget: SimBudget) -> CosimReport {
    let options = CosimOptions {
        mid_tick_checks: true,
        budget,
        backend: SimBackend::Interpreter,
    };
    cosimulate_with(spec, source, stim, &options)
}

/// The tentpole property: for every design family × hallucination style,
/// the interpreter and the optimized-netlist compiled backend report
/// bit-identically — per individual pass and under the full pipeline.
/// A rewrite that is unsound for any four-state corner (x-poisoning
/// arithmetic, z-coercion in logic ops, width-changing identities) shows
/// up here as a verdict or checkpoint divergence.
#[test]
fn optimized_netlist_is_verdict_identical_with_interpreter() {
    let mut rng = Rng(0x6e7115_u64 ^ 0x9a55e5_u64);
    for spec in population() {
        for style in styles() {
            let source = emit(&spec, &style);
            let stim = stimuli_for(&spec, rng.next());
            let base = interpreter(&spec, &source, &stim, SimBudget::default());
            for (name, passes) in configs() {
                let opt = compiled_with(passes, &spec, &source, &stim, SimBudget::default());
                assert_eq!(
                    base, opt,
                    "{} (pass config `{name}`): optimized backend diverged\nsource:\n{source}",
                    spec.name
                );
            }
        }
    }
}

/// Budget invisibility: under arbitrary budgets — including ones starved
/// enough to exhaust mid-run — the unoptimized and fully-optimized
/// compiled engines must report bit-identically, because budget charges
/// count process activations and loop iterations, not bytecode ops. This
/// is what lets the pipeline shrink bytecode without perturbing any
/// `ResourceExhausted` verdict a consumer has cached.
#[test]
fn pass_pipeline_is_invisible_to_budget_accounting() {
    let mut rng = Rng(0xb06e7_u64);
    let pop = population();
    for case in 0..120 {
        let spec = &pop[rng.below(pop.len() as u64) as usize];
        let source = emit(spec, &EmitStyle::correct());
        let budget = SimBudget {
            max_settle_per_step: 1 + rng.below(64) as usize,
            max_loop_iterations: 1 + rng.below(16) as usize,
            max_ticks: 1 + rng.below(8) as usize,
            max_total_work: 1 + rng.below(256) as usize,
        };
        let stim = stimuli_for(spec, rng.next());
        let unopt = compiled_with(PassConfig::none(), spec, &source, &stim, budget);
        let opt = compiled_with(PassConfig::full(), spec, &source, &stim, budget);
        assert_eq!(
            unopt, opt,
            "case {case} ({}): pass pipeline perturbed budget accounting",
            spec.name
        );
    }
}

/// The pipeline only ever removes or shares work: across the population,
/// optimized artifacts carry bytecode no larger than the unoptimized
/// ones, and the netlist rung plus its pass stats are always present on
/// the compiled backend.
#[test]
fn optimized_artifacts_shrink_and_carry_the_netlist_rung() {
    let total_ops = |cd: &haven_verilog::CompiledDesign| -> usize {
        (0..cd.chunk_count() as u32).map(|i| cd.expr(i).len()).sum()
    };
    for spec in population() {
        let source = emit(&spec, &EmitStyle::correct());
        let opt_engine = Engine::new(EngineOptions::default());
        let unopt_engine = Engine::new(EngineOptions {
            passes: PassConfig::none(),
            ..EngineOptions::default()
        });
        let opt = opt_engine.prepare(&source).expect("population compiles");
        let unopt = unopt_engine.prepare(&source).expect("population compiles");
        let (ocd, ucd) = (
            opt.bytecode().expect("compiled backend"),
            unopt.bytecode().expect("compiled backend"),
        );
        assert!(
            total_ops(ocd) <= total_ops(ucd),
            "{}: optimization grew bytecode ({} > {})",
            spec.name,
            total_ops(ocd),
            total_ops(ucd)
        );
        assert!(opt.netlist().is_some(), "{}: netlist rung missing", spec.name);
        let stats = opt.pass_stats().expect("compiled backend has pass stats");
        assert!(stats.rounds >= 1, "{}: pipeline never ran", spec.name);
    }
}
