//! Soundness of the static gate with respect to this crate's emitter:
//! every builder's *correct* emission must produce **zero** Error-severity
//! findings (otherwise the eval harness would fail good code without
//! simulating it), while the X-generating `ignore_reset` deviation must
//! be caught.

use haven_spec::builders;
use haven_spec::codegen::{emit, EmitStyle};
use haven_spec::Spec;
use haven_verilog::{analyze_design, StaticRule};

fn all_builders() -> Vec<Spec> {
    use haven_spec::ir::ShiftDirection;
    use haven_verilog::ast::BinaryOp;

    vec![
        builders::gate("t_gate", BinaryOp::BitAnd),
        builders::adder("t_adder", 8),
        builders::mux2("t_mux", 4),
        builders::comparator("t_cmp", 4),
        builders::decoder("t_dec", 3),
        builders::truth_table_spec(
            "t_tt",
            vec!["a".into(), "b".into()],
            vec!["y".into()],
            vec![(0, 0), (1, 1), (2, 1), (3, 0)],
        ),
        builders::fsm_ab("t_fsm"),
        builders::counter("t_cnt", 6, None),
        builders::counter("t_cntm", 4, Some(10)),
        builders::down_counter("t_down", 4, None),
        builders::shift_register("t_shl", 8, ShiftDirection::Left),
        builders::shift_register("t_shr", 8, ShiftDirection::Right),
        builders::clock_divider("t_div", 5),
        builders::pipeline("t_pipe", 8, 3),
        builders::register("t_reg", 8),
        builders::alu(
            "t_alu",
            8,
            vec![
                haven_spec::ir::AluOp::Add,
                haven_spec::ir::AluOp::Sub,
                haven_spec::ir::AluOp::And,
            ],
        ),
    ]
}

#[test]
fn correct_emissions_have_no_error_findings() {
    for spec in all_builders() {
        let src = emit(&spec, &EmitStyle::correct());
        let design = haven_verilog::compile(&src).unwrap_or_else(|e| {
            panic!(
                "correct emission of `{}` must compile: {e}\n{src}",
                spec.name
            )
        });
        let report = analyze_design(&design);
        assert!(
            !report.has_errors(),
            "correct emission of `{}` tripped the static gate: {:?}\n{src}",
            spec.name,
            report.findings
        );
    }
}

#[test]
fn stylistic_comb_always_variant_stays_clean() {
    // `always @(*)` instead of `assign` is unconventional, not defective.
    let style = EmitStyle {
        comb_always_block: true,
        ..EmitStyle::correct()
    };
    for spec in all_builders() {
        let src = emit(&spec, &style);
        let Ok(design) = haven_verilog::compile(&src) else {
            continue;
        };
        let report = analyze_design(&design);
        assert!(
            !report.has_errors(),
            "comb-always emission of `{}` tripped the static gate: {:?}\n{src}",
            spec.name,
            report.findings
        );
    }
}

#[test]
fn ignore_reset_counter_is_caught_as_x_source() {
    let spec = builders::counter("t_cnt", 8, None);
    let src = emit(
        &spec,
        &EmitStyle {
            ignore_reset: true,
            ..EmitStyle::correct()
        },
    );
    let design = haven_verilog::compile(&src).expect("still compiles");
    let report = analyze_design(&design);
    assert!(report.has_errors(), "{src}");
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == StaticRule::XSource),
        "{:?}",
        report.findings
    );
}
