//! Agreement sweep between the formal equivalence oracle and cosim.
//!
//! For random specs crossed with seeded hallucination mutations (the
//! `haven-lm` corruption channels), this pins the soundness direction
//! of the formal rung:
//!
//! * formal **never** answers `Equivalent` where co-simulation exhibits
//!   a real functional mismatch *within the formal observation
//!   schedule*; and
//! * every `Counterexample` the oracle emits is confirmed by a
//!   bit-identical scalar replay (`FormalOutcome::replay_confirmed`).
//!
//! Observation schedules matter: the shipped cosim oracle also samples
//! outputs **mid-tick** (clk low), where e.g. a wrong-clock-edge
//! candidate is distinguishable even though it agrees with the golden
//! design at every post-edge instant — and the formal oracle's
//! obligations are exactly the post-tick instants (plus the reset
//! postamble). So the sweep drives cosim with `mid_tick_checks: false`
//! and a bounded program that mirrors the formal preamble (inputs
//! parked, enable active, one reset cycle) followed by at most
//! `seq_steps` random data ticks with a check after each tick. Every
//! checkpoint the program compares is then, by construction, one
//! assignment of one obligation the oracle decided for *all*
//! assignments — a cosim mismatch with a formal `Equivalent` would be
//! an outright soundness bug, not a schedule disagreement.

use haven_engine::{Engine, EngineOptions, FormalOracle};
use haven_formal::{EquivOptions, EquivVerdict};
use haven_lm::hallucinate::{self, ConventionVariant, GenPlan};
use haven_spec::builders;
use haven_spec::cosim::{cosimulate_with, CosimOptions, Verdict};
use haven_spec::formal::formal_check;
use haven_spec::ir::{EnableSpec, ShiftDirection, Spec};
use haven_spec::stimuli::{Stimuli, StimulusStep};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A bounded cosim program whose checkpoints are a subset of the formal
/// oracle's proof obligations (see module docs): preamble mirror, then
/// `ticks` cycles of random data with reset held released and a check
/// after each tick. Combinational specs get `ticks` random evaluation
/// rounds instead — the single-step formal query covers all of them.
fn bounded_program(spec: &Spec, seed: u64, ticks: usize) -> Stimuli {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut steps = Vec::new();
    for p in &spec.inputs {
        steps.push(StimulusStep::Set(p.name.clone(), 0));
    }
    if let Some(en) = &spec.attrs.enable {
        steps.push(StimulusStep::Set(
            en.name.clone(),
            u64::from(en.active_high),
        ));
    }
    if !spec.behavior.is_sequential() {
        for _ in 0..ticks.max(1) {
            for p in &spec.inputs {
                steps.push(StimulusStep::Set(p.name.clone(), rng.gen()));
            }
            steps.push(StimulusStep::Check);
        }
        return Stimuli { steps };
    }
    let reset_name = spec.attrs.reset.as_ref().map(|r| r.name.clone());
    if let Some(r) = &spec.attrs.reset {
        let assert_level = u64::from(r.asserted_by(true));
        steps.push(StimulusStep::Set(r.name.clone(), assert_level));
        steps.push(StimulusStep::Tick);
        steps.push(StimulusStep::Set(r.name.clone(), 1 - assert_level));
    }
    for _ in 0..ticks {
        for p in &spec.inputs {
            // The reset pin stays released: the oracle holds it there
            // when it is edge-watched, and frees it otherwise, so a
            // released-reset trace is checked in both regimes.
            if Some(&p.name) != reset_name.as_ref() {
                steps.push(StimulusStep::Set(p.name.clone(), rng.gen()));
            }
        }
        steps.push(StimulusStep::Tick);
        steps.push(StimulusStep::Check);
    }
    Stimuli { steps }
}

/// Random-ish spec pool: every builder family, widths drawn from the
/// seed so successive sweep seeds exercise different instantiations.
fn spec_pool(seed: u64) -> Vec<Spec> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(7));
    let mut w = |lo: usize, hi: usize| rng.gen_range(lo..=hi);
    let mut specs = vec![
        builders::adder("p_add", w(2, 6)),
        builders::mux2("p_mux", w(2, 5)),
        builders::comparator("p_cmp", w(2, 5)),
        builders::decoder("p_dec", 2),
        builders::counter("p_cnt", w(3, 5), Some(w(5, 11) as u64)),
        builders::counter("p_free", w(2, 4), None),
        builders::shift_register(
            "p_sr",
            w(3, 6),
            if seed.is_multiple_of(2) {
                ShiftDirection::Left
            } else {
                ShiftDirection::Right
            },
        ),
        builders::clock_divider("p_div", w(2, 4) as u64),
        builders::pipeline("p_pipe", w(2, 5), w(1, 3)),
        builders::register("p_reg", w(2, 6)),
        builders::fsm_ab("p_fsm"),
    ];
    for s in &mut specs {
        if s.behavior.is_sequential() && seed % 3 != 1 {
            s.attrs.enable = Some(EnableSpec {
                name: "en".into(),
                active_high: seed.is_multiple_of(2),
            });
        }
    }
    specs
}

type Corruptor = fn(&mut GenPlan, &mut StdRng);

fn corruption_channels() -> Vec<(&'static str, Corruptor)> {
    vec![
        ("truth table", |p, r| hallucinate::corrupt_truth_table(p, r)),
        ("state diagram", |p, r| {
            hallucinate::corrupt_state_diagram(p, r)
        }),
        ("waveform", |p, r| hallucinate::corrupt_waveform(p, r)),
        ("attributes", |p, r| hallucinate::corrupt_attributes(p, r)),
        ("expression", |p, r| hallucinate::corrupt_expression(p, r)),
        ("corner case", |p, r| hallucinate::corrupt_corner_case(p, r)),
        ("wrong clock edge", |p, _| {
            p.style.edge_override = Some(haven_verilog::ast::Edge::Neg);
        }),
        ("flipped enable polarity", |p, _| {
            p.style.flip_enable_polarity = true;
        }),
        ("blocking in sequential", |p, _| {
            p.style.nonblocking_in_seq = false;
        }),
        ("missing reset branch", |p, _| p.style.ignore_reset = true),
        ("registered FSM output", |p, _| {
            p.variant = ConventionVariant::RegisteredFsmOutput;
        }),
    ]
}

#[test]
fn formal_is_never_equivalent_where_cosim_mismatches() {
    let engine = Engine::new(EngineOptions::default());
    let oracle = FormalOracle::new(EquivOptions::default());
    let ticks = oracle.options().seq_steps;
    let cosim_opts = CosimOptions {
        mid_tick_checks: false,
        ..CosimOptions::default()
    };

    let mut mismatches = 0usize;
    let mut counterexamples = 0usize;
    let mut checked = 0usize;
    for seed in 0..2u64 {
        for spec in spec_pool(seed) {
            for (label, corrupt) in corruption_channels() {
                let mut rng = StdRng::seed_from_u64(seed ^ (label.len() as u64) << 32);
                let mut plan = GenPlan::faithful(spec.clone());
                corrupt(&mut plan, &mut rng);
                let src = haven_lm::generate::render(&plan);

                let program = bounded_program(&spec, seed.wrapping_add(17), ticks);
                let cosim = cosimulate_with(&spec, &src, &program, &cosim_opts);
                let formal = formal_check(&engine, &oracle, &spec, &src);
                checked += 1;

                if let Some(outcome) = &formal {
                    if let EquivVerdict::Counterexample(_) = outcome.report.verdict {
                        counterexamples += 1;
                        assert!(
                            outcome.replay_confirmed,
                            "{}/{label}: counterexample not confirmed by scalar replay",
                            spec.name
                        );
                    }
                }
                if let Verdict::FunctionalMismatch { at_check, .. } = &cosim.verdict {
                    mismatches += 1;
                    let verdict = formal
                        .as_ref()
                        .map(|o| &o.report.verdict)
                        .expect("cosim simulated the candidate, so the oracle must prepare it");
                    assert!(
                        !matches!(verdict, EquivVerdict::Equivalent),
                        "{}/{label}: formal oracle claims Equivalent but cosim mismatches \
                         at aligned checkpoint {at_check} — soundness bug",
                        spec.name
                    );
                }
            }
        }
    }
    // The sweep must have teeth: plenty of corrupted candidates actually
    // mismatched inside the bound, and the oracle produced (and replayed)
    // a healthy number of counterexamples of its own.
    assert!(
        mismatches >= 20,
        "sweep lost its teeth: only {mismatches} cosim mismatches across {checked} pairs"
    );
    assert!(
        counterexamples >= 20,
        "sweep lost its teeth: only {counterexamples} formal counterexamples across {checked} pairs"
    );
}
