//! Differential property tests for the two simulation backends: across a
//! randomized population of specs, emission styles (correct and each
//! hallucination class), stimulus programs and budgets, the compiled
//! bytecode executor must be *verdict-equivalent* with the reference
//! interpreter — bit-identical [`CosimReport`]s (verdict, first-mismatch
//! checkpoint, checks run/compared) wherever the comparison is exact, and
//! provably one-sided wherever levelization legally does less work than
//! the interpreter's fixpoint loop (DESIGN.md §10).
//!
//! Generation is hand-rolled and seeded (xorshift) rather than driven by
//! `proptest` strategies, so every case actually executes in the offline
//! build and the failures replay deterministically.

use std::sync::Arc;

use haven_engine::{Engine, EngineOptions};
use haven_spec::builders;
use haven_spec::codegen::{emit, EmitStyle};
use haven_spec::cosim::{
    cosimulate_artifact, cosimulate_batch, cosimulate_with, CosimOptions, CosimReport, SimBackend,
    SimBudget, Verdict,
};
use haven_spec::ir::{AluOp, ShiftDirection};
use haven_spec::stimuli::{stimuli_for, Stimuli};
use haven_spec::Spec;
use haven_verilog::analyze::ResetKind;
use haven_verilog::ast::Edge;
use haven_verilog::CompiledDesign;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The full builder population — every design family the oracle sees.
fn population() -> Vec<Spec> {
    vec![
        builders::gate("d_gate", haven_verilog::ast::BinaryOp::BitXor),
        builders::adder("d_add", 8),
        builders::mux2("d_mux", 4),
        builders::comparator("d_cmp", 5),
        builders::decoder("d_dec", 3),
        builders::truth_table_spec(
            "d_tt",
            vec!["a".into(), "b".into(), "c".into()],
            vec!["y".into(), "z".into()],
            (0..8).map(|i| (i, i * 3 % 4)).collect(),
        ),
        builders::fsm_ab("d_fsm"),
        builders::fsm(
            "d_fsm4",
            vec!["S0".into(), "S1".into(), "S2".into(), "S3".into()],
            0,
            vec![(1, 0), (2, 1), (3, 0), (3, 3)],
            vec![0, 0, 1, 1],
        ),
        builders::counter("d_cnt", 4, Some(10)),
        builders::counter("d_cnt2", 6, None),
        builders::down_counter("d_dcnt", 4, Some(9)),
        builders::shift_register("d_sr", 8, ShiftDirection::Right),
        builders::shift_register("d_sl", 5, ShiftDirection::Left),
        builders::clock_divider("d_cd", 3),
        builders::pipeline("d_pipe", 8, 3),
        builders::register("d_reg", 16),
        builders::alu(
            "d_alu",
            8,
            vec![AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Xor],
        ),
    ]
}

/// Emission styles covering pass verdicts and every hallucination class
/// the oracle distinguishes (wrong edge, wrong reset, flipped enable,
/// blocking-in-sequential).
fn styles() -> Vec<EmitStyle> {
    vec![
        EmitStyle::correct(),
        EmitStyle {
            edge_override: Some(Edge::Neg),
            ..EmitStyle::correct()
        },
        EmitStyle {
            reset_kind_override: Some(ResetKind::Sync),
            ..EmitStyle::correct()
        },
        EmitStyle {
            flip_enable_polarity: true,
            ..EmitStyle::correct()
        },
        EmitStyle {
            nonblocking_in_seq: false,
            ..EmitStyle::correct()
        },
    ]
}

fn run(
    spec: &Spec,
    source: &str,
    stim: &Stimuli,
    budget: SimBudget,
    backend: SimBackend,
) -> CosimReport {
    let options = CosimOptions {
        mid_tick_checks: true,
        budget,
        backend,
    };
    cosimulate_with(spec, source, stim, &options)
}

fn both(
    spec: &Spec,
    source: &str,
    stim: &Stimuli,
    budget: SimBudget,
) -> (CosimReport, CosimReport) {
    (
        run(spec, source, stim, budget, SimBackend::Interpreter),
        run(spec, source, stim, budget, SimBackend::Compiled),
    )
}

/// Exact equivalence under budgets that neither engine can exhaust
/// differently: the default budget is orders of magnitude above what any
/// population design uses, so both backends must produce bit-identical
/// reports — same verdict variant, same first-mismatch checkpoint, same
/// checks run and compared.
#[test]
fn reports_bit_identical_across_population_and_hallucinations() {
    let mut rng = Rng(0xd1ff_u64 ^ 0xb10c_0de5_u64);
    for spec in population() {
        for style in styles() {
            let source = emit(&spec, &style);
            for _ in 0..2 {
                let stim = stimuli_for(&spec, rng.next());
                let (i, c) = both(&spec, &source, &stim, SimBudget::default());
                assert_eq!(i, c, "{}: backends diverged\nsource:\n{source}", spec.name);
            }
        }
    }
}

/// Syntax- and interface-class failures never reach a simulator, but the
/// classification path still runs per backend and must agree.
#[test]
fn failure_classes_bit_identical() {
    let spec = builders::adder("d_add", 4);
    let stim = stimuli_for(&spec, 7);
    let cases = [
        // Not Verilog at all.
        "def adder(a, b): return a + b",
        // Compiles, wrong port names.
        "module d_add(input [3:0] x, input [3:0] y, output [3:0] s);\n assign s = x + y;\nendmodule",
        // Compiles, oscillates at the first poke.
        "module d_add(input [3:0] a, input [3:0] b, output [3:0] s);\n wire q;\n assign q = ~q & a[0];\n assign s = {3'b0, q};\nendmodule",
        // Compiles, runaway for-loop.
        "module d_add(input [3:0] a, input [3:0] b, output reg [3:0] s);\n integer i;\n always @(*) begin\n  s = 4'd0;\n  for (i = 0; i < 100000; i = i + 1) s = s + a;\n end\nendmodule",
    ];
    for source in cases {
        let (i, c) = both(&spec, source, &stim, SimBudget::default());
        assert_eq!(i, c, "backends diverged on:\n{source}");
    }
}

/// Tick starvation is counted identically by construction (the oracle
/// drives the tick budget itself), so even a starved tick budget must
/// keep the reports bit-identical.
#[test]
fn tick_starvation_bit_identical() {
    let mut rng = Rng(0x71c57a24ed_u64);
    for spec in population() {
        let source = emit(&spec, &EmitStyle::correct());
        let budget = SimBudget {
            max_ticks: 1 + rng.below(3) as usize,
            ..SimBudget::default()
        };
        let stim = stimuli_for(&spec, rng.next());
        let (i, c) = both(&spec, &source, &stim, budget);
        assert_eq!(i, c, "{}: diverged under tick starvation", spec.name);
    }
}

/// Under *arbitrary* budgets the comparison is one-sided: the levelized
/// scheduler performs at most as much work as the interpreter's fixpoint
/// loop, so whenever the interpreter finishes inside the budget the
/// compiled backend must too — and both stay total (typed verdicts,
/// never a panic).
#[test]
fn arbitrary_budgets_interpreter_pass_implies_compiled_pass() {
    let mut rng = Rng(0xa2b17a2e1_u64);
    let pop = population();
    for case in 0..160 {
        let spec = &pop[rng.below(pop.len() as u64) as usize];
        let source = emit(spec, &EmitStyle::correct());
        let budget = SimBudget {
            max_settle_per_step: 1 + rng.below(64) as usize,
            max_loop_iterations: 1 + rng.below(16) as usize,
            max_ticks: 1 + rng.below(8) as usize,
            max_total_work: 1 + rng.below(256) as usize,
        };
        let stim = stimuli_for(spec, rng.next());
        let (i, c) = both(spec, &source, &stim, budget);
        for (which, r) in [("interpreter", &i), ("compiled", &c)] {
            assert!(
                matches!(
                    r.verdict,
                    Verdict::Pass | Verdict::ResourceExhausted(_) | Verdict::SimulationError(_)
                ),
                "case {case} ({which}): budget changed the verdict class: {:?}",
                r.verdict
            );
        }
        if i.verdict == Verdict::Pass {
            assert_eq!(
                c.verdict,
                Verdict::Pass,
                "case {case} ({}): compiled did more work than the interpreter",
                spec.name
            );
            assert_eq!(i, c, "case {case}: pass-side reports must match exactly");
        }
    }
}

/// Warm artifact reuse must be invisible to the oracle: on both backends,
/// a cold compile and a cache hit on the same source produce bit-identical
/// reports, and both match the uncached one-shot path the rest of this
/// suite exercises.
#[test]
fn cold_vs_warm_cache_hit_bit_identical() {
    let mut rng = Rng(0xca5e_ca54e_u64);
    let wrong_edge = EmitStyle {
        edge_override: Some(Edge::Neg),
        ..EmitStyle::correct()
    };
    for backend in [SimBackend::Interpreter, SimBackend::Compiled] {
        let engine = Engine::new(EngineOptions {
            backend,
            budget: SimBudget::default(),
            cache_capacity: 64,
            ..EngineOptions::default()
        });
        let options = CosimOptions {
            mid_tick_checks: true,
            budget: SimBudget::default(),
            backend,
        };
        // Styles that don't apply to a spec emit identical source (a
        // wrong-edge override is a no-op on combinational designs), so
        // count lookups against *distinct* sources.
        let mut distinct = std::collections::HashSet::new();
        let mut lookups = 0u64;
        for spec in population() {
            for style in [EmitStyle::correct(), wrong_edge.clone()] {
                let source = emit(&spec, &style);
                distinct.insert(source.clone());
                lookups += 2;
                let stim = stimuli_for(&spec, rng.next());
                let cold_artifact = engine.prepare(&source).expect("population compiles");
                let cold = cosimulate_artifact(&spec, &engine, &cold_artifact, &stim, &options);
                let warm_artifact = engine.prepare(&source).expect("population compiles");
                assert!(
                    Arc::ptr_eq(&cold_artifact, &warm_artifact),
                    "{}: second prepare must be a cache hit",
                    spec.name
                );
                let warm = cosimulate_artifact(&spec, &engine, &warm_artifact, &stim, &options);
                assert_eq!(
                    cold, warm,
                    "{}: cache hit changed the report\nsource:\n{source}",
                    spec.name
                );
                let oneshot = cosimulate_with(&spec, &source, &stim, &options);
                assert_eq!(
                    cold, oneshot,
                    "{}: cached path diverged from the uncached one-shot path",
                    spec.name
                );
            }
        }
        let stats = engine.stats();
        assert_eq!(
            stats.misses,
            distinct.len() as u64,
            "one build per distinct source"
        );
        assert_eq!(
            stats.hits,
            lookups - distinct.len() as u64,
            "every other lookup is a hit"
        );
        assert_eq!(stats.evictions, 0);
    }
}

/// A capacity-1 cache thrashed by two alternating sources must keep
/// every verdict correct while missing on every lookup — eviction never
/// trades correctness for space, and the counters tell the truth about
/// the thrash.
#[test]
fn capacity_one_cache_evicts_correctly_and_counts_misses() {
    let spec_a = builders::adder("d_add", 8);
    let spec_b = builders::counter("d_cnt", 4, Some(10));
    let src_a = emit(&spec_a, &EmitStyle::correct());
    let src_b = emit(&spec_b, &EmitStyle::correct());
    let stim_a = stimuli_for(&spec_a, 11);
    let stim_b = stimuli_for(&spec_b, 12);
    for backend in [SimBackend::Interpreter, SimBackend::Compiled] {
        let options = CosimOptions {
            mid_tick_checks: true,
            budget: SimBudget::default(),
            backend,
        };
        let baseline_a = cosimulate_with(&spec_a, &src_a, &stim_a, &options);
        let baseline_b = cosimulate_with(&spec_b, &src_b, &stim_b, &options);
        let engine = Engine::new(EngineOptions {
            backend,
            budget: SimBudget::default(),
            cache_capacity: 1,
            ..EngineOptions::default()
        });
        for round in 0..3 {
            let a = engine.prepare(&src_a).expect("adder compiles");
            assert_eq!(
                cosimulate_artifact(&spec_a, &engine, &a, &stim_a, &options),
                baseline_a,
                "round {round}: eviction changed the adder report"
            );
            let b = engine.prepare(&src_b).expect("counter compiles");
            assert_eq!(
                cosimulate_artifact(&spec_b, &engine, &b, &stim_b, &options),
                baseline_b,
                "round {round}: eviction changed the counter report"
            );
        }
        let stats = engine.stats();
        assert_eq!(stats.capacity, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(
            stats.misses, 6,
            "two sources alternating through one slot miss every time"
        );
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.evictions, 5, "every insert after the first evicts");
    }
}

/// Runs one case through all three engines — interpreter, scalar
/// compiled, and the 64-lane batched path — and returns the reports.
/// The batched call goes through a compiled-backend engine so spills are
/// observable on `engine.batch_stats()`.
fn all_three(
    spec: &Spec,
    source: &str,
    stim: &Stimuli,
    budget: SimBudget,
) -> (CosimReport, CosimReport, CosimReport, Engine) {
    let options = CosimOptions {
        mid_tick_checks: true,
        budget,
        backend: SimBackend::Compiled,
    };
    let engine = Engine::new(EngineOptions {
        backend: SimBackend::Compiled,
        budget,
        cache_capacity: 8,
        ..EngineOptions::default()
    });
    let interp = run(spec, source, stim, budget, SimBackend::Interpreter);
    let (scalar, batched) = match engine.prepare(source) {
        Ok(artifact) => (
            cosimulate_artifact(spec, &engine, &artifact, stim, &options),
            cosimulate_batch(spec, &engine, &artifact, stim, &options),
        ),
        Err(e) => {
            let syntax = CosimReport {
                verdict: Verdict::SyntaxError(e.to_string()),
                checks_run: 0,
                checks_compared: 0,
            };
            (syntax.clone(), syntax)
        }
    };
    (interp, scalar, batched, engine)
}

/// The tentpole contract: across the full population × hallucination
/// styles, the batched per-lane verdicts are bit-identical to both the
/// scalar compiled run and the interpreter oracle — same verdict, same
/// first-mismatch checkpoint and detail, same checks run/compared.
/// Sequential specs exercise the spill-and-fallback path; combinational
/// specs exercise real 64-lane sweeps.
#[test]
fn batched_reports_bit_identical_to_both_oracles() {
    let mut rng = Rng(0xba7c_4ed0_u64);
    let mut batched_runs = 0u64;
    for spec in population() {
        for style in styles() {
            let source = emit(&spec, &style);
            let stim = stimuli_for(&spec, rng.next());
            let (interp, scalar, batched, engine) =
                all_three(&spec, &source, &stim, SimBudget::default());
            assert_eq!(
                batched, scalar,
                "{}: batched diverged from scalar compiled\nsource:\n{source}",
                spec.name
            );
            assert_eq!(
                batched, interp,
                "{}: batched diverged from the interpreter\nsource:\n{source}",
                spec.name
            );
            batched_runs += engine.batch_stats().runs;
        }
    }
    assert!(
        batched_runs > 0,
        "no case engaged the batched engine — the fast path is dead"
    );
}

/// X-propagation lanes: episodes that check before every input is driven
/// must read back `x` exactly as the scalar run does (inputs start
/// all-x; forward-filled lanes keep earlier pokes). Also covers checks
/// with zero known golden outputs (compared-counter arithmetic).
#[test]
fn batched_x_propagation_lanes_bit_identical() {
    use haven_spec::stimuli::StimulusStep as Step;
    let mut rng = Rng(0x0dd_faded_u64);
    let specs = [
        builders::gate("d_gate", haven_verilog::ast::BinaryOp::BitXor),
        builders::adder("d_add", 8),
        builders::mux2("d_mux", 4),
        builders::alu(
            "d_alu",
            8,
            vec![AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Xor],
        ),
    ];
    for spec in specs {
        let inputs: Vec<(String, usize)> = spec
            .inputs
            .iter()
            .map(|p| (p.name.clone(), p.width))
            .collect();
        let source = emit(&spec, &EmitStyle::correct());
        let mut steps = Vec::new();
        // A check before any input is driven: golden outputs unknown,
        // nothing compared, but the check still counts as run.
        steps.push(Step::Check);
        for round in 0..150 {
            // Drive a random subset of inputs, then check: undriven
            // inputs stay x, driven ones forward-fill across episodes.
            for (name, width) in &inputs {
                if rng.below(3) == 0 {
                    continue;
                }
                let mask = if *width >= 64 {
                    !0
                } else {
                    (1u64 << width) - 1
                };
                steps.push(Step::Set(name.clone(), rng.next() & mask));
            }
            steps.push(Step::Check);
            if round == 75 {
                steps.push(Step::Check); // back-to-back checks share state
            }
        }
        let stim = Stimuli { steps };
        let (interp, scalar, batched, engine) =
            all_three(&spec, &source, &stim, SimBudget::default());
        assert_eq!(batched, scalar, "{}: x-prop lanes diverged", spec.name);
        assert_eq!(batched, interp, "{}: x-prop vs interpreter", spec.name);
        assert!(
            engine.batch_stats().runs > 0,
            "{}: x-prop program must engage the batched engine",
            spec.name
        );
    }
}

/// Budget exhaustion: starved budgets spill to the scalar path (which
/// owns exhaustion verdicts), and the fallback must keep the report
/// bit-identical to calling the scalar path directly — for every budget,
/// including ones the scalar run exhausts mid-program.
#[test]
fn batched_budget_exhaustion_bit_identical_via_spill() {
    use haven_verilog::batch::BatchSpill;
    let mut rng = Rng(0xbad_b0d9e7_u64);
    let pop = population();
    let mut tight_spills = 0u64;
    for case in 0..80 {
        let spec = &pop[rng.below(pop.len() as u64) as usize];
        let source = emit(spec, &EmitStyle::correct());
        let budget = SimBudget {
            max_settle_per_step: 1 + rng.below(32) as usize,
            max_loop_iterations: 1 + rng.below(16) as usize,
            max_ticks: 1 + rng.below(8) as usize,
            max_total_work: 1 + rng.below(192) as usize,
        };
        let stim = stimuli_for(spec, rng.next());
        let (_, scalar, batched, engine) = all_three(spec, &source, &stim, budget);
        assert_eq!(
            batched, scalar,
            "case {case} ({}): starved-budget batched run diverged from scalar",
            spec.name
        );
        tight_spills += engine.batch_stats().fallbacks_for(BatchSpill::TightBudget);
    }
    assert!(
        tight_spills > 0,
        "no case hit the tight-budget spill — the qualification gate is untested"
    );
}

/// Batching composes with the artifact cache: a warm (cache-hit)
/// artifact batched twice gives the same report, and matches the scalar
/// session on the same shared artifact.
#[test]
fn batched_warm_artifact_reuse_bit_identical() {
    let mut rng = Rng(0xbaa7_c0de_u64);
    let options = CosimOptions {
        mid_tick_checks: true,
        budget: SimBudget::default(),
        backend: SimBackend::Compiled,
    };
    let engine = Engine::new(EngineOptions {
        backend: SimBackend::Compiled,
        budget: SimBudget::default(),
        cache_capacity: 16,
        ..EngineOptions::default()
    });
    for spec in [
        builders::comparator("d_cmp", 5),
        builders::decoder("d_dec", 3),
        builders::adder("d_add", 8),
    ] {
        let source = emit(&spec, &EmitStyle::correct());
        let stim = stimuli_for(&spec, rng.next());
        let cold_artifact = engine.prepare(&source).unwrap();
        let cold = cosimulate_batch(&spec, &engine, &cold_artifact, &stim, &options);
        let warm_artifact = engine.prepare(&source).unwrap();
        assert!(Arc::ptr_eq(&cold_artifact, &warm_artifact));
        let warm = cosimulate_batch(&spec, &engine, &warm_artifact, &stim, &options);
        assert_eq!(cold, warm, "{}: warm batched run diverged", spec.name);
        let scalar = cosimulate_artifact(&spec, &engine, &warm_artifact, &stim, &options);
        assert_eq!(
            cold, scalar,
            "{}: batched vs scalar on shared artifact",
            spec.name
        );
    }
    assert!(engine.batch_stats().runs > 0);
}

/// The screening entry point: a [`BatchPlan`] built once per (spec,
/// stimuli) and reused across candidates — the shape the eval harness
/// runs — must give reports bit-identical to the plan-free call on every
/// population × hallucination case, including a second reuse of the same
/// plan against the same artifact (the hot screening loop).
#[test]
fn planned_batched_bit_identical_to_unplanned() {
    use haven_spec::cosim::{cosimulate_batch_planned, BatchPlan};
    let mut rng = Rng(0x91a7_dead_u64);
    for spec in population() {
        let stim = stimuli_for(&spec, rng.next());
        let plan = BatchPlan::new(&spec, &stim);
        for style in styles() {
            let source = emit(&spec, &style);
            let options = CosimOptions {
                mid_tick_checks: true,
                budget: SimBudget::default(),
                backend: SimBackend::Compiled,
            };
            let engine = Engine::new(EngineOptions {
                backend: SimBackend::Compiled,
                budget: SimBudget::default(),
                cache_capacity: 8,
                ..EngineOptions::default()
            });
            let Ok(artifact) = engine.prepare(&source) else {
                continue;
            };
            let unplanned = cosimulate_batch(&spec, &engine, &artifact, &stim, &options);
            let planned =
                cosimulate_batch_planned(&spec, &engine, &artifact, &stim, &options, &plan);
            assert_eq!(
                planned, unplanned,
                "{}: planned batch diverged from unplanned\nsource:\n{source}",
                spec.name
            );
            let replanned =
                cosimulate_batch_planned(&spec, &engine, &artifact, &stim, &options, &plan);
            assert_eq!(planned, replanned, "{}: plan reuse diverged", spec.name);
        }
    }
}

/// The fast path must actually be exercised: most of the population's
/// correct emissions qualify for levelization. If this ratio collapses,
/// the compiled backend silently degrades to the event-queue engine and
/// the perf win evaporates without any test failing.
#[test]
fn most_correct_designs_levelize() {
    let mut levelized = 0usize;
    let pop = population();
    let total = pop.len();
    for spec in pop {
        let source = emit(&spec, &EmitStyle::correct());
        let design = haven_verilog::compile(&source).expect("correct emission compiles");
        if CompiledDesign::new(design).is_levelized() {
            levelized += 1;
        }
    }
    assert!(
        levelized * 2 >= total,
        "only {levelized}/{total} designs levelize — the fast path is dead"
    );
}
