//! Property tests for golden models vs emitted Verilog — the keystone
//! invariant, driven harder than the unit tests.

use haven_spec::codegen::{emit, EmitStyle};
use haven_spec::cosim::cosimulate;
use haven_spec::ir::*;
use haven_spec::stimuli::stimuli_for;
use haven_spec::{builders, GoldenModel, Spec};
use haven_verilog::analyze::ResetKind;
use haven_verilog::ast::Edge;
use proptest::prelude::*;

fn arb_attrs() -> impl Strategy<Value = AttrSpec> {
    (
        prop_oneof![
            Just(None),
            Just(Some(ResetKind::AsyncActiveLow)),
            Just(Some(ResetKind::AsyncActiveHigh)),
            Just(Some(ResetKind::Sync)),
        ],
        any::<bool>(),
        prop_oneof![Just(None), Just(Some(true)), Just(Some(false))],
    )
        .prop_map(|(reset, neg_edge, enable)| AttrSpec {
            clock: "clk".to_string(),
            edge: if neg_edge { Edge::Neg } else { Edge::Pos },
            reset: reset.map(|kind| ResetSpec {
                name: match kind {
                    ResetKind::AsyncActiveLow => "rst_n".to_string(),
                    _ => "rst".to_string(),
                },
                kind,
            }),
            enable: enable.map(|active_high| EnableSpec {
                name: "en".to_string(),
                active_high,
            }),
        })
}

fn arb_sequential_spec() -> impl Strategy<Value = Spec> {
    (
        prop_oneof![
            (2usize..=8).prop_map(|w| builders::counter("p", w, None)),
            (3usize..=5, 3u64..=7).prop_map(|(w, m)| builders::counter("p", w, Some(m))),
            (2usize..=8, any::<bool>()).prop_map(|(w, left)| builders::shift_register(
                "p",
                w,
                if left {
                    ShiftDirection::Left
                } else {
                    ShiftDirection::Right
                }
            )),
            (1u64..=5).prop_map(|hp| builders::clock_divider("p", hp)),
            (1usize..=8, 1usize..=3).prop_map(|(w, s)| builders::pipeline("p", w, s)),
            Just(builders::fsm_ab("p")),
        ],
        arb_attrs(),
    )
        .prop_map(|(mut spec, attrs)| {
            spec.attrs = attrs;
            spec
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Correct emission matches the golden model for every attribute
    /// combination (reset kind × edge × enable polarity × behaviour).
    #[test]
    fn attribute_matrix_cosimulates(spec in arb_sequential_spec(), seed in 0u64..500) {
        let src = emit(&spec, &EmitStyle::correct());
        let report = cosimulate(&spec, &src, &stimuli_for(&spec, seed));
        prop_assert!(
            report.verdict.functional_ok(),
            "{:?} attrs={:?}\n{src}",
            report.verdict,
            spec.attrs
        );
    }

    /// The golden model never "un-knows" state: once outputs are known
    /// and inputs stay driven, they stay known.
    #[test]
    fn golden_knownness_is_monotone(spec in arb_sequential_spec(), cycles in 1usize..20) {
        prop_assume!(spec.attrs.reset.is_some());
        let mut g = GoldenModel::new(&spec);
        let r = spec.attrs.reset.clone().unwrap();
        let assert_level = u64::from(r.asserted_by(true));
        for p in spec.all_inputs() {
            g.set_input(&p.name, 0);
        }
        if let Some(en) = &spec.attrs.enable {
            g.set_input(&en.name, u64::from(en.active_high));
        }
        g.set_input(&r.name, assert_level);
        g.tick();
        g.set_input(&r.name, 1 - assert_level);
        let known_after_reset: Vec<String> = g
            .outputs()
            .iter()
            .filter(|(_, v)| v.is_some())
            .map(|(k, _)| k.clone())
            .collect();
        for _ in 0..cycles {
            g.tick();
            for k in &known_after_reset {
                prop_assert!(g.output(k).is_some(), "output `{k}` became unknown");
            }
        }
    }

}
