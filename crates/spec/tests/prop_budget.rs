//! Property tests for resource-budgeted simulation: across a randomized
//! population of specs, stimulus programs and budgets, a [`SimBudget`] is
//! a hard ceiling — the simulator's own counters never pass it, running
//! out is always reported as the typed budget outcome, and the oracle
//! stays total (a verdict, never a panic or an unbounded run).
//!
//! Generation is hand-rolled and seeded (xorshift) rather than driven by
//! `proptest` strategies, so every case actually executes in the offline
//! build and the failures replay deterministically.

use haven_spec::builders;
use haven_spec::codegen::{emit, EmitStyle};
use haven_spec::cosim::{cosimulate_with, CosimOptions, SimBudget, Verdict};
use haven_spec::ir::ShiftDirection;
use haven_spec::stimuli::{stimuli_for, StimulusStep};
use haven_spec::Spec;
use haven_verilog::sim::Simulator;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn arb_spec(rng: &mut Rng) -> Spec {
    match rng.below(8) {
        0 => builders::adder("p_add", 1 + rng.below(8) as usize),
        1 => builders::mux2("p_mux", 1 + rng.below(8) as usize),
        2 => builders::comparator("p_cmp", 1 + rng.below(8) as usize),
        3 => builders::counter("p_cnt", 2 + rng.below(6) as usize, None),
        4 => builders::shift_register("p_shr", 2 + rng.below(6) as usize, ShiftDirection::Left),
        5 => builders::fsm_ab("p_fsm"),
        6 => builders::pipeline(
            "p_pipe",
            1 + rng.below(4) as usize,
            1 + rng.below(3) as usize,
        ),
        _ => builders::register("p_reg", 1 + rng.below(8) as usize),
    }
}

fn arb_budget(rng: &mut Rng) -> SimBudget {
    SimBudget {
        max_settle_per_step: 1 + rng.below(64) as usize,
        max_loop_iterations: 1 + rng.below(16) as usize,
        max_ticks: 1 + rng.below(8) as usize,
        max_total_work: 1 + rng.below(256) as usize,
    }
}

/// Replays a stimulus program directly against a budgeted [`Simulator`]
/// and checks, after every single operation, that the counters respect
/// the ceiling. Detection happens the instant a counter first passes its
/// limit, so `work_units` can sit at most one past `max_total_work` and
/// `ticks` never passes `max_ticks` at all.
#[test]
fn simulator_counters_never_pass_the_budget() {
    let mut rng = Rng(0x005e_edb0_d9e7_u64);
    for case in 0..120 {
        let spec = arb_spec(&mut rng);
        let budget = arb_budget(&mut rng);
        let source = emit(&spec, &EmitStyle::correct());
        let design = haven_verilog::compile(&source)
            .unwrap_or_else(|e| panic!("case {case}: correct emission failed to compile: {e}"));
        let mut sim = match Simulator::with_budget(design, budget) {
            Ok(s) => s,
            Err(e) => {
                assert!(
                    e.is_budget() || !e.is_static(),
                    "case {case}: construction failed with a non-runtime error: {e}"
                );
                continue;
            }
        };
        let stimuli = stimuli_for(&spec, rng.next());
        let clock = spec.attrs.clock.clone();
        for step in &stimuli.steps {
            let result = match step {
                StimulusStep::Set(name, value) => sim.poke_u64(name, *value),
                StimulusStep::Tick => sim.tick(&clock),
                StimulusStep::Check => Ok(()),
            };
            assert!(
                sim.ticks() <= budget.max_ticks,
                "case {case}: tick counter {} passed the budget {}",
                sim.ticks(),
                budget.max_ticks
            );
            assert!(
                sim.work_units() <= budget.max_total_work + 1,
                "case {case}: work counter {} ran past the budget {}",
                sim.work_units(),
                budget.max_total_work
            );
            if let Err(e) = result {
                assert!(
                    e.is_budget() || !e.is_static(),
                    "case {case}: runtime op failed with a static-class error: {e}"
                );
                break;
            }
        }
    }
}

/// The oracle under an arbitrary budget is total: it always returns a
/// verdict, and a budget-driven abort is reported as the dedicated
/// fault-class [`Verdict::ResourceExhausted`] — never disguised as a
/// syntax or functional failure of the candidate.
#[test]
fn cosimulation_is_total_under_arbitrary_budgets() {
    let mut rng = Rng(0xc051_90de_u64 ^ 0xffff);
    for case in 0..120 {
        let spec = arb_spec(&mut rng);
        let budget = arb_budget(&mut rng);
        let source = emit(&spec, &EmitStyle::correct());
        let options = CosimOptions {
            mid_tick_checks: true,
            budget,
            ..CosimOptions::default()
        };
        let report = cosimulate_with(&spec, &source, &stimuli_for(&spec, rng.next()), &options);
        // Correct emission co-simulates exactly; the only thing a budget
        // may change is how far the oracle gets before running dry.
        match &report.verdict {
            Verdict::Pass => {}
            Verdict::ResourceExhausted(msg) => {
                assert!(!msg.is_empty(), "case {case}: empty exhaustion detail");
                assert!(report.verdict.is_fault(), "case {case}");
                assert!(report.verdict.syntax_ok(), "case {case}");
                assert!(!report.verdict.functional_ok(), "case {case}");
            }
            other => panic!("case {case}: budget changed the verdict class: {other:?}"),
        }
    }
}

/// The default budget is transparent: it is generous enough that every
/// correct design in the population passes exactly as it does unbudgeted.
#[test]
fn default_budget_is_transparent_for_correct_designs() {
    let mut rng = Rng(0xdefa_0171u64);
    for case in 0..60 {
        let spec = arb_spec(&mut rng);
        let source = emit(&spec, &EmitStyle::correct());
        let report = cosimulate_with(
            &spec,
            &source,
            &stimuli_for(&spec, rng.next()),
            &CosimOptions::default(),
        );
        assert!(
            report.verdict.functional_ok(),
            "case {case}: {:?}",
            report.verdict
        );
    }
}

/// A starved budget must surface as exhaustion (or a trivially complete
/// pass on designs whose whole program fits), never as a crash and never
/// as a verdict blaming the candidate.
#[test]
fn starved_budget_reports_exhaustion_not_blame() {
    let mut rng = Rng(0x57a2_7ed1u64);
    let mut exhausted = 0usize;
    for _ in 0..60 {
        let spec = arb_spec(&mut rng);
        let source = emit(&spec, &EmitStyle::correct());
        let options = CosimOptions {
            mid_tick_checks: true,
            budget: SimBudget::starved(),
            ..CosimOptions::default()
        };
        let report = cosimulate_with(&spec, &source, &stimuli_for(&spec, rng.next()), &options);
        match &report.verdict {
            Verdict::Pass => {}
            Verdict::ResourceExhausted(_) => exhausted += 1,
            other => panic!("starved budget produced {other:?}"),
        }
    }
    assert!(
        exhausted > 30,
        "starvation should dominate the population (got {exhausted}/60)"
    );
}
