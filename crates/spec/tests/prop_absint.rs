//! Property tests for the abstract-interpretation analyzer (analyzer v2),
//! driven by this crate's spec generators: the analyzer must be *total*
//! (no panic on any emitted variant, reports canonical), the
//! widening/narrowing fixpoint must converge inside its sweep budget for
//! every design, and correct emissions must never earn a
//! witness-**Confirmed** finding — the precision bar the eval gate leans
//! on.
//!
//! Generation is hand-rolled and seeded (xorshift) rather than driven by
//! `proptest` strategies, so every case actually executes in the offline
//! build and the failures replay deterministically.

use haven_engine::{Engine, SimBackend};
use haven_spec::builders;
use haven_spec::codegen::{emit, EmitStyle};
use haven_spec::ir::{AttrSpec, EnableSpec, ResetSpec, ShiftDirection, Spec};
use haven_verilog::absint::analyze_abs;
use haven_verilog::analyze::ResetKind;
use haven_verilog::ast::Edge;
use haven_verilog::dataflow::Dataflow;
use haven_verilog::sim::SimBudget;
use haven_verilog::{analyze_design, compile, Confirmation, Design, Severity};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The builder population the analyzer sweeps run over.
fn population() -> Vec<Spec> {
    vec![
        builders::gate("p_gate", haven_verilog::ast::BinaryOp::BitAnd),
        builders::adder("p_add", 8),
        builders::mux2("p_mux", 4),
        builders::comparator("p_cmp", 4),
        builders::decoder("p_dec", 3),
        builders::fsm_ab("p_fsm"),
        builders::counter("p_cnt", 6, None),
        builders::counter("p_cntm", 4, Some(10)),
        builders::down_counter("p_down", 4, None),
        builders::shift_register("p_shl", 8, ShiftDirection::Left),
        builders::shift_register("p_shr", 5, ShiftDirection::Right),
        builders::clock_divider("p_div", 5),
        builders::pipeline("p_pipe", 8, 3),
        builders::register("p_reg", 8),
    ]
}

/// Every attribute combination the emitter understands: reset kind ×
/// clock edge × enable polarity.
fn attr_variants() -> Vec<AttrSpec> {
    let mut out = Vec::new();
    for reset in [
        None,
        Some(ResetKind::AsyncActiveLow),
        Some(ResetKind::AsyncActiveHigh),
        Some(ResetKind::Sync),
    ] {
        for edge in [Edge::Pos, Edge::Neg] {
            for enable in [None, Some(true), Some(false)] {
                out.push(AttrSpec {
                    clock: "clk".to_string(),
                    edge,
                    reset: reset.map(|kind| ResetSpec {
                        name: match kind {
                            ResetKind::AsyncActiveLow => "rst_n".to_string(),
                            _ => "rst".to_string(),
                        },
                        kind,
                    }),
                    enable: enable.map(|active_high| EnableSpec {
                        name: "en".to_string(),
                        active_high,
                    }),
                });
            }
        }
    }
    out
}

/// Correct emission plus every deviation class — the analyzer must be
/// total over all of them, not just well-formed code.
fn styles() -> Vec<EmitStyle> {
    vec![
        EmitStyle::correct(),
        EmitStyle {
            ignore_reset: true,
            ..EmitStyle::correct()
        },
        EmitStyle {
            comb_always_block: true,
            ..EmitStyle::correct()
        },
        EmitStyle {
            edge_override: Some(Edge::Neg),
            ..EmitStyle::correct()
        },
        EmitStyle {
            reset_kind_override: Some(ResetKind::Sync),
            ..EmitStyle::correct()
        },
        EmitStyle {
            flip_enable_polarity: true,
            ..EmitStyle::correct()
        },
        EmitStyle {
            nonblocking_in_seq: false,
            ..EmitStyle::correct()
        },
    ]
}

/// For each (spec, style), sweep the builder's own attrs plus a seeded
/// sample of the attribute matrix, yielding every compilable design.
fn sweep(rng: &mut Rng, samples_per_style: usize, mut visit: impl FnMut(&Spec, &str, Design)) {
    let attrs = attr_variants();
    for spec in population() {
        for style in styles() {
            let mut variants = vec![spec.attrs.clone()];
            for _ in 0..samples_per_style {
                variants.push(attrs[rng.below(attrs.len() as u64) as usize].clone());
            }
            for attr in variants {
                let mut spec = spec.clone();
                spec.attrs = attr;
                let src = emit(&spec, &style);
                let Ok(design) = compile(&src) else { continue };
                visit(&spec, &src, design);
            }
        }
    }
}

/// `analyze_design` never panics on any emitted variant, and every report
/// upholds its own contract: findings deduplicated and sorted by
/// (severity desc, span, rule, signal, message).
#[test]
fn analyzer_is_total_and_reports_are_canonical() {
    let mut rng = Rng(0xab5_1a7e5);
    let mut designs = 0usize;
    sweep(&mut rng, 3, |spec, src, design| {
        designs += 1;
        let report = analyze_design(&design);
        let keys: Vec<_> = report
            .findings
            .iter()
            .map(|f| {
                (
                    match f.severity {
                        Severity::Error => 0,
                        Severity::Warn => 1,
                    },
                    f.span.line,
                    f.span.col,
                    f.rule.code(),
                    f.signal.clone(),
                    f.message.clone(),
                )
            })
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(
            keys, sorted,
            "{}: findings not in canonical order\n{src}",
            spec.name
        );
        sorted.dedup();
        assert_eq!(
            keys.len(),
            sorted.len(),
            "{}: duplicate findings survived\n{src}",
            spec.name
        );
    });
    assert!(designs > 300, "sweep degenerated: only {designs} designs");
}

/// Both abstract fixpoints (power-on and steady) converge inside the
/// sweep budget for every generated design — widening guarantees
/// termination; narrowing must not reopen it.
#[test]
fn fixpoint_always_converges_within_budget() {
    let mut rng = Rng(0xf1f0_u64 ^ 0xd0_1337);
    sweep(&mut rng, 3, |spec, src, design| {
        let df = Dataflow::build(&design);
        let abs = analyze_abs(&design, &df);
        assert!(
            abs.converged,
            "{}: fixpoint hit the sweep cap\n{src}",
            spec.name
        );
        // Each fixpoint is capped at 64 + 8·signals sweeps; two modes
        // plus narrowing must stay under twice that.
        let cap = 2 * (64 + 8 * design.signals.len());
        assert!(
            abs.sweeps <= cap,
            "{}: {} sweeps exceeds cap {cap}\n{src}",
            spec.name,
            abs.sweeps
        );
    });
}

/// Precision bar at property strength: a correct emission never earns a
/// *Confirmed* finding — no witness synthesized against known-good code
/// may ever replay successfully through the simulator.
#[test]
fn correct_emissions_are_never_confirmed_defective() {
    let engine = Engine::uncached(SimBackend::Compiled, SimBudget::default());
    for spec in population() {
        for attr in attr_variants() {
            let mut spec = spec.clone();
            spec.attrs = attr;
            let src = emit(&spec, &EmitStyle::correct());
            let artifact = engine.prepare(&src).unwrap_or_else(|e| {
                panic!("{}: correct emission must compile: {e}\n{src}", spec.name)
            });
            for f in &artifact.report.findings {
                assert_ne!(
                    f.confirmation,
                    Confirmation::Confirmed,
                    "{}: confirmed finding on correct code: {f:?}\n{src}",
                    spec.name
                );
            }
        }
    }
}
