//! Criterion benches timing the regeneration of each paper artifact at a
//! reduced scale (one model / one cell per artifact). The full-protocol
//! regenerations are the `table4`/`table5`/`table6`/`fig3`/`fig4`/
//! `dataset_stats` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use haven::experiments::{
    ablation_point, composition_point, table4_row, table5_row, table6_entry, AblationSetting,
    Contender, Scale, Suites,
};
use haven_lm::profiles;

fn bench_scale() -> Scale {
    let mut s = Scale::quick();
    s.n = 2;
    s.task_limit = Some(10);
    s
}

fn bench_table4(c: &mut Criterion) {
    let scale = bench_scale();
    let suites = Suites::generate(&scale);
    let contender = Contender {
        profile: profiles::rtlcoder_deepseek(),
        sicot: false,
        group: "LLM for Verilog",
    };
    c.bench_function("table4/one_model_all_suites", |b| {
        b.iter(|| black_box(table4_row(&contender, &suites, &scale)))
    });
}

fn bench_table5(c: &mut Criterion) {
    let scale = bench_scale();
    let suites = Suites::generate(&scale);
    let profile = profiles::deepseek_coder_v2();
    c.bench_function("table5/one_model_symbolic", |b| {
        b.iter(|| black_box(table5_row(&profile, false, &suites, &scale)))
    });
}

fn bench_table6(c: &mut Criterion) {
    let scale = bench_scale();
    let suites = Suites::generate(&scale);
    let profile = profiles::gpt4o_mini();
    c.bench_function("table6/one_model_with_and_without_sicot", |b| {
        b.iter(|| black_box(table6_entry(&profile, &suites, &scale)))
    });
}

fn bench_fig3(c: &mut Criterion) {
    let scale = bench_scale();
    let suites = Suites::generate(&scale);
    let flow = haven_datagen::run(&scale.flow);
    let base = profiles::base_codeqwen();
    c.bench_function("fig3/one_ablation_cell", |b| {
        b.iter(|| {
            black_box(ablation_point(
                &base,
                AblationSetting::VanillaCotKl,
                &flow,
                &suites,
                &scale,
            ))
        })
    });
}

fn bench_fig4(c: &mut Criterion) {
    let scale = bench_scale();
    let suites = Suites::generate(&scale);
    let flow = haven_datagen::run(&scale.flow);
    c.bench_function("fig4/one_composition_cell", |b| {
        b.iter(|| black_box(composition_point(0.5, 0.5, &flow, &suites, &scale)))
    });
}

fn bench_dataset_stats(c: &mut Criterion) {
    c.bench_function("dataset_stats/small_flow", |b| {
        b.iter(|| black_box(haven_datagen::run(&haven_datagen::FlowConfig::small(2)).stats))
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = bench_table4, bench_table5, bench_table6, bench_fig3, bench_fig4, bench_dataset_stats
}
criterion_main!(tables);
