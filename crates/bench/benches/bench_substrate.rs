//! Criterion benches for the substrate layers: parsing, elaboration,
//! simulation, modality parsing, SI-CoT refinement, generation and
//! co-simulation throughput. These are not paper artifacts; they document
//! the cost model underneath every table.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use haven_lm::model::CodeGenModel;
use haven_lm::profiles;
use haven_sicot::SiCot;
use haven_spec::builders;
use haven_spec::codegen::{emit, EmitStyle};
use haven_spec::cosim::cosimulate;
use haven_spec::describe::{describe, DescribeStyle};
use haven_spec::stimuli::stimuli_for;
use haven_verilog::elab::compile;
use haven_verilog::parser::parse;
use haven_verilog::sim::Simulator;

const FSM_SRC: &str = "module fsm(input clk, input rst_n, input x, output reg out);
    localparam S_A = 1'd0, S_B = 1'd1;
    reg state, next_state;
    always @(posedge clk or negedge rst_n)
        if (!rst_n) state <= S_A;
        else state <= next_state;
    always @(*)
        case (state)
            S_A: next_state = x ? S_A : S_B;
            S_B: next_state = x ? S_B : S_A;
            default: next_state = S_A;
        endcase
    always @(*)
        case (state)
            S_A: out = 1'd0;
            S_B: out = 1'd1;
            default: out = 1'd0;
        endcase
endmodule";

fn bench_frontend(c: &mut Criterion) {
    c.bench_function("verilog/parse_fsm", |b| {
        b.iter(|| parse(black_box(FSM_SRC)).unwrap())
    });
    c.bench_function("verilog/compile_fsm", |b| {
        b.iter(|| compile(black_box(FSM_SRC)).unwrap())
    });
}

fn bench_simulator(c: &mut Criterion) {
    let design = compile(FSM_SRC).unwrap();
    c.bench_function("verilog/sim_100_cycles", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(design.clone()).unwrap();
            sim.poke_u64("rst_n", 0).unwrap();
            sim.poke_u64("rst_n", 1).unwrap();
            for i in 0..100u64 {
                sim.poke_u64("x", i & 1).unwrap();
                sim.tick("clk").unwrap();
            }
            black_box(sim.peek("out").unwrap())
        })
    });
}

fn bench_static_analysis(c: &mut Criterion) {
    let fsm = compile(FSM_SRC).unwrap();
    c.bench_function("verilog/analyze_static_fsm", |b| {
        b.iter(|| black_box(haven_verilog::analyze_design(black_box(&fsm))))
    });
    // A wider sequential design: the analyzer's fixpoints scale with
    // signals × drivers rather than simulated cycles.
    let counter = compile(&emit(
        &builders::counter("cnt", 32, Some(1 << 30)),
        &EmitStyle::correct(),
    ))
    .unwrap();
    c.bench_function("verilog/analyze_static_counter32", |b| {
        b.iter(|| black_box(haven_verilog::analyze_design(black_box(&counter))))
    });
}

fn bench_eval_gating(c: &mut Criterion) {
    // The gate's value proposition: analysis of a defective candidate vs
    // co-simulating it to the same (failing) verdict.
    let spec = builders::counter("cnt", 8, None);
    let mut style = EmitStyle::correct();
    style.ignore_reset = true;
    let bad = emit(&spec, &style);
    let stim = stimuli_for(&spec, 1);
    let design = compile(&bad).unwrap();
    c.bench_function("eval/gate_reject_static", |b| {
        b.iter(|| black_box(haven_verilog::analyze_design(black_box(&design))))
    });
    c.bench_function("eval/gate_reject_cosim", |b| {
        b.iter(|| black_box(cosimulate(&spec, &bad, &stim)))
    });
}

fn bench_cosim(c: &mut Criterion) {
    let spec = builders::counter("cnt", 8, Some(100));
    let src = emit(&spec, &EmitStyle::correct());
    let stim = stimuli_for(&spec, 1);
    c.bench_function("spec/cosim_counter", |b| {
        b.iter(|| black_box(cosimulate(&spec, &src, &stim)))
    });
}

fn bench_lm(c: &mut Criterion) {
    let spec = builders::counter("cnt", 4, Some(10));
    let prompt = describe(&spec, DescribeStyle::Engineer);
    let model = CodeGenModel::new(profiles::base_codeqwen(), 0.2);
    c.bench_function("lm/generate_counter", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            black_box(model.generate(&prompt, "bench", i))
        })
    });
    let fsm_prompt = describe(&builders::fsm_ab("f"), DescribeStyle::Engineer);
    let sicot = SiCot::new(model.clone());
    c.bench_function("sicot/refine_fsm_prompt", |b| {
        b.iter(|| black_box(sicot.refine(&fsm_prompt, "bench")))
    });
}

fn bench_datagen(c: &mut Criterion) {
    c.bench_function("datagen/flow_small", |b| {
        b.iter(|| black_box(haven_datagen::run(&haven_datagen::FlowConfig::small(1))))
    });
    c.bench_function("datagen/qm_4var", |b| {
        let vars: Vec<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        let minterms: Vec<u64> = vec![0, 1, 3, 7, 8, 9, 11, 15];
        b.iter(|| black_box(haven_datagen::qm::minimal_sop(&vars, &minterms)))
    });
}

criterion_group! {
    name = substrate;
    config = Criterion::default().sample_size(20);
    targets = bench_frontend, bench_simulator, bench_static_analysis, bench_eval_gating, bench_cosim, bench_lm, bench_datagen
}
criterion_main!(substrate);
