//! Regenerates **Table IV** — the main comparison of HaVen against
//! general, code-generation and Verilog-specialized LLMs on
//! VerilogEval v1 (machine/human), RTLLM v1.1 and VerilogEval v2.
//!
//! ```sh
//! cargo run --release -p haven-bench --bin table4            # paper protocol
//! cargo run --release -p haven-bench --bin table4 -- --quick # fast pass
//! ```

use haven::experiments::{baseline_roster, haven_roster, table4_row, Suites};
use haven_bench::scale_from_args;
use haven_eval::report::Table;

fn main() {
    let scale = scale_from_args();
    let suites = Suites::generate(&scale);
    eprintln!(
        "table4: {} machine / {} human / {} rtllm / {} v2 tasks, n = {}, temps {:?}",
        suites.machine.len(),
        suites.human.len(),
        suites.rtllm.len(),
        suites.v2.len(),
        scale.n,
        scale.temperatures
    );

    eprintln!("running the KL dataset flow and fine-tuning the HaVen models...");
    let flow = haven_datagen::run(&scale.flow);
    let mut roster = baseline_roster();
    roster.extend(haven_roster(&flow));

    let mut table = Table::new(vec![
        "Group",
        "Model",
        "Open",
        "Size",
        "VE-machine p@1",
        "p@5",
        "VE-human p@1",
        "p@5",
        "RTLLM syn p@5",
        "func p@5",
        "VE-v2 p@1",
        "p@5",
    ]);
    for (i, contender) in roster.iter().enumerate() {
        eprintln!("  [{}/{}] {}", i + 1, roster.len(), contender.profile.name);
        let row = table4_row(contender, &suites, &scale);
        table.row(vec![
            row.group.to_string(),
            row.model,
            if row.open_source { "yes" } else { "no" }.to_string(),
            row.size,
            format!("{:.1}", row.machine.0),
            format!("{:.1}", row.machine.1),
            format!("{:.1}", row.human.0),
            format!("{:.1}", row.human.1),
            format!("{:.1}", row.rtllm.0),
            format!("{:.1}", row.rtllm.1),
            format!("{:.1}", row.v2.0),
            format!("{:.1}", row.v2.1),
        ]);
    }
    println!("\nTable IV — comparison of HaVen against baseline models (reproduced)\n");
    println!("{}", table.render());
    println!("Paper reference (functional pass@1, VerilogEval-human): GPT-4 43.5, RTLCoder-DS 41.6, OriGen 54.4, HaVen-CodeLlama 51.3, HaVen-DeepSeek 57.3, HaVen-CodeQwen 61.1.");
}
