//! Emits `BENCH_serve.json` — load characteristics of the serving layer
//! (DESIGN.md §11): worker-pool throughput scaling, verified-response
//! cache hit behaviour, and admission control under overload.
//!
//! Three phases, each against a fresh [`haven_serve::Server`]:
//!
//! 1. **scaling** — the same request stream (distinct prompts, cache off)
//!    at worker counts 1/2/4. The engine models the remote CodeGen-LLM
//!    call as a blocking latency, so workers overlap inference even on a
//!    single core; throughput at 4 workers is expected to be >= 2x the
//!    single-worker baseline.
//! 2. **cache** — one cold pass then one warm pass over the same prompt
//!    mix with the cache enabled; reports hit rate and warm/cold p50.
//! 3. **admission** — a burst far past a tiny queue with a deadline
//!    shorter than the pipeline; reports shed (queue-full) and deadline
//!    rejection rates and checks the accounting invariant.
//! 4. **overload** — a sustained burst at ~10x the pool's service
//!    capacity; reports goodput (completions per second), completed p99
//!    and exact max. Backpressure must keep goodput near capacity
//!    instead of collapsing.
//! 5. **restart** — a durable server (`store_dir`) serves a cold pass,
//!    shuts down, and a second server lifetime warm-starts from the WAL;
//!    reports cold vs warm-restart p50 and the replayed-entry count.
//!
//! ```sh
//! cargo run --release -p haven-bench --bin bench_serve [-- --quick] [-- --out path.json]
//! ```

use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

use haven_lm::model::CodeGenModel;
use haven_lm::profiles::ModelProfile;
use haven_serve::{
    EngineConfig, MetricsSnapshot, Rejection, ServeConfig, ServeOutcome, ServeRequest, Server,
};

/// Distinct benchmark prompts: canonical machine-suite tasks, so the
/// pipeline exercises perceive + lint + cosimulate on every request.
fn prompts() -> Vec<String> {
    haven_eval::suites::verilog_eval_machine(1)
        .into_iter()
        .take(8)
        .map(|t| t.prompt)
        .collect()
}

fn model() -> CodeGenModel {
    CodeGenModel::new(ModelProfile::uniform("bench", 0.8), 0.3)
}

/// Submits `n` requests (prompt mix cycled, suffixed so every request is
/// a distinct cache key) and waits for all replies.
fn drive(server: &Server, n: usize, distinct: bool) -> (Duration, Vec<ServeOutcome>) {
    let mix = prompts();
    let (tx, rx) = channel();
    let t0 = Instant::now();
    for i in 0..n {
        let prompt = if distinct {
            format!("{} // bench variant {i}", mix[i % mix.len()])
        } else {
            mix[i % mix.len()].clone()
        };
        server.submit(ServeRequest::new(format!("r{i}"), prompt), tx.clone());
    }
    drop(tx);
    let outcomes = rx.into_iter().map(|reply| reply.outcome).collect();
    (t0.elapsed(), outcomes)
}

struct ScalingRow {
    workers: usize,
    throughput_rps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
}

fn scaling_phase(requests: usize, inference: Duration) -> Vec<ScalingRow> {
    [1usize, 2, 4]
        .into_iter()
        .map(|workers| {
            let mut server = Server::start(
                model(),
                ServeConfig {
                    workers,
                    cache_capacity: 0, // measure the pipeline, not the cache
                    queue_capacity: requests,
                    default_deadline: Duration::from_secs(120),
                    engine: EngineConfig {
                        inference_latency: inference,
                        ..EngineConfig::default()
                    },
                    ..ServeConfig::default()
                },
            );
            let (elapsed, outcomes) = drive(&server, requests, true);
            server.shutdown();
            let m = server.metrics();
            assert!(m.accounted(), "scaling phase accounting");
            assert_eq!(outcomes.len(), requests);
            let total = m.total;
            eprintln!(
                "  workers={workers}: {requests} requests in {:.2}s ({:.1} req/s)",
                elapsed.as_secs_f64(),
                requests as f64 / elapsed.as_secs_f64(),
            );
            ScalingRow {
                workers,
                throughput_rps: requests as f64 / elapsed.as_secs_f64(),
                p50_us: total.p50_us,
                p95_us: total.p95_us,
                p99_us: total.p99_us,
            }
        })
        .collect()
}

struct CacheStats {
    hit_rate: f64,
    cold_p50_us: u64,
    warm_p50_us: u64,
    snapshot: MetricsSnapshot,
}

fn cache_phase(rounds: usize) -> CacheStats {
    let mut server = Server::start(
        model(),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    let mix = prompts();
    // Cold pass: every prompt is a miss.
    for (i, p) in mix.iter().enumerate() {
        server.serve(ServeRequest::new(format!("cold{i}"), p.clone()));
    }
    let cold_p50 = server.metrics().total.p50_us;
    // Warm passes: every prompt replays from the cache.
    for round in 0..rounds {
        for (i, p) in mix.iter().enumerate() {
            server.serve(ServeRequest::new(format!("warm{round}-{i}"), p.clone()));
        }
    }
    server.shutdown();
    let m = server.metrics();
    assert!(m.accounted(), "cache phase accounting");
    CacheStats {
        hit_rate: m.cache_hit_rate(),
        cold_p50_us: cold_p50,
        warm_p50_us: m.total.p50_us,
        snapshot: m,
    }
}

struct AdmissionStats {
    burst: usize,
    shed: usize,
    deadline_rejected: usize,
    completed: usize,
    rejection_rate: f64,
}

fn admission_phase(burst: usize) -> AdmissionStats {
    let mut server = Server::start(
        model(),
        ServeConfig {
            workers: 1,
            queue_capacity: 4,
            default_deadline: Duration::from_millis(40),
            engine: EngineConfig {
                inference_latency: Duration::from_millis(15),
                ..EngineConfig::default()
            },
            ..ServeConfig::default()
        },
    );
    let (_, outcomes) = drive(&server, burst, true);
    server.shutdown();
    let m = server.metrics();
    assert!(m.accounted(), "admission phase accounting");
    let shed = outcomes
        .iter()
        .filter(|o| matches!(o, ServeOutcome::Rejected(Rejection::QueueFull { .. })))
        .count();
    let deadline = outcomes
        .iter()
        .filter(|o| {
            matches!(
                o,
                ServeOutcome::Rejected(Rejection::DeadlineExceeded { .. })
            )
        })
        .count();
    let completed = outcomes
        .iter()
        .filter(|o| matches!(o, ServeOutcome::Completed(_)))
        .count();
    AdmissionStats {
        burst,
        shed,
        deadline_rejected: deadline,
        completed,
        rejection_rate: (shed + deadline) as f64 / burst as f64,
    }
}

struct OverloadStats {
    burst: usize,
    capacity_rps: f64,
    goodput_rps: f64,
    completed: usize,
    shed: usize,
    p99_us: u64,
    max_us: u64,
}

/// A sustained burst at roughly 10x what the pool can serve within the
/// run: the queue bounds memory, shed requests are typed `QueueFull`,
/// and goodput — completions per wall-clock second — must track the
/// pool's capacity rather than collapsing under the burst.
fn overload_phase(workers: usize, inference: Duration, burst: usize) -> OverloadStats {
    let capacity_rps = workers as f64 / inference.as_secs_f64();
    let mut server = Server::start(
        model(),
        ServeConfig {
            workers,
            queue_capacity: burst / 10,
            default_deadline: Duration::from_secs(120),
            engine: EngineConfig {
                inference_latency: inference,
                ..EngineConfig::default()
            },
            ..ServeConfig::default()
        },
    );
    let (elapsed, outcomes) = drive(&server, burst, true);
    server.shutdown();
    let m = server.metrics();
    assert!(m.accounted(), "overload phase accounting");
    let completed = outcomes
        .iter()
        .filter(|o| matches!(o, ServeOutcome::Completed(_)))
        .count();
    let shed = outcomes
        .iter()
        .filter(|o| matches!(o, ServeOutcome::Rejected(Rejection::QueueFull { .. })))
        .count();
    OverloadStats {
        burst,
        capacity_rps,
        goodput_rps: completed as f64 / elapsed.as_secs_f64(),
        completed,
        shed,
        p99_us: m.total.p99_us,
        max_us: m.total.max_us,
    }
}

struct RestartStats {
    cold_p50_us: u64,
    warm_restart_p50_us: u64,
    persisted: u64,
    replayed: u64,
    warm_hits: u64,
}

/// Two server lifetimes over one durable store directory: the first
/// serves every prompt cold and persists responses to the WAL; the
/// second warm-starts by replaying the WAL and must serve the same
/// prompts as pure cache hits.
fn restart_phase() -> RestartStats {
    let dir =
        std::env::temp_dir().join(format!("haven-bench-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durable = || ServeConfig {
        workers: 2,
        default_deadline: Duration::from_secs(120),
        engine: EngineConfig {
            store_dir: Some(dir.clone()),
            ..EngineConfig::default()
        },
        ..ServeConfig::default()
    };
    let mix = prompts();

    let mut first = Server::start(model(), durable());
    for (i, p) in mix.iter().enumerate() {
        first.serve(ServeRequest::new(format!("cold{i}"), p.clone()));
    }
    first.shutdown();
    let m1 = first.metrics();
    assert!(m1.accounted(), "restart phase (cold) accounting");
    drop(first);

    let mut second = Server::start(model(), durable());
    for (i, p) in mix.iter().enumerate() {
        second.serve(ServeRequest::new(format!("warm{i}"), p.clone()));
    }
    second.shutdown();
    let m2 = second.metrics();
    assert!(m2.accounted(), "restart phase (warm) accounting");
    assert_eq!(
        m2.cache_hits as usize,
        mix.len(),
        "warm restart must serve every prompt from the replayed cache"
    );
    let _ = std::fs::remove_dir_all(&dir);
    RestartStats {
        cold_p50_us: m1.total.p50_us,
        warm_restart_p50_us: m2.total.p50_us,
        persisted: m1.responses_persisted,
        replayed: m2.wal_replayed,
        warm_hits: m2.cache_hits,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let (requests, inference, warm_rounds, burst) = if quick {
        (48, Duration::from_millis(3), 1, 40)
    } else {
        (160, Duration::from_millis(4), 3, 80)
    };

    eprintln!("scaling phase ({requests} requests, {inference:?} modeled inference)...");
    let rows = scaling_phase(requests, inference);
    let base = rows[0].throughput_rps;
    let speedup4 = rows.last().expect("three rows").throughput_rps / base;

    eprintln!("cache phase...");
    let cache = cache_phase(warm_rounds);

    eprintln!("admission phase ({burst}-request burst)...");
    let adm = admission_phase(burst);

    let overload_burst = if quick { 60 } else { 200 };
    eprintln!("overload phase ({overload_burst}-request burst at ~10x capacity)...");
    let ovl = overload_phase(2, Duration::from_millis(10), overload_burst);

    eprintln!("restart phase (durable store, two server lifetimes)...");
    let restart = restart_phase();

    let mut scaling_json = Vec::new();
    for r in &rows {
        scaling_json.push(format!(
            "    {{\"workers\": {}, \"throughput_rps\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}",
            r.workers, r.throughput_rps, r.p50_us, r.p95_us, r.p99_us
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"quick\": {quick},\n  \"requests_per_scaling_run\": {requests},\n  \"inference_latency_ms\": {},\n  \"scaling\": [\n{}\n  ],\n  \"speedup_4_vs_1\": {:.2},\n  \"cache\": {{\"hit_rate\": {:.3}, \"hits\": {}, \"misses\": {}, \"cold_p50_us\": {}, \"warm_p50_us\": {}}},\n  \"admission\": {{\"burst\": {}, \"completed\": {}, \"shed_queue_full\": {}, \"deadline_rejected\": {}, \"rejection_rate\": {:.3}}},\n  \"overload\": {{\"burst\": {}, \"capacity_rps\": {:.1}, \"goodput_rps\": {:.1}, \"completed\": {}, \"shed_queue_full\": {}, \"p99_us\": {}, \"max_us\": {}}},\n  \"restart\": {{\"cold_p50_us\": {}, \"warm_restart_p50_us\": {}, \"responses_persisted\": {}, \"wal_replayed\": {}, \"warm_cache_hits\": {}}}\n}}\n",
        inference.as_millis(),
        scaling_json.join(",\n"),
        speedup4,
        cache.hit_rate,
        cache.snapshot.cache_hits,
        cache.snapshot.cache_misses,
        cache.cold_p50_us,
        cache.warm_p50_us,
        adm.burst,
        adm.completed,
        adm.shed,
        adm.deadline_rejected,
        adm.rejection_rate,
        ovl.burst,
        ovl.capacity_rps,
        ovl.goodput_rps,
        ovl.completed,
        ovl.shed,
        ovl.p99_us,
        ovl.max_us,
        restart.cold_p50_us,
        restart.warm_restart_p50_us,
        restart.persisted,
        restart.replayed,
        restart.warm_hits,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");

    println!("serve load characteristics:");
    for r in &rows {
        println!(
            "  workers={}  {:>7.1} req/s  p50 {:>6} us  p95 {:>6} us  p99 {:>6} us",
            r.workers, r.throughput_rps, r.p50_us, r.p95_us, r.p99_us
        );
    }
    println!("  speedup 4 vs 1 workers: {speedup4:.2}x");
    println!(
        "  cache: hit rate {:.1}% (cold p50 {} us -> warm p50 {} us)",
        cache.hit_rate * 100.0,
        cache.cold_p50_us,
        cache.warm_p50_us
    );
    println!(
        "  admission: {}/{} shed, {} deadline-rejected, {} completed ({:.1}% rejected)",
        adm.shed,
        adm.burst,
        adm.deadline_rejected,
        adm.completed,
        adm.rejection_rate * 100.0
    );
    println!(
        "  overload: {} burst vs {:.0} req/s capacity -> goodput {:.1} req/s ({} completed, {} shed), p99 {} us, max {} us",
        ovl.burst, ovl.capacity_rps, ovl.goodput_rps, ovl.completed, ovl.shed, ovl.p99_us, ovl.max_us
    );
    println!(
        "  restart: cold p50 {} us -> warm-restart p50 {} us ({} persisted, {} replayed, {} warm hits)",
        restart.cold_p50_us,
        restart.warm_restart_p50_us,
        restart.persisted,
        restart.replayed,
        restart.warm_hits
    );
    println!("wrote {out_path}");
    assert!(
        speedup4 >= 2.0,
        "throughput at 4 workers must be >= 2x the 1-worker baseline (got {speedup4:.2}x)"
    );
}
