//! Emits `BENCH_serve.json` — load characteristics of the serving layer
//! (DESIGN.md §11): worker-pool throughput scaling, verified-response
//! cache hit behaviour, and admission control under overload.
//!
//! Three phases, each against a fresh [`haven_serve::Server`]:
//!
//! 1. **scaling** — the same request stream (distinct prompts, cache off)
//!    at worker counts 1/2/4. The engine models the remote CodeGen-LLM
//!    call as a blocking latency, so workers overlap inference even on a
//!    single core; throughput at 4 workers is expected to be >= 2x the
//!    single-worker baseline.
//! 2. **cache** — one cold pass then one warm pass over the same prompt
//!    mix with the cache enabled; reports hit rate and warm/cold p50.
//! 3. **admission** — a burst far past a tiny queue with a deadline
//!    shorter than the pipeline; reports shed (queue-full) and deadline
//!    rejection rates and checks the accounting invariant.
//!
//! ```sh
//! cargo run --release -p haven-bench --bin bench_serve [-- --quick] [-- --out path.json]
//! ```

use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

use haven_lm::model::CodeGenModel;
use haven_lm::profiles::ModelProfile;
use haven_serve::{
    EngineConfig, MetricsSnapshot, Rejection, ServeConfig, ServeOutcome, ServeRequest, Server,
};

/// Distinct benchmark prompts: canonical machine-suite tasks, so the
/// pipeline exercises perceive + lint + cosimulate on every request.
fn prompts() -> Vec<String> {
    haven_eval::suites::verilog_eval_machine(1)
        .into_iter()
        .take(8)
        .map(|t| t.prompt)
        .collect()
}

fn model() -> CodeGenModel {
    CodeGenModel::new(ModelProfile::uniform("bench", 0.8), 0.3)
}

/// Submits `n` requests (prompt mix cycled, suffixed so every request is
/// a distinct cache key) and waits for all replies.
fn drive(server: &Server, n: usize, distinct: bool) -> (Duration, Vec<ServeOutcome>) {
    let mix = prompts();
    let (tx, rx) = channel();
    let t0 = Instant::now();
    for i in 0..n {
        let prompt = if distinct {
            format!("{} // bench variant {i}", mix[i % mix.len()])
        } else {
            mix[i % mix.len()].clone()
        };
        server.submit(ServeRequest::new(format!("r{i}"), prompt), tx.clone());
    }
    drop(tx);
    let outcomes = rx.into_iter().map(|reply| reply.outcome).collect();
    (t0.elapsed(), outcomes)
}

struct ScalingRow {
    workers: usize,
    throughput_rps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
}

fn scaling_phase(requests: usize, inference: Duration) -> Vec<ScalingRow> {
    [1usize, 2, 4]
        .into_iter()
        .map(|workers| {
            let mut server = Server::start(
                model(),
                ServeConfig {
                    workers,
                    cache_capacity: 0, // measure the pipeline, not the cache
                    queue_capacity: requests,
                    default_deadline: Duration::from_secs(120),
                    engine: EngineConfig {
                        inference_latency: inference,
                        ..EngineConfig::default()
                    },
                    ..ServeConfig::default()
                },
            );
            let (elapsed, outcomes) = drive(&server, requests, true);
            server.shutdown();
            let m = server.metrics();
            assert!(m.accounted(), "scaling phase accounting");
            assert_eq!(outcomes.len(), requests);
            let total = m.total;
            eprintln!(
                "  workers={workers}: {requests} requests in {:.2}s ({:.1} req/s)",
                elapsed.as_secs_f64(),
                requests as f64 / elapsed.as_secs_f64(),
            );
            ScalingRow {
                workers,
                throughput_rps: requests as f64 / elapsed.as_secs_f64(),
                p50_us: total.p50_us,
                p95_us: total.p95_us,
                p99_us: total.p99_us,
            }
        })
        .collect()
}

struct CacheStats {
    hit_rate: f64,
    cold_p50_us: u64,
    warm_p50_us: u64,
    snapshot: MetricsSnapshot,
}

fn cache_phase(rounds: usize) -> CacheStats {
    let mut server = Server::start(
        model(),
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    let mix = prompts();
    // Cold pass: every prompt is a miss.
    for (i, p) in mix.iter().enumerate() {
        server.serve(ServeRequest::new(format!("cold{i}"), p.clone()));
    }
    let cold_p50 = server.metrics().total.p50_us;
    // Warm passes: every prompt replays from the cache.
    for round in 0..rounds {
        for (i, p) in mix.iter().enumerate() {
            server.serve(ServeRequest::new(format!("warm{round}-{i}"), p.clone()));
        }
    }
    server.shutdown();
    let m = server.metrics();
    assert!(m.accounted(), "cache phase accounting");
    CacheStats {
        hit_rate: m.cache_hit_rate(),
        cold_p50_us: cold_p50,
        warm_p50_us: m.total.p50_us,
        snapshot: m,
    }
}

struct AdmissionStats {
    burst: usize,
    shed: usize,
    deadline_rejected: usize,
    completed: usize,
    rejection_rate: f64,
}

fn admission_phase(burst: usize) -> AdmissionStats {
    let mut server = Server::start(
        model(),
        ServeConfig {
            workers: 1,
            queue_capacity: 4,
            default_deadline: Duration::from_millis(40),
            engine: EngineConfig {
                inference_latency: Duration::from_millis(15),
                ..EngineConfig::default()
            },
            ..ServeConfig::default()
        },
    );
    let (_, outcomes) = drive(&server, burst, true);
    server.shutdown();
    let m = server.metrics();
    assert!(m.accounted(), "admission phase accounting");
    let shed = outcomes
        .iter()
        .filter(|o| matches!(o, ServeOutcome::Rejected(Rejection::QueueFull { .. })))
        .count();
    let deadline = outcomes
        .iter()
        .filter(|o| {
            matches!(
                o,
                ServeOutcome::Rejected(Rejection::DeadlineExceeded { .. })
            )
        })
        .count();
    let completed = outcomes
        .iter()
        .filter(|o| matches!(o, ServeOutcome::Completed(_)))
        .count();
    AdmissionStats {
        burst,
        shed,
        deadline_rejected: deadline,
        completed,
        rejection_rate: (shed + deadline) as f64 / burst as f64,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let (requests, inference, warm_rounds, burst) = if quick {
        (48, Duration::from_millis(3), 1, 40)
    } else {
        (160, Duration::from_millis(4), 3, 80)
    };

    eprintln!("scaling phase ({requests} requests, {inference:?} modeled inference)...");
    let rows = scaling_phase(requests, inference);
    let base = rows[0].throughput_rps;
    let speedup4 = rows.last().expect("three rows").throughput_rps / base;

    eprintln!("cache phase...");
    let cache = cache_phase(warm_rounds);

    eprintln!("admission phase ({burst}-request burst)...");
    let adm = admission_phase(burst);

    let mut scaling_json = Vec::new();
    for r in &rows {
        scaling_json.push(format!(
            "    {{\"workers\": {}, \"throughput_rps\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}",
            r.workers, r.throughput_rps, r.p50_us, r.p95_us, r.p99_us
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"quick\": {quick},\n  \"requests_per_scaling_run\": {requests},\n  \"inference_latency_ms\": {},\n  \"scaling\": [\n{}\n  ],\n  \"speedup_4_vs_1\": {:.2},\n  \"cache\": {{\"hit_rate\": {:.3}, \"hits\": {}, \"misses\": {}, \"cold_p50_us\": {}, \"warm_p50_us\": {}}},\n  \"admission\": {{\"burst\": {}, \"completed\": {}, \"shed_queue_full\": {}, \"deadline_rejected\": {}, \"rejection_rate\": {:.3}}}\n}}\n",
        inference.as_millis(),
        scaling_json.join(",\n"),
        speedup4,
        cache.hit_rate,
        cache.snapshot.cache_hits,
        cache.snapshot.cache_misses,
        cache.cold_p50_us,
        cache.warm_p50_us,
        adm.burst,
        adm.completed,
        adm.shed,
        adm.deadline_rejected,
        adm.rejection_rate,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");

    println!("serve load characteristics:");
    for r in &rows {
        println!(
            "  workers={}  {:>7.1} req/s  p50 {:>6} us  p95 {:>6} us  p99 {:>6} us",
            r.workers, r.throughput_rps, r.p50_us, r.p95_us, r.p99_us
        );
    }
    println!("  speedup 4 vs 1 workers: {speedup4:.2}x");
    println!(
        "  cache: hit rate {:.1}% (cold p50 {} us -> warm p50 {} us)",
        cache.hit_rate * 100.0,
        cache.cold_p50_us,
        cache.warm_p50_us
    );
    println!(
        "  admission: {}/{} shed, {} deadline-rejected, {} completed ({:.1}% rejected)",
        adm.shed,
        adm.burst,
        adm.deadline_rejected,
        adm.completed,
        adm.rejection_rate * 100.0
    );
    println!("wrote {out_path}");
    assert!(
        speedup4 >= 2.0,
        "throughput at 4 workers must be >= 2x the 1-worker baseline (got {speedup4:.2}x)"
    );
}
