//! Regenerates **Fig. 4** — the KL-dataset composition study: CodeQwen
//! fine-tuned on vanilla plus {0, 50, 100}% of the K-dataset crossed with
//! {0, 50, 100}% of the L-dataset, evaluated on VerilogEval-human.
//!
//! ```sh
//! cargo run --release -p haven-bench --bin fig4 [-- --quick]
//! ```

use haven::experiments::{composition_point, Suites};
use haven_bench::scale_from_args;
use haven_eval::report::Table;

fn main() {
    let scale = scale_from_args();
    let suites = Suites::generate(&scale);
    eprintln!(
        "fig4: {} human tasks, n = {}, temps {:?}",
        suites.human.len(),
        scale.n,
        scale.temperatures
    );
    let flow = haven_datagen::run(&scale.flow);
    eprintln!(
        "dataset: {} K pairs, {} L pairs",
        flow.stats.k_pairs, flow.stats.l_pairs
    );

    let fractions = [0.0, 0.5, 1.0];
    let mut table = Table::new(vec!["K %", "L %", "pass@1", "pass@5"]);
    for &k in &fractions {
        for &l in &fractions {
            eprintln!("  K={:.0}% L={:.0}%", k * 100.0, l * 100.0);
            let p = composition_point(k, l, &flow, &suites, &scale);
            table.row(vec![
                format!("{:.0}", k * 100.0),
                format!("{:.0}", l * 100.0),
                format!("{:.1}", p.pass1),
                format!("{:.1}", p.pass5),
            ]);
        }
    }
    println!("\nFig. 4 — KL-dataset composition on CodeQwen, VerilogEval-human (reproduced)\n");
    println!("{}", table.render());
    println!("Paper reference: both K%% and L%% help monotonically; K contributes more (it is the larger set), and enlarging KL further keeps helping.");
}
