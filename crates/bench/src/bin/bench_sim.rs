//! Emits `BENCH_sim.json` — the simulator perf trajectory (DESIGN.md §10).
//!
//! Measures steady-state cost per stimulus step (median ns/tick over many
//! batches, simulator constructed once outside the timed region) for the
//! reference interpreter and the compiled bytecode backend on the same
//! design shapes the Criterion bench `sim_backends` covers, plus the
//! eval-harness memoization hit-rate on a small representative suite.
//!
//! ```sh
//! cargo run --release -p haven-bench --bin bench_sim [-- --out path.json]
//! ```

use std::time::Instant;

use haven_engine::{DutSession, Engine, SimBackend};
use haven_eval::harness::{evaluate, EvalConfig};
use haven_eval::suites;
use haven_lm::profiles::ModelProfile;
use haven_verilog::sim::SimBudget;

const TICKS_PER_BATCH: usize = 2_000;
const BATCHES: usize = 31;

const COUNTER_SRC: &str = "module cnt(input clk, input rst_n, input en, output reg [31:0] q);
    always @(posedge clk or negedge rst_n)
        if (!rst_n) q <= 32'd0;
        else if (en) q <= q + 32'd1;
endmodule";

const ADDER_SRC: &str = "module addtree(input [15:0] a, input [15:0] b, input [15:0] c, input [15:0] d, output [17:0] s);
    wire [16:0] ab;
    wire [16:0] cd;
    assign ab = {1'b0, a} + {1'b0, b};
    assign cd = {1'b0, c} + {1'b0, d};
    assign s = {1'b0, ab} + {1'b0, cd};
endmodule";

const FSM_SRC: &str = "module fsm(input clk, input rst_n, input x, output reg out);
    localparam S_A = 1'd0, S_B = 1'd1;
    reg state, next_state;
    always @(posedge clk or negedge rst_n)
        if (!rst_n) state <= S_A;
        else state <= next_state;
    always @(*)
        case (state)
            S_A: next_state = x ? S_A : S_B;
            S_B: next_state = x ? S_B : S_A;
            default: next_state = S_A;
        endcase
    always @(*)
        case (state)
            S_A: out = 1'd0;
            S_B: out = 1'd1;
            default: out = 1'd0;
        endcase
endmodule";

const PIPE_SRC: &str = "module pipe(input clk, input rst_n, input [15:0] d, output reg [15:0] q);
    reg [15:0] s0, s1, s2;
    always @(posedge clk or negedge rst_n)
        if (!rst_n) s0 <= 16'd0; else s0 <= d + 16'd1;
    always @(posedge clk or negedge rst_n)
        if (!rst_n) s1 <= 16'd0; else s1 <= s0 ^ 16'h5a5a;
    always @(posedge clk or negedge rst_n)
        if (!rst_n) s2 <= 16'd0; else s2 <= s1 + s0;
    always @(posedge clk or negedge rst_n)
        if (!rst_n) q <= 16'd0; else q <= s2;
endmodule";

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Steady-state median ns per step: warm up one full batch, then time
/// `BATCHES` batches of `TICKS_PER_BATCH` steps and take the median batch
/// average. Construction and time-zero settle stay outside the clock.
fn time_steps(mut step: impl FnMut(usize)) -> f64 {
    for i in 0..TICKS_PER_BATCH {
        step(i);
    }
    let mut per_tick = Vec::with_capacity(BATCHES);
    for b in 0..BATCHES {
        let t0 = Instant::now();
        for i in 0..TICKS_PER_BATCH {
            step(b * TICKS_PER_BATCH + i);
        }
        per_tick.push(t0.elapsed().as_nanos() as f64 / TICKS_PER_BATCH as f64);
    }
    median(per_tick)
}

/// One step of a clocked design: alternate the data input, then tick.
/// Handles resolve once up front through the session's cache, so the
/// timed region drives pre-resolved ids on either backend.
fn seq_steps(dut: &mut DutSession, data: Option<&str>) -> f64 {
    let rst = dut.resolve("rst_n").expect("bench signal exists");
    dut.poke_id_u64(rst, 0).expect("bench poke is valid");
    dut.poke_id_u64(rst, 1).expect("bench poke is valid");
    let clk = dut.resolve("clk").expect("bench signal exists");
    let data = data.map(|name| dut.resolve(name).expect("bench signal exists"));
    time_steps(|i| {
        if let Some(d) = data {
            dut.poke_id_u64(d, (i as u64) & 0xffff)
                .expect("bench poke is valid");
        }
        dut.tick_id(clk).expect("bench tick is valid");
    })
}

/// One step of a pure-comb design: poke two inputs with fresh values.
fn comb_steps(dut: &mut DutSession) -> f64 {
    let a = dut.resolve("a").expect("bench signal exists");
    let b = dut.resolve("b").expect("bench signal exists");
    time_steps(|i| {
        dut.poke_id_u64(a, (i as u64) & 0xffff)
            .expect("bench poke is valid");
        dut.poke_id_u64(b, ((i as u64) * 7 + 3) & 0xffff)
            .expect("bench poke is valid");
    })
}

struct Row {
    name: &'static str,
    kind: &'static str,
    levelized: bool,
    interp_ns: f64,
    compiled_ns: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.interp_ns / self.compiled_ns
    }
}

fn bench_design(name: &'static str, kind: &'static str, src: &str, data: Option<&str>) -> Row {
    let interp_engine = Engine::uncached(SimBackend::Interpreter, SimBudget::default());
    let compiled_engine = Engine::uncached(SimBackend::Compiled, SimBudget::default());
    let interp_art = interp_engine.prepare(src).expect("bench design compiles");
    let compiled_art = compiled_engine.prepare(src).expect("bench design compiles");
    let levelized = compiled_art
        .bytecode()
        .expect("compiled artifact carries bytecode")
        .is_levelized();

    let mut interp = interp_engine
        .session(&interp_art)
        .expect("bench design simulates");
    let interp_ns = match kind {
        "combinational" => comb_steps(&mut interp),
        _ => seq_steps(&mut interp, data),
    };

    let mut fast = compiled_engine
        .session(&compiled_art)
        .expect("bench design executes");
    let compiled_ns = match kind {
        "combinational" => comb_steps(&mut fast),
        _ => seq_steps(&mut fast, data),
    };

    Row {
        name,
        kind,
        levelized,
        interp_ns,
        compiled_ns,
    }
}

fn dedup_rate() -> (usize, usize) {
    let suite: Vec<_> = suites::verilog_eval_machine(1)
        .into_iter()
        .take(12)
        .collect();
    let cfg = EvalConfig::quick(5);
    let result = evaluate(&ModelProfile::uniform("mid", 0.6), &suite, &cfg)
        .expect("bench eval config is valid by construction");
    (result.dedup_hits(), suite.len() * cfg.n)
}

fn main() {
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_sim.json".to_string())
    };

    eprintln!("timing backends ({TICKS_PER_BATCH} ticks x {BATCHES} batches per point)...");
    let rows = vec![
        bench_design("counter32", "sequential", COUNTER_SRC, None),
        bench_design("addtree16", "combinational", ADDER_SRC, None),
        bench_design("fsm2", "mixed", FSM_SRC, Some("x")),
        bench_design("pipe4x16", "sequential", PIPE_SRC, Some("d")),
    ];

    eprintln!("measuring memoization hit-rate...");
    let (dedup_hits, total_samples) = dedup_rate();

    let median_speedup = median(rows.iter().map(Row::speedup).collect());

    let mut design_json = Vec::new();
    for r in &rows {
        design_json.push(format!(
            "    {{\"name\": \"{}\", \"kind\": \"{}\", \"levelized\": {}, \"interp_ns_per_tick\": {:.1}, \"compiled_ns_per_tick\": {:.1}, \"speedup\": {:.2}}}",
            r.name,
            r.kind,
            r.levelized,
            r.interp_ns,
            r.compiled_ns,
            r.speedup()
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"sim_backends\",\n  \"ticks_per_batch\": {TICKS_PER_BATCH},\n  \"batches\": {BATCHES},\n  \"designs\": [\n{}\n  ],\n  \"median_speedup\": {:.2},\n  \"memoization\": {{\"dedup_hits\": {dedup_hits}, \"total_samples\": {total_samples}, \"hit_rate\": {:.3}}}\n}}\n",
        design_json.join(",\n"),
        median_speedup,
        dedup_hits as f64 / total_samples.max(1) as f64,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_sim.json");

    println!("sim backend steady-state cost (median ns/tick):");
    for r in &rows {
        println!(
            "  {:<10} {:<14} interp {:>8.1}  compiled {:>8.1}  speedup {:>5.2}x{}",
            r.name,
            r.kind,
            r.interp_ns,
            r.compiled_ns,
            r.speedup(),
            if r.levelized { "" } else { "  (event-queue)" },
        );
    }
    println!("  median speedup: {median_speedup:.2}x");
    println!("  memoization: {dedup_hits}/{total_samples} sample verdicts replayed");
    println!("wrote {out_path}");
}
