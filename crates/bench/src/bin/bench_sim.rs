//! Emits `BENCH_sim.json` — the simulator perf trajectory (DESIGN.md §10).
//!
//! Measures steady-state cost per stimulus step (median ns/tick over many
//! batches, simulator constructed once outside the timed region) for the
//! reference interpreter and the compiled bytecode backend on the same
//! design shapes the Criterion bench `sim_backends` covers, the
//! eval-harness memoization hit-rate on a small representative suite,
//! verdicts/sec of the scalar vs bit-parallel batched co-simulation on
//! the eval screening workload (DESIGN.md §15), and the netlist pass
//! pipeline's effect — ns/tick and total bytecode ops with
//! `PassConfig::none` vs `PassConfig::full` (DESIGN.md §17).
//!
//! ```sh
//! cargo run --release -p haven-bench --bin bench_sim [-- --out path.json] [-- --quick]
//! ```
//!
//! `--quick` shrinks every timed region for CI smoke runs; the JSON
//! layout is identical.

use std::time::Instant;

use haven_engine::{DutSession, Engine, EngineOptions, SimBackend};
use haven_eval::harness::{evaluate, EvalConfig};
use haven_eval::suites;
use haven_lm::profiles::ModelProfile;
use haven_spec::codegen::{emit, EmitStyle};
use haven_spec::cosim::{cosimulate_artifact, cosimulate_batch_planned, BatchPlan, CosimOptions};
use haven_spec::stimuli::stimuli_for;
use haven_spec::{builders, Spec};
use haven_verilog::sim::SimBudget;
use haven_verilog::{CompiledDesign, PassConfig};

/// Sizes of every timed region, selected by `--quick`.
struct BenchScale {
    ticks_per_batch: usize,
    batches: usize,
    /// Verdicts per (design, backend) point in the screening section.
    screen_repeats: usize,
}

const FULL: BenchScale = BenchScale {
    ticks_per_batch: 2_000,
    batches: 31,
    screen_repeats: 300,
};

const QUICK: BenchScale = BenchScale {
    ticks_per_batch: 400,
    batches: 7,
    screen_repeats: 40,
};

const COUNTER_SRC: &str = "module cnt(input clk, input rst_n, input en, output reg [31:0] q);
    always @(posedge clk or negedge rst_n)
        if (!rst_n) q <= 32'd0;
        else if (en) q <= q + 32'd1;
endmodule";

const ADDER_SRC: &str = "module addtree(input [15:0] a, input [15:0] b, input [15:0] c, input [15:0] d, output [17:0] s);
    wire [16:0] ab;
    wire [16:0] cd;
    assign ab = {1'b0, a} + {1'b0, b};
    assign cd = {1'b0, c} + {1'b0, d};
    assign s = {1'b0, ab} + {1'b0, cd};
endmodule";

const FSM_SRC: &str = "module fsm(input clk, input rst_n, input x, output reg out);
    localparam S_A = 1'd0, S_B = 1'd1;
    reg state, next_state;
    always @(posedge clk or negedge rst_n)
        if (!rst_n) state <= S_A;
        else state <= next_state;
    always @(*)
        case (state)
            S_A: next_state = x ? S_A : S_B;
            S_B: next_state = x ? S_B : S_A;
            default: next_state = S_A;
        endcase
    always @(*)
        case (state)
            S_A: out = 1'd0;
            S_B: out = 1'd1;
            default: out = 1'd0;
        endcase
endmodule";

const PIPE_SRC: &str = "module pipe(input clk, input rst_n, input [15:0] d, output reg [15:0] q);
    reg [15:0] s0, s1, s2;
    always @(posedge clk or negedge rst_n)
        if (!rst_n) s0 <= 16'd0; else s0 <= d + 16'd1;
    always @(posedge clk or negedge rst_n)
        if (!rst_n) s1 <= 16'd0; else s1 <= s0 ^ 16'h5a5a;
    always @(posedge clk or negedge rst_n)
        if (!rst_n) s2 <= 16'd0; else s2 <= s1 + s0;
    always @(posedge clk or negedge rst_n)
        if (!rst_n) q <= 16'd0; else q <= s2;
endmodule";

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Steady-state median ns per step: warm up one full batch, then time
/// `scale.batches` batches of `scale.ticks_per_batch` steps and take the
/// median batch average. Construction and time-zero settle stay outside
/// the clock.
fn time_steps(scale: &BenchScale, mut step: impl FnMut(usize)) -> f64 {
    for i in 0..scale.ticks_per_batch {
        step(i);
    }
    let mut per_tick = Vec::with_capacity(scale.batches);
    for b in 0..scale.batches {
        let t0 = Instant::now();
        for i in 0..scale.ticks_per_batch {
            step(b * scale.ticks_per_batch + i);
        }
        per_tick.push(t0.elapsed().as_nanos() as f64 / scale.ticks_per_batch as f64);
    }
    median(per_tick)
}

/// One step of a clocked design: alternate the data input, then tick.
/// Handles resolve once up front through the session's cache, so the
/// timed region drives pre-resolved ids on either backend.
fn seq_steps(scale: &BenchScale, dut: &mut DutSession, data: Option<&str>) -> f64 {
    let rst = dut.resolve("rst_n").expect("bench signal exists");
    dut.poke_id_u64(rst, 0).expect("bench poke is valid");
    dut.poke_id_u64(rst, 1).expect("bench poke is valid");
    let clk = dut.resolve("clk").expect("bench signal exists");
    let data = data.map(|name| dut.resolve(name).expect("bench signal exists"));
    time_steps(scale, |i| {
        if let Some(d) = data {
            dut.poke_id_u64(d, (i as u64) & 0xffff)
                .expect("bench poke is valid");
        }
        dut.tick_id(clk).expect("bench tick is valid");
    })
}

/// One step of a pure-comb design: poke two inputs with fresh values.
fn comb_steps(scale: &BenchScale, dut: &mut DutSession) -> f64 {
    let a = dut.resolve("a").expect("bench signal exists");
    let b = dut.resolve("b").expect("bench signal exists");
    time_steps(scale, |i| {
        dut.poke_id_u64(a, (i as u64) & 0xffff)
            .expect("bench poke is valid");
        dut.poke_id_u64(b, ((i as u64) * 7 + 3) & 0xffff)
            .expect("bench poke is valid");
    })
}

struct Row {
    name: &'static str,
    kind: &'static str,
    levelized: bool,
    interp_ns: f64,
    compiled_ns: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.interp_ns / self.compiled_ns
    }
}

fn bench_design(
    scale: &BenchScale,
    name: &'static str,
    kind: &'static str,
    src: &str,
    data: Option<&str>,
) -> Row {
    let interp_engine = Engine::uncached(SimBackend::Interpreter, SimBudget::default());
    let compiled_engine = Engine::uncached(SimBackend::Compiled, SimBudget::default());
    let interp_art = interp_engine.prepare(src).expect("bench design compiles");
    let compiled_art = compiled_engine.prepare(src).expect("bench design compiles");
    let levelized = compiled_art
        .bytecode()
        .expect("compiled artifact carries bytecode")
        .is_levelized();

    let mut interp = interp_engine
        .session(&interp_art)
        .expect("bench design simulates");
    let interp_ns = match kind {
        "combinational" => comb_steps(scale, &mut interp),
        _ => seq_steps(scale, &mut interp, data),
    };

    let mut fast = compiled_engine
        .session(&compiled_art)
        .expect("bench design executes");
    let compiled_ns = match kind {
        "combinational" => comb_steps(scale, &mut fast),
        _ => seq_steps(scale, &mut fast, data),
    };

    Row {
        name,
        kind,
        levelized,
        interp_ns,
        compiled_ns,
    }
}

/// One design's cost with the netlist pass pipeline off vs on
/// (DESIGN.md §17): same compiled backend, same stimulus loop, only
/// `PassConfig` differs. `ops_*` count total bytecode ops across every
/// expression chunk, the quantity the pipeline exists to shrink.
struct PassRow {
    name: &'static str,
    kind: &'static str,
    unopt_ns: f64,
    opt_ns: f64,
    ops_pre: usize,
    ops_post: usize,
}

impl PassRow {
    fn tick_ratio(&self) -> f64 {
        self.unopt_ns / self.opt_ns
    }

    fn op_shrink(&self) -> f64 {
        1.0 - self.ops_post as f64 / self.ops_pre.max(1) as f64
    }
}

fn total_ops(cd: &CompiledDesign) -> usize {
    (0..cd.chunk_count() as u32).map(|i| cd.expr(i).len()).sum()
}

fn bench_passes(
    scale: &BenchScale,
    name: &'static str,
    kind: &'static str,
    src: &str,
    data: Option<&str>,
) -> PassRow {
    let engine_with = |passes| {
        Engine::new(EngineOptions {
            backend: SimBackend::Compiled,
            budget: SimBudget::default(),
            cache_capacity: 4,
            passes,
        })
    };
    let unopt_engine = engine_with(PassConfig::none());
    let opt_engine = engine_with(PassConfig::full());
    let unopt_art = unopt_engine.prepare(src).expect("bench design compiles");
    let opt_art = opt_engine.prepare(src).expect("bench design compiles");
    let ops_pre = total_ops(unopt_art.bytecode().expect("compiled backend"));
    let ops_post = total_ops(opt_art.bytecode().expect("compiled backend"));

    let mut unopt = unopt_engine
        .session(&unopt_art)
        .expect("bench design executes");
    let unopt_ns = match kind {
        "combinational" => comb_steps(scale, &mut unopt),
        _ => seq_steps(scale, &mut unopt, data),
    };
    let mut opt = opt_engine.session(&opt_art).expect("bench design executes");
    let opt_ns = match kind {
        "combinational" => comb_steps(scale, &mut opt),
        _ => seq_steps(scale, &mut opt, data),
    };

    PassRow {
        name,
        kind,
        unopt_ns,
        opt_ns,
        ops_pre,
        ops_post,
    }
}

fn dedup_rate() -> (usize, usize) {
    let suite: Vec<_> = suites::verilog_eval_machine(1)
        .into_iter()
        .take(12)
        .collect();
    let cfg = EvalConfig::quick(5);
    let result = evaluate(&ModelProfile::uniform("mid", 0.6), &suite, &cfg)
        .expect("bench eval config is valid by construction");
    (result.dedup_hits(), suite.len() * cfg.n)
}

/// One design's scalar-vs-batched screening throughput.
struct ScreenRow {
    name: String,
    scalar_vps: f64,
    batched_vps: f64,
    /// All three reports (interpreter, scalar compiled, batched) equal.
    bit_identical: bool,
}

impl ScreenRow {
    fn speedup(&self) -> f64 {
        self.batched_vps / self.scalar_vps
    }
}

/// The screening workload: combinational candidate sweeps, the shape the
/// eval harness spends its simulation time on (one verdict = one full
/// co-simulation of one candidate against its stimulus program). Widths
/// track the top of the ranges `suites::verilog_eval_machine` draws from,
/// so the numbers transfer to real eval runs.
fn screening_specs() -> Vec<Spec> {
    vec![
        builders::adder("screen_add8", 8),
        builders::mux2("screen_mux8", 8),
        builders::comparator("screen_cmp6", 6),
        builders::decoder("screen_dec3", 3),
    ]
}

/// Scalar vs bit-parallel verdict throughput on the screening workload,
/// with every batched report checked bit-identical against both the
/// scalar compiled run and the reference-interpreter oracle.
fn verdicts_per_second(scale: &BenchScale) -> (Vec<ScreenRow>, f64, f64) {
    let compiled = |cache| {
        Engine::new(EngineOptions {
            backend: SimBackend::Compiled,
            budget: SimBudget::default(),
            cache_capacity: cache,
            ..EngineOptions::default()
        })
    };
    let scalar_engine = compiled(64);
    let batched_engine = compiled(64);
    let interp_engine = Engine::new(EngineOptions {
        backend: SimBackend::Interpreter,
        budget: SimBudget::default(),
        cache_capacity: 64,
        ..EngineOptions::default()
    });

    let mut rows = Vec::new();
    let (mut scalar_total, mut batched_total) = (0.0f64, 0.0f64);
    for spec in screening_specs() {
        let source = emit(&spec, &EmitStyle::correct());
        let stim = stimuli_for(&spec, 0xb1697);
        let options = CosimOptions {
            mid_tick_checks: true,
            budget: SimBudget::default(),
            backend: SimBackend::Compiled,
        };
        let interp_options = CosimOptions {
            backend: SimBackend::Interpreter,
            ..options
        };
        let scalar_art = scalar_engine
            .prepare(&source)
            .expect("screening design compiles");
        let batched_art = batched_engine
            .prepare(&source)
            .expect("screening design compiles");
        let interp_art = interp_engine
            .prepare(&source)
            .expect("screening design compiles");

        // Differential oracle check (untimed): the batched verdict must
        // be bit-identical to both scalar runs.
        let interp_report =
            cosimulate_artifact(&spec, &interp_engine, &interp_art, &stim, &interp_options);
        let scalar_report =
            cosimulate_artifact(&spec, &scalar_engine, &scalar_art, &stim, &options);
        // One plan per design, exactly like the eval harness: the task's
        // stimulus program is shared by every candidate, so the golden
        // sweep is amortized and the timed loop measures per-candidate
        // cost only (pokes + settles + divergence masks).
        let plan = BatchPlan::new(&spec, &stim);
        let batched_report =
            cosimulate_batch_planned(&spec, &batched_engine, &batched_art, &stim, &options, &plan);
        let bit_identical = interp_report == scalar_report && scalar_report == batched_report;

        let t0 = Instant::now();
        for _ in 0..scale.screen_repeats {
            let _ = cosimulate_artifact(&spec, &scalar_engine, &scalar_art, &stim, &options);
        }
        let scalar_s = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        for _ in 0..scale.screen_repeats {
            let _ = cosimulate_batch_planned(
                &spec,
                &batched_engine,
                &batched_art,
                &stim,
                &options,
                &plan,
            );
        }
        let batched_s = t0.elapsed().as_secs_f64();

        scalar_total += scalar_s;
        batched_total += batched_s;
        rows.push(ScreenRow {
            name: spec.name.clone(),
            scalar_vps: scale.screen_repeats as f64 / scalar_s,
            batched_vps: scale.screen_repeats as f64 / batched_s,
            bit_identical,
        });
    }
    let verdicts = (rows.len() * scale.screen_repeats) as f64;
    (rows, verdicts / scalar_total, verdicts / batched_total)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { QUICK } else { FULL };

    eprintln!(
        "timing backends ({} ticks x {} batches per point{})...",
        scale.ticks_per_batch,
        scale.batches,
        if quick { ", quick" } else { "" }
    );
    let rows = vec![
        bench_design(&scale, "counter32", "sequential", COUNTER_SRC, None),
        bench_design(&scale, "addtree16", "combinational", ADDER_SRC, None),
        bench_design(&scale, "fsm2", "mixed", FSM_SRC, Some("x")),
        bench_design(&scale, "pipe4x16", "sequential", PIPE_SRC, Some("d")),
    ];

    eprintln!("timing pass pipeline off vs on...");
    let pass_rows = vec![
        bench_passes(&scale, "counter32", "sequential", COUNTER_SRC, None),
        bench_passes(&scale, "addtree16", "combinational", ADDER_SRC, None),
        bench_passes(&scale, "fsm2", "mixed", FSM_SRC, Some("x")),
        bench_passes(&scale, "pipe4x16", "sequential", PIPE_SRC, Some("d")),
    ];

    eprintln!("measuring batched screening throughput...");
    let (screen_rows, scalar_vps, batched_vps) = verdicts_per_second(&scale);
    let screen_speedup = batched_vps / scalar_vps;
    let all_identical = screen_rows.iter().all(|r| r.bit_identical);

    eprintln!("measuring memoization hit-rate...");
    let (dedup_hits, total_samples) = dedup_rate();

    let median_speedup = median(rows.iter().map(Row::speedup).collect());

    let mut design_json = Vec::new();
    for r in &rows {
        design_json.push(format!(
            "    {{\"name\": \"{}\", \"kind\": \"{}\", \"levelized\": {}, \"interp_ns_per_tick\": {:.1}, \"compiled_ns_per_tick\": {:.1}, \"speedup\": {:.2}}}",
            r.name,
            r.kind,
            r.levelized,
            r.interp_ns,
            r.compiled_ns,
            r.speedup()
        ));
    }
    let mut pass_json = Vec::new();
    for r in &pass_rows {
        pass_json.push(format!(
            "      {{\"name\": \"{}\", \"kind\": \"{}\", \"unopt_ns_per_tick\": {:.1}, \"opt_ns_per_tick\": {:.1}, \"tick_ratio\": {:.2}, \"ops_pre\": {}, \"ops_post\": {}, \"op_shrink\": {:.3}}}",
            r.name,
            r.kind,
            r.unopt_ns,
            r.opt_ns,
            r.tick_ratio(),
            r.ops_pre,
            r.ops_post,
            r.op_shrink()
        ));
    }
    let median_tick_ratio = median(pass_rows.iter().map(PassRow::tick_ratio).collect());
    let (ops_pre_total, ops_post_total) = pass_rows
        .iter()
        .fold((0usize, 0usize), |(p, q), r| (p + r.ops_pre, q + r.ops_post));
    let mut screen_json = Vec::new();
    for r in &screen_rows {
        screen_json.push(format!(
            "      {{\"name\": \"{}\", \"scalar_verdicts_per_sec\": {:.0}, \"batched_verdicts_per_sec\": {:.0}, \"speedup\": {:.2}, \"bit_identical\": {}}}",
            r.name,
            r.scalar_vps,
            r.batched_vps,
            r.speedup(),
            r.bit_identical
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"sim_backends\",\n  \"ticks_per_batch\": {},\n  \"batches\": {},\n  \"designs\": [\n{}\n  ],\n  \"median_speedup\": {:.2},\n  \"pass_pipeline\": {{\n    \"workload\": \"compiled backend, PassConfig::none vs PassConfig::full (DESIGN.md \\u00a717)\",\n    \"designs\": [\n{}\n    ],\n    \"median_tick_ratio\": {:.2},\n    \"ops_pre_total\": {},\n    \"ops_post_total\": {}\n  }},\n  \"verdicts_per_second\": {{\n    \"workload\": \"eval screening (combinational candidate sweeps)\",\n    \"repeats_per_design\": {},\n    \"designs\": [\n{}\n    ],\n    \"scalar_verdicts_per_sec\": {:.0},\n    \"batched_verdicts_per_sec\": {:.0},\n    \"speedup\": {:.2},\n    \"bit_identical\": {}\n  }},\n  \"memoization\": {{\"dedup_hits\": {dedup_hits}, \"total_samples\": {total_samples}, \"hit_rate\": {:.3}}}\n}}\n",
        scale.ticks_per_batch,
        scale.batches,
        design_json.join(",\n"),
        median_speedup,
        pass_json.join(",\n"),
        median_tick_ratio,
        ops_pre_total,
        ops_post_total,
        scale.screen_repeats,
        screen_json.join(",\n"),
        scalar_vps,
        batched_vps,
        screen_speedup,
        all_identical,
        dedup_hits as f64 / total_samples.max(1) as f64,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_sim.json");

    println!("sim backend steady-state cost (median ns/tick):");
    for r in &rows {
        println!(
            "  {:<10} {:<14} interp {:>8.1}  compiled {:>8.1}  speedup {:>5.2}x{}",
            r.name,
            r.kind,
            r.interp_ns,
            r.compiled_ns,
            r.speedup(),
            if r.levelized { "" } else { "  (event-queue)" },
        );
    }
    println!("  median speedup: {median_speedup:.2}x");
    println!("netlist pass pipeline (off vs on, compiled backend):");
    for r in &pass_rows {
        println!(
            "  {:<10} {:<14} unopt {:>8.1}  opt {:>8.1}  ratio {:>5.2}x  ops {:>4} -> {:<4} (-{:.1}%)",
            r.name,
            r.kind,
            r.unopt_ns,
            r.opt_ns,
            r.tick_ratio(),
            r.ops_pre,
            r.ops_post,
            r.op_shrink() * 100.0,
        );
    }
    println!(
        "  median tick ratio: {median_tick_ratio:.2}x, total ops {ops_pre_total} -> {ops_post_total}"
    );
    println!("screening verdicts/sec (scalar vs 64-lane batched):");
    for r in &screen_rows {
        println!(
            "  {:<14} scalar {:>8.0}/s  batched {:>9.0}/s  speedup {:>5.2}x  identical: {}",
            r.name,
            r.scalar_vps,
            r.batched_vps,
            r.speedup(),
            r.bit_identical
        );
    }
    println!("  overall: {scalar_vps:.0}/s -> {batched_vps:.0}/s ({screen_speedup:.2}x, bit_identical: {all_identical})");
    println!("  memoization: {dedup_hits}/{total_samples} sample verdicts replayed");
    println!("wrote {out_path}");
}
