//! Regenerates **Table VI** — the effect of SI-CoT instructions (produced
//! by the base CodeQwen) on commercial LLMs, over the 44 symbolic tasks.
//!
//! Note: the camera-ready's header rows are evidently swapped (the prose
//! states SI-CoT *helps*); we print the prose-consistent orientation.
//!
//! ```sh
//! cargo run --release -p haven-bench --bin table6 [-- --quick]
//! ```

use haven::experiments::{table6_entry, Suites};
use haven_bench::scale_from_args;
use haven_eval::report::Table;
use haven_lm::profiles;

fn main() {
    let mut scale = scale_from_args();
    scale.task_limit = None;
    let suites = Suites::generate(&scale);
    eprintln!(
        "table6: {} symbolic tasks, n = {}, temps {:?}",
        suites.symbolic.len(),
        scale.n,
        scale.temperatures
    );

    let models = [
        profiles::gpt4o_mini(),
        profiles::gpt4(),
        profiles::deepseek_coder_v2(),
    ];
    let entries: Vec<_> = models
        .iter()
        .map(|p| {
            eprintln!("  {}", p.name);
            table6_entry(p, &suites, &scale)
        })
        .collect();

    let mut table = Table::new(vec!["", "GPT-4o mini", "GPT-4", "DeepSeek-Coder-V2"]);
    table.row({
        let mut r = vec!["Pass@1 (w/o SI-CoT)".to_string()];
        r.extend(entries.iter().map(|e| format!("{:.1}%", e.without)));
        r
    });
    table.row({
        let mut r = vec!["Pass@1 (w SI-CoT)".to_string()];
        r.extend(entries.iter().map(|e| format!("{:.1}%", e.with)));
        r
    });
    println!("\nTable VI — evaluation of SI-CoT on commercial LLMs (reproduced)\n");
    println!("{}", table.render());
    println!("Paper reference (prose-consistent orientation): w/o 22.7 / 22.7 / 34.1; w 31.8 / 34.1 / 45.5.");
}
