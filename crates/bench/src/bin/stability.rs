//! Robustness check beyond the paper: do the headline conclusions survive
//! re-sampling the benchmark? Regenerates the Table V comparison at three
//! different suite seeds and reports per-seed numbers — the orderings
//! (HaVen > DeepSeek-Coder-V2 > GPT-4 ≈ OriGen > RTLCoder) should hold at
//! every seed even though individual task sets differ.
//!
//! ```sh
//! cargo run --release -p haven-bench --bin stability [-- --quick]
//! ```

use haven::experiments::{haven_roster, table5_row, Suites};
use haven_bench::scale_from_args;
use haven_eval::report::Table;
use haven_eval::suites;
use haven_lm::profiles;

fn main() {
    let scale = scale_from_args();
    let flow = haven_datagen::run(&scale.flow);
    let haven_cq = haven_roster(&flow)
        .into_iter()
        .nth(2)
        .expect("CodeQwen HaVen");

    let seeds = [2025u64, 31_337, 777];
    let mut table = Table::new(vec![
        "Suite seed",
        "RTLCoder",
        "OriGen",
        "GPT-4",
        "DeepSeek-V2",
        "HaVen-CodeQwen",
    ]);
    let mut orderings_held = 0usize;
    for &seed in &seeds {
        eprintln!("seed {seed}...");
        let symbolic = suites::symbolic44(seed);
        let sub = Suites {
            machine: Vec::new(),
            human: Vec::new(),
            rtllm: Vec::new(),
            v2: Vec::new(),
            symbolic,
        };
        let overall = |p: &haven_lm::ModelProfile, sicot: bool| -> f64 {
            table5_row(p, sicot, &sub, &scale).overall
        };
        let rtl = overall(&profiles::rtlcoder_deepseek(), false);
        let ori = overall(&profiles::origen(), false);
        let gpt = overall(&profiles::gpt4(), false);
        let ds2 = overall(&profiles::deepseek_coder_v2(), false);
        let hav = overall(&haven_cq.profile, true);
        if hav > ds2 && ds2 > rtl && hav > gpt && hav > ori {
            orderings_held += 1;
        }
        table.row(vec![
            seed.to_string(),
            format!("{rtl:.1}"),
            format!("{ori:.1}"),
            format!("{gpt:.1}"),
            format!("{ds2:.1}"),
            format!("{hav:.1}"),
        ]);
    }
    println!("\nSeed-stability of the Table V comparison (44 symbolic tasks per seed)\n");
    println!("{}", table.render());
    println!(
        "Headline ordering (HaVen > DeepSeek-V2 > RTLCoder, HaVen > GPT-4/OriGen) held at {orderings_held}/{} seeds.",
        seeds.len()
    );
}
