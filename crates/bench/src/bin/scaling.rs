//! Regenerates the paper's **closing remark of §IV-D** — "further
//! enlarging the samples in KL-dataset can still be beneficial to optimize
//! HaVen" — as a measured scaling curve: corpus size (and with it the
//! K/L-dataset) swept over ×¼ … ×4 of the default, CodeQwen fine-tuned at
//! each point, evaluated on VerilogEval-human.
//!
//! ```sh
//! cargo run --release -p haven-bench --bin scaling [-- --quick]
//! ```

use haven::experiments::Suites;
use haven_bench::scale_from_args;
use haven_datagen::corpus::CorpusConfig;
use haven_datagen::logic::LogicConfig;
use haven_datagen::FlowConfig;
use haven_eval::harness::{evaluate, EvalConfig, SicotMode};
use haven_eval::report::{dedup_line, health_line, Table};
use haven_lm::finetune::finetune;
use haven_lm::profiles;

fn main() {
    let scale = scale_from_args();
    let suites = Suites::generate(&scale);
    let multipliers = [0.25f64, 0.5, 1.0, 2.0, 4.0];

    let mut table = Table::new(vec![
        "corpus x", "corpus", "K pairs", "L pairs", "pass@1", "pass@5",
    ]);
    for &m in &multipliers {
        let base_cfg = FlowConfig::default();
        let cfg = FlowConfig {
            corpus: CorpusConfig {
                size: (base_cfg.corpus.size as f64 * m) as usize,
                ..base_cfg.corpus
            },
            logic: LogicConfig {
                n_minimization: (20.0 * m) as usize,
                n_chains: (15.0 * m) as usize,
                n_chains_instructional: (15.0 * m) as usize,
            },
            seed: base_cfg.seed,
            formal_verify: base_cfg.formal_verify,
        };
        eprintln!("flow at x{m} ({} corpus files)...", cfg.corpus.size);
        let flow = haven_datagen::run(&cfg);
        let kl = flow.kl_dataset(haven::pipeline::KL_SHUFFLE_SEED);
        let mut data = flow.vanilla.clone();
        data.extend(kl.pairs.iter().cloned());
        let profile = finetune(&profiles::base_codeqwen(), &data.train_samples());
        let result = evaluate(
            &profile,
            &suites.human,
            &EvalConfig {
                n: scale.n,
                temperatures: scale.temperatures.clone(),
                sicot: SicotMode::SelfRefine,
                ..Default::default()
            },
        )
        .expect("scaling eval config is valid by construction");
        if let Some(line) = health_line(result.faults(), result.exhausted(), result.retries()) {
            eprintln!("x{m}: {line}");
        }
        let samples = result.tasks.len() * scale.n;
        if let Some(line) = dedup_line(result.dedup_hits(), samples) {
            eprintln!("x{m}: {line}");
        }
        table.row(vec![
            format!("{m}"),
            flow.stats.corpus_files.to_string(),
            flow.stats.k_pairs.to_string(),
            flow.stats.l_pairs.to_string(),
            format!("{:.1}", result.pass_at(1)),
            format!("{:.1}", result.pass_at(scale.n.min(5))),
        ]);
    }
    println!("\nKL-dataset scaling on HaVen-CodeQwen, VerilogEval-human\n");
    println!("{}", table.render());
    println!("Paper reference (§IV-D): 'further enlarging the samples in KL-dataset can still be beneficial' — the curve should rise monotonically with diminishing returns.");
}
