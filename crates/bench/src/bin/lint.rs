//! `haven-lint` — command-line front end for the dataflow static analyzer
//! ([`haven_verilog::analyze_static`]) and the convention linter
//! ([`haven_verilog::lint`]), emitting one machine-readable JSON report.
//!
//! ```sh
//! cargo run --release -p haven-bench --bin lint -- design.v
//! cargo run --release -p haven-bench --bin lint -- --pretty design.v
//! cargo run --release -p haven-bench --bin lint -- --format sarif design.v
//! cargo run --release -p haven-bench --bin lint -- --dump-netlist design.v
//! ```
//!
//! Exit codes distinguish the three analysis outcomes so shell pipelines
//! can branch without parsing the JSON:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | compiled; no gating findings (warnings allowed) |
//! | 1    | compiled; the analyzer proved a defect (gating findings) |
//! | 2    | lex/parse/elaboration failure — the file never analyzed |
//! | 3    | usage or IO error (bad flags, unreadable file) |
//!
//! `--format sarif` swaps the report body for a minimal SARIF 2.1 log
//! (rule id, level, location, message — enough for code-scanning UIs);
//! the exit-code ladder above is **format-independent**: a pipeline can
//! upload the SARIF artifact and still branch on the same codes it used
//! with the JSON format. Compile failures emit a single `compile-error`
//! SARIF result and exit 2, exactly mirroring the JSON `compile_error`
//! field. A "gating" finding is an Error-severity finding that is not
//! `unconfirmed` (see [`haven_verilog::analyze_static`]): value-dependent
//! analyzer-v2 findings whose witness replay did not reproduce the
//! defect are reported but never flip exit 0 → 1.
//! The JSON is assembled by hand: every field is a flat string or number,
//! and findings carry the stable rule code, severity, source span, the
//! Table II taxonomy attribution, the analyzer-v2 `confirmation` label
//! (`structural` / `unconfirmed` / `confirmed`) and, for value-dependent
//! findings, the abstract `trace` plus a `witness` stimulus summary, so
//! downstream tooling needs no schema beyond this file. Compilable designs additionally get a `sim_probe`
//! section — a short budget-limited simulation (time-zero settle plus a
//! few clock cycles) whose `status` distinguishes designs that run
//! (`settled`) from those that exhaust the resource budget
//! (`resource_exhausted`) or fault at runtime (`sim_error`). Every
//! report also carries an `engine` section — the structured
//! [`haven_engine::EngineFingerprint`] (hex key plus analyzer rule-set
//! version) of the pipeline that produced it, so reports can be
//! correlated with serve-cache entries and eval memo keys.
//!
//! `--dump-netlist` appends a `netlist` section: the optimized
//! word-level graph the compile pipeline lowers the design to — one
//! entry per cell with its operator mnemonic, static width, operand
//! cell ids, def-use fan-out and logic-level assignment, plus the
//! pass-pipeline rewrite stats (see DESIGN.md §17).

use haven_engine::{Artifact, Engine, SimBackend};
use haven_verilog::analyze_static::Severity;
use haven_verilog::elab::SignalKind;
use haven_verilog::lint::lint_module;
use haven_verilog::netlist::level::cell_levels;
use haven_verilog::parser::parse;
use haven_verilog::sim::SimBudget;
use haven_verilog::{CompiledDesign, Expect, PassConfig};

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Json {
    buf: String,
    pretty: bool,
    depth: usize,
}

impl Json {
    fn new(pretty: bool) -> Json {
        Json {
            buf: String::new(),
            pretty,
            depth: 0,
        }
    }

    fn newline(&mut self) {
        if self.pretty {
            self.buf.push('\n');
            for _ in 0..self.depth {
                self.buf.push_str("  ");
            }
        }
    }

    fn open(&mut self, bracket: char) {
        self.buf.push(bracket);
        self.depth += 1;
    }

    fn close(&mut self, bracket: char) {
        self.depth -= 1;
        self.newline();
        self.buf.push(bracket);
    }

    fn comma(&mut self, first: &mut bool) {
        if !*first {
            self.buf.push(',');
        }
        *first = false;
        self.newline();
    }

    fn key(&mut self, k: &str) {
        self.buf.push('"');
        self.buf.push_str(k);
        self.buf.push_str(if self.pretty { "\": " } else { "\":" });
    }

    fn str_field(&mut self, first: &mut bool, k: &str, v: &str) {
        self.comma(first);
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&json_escape(v));
        self.buf.push('"');
    }

    fn num_field(&mut self, first: &mut bool, k: &str, v: usize) {
        self.comma(first);
        self.key(k);
        self.buf.push_str(&v.to_string());
    }
}

/// Budget for the dynamic settle probe: generous enough that any sane
/// single-module design settles and runs a handful of cycles, tight
/// enough that a pathological one cannot hold the lint CLI hostage.
const PROBE_BUDGET: SimBudget = SimBudget {
    max_settle_per_step: 512,
    max_loop_iterations: 10_000,
    max_ticks: 8,
    max_total_work: 200_000,
};

/// Runs the prepared artifact under [`PROBE_BUDGET`]: time-zero settle,
/// then a few clock cycles when a `clk`/`clock` input exists. Only
/// called once the engine has produced an artifact, so compile failures
/// never reach here (they are reported as `compile_error`).
fn sim_probe(engine: &Engine, artifact: &std::sync::Arc<Artifact>) -> (&'static str, usize, usize) {
    let clock = artifact
        .design()
        .signals
        .iter()
        .find(|s| s.kind == SignalKind::Input && (s.name == "clk" || s.name == "clock"))
        .map(|s| s.name.clone());
    match engine.session(artifact) {
        Ok(mut sim) => {
            let status = match clock {
                Some(clk) => match sim.tick_n(&clk, 4) {
                    Ok(()) => "settled",
                    Err(e) if e.is_budget() => "resource_exhausted",
                    Err(_) => "sim_error",
                },
                None => "settled",
            };
            (status, sim.work_units(), sim.ticks())
        }
        Err(e) if e.is_budget() => ("resource_exhausted", 0, 0),
        Err(_) => ("sim_error", 0, 0),
    }
}

fn report(path: &str, source: &str, pretty: bool, dump_netlist: bool) -> (String, i32) {
    // One uncached engine per invocation: the CLI analyzes a single file,
    // so an artifact cache would never see a second hit. The interpreter
    // backend keeps the probe's step accounting identical to the
    // pre-engine CLI.
    let engine = Engine::uncached(SimBackend::Interpreter, PROBE_BUDGET);
    let fingerprint = engine.fingerprint();

    let mut j = Json::new(pretty);
    let mut top_first = true;
    j.open('{');
    j.str_field(&mut top_first, "file", path);

    // Pipeline identity: lets downstream tooling correlate this report
    // with serve-cache entries and eval memo keys produced by the same
    // engine configuration.
    j.comma(&mut top_first);
    j.key("engine");
    j.open('{');
    let mut e_first = true;
    j.str_field(&mut e_first, "backend", "interpreter");
    j.str_field(&mut e_first, "fingerprint", &fingerprint.hex());
    j.num_field(
        &mut e_first,
        "analyzer_version",
        fingerprint.analyzer_version as usize,
    );
    j.close('}');

    // Convention lint runs on the parse tree, module by module, and does
    // not require the file to elaborate.
    let parsed = parse(source);
    j.comma(&mut top_first);
    j.key("lint");
    j.open('[');
    let mut lint_first = true;
    if let Ok(file) = &parsed {
        for module in &file.modules {
            for issue in lint_module(module) {
                j.comma(&mut lint_first);
                let mut f = true;
                j.open('{');
                j.str_field(&mut f, "module", &module.name);
                j.str_field(&mut f, "rule", &format!("{:?}", issue.rule));
                j.str_field(&mut f, "message", &issue.message);
                j.num_field(&mut f, "line", issue.span.line as usize);
                j.num_field(&mut f, "col", issue.span.col as usize);
                j.close('}');
            }
        }
    }
    j.close(']');

    // Dataflow analysis needs the elaborated design; the engine's
    // prepare step runs compile + analyze in one pass and hands back the
    // artifact the probe below reuses.
    let mut exit = 0;
    let mut artifact = None;
    match engine.prepare(source) {
        Ok(prepared) => {
            let rep = &prepared.report;
            j.comma(&mut top_first);
            j.key("static");
            j.open('{');
            let mut s_first = true;
            j.str_field(&mut s_first, "module", &rep.module);
            j.comma(&mut s_first);
            j.key("findings");
            j.open('[');
            let mut f_first = true;
            for finding in &rep.findings {
                j.comma(&mut f_first);
                let mut f = true;
                j.open('{');
                j.str_field(&mut f, "rule", finding.rule.code());
                j.str_field(
                    &mut f,
                    "severity",
                    match finding.severity {
                        Severity::Error => "error",
                        Severity::Warn => "warn",
                    },
                );
                j.str_field(&mut f, "message", &finding.message);
                j.num_field(&mut f, "line", finding.span.line as usize);
                j.num_field(&mut f, "col", finding.span.col as usize);
                if let Some(sig) = &finding.signal {
                    j.str_field(&mut f, "signal", sig);
                }
                j.str_field(&mut f, "taxonomy", finding.rule.taxonomy());
                j.str_field(&mut f, "confirmation", finding.confirmation.label());
                if let Some(ev) = &finding.evidence {
                    if !ev.trace.is_empty() {
                        j.comma(&mut f);
                        j.key("trace");
                        j.open('[');
                        let mut t_first = true;
                        for line in &ev.trace {
                            j.comma(&mut t_first);
                            j.buf.push('"');
                            j.buf.push_str(&json_escape(line));
                            j.buf.push('"');
                        }
                        j.close(']');
                    }
                    if let Some(w) = &ev.witness {
                        j.comma(&mut f);
                        j.key("witness");
                        j.open('{');
                        let mut w_first = true;
                        j.num_field(&mut w_first, "steps", w.steps.len());
                        j.str_field(&mut w_first, "observe", &w.observe);
                        let expect = match w.expect {
                            Expect::IsX => "is_x".to_string(),
                            Expect::Equals(v) => format!("equals {v}"),
                        };
                        j.str_field(&mut w_first, "expect", &expect);
                        j.close('}');
                    }
                }
                j.close('}');
            }
            j.close(']');
            j.num_field(&mut s_first, "errors", rep.error_count());
            j.close('}');
            if rep.has_errors() {
                exit = 1;
            }
            artifact = Some(prepared);
        }
        Err(e) => {
            j.str_field(&mut top_first, "compile_error", &e.to_string());
            // Distinct from exit 1: nothing was analyzed, so "defective"
            // vs "clean" is unknown — callers gating on findings must not
            // confuse a parse failure with a proven defect.
            exit = 2;
        }
    }

    // Dynamic settle probe under a hard resource budget, so downstream
    // tooling can tell a design that *runs* from one that only compiles.
    if let Some(artifact) = &artifact {
        let (status, work, ticks) = sim_probe(&engine, artifact);
        j.comma(&mut top_first);
        j.key("sim_probe");
        j.open('{');
        let mut p_first = true;
        j.str_field(&mut p_first, "status", status);
        j.num_field(&mut p_first, "work_units", work);
        j.num_field(&mut p_first, "ticks", ticks);
        j.close('}');
    }

    // `--dump-netlist`: the optimized word-level graph the compile
    // pipeline lowered this design to — one entry per cell (operator
    // mnemonic, static width when known, operand cell ids), plus the
    // def-use fan-out and logic-level assignment of every cell and the
    // pass-pipeline stats. The lint probe itself runs interpreted; the
    // dump lowers the already-elaborated design once, on demand.
    if dump_netlist {
        if let Some(artifact) = &artifact {
            let cd = CompiledDesign::with_passes(artifact.design().clone(), PassConfig::full());
            let nl = cd.netlist().expect("compiled design carries the netlist rung");
            let uses = nl.use_counts();
            let levels = cell_levels(nl);
            let stats = cd.pass_stats();
            j.comma(&mut top_first);
            j.key("netlist");
            j.open('{');
            let mut n_first = true;
            j.num_field(&mut n_first, "cells", nl.cell_count());
            j.num_field(
                &mut n_first,
                "roots",
                nl.roots().iter().filter(|r| r.is_some()).count(),
            );
            j.comma(&mut n_first);
            j.key("passes");
            j.open('{');
            let mut ps_first = true;
            j.num_field(&mut ps_first, "rounds", stats.rounds as usize);
            j.num_field(&mut ps_first, "normalized", stats.normalized as usize);
            j.num_field(&mut ps_first, "folded", stats.folded as usize);
            j.num_field(&mut ps_first, "lowered", stats.lowered as usize);
            j.num_field(&mut ps_first, "rebalanced", stats.rebalanced as usize);
            j.num_field(&mut ps_first, "cells_in", stats.cells_in as usize);
            j.num_field(&mut ps_first, "cells_out", stats.cells_out as usize);
            j.close('}');
            j.comma(&mut n_first);
            j.key("cells");
            j.open('[');
            let mut c_first = true;
            for id in 0..nl.cell_count() as u32 {
                j.comma(&mut c_first);
                let mut f = true;
                j.open('{');
                j.num_field(&mut f, "id", id as usize);
                j.str_field(&mut f, "op", &nl.kind(id).mnemonic());
                if let Some(w) = nl.width(id) {
                    j.num_field(&mut f, "width", w);
                }
                j.comma(&mut f);
                j.key("operands");
                j.open('[');
                let mut o_first = true;
                nl.kind(id).for_each_operand(|o| {
                    j.comma(&mut o_first);
                    j.buf.push_str(&o.to_string());
                });
                j.close(']');
                j.num_field(&mut f, "uses", uses[id as usize] as usize);
                j.num_field(&mut f, "level", levels[id as usize] as usize);
                j.close('}');
            }
            j.close(']');
            j.close('}');
        }
    }

    j.close('}');
    (j.buf, exit)
}

/// One result row of the SARIF log, format-agnostic.
struct SarifResult {
    rule: String,
    level: &'static str,
    message: String,
    line: usize,
    col: usize,
    confirmation: Option<&'static str>,
}

/// Minimal SARIF 2.1 log: tool driver with the distinct rule ids, one
/// result per finding with level, message and physical location. The
/// exit code is computed from the same gating predicate as the JSON
/// format, so `--format sarif` never changes a pipeline's branching.
fn sarif_report(path: &str, source: &str, pretty: bool) -> (String, i32) {
    let engine = Engine::uncached(SimBackend::Interpreter, PROBE_BUDGET);
    let mut results: Vec<SarifResult> = Vec::new();
    let mut exit = 0;
    if let Ok(file) = &parse(source) {
        for module in &file.modules {
            for issue in lint_module(module) {
                results.push(SarifResult {
                    rule: format!("{:?}", issue.rule),
                    level: "note",
                    message: issue.message,
                    line: issue.span.line as usize,
                    col: issue.span.col as usize,
                    confirmation: None,
                });
            }
        }
    }
    match engine.prepare(source) {
        Ok(artifact) => {
            for finding in &artifact.report.findings {
                results.push(SarifResult {
                    rule: finding.rule.code().to_string(),
                    level: match finding.severity {
                        Severity::Error => "error",
                        Severity::Warn => "warning",
                    },
                    message: finding.message.clone(),
                    line: finding.span.line as usize,
                    col: finding.span.col as usize,
                    confirmation: Some(finding.confirmation.label()),
                });
            }
            if artifact.report.has_errors() {
                exit = 1;
            }
        }
        Err(e) => {
            results.push(SarifResult {
                rule: "compile-error".to_string(),
                level: "error",
                message: e.to_string(),
                line: 1,
                col: 1,
                confirmation: None,
            });
            exit = 2;
        }
    }

    let rules: std::collections::BTreeSet<&str> = results.iter().map(|r| r.rule.as_str()).collect();
    let mut j = Json::new(pretty);
    let mut top = true;
    j.open('{');
    j.str_field(&mut top, "version", "2.1.0");
    j.str_field(
        &mut top,
        "$schema",
        "https://json.schemastore.org/sarif-2.1.0.json",
    );
    j.comma(&mut top);
    j.key("runs");
    j.open('[');
    let mut runs_first = true;
    j.comma(&mut runs_first);
    j.open('{');
    let mut run_first = true;
    j.comma(&mut run_first);
    j.key("tool");
    j.open('{');
    let mut tool_first = true;
    j.comma(&mut tool_first);
    j.key("driver");
    j.open('{');
    let mut drv_first = true;
    j.str_field(&mut drv_first, "name", "haven-lint");
    j.str_field(
        &mut drv_first,
        "version",
        &haven_verilog::ANALYZER_VERSION.to_string(),
    );
    j.comma(&mut drv_first);
    j.key("rules");
    j.open('[');
    let mut rules_first = true;
    for rule in &rules {
        j.comma(&mut rules_first);
        let mut r = true;
        j.open('{');
        j.str_field(&mut r, "id", rule);
        j.close('}');
    }
    j.close(']');
    j.close('}'); // driver
    j.close('}'); // tool
    j.comma(&mut run_first);
    j.key("results");
    j.open('[');
    let mut res_first = true;
    for result in &results {
        j.comma(&mut res_first);
        let mut r = true;
        j.open('{');
        j.str_field(&mut r, "ruleId", &result.rule);
        j.str_field(&mut r, "level", result.level);
        j.comma(&mut r);
        j.key("message");
        j.open('{');
        let mut m = true;
        j.str_field(&mut m, "text", &result.message);
        j.close('}');
        if let Some(confirmation) = result.confirmation {
            j.comma(&mut r);
            j.key("properties");
            j.open('{');
            let mut p = true;
            j.str_field(&mut p, "confirmation", confirmation);
            j.close('}');
        }
        j.comma(&mut r);
        j.key("locations");
        j.open('[');
        let mut locs_first = true;
        j.comma(&mut locs_first);
        j.open('{');
        let mut loc = true;
        j.comma(&mut loc);
        j.key("physicalLocation");
        j.open('{');
        let mut phys = true;
        j.comma(&mut phys);
        j.key("artifactLocation");
        j.open('{');
        let mut art = true;
        j.str_field(&mut art, "uri", path);
        j.close('}');
        j.comma(&mut phys);
        j.key("region");
        j.open('{');
        let mut reg = true;
        // SARIF requires positive line/column numbers; synthetic spans
        // (line 0) clamp to 1.
        j.num_field(&mut reg, "startLine", result.line.max(1));
        j.num_field(&mut reg, "startColumn", result.col.max(1));
        j.close('}');
        j.close('}'); // physicalLocation
        j.close('}'); // location
        j.close(']'); // locations
        j.close('}'); // result
    }
    j.close(']'); // results
    j.close('}'); // run
    j.close(']'); // runs
    j.close('}');
    (j.buf, exit)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let pretty = args.iter().any(|a| a == "--pretty");
    let dump_netlist = args.iter().any(|a| a == "--dump-netlist");
    let mut format = String::from("json");
    let mut files: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if arg == "--format" {
            i += 1;
            match args.get(i) {
                Some(v) => format = v.clone(),
                None => {
                    eprintln!(
                        "usage: lint [--pretty] [--dump-netlist] [--format json|sarif] <file.v>"
                    );
                    std::process::exit(3);
                }
            }
        } else if let Some(v) = arg.strip_prefix("--format=") {
            format = v.to_string();
        } else if !arg.starts_with("--") {
            files.push(arg.clone());
        }
        i += 1;
    }
    let [path] = files.as_slice() else {
        eprintln!("usage: lint [--pretty] [--dump-netlist] [--format json|sarif] <file.v>");
        std::process::exit(3);
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lint: cannot read {path}: {e}");
            std::process::exit(3);
        }
    };
    let (json, exit) = match format.as_str() {
        "json" => report(path, &source, pretty, dump_netlist),
        "sarif" => sarif_report(path, &source, pretty),
        other => {
            eprintln!("lint: unknown format `{other}` (expected json or sarif)");
            std::process::exit(3);
        }
    };
    println!("{json}");
    std::process::exit(exit);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_module_reports_no_errors_and_valid_json() {
        let src = "module c(input clk, input rst_n, output reg [3:0] q);\n always @(posedge clk or negedge rst_n)\n  if (!rst_n) q <= 4'd0; else q <= q + 4'd1;\nendmodule\n";
        let (json, exit) = report("c.v", src, false, false);
        assert_eq!(exit, 0);
        assert!(json.contains("\"errors\":0"), "{json}");
        assert!(json.contains("\"module\":\"c\""), "{json}");
        assert!(json.contains("\"status\":\"settled\""), "{json}");
        assert!(json.contains("\"ticks\":4"), "{json}");
        assert!(
            !json.contains("\"netlist\""),
            "netlist section must be opt-in: {json}"
        );
    }

    #[test]
    fn dump_netlist_reports_cells_uses_and_levels() {
        let src = "module d(input [3:0] a, input [3:0] b, output [3:0] y);\n assign y = (a & b) ^ (a & b);\nendmodule\n";
        let (json, exit) = report("d.v", src, false, true);
        assert_eq!(exit, 0);
        assert!(json.contains("\"netlist\":{"), "{json}");
        assert!(json.contains("\"cells\":"), "{json}");
        assert!(json.contains("\"passes\":{"), "{json}");
        assert!(json.contains("\"rounds\":"), "{json}");
        // Cell entries carry the def-use and depth annotations.
        assert!(json.contains("\"uses\":"), "{json}");
        assert!(json.contains("\"level\":"), "{json}");
        assert!(json.contains("\"operands\":["), "{json}");
        // The shared `(a & b)` subterm is one cell with fan-out, and the
        // xor of identical operands is visible in the dumped mnemonics.
        assert!(json.contains("\"op\":\"load s0\""), "{json}");
        assert!(json.contains("\"op\":\"bitand\""), "{json}");
        // Compile failures keep the section absent rather than emitting
        // a partial graph.
        let (broken, exit) = report("b.v", "not verilog", false, true);
        assert_eq!(exit, 2);
        assert!(!broken.contains("\"netlist\""), "{broken}");
    }

    #[test]
    fn every_report_carries_the_engine_fingerprint() {
        let clean = "module c(input a, output y);\n assign y = a;\nendmodule\n";
        let expected = Engine::uncached(SimBackend::Interpreter, PROBE_BUDGET)
            .fingerprint()
            .hex();
        for src in [clean, "not verilog at all"] {
            let (json, _) = report("c.v", src, false, false);
            assert!(
                json.contains(&format!("\"fingerprint\":\"{expected}\"")),
                "{json}"
            );
            assert!(json.contains("\"analyzer_version\":2"), "{json}");
        }
    }

    #[test]
    fn defective_module_exits_nonzero_with_rule_code() {
        let src = "module c(input clk, output reg [3:0] q);\n always @(posedge clk) q <= q + 4'd1;\nendmodule\n";
        let (json, exit) = report("c.v", src, false, false);
        assert_eq!(exit, 1);
        assert!(json.contains("SA-XSOURCE"), "{json}");
        assert!(json.contains("\"severity\":\"error\""), "{json}");
        assert!(
            json.contains("\"taxonomy\":\"ConventionMisapplication\""),
            "{json}"
        );
    }

    #[test]
    fn unparseable_file_reports_compile_error() {
        let (json, exit) = report("x.v", "not verilog at all", false, false);
        assert_eq!(exit, 2, "parse failure must be distinct from findings");
        assert!(json.contains("compile_error"), "{json}");
        assert!(!json.contains("sim_probe"), "{json}");
    }

    #[test]
    fn warnings_alone_keep_the_clean_exit_code() {
        // A constant condition is a Warn-severity finding: reported in
        // the JSON but not a gating defect, so the exit stays 0.
        let src = "module w(input a, output reg y);\n\
                   always @(*) if (1'b1) y = a; else y = 1'b0;\nendmodule\n";
        let (json, exit) = report("w.v", src, false, false);
        assert_eq!(exit, 0, "warn-only reports must exit 0: {json}");
        assert!(json.contains("\"severity\":\"warn\""), "{json}");
        assert!(json.contains("\"errors\":0"), "{json}");
    }

    #[test]
    fn exit_codes_form_a_strict_ladder() {
        let clean = "module c(input a, output y);\n assign y = a;\nendmodule\n";
        let defective =
            "module d(input clk, output reg q);\n always @(posedge clk) q <= q;\nendmodule\n";
        assert_eq!(report("c.v", clean, false, false).1, 0);
        assert_eq!(report("d.v", defective, false, false).1, 1);
        assert_eq!(report("b.v", "garbage(", false, false).1, 2);
        // Exit 3 (usage/IO) is owned by main() and has no report() path.
    }

    #[test]
    fn escaping_keeps_json_well_formed() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn findings_expose_confirmation_labels() {
        let src = "module w(input a, output reg y);\n\
                   always @(*) if (1'b1) y = a; else y = 1'b0;\nendmodule\n";
        let (json, _) = report("w.v", src, false, false);
        assert!(json.contains("\"confirmation\":\"structural\""), "{json}");
    }

    #[test]
    fn value_findings_carry_trace_and_witness_summary() {
        let src = "module m(input clk, input rst, output reg [3:0] q, output reg [3:0] r);\n\
                    always @(posedge clk)\n\
                     if (rst) q <= 4'd0;\n\
                     else begin q <= q + 4'd1; r <= r + 4'd1; end\nendmodule\n";
        let (json, _) = report("m.v", src, false, false);
        assert!(json.contains("\"confirmation\":\"confirmed\""), "{json}");
        assert!(json.contains("\"witness\":"), "{json}");
        assert!(json.contains("\"expect\":\"is_x\""), "{json}");
    }

    #[test]
    fn sarif_log_has_rules_results_and_locations() {
        let src = "module c(input clk, output reg [3:0] q);\n always @(posedge clk) q <= q + 4'd1;\nendmodule\n";
        let (sarif, exit) = sarif_report("c.v", src, false);
        assert_eq!(exit, 1);
        assert!(sarif.contains("\"version\":\"2.1.0\""), "{sarif}");
        assert!(sarif.contains("\"name\":\"haven-lint\""), "{sarif}");
        assert!(sarif.contains("\"id\":\"SA-XSOURCE\""), "{sarif}");
        assert!(sarif.contains("\"ruleId\":\"SA-XSOURCE\""), "{sarif}");
        assert!(sarif.contains("\"level\":\"error\""), "{sarif}");
        assert!(sarif.contains("\"uri\":\"c.v\""), "{sarif}");
        assert!(sarif.contains("\"startLine\":"), "{sarif}");
    }

    #[test]
    fn sarif_exit_codes_match_the_json_ladder() {
        let clean = "module c(input a, output y);\n assign y = a;\nendmodule\n";
        let defective =
            "module d(input clk, output reg q);\n always @(posedge clk) q <= q;\nendmodule\n";
        for (src, want) in [(clean, 0), (defective, 1), ("garbage(", 2)] {
            let (_, json_exit) = report("f.v", src, false, false);
            let (sarif, sarif_exit) = sarif_report("f.v", src, false);
            assert_eq!(json_exit, want, "json ladder");
            assert_eq!(sarif_exit, want, "sarif must share the ladder: {sarif}");
        }
    }

    #[test]
    fn sarif_compile_failure_is_a_single_error_result() {
        let (sarif, exit) = sarif_report("x.v", "not verilog at all", false);
        assert_eq!(exit, 2);
        assert!(sarif.contains("\"ruleId\":\"compile-error\""), "{sarif}");
        assert!(sarif.contains("\"level\":\"error\""), "{sarif}");
    }
}
