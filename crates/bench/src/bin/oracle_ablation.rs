//! Ablation of the functional-oracle design decisions (DESIGN.md §5):
//! which corruption families would slip through a weaker testbench?
//!
//! Compares detection rates of each hallucination corruption under:
//!
//! * **full** — the shipped oracle (discriminating stimulus episodes +
//!   mid-tick checkpoints);
//! * **no-midtick** — post-edge sampling only (wrong-clock-edge bugs
//!   become invisible);
//! * **naive** — a plain reset-then-run-random-cycles testbench with no
//!   edge-free async-reset probe and no enable hold window.
//!
//! A second table quantifies the **stimulus-miss rate**: every corrupted
//! candidate the naive testbench false-passes is handed to the formal
//! equivalence oracle, which decides all input assignments at once and
//! (being stimulus-free) catches exactly the misses a weakened
//! testbench is blind to. The run asserts at least one such recovery —
//! the formal rung must demonstrably add discrimination power, not just
//! agree with cosim.
//!
//! ```sh
//! cargo run --release -p haven-bench --bin oracle_ablation [-- --quick]
//! ```

use haven_engine::{Engine, EngineOptions, FormalOracle};
use haven_eval::report::Table;
use haven_formal::{EquivOptions, EquivVerdict};
use haven_lm::hallucinate::{self, ConventionVariant, GenPlan};
use haven_spec::cosim::{cosimulate_with, CosimOptions, Verdict};
use haven_spec::formal::formal_check;
use haven_spec::ir::{EnableSpec, ShiftDirection, Spec};
use haven_spec::stimuli::{stimuli_for, Stimuli, StimulusStep};
use haven_spec::{builders, codegen::EmitStyle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A naive testbench: assert reset across one tick, release, then run
/// random data for the same cycle count — no discriminating episodes.
fn naive_stimuli(spec: &Spec, seed: u64) -> Stimuli {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut steps = Vec::new();
    for p in &spec.inputs {
        steps.push(StimulusStep::Set(p.name.clone(), 0));
    }
    if let Some(en) = &spec.attrs.enable {
        steps.push(StimulusStep::Set(
            en.name.clone(),
            u64::from(en.active_high),
        ));
    }
    if let Some(r) = &spec.attrs.reset {
        let assert_level = u64::from(r.asserted_by(true));
        steps.push(StimulusStep::Set(r.name.clone(), assert_level));
        steps.push(StimulusStep::Tick);
        steps.push(StimulusStep::Set(r.name.clone(), 1 - assert_level));
    }
    for _ in 0..48 {
        for p in &spec.inputs {
            steps.push(StimulusStep::Set(p.name.clone(), rng.gen()));
        }
        steps.push(StimulusStep::Tick);
        steps.push(StimulusStep::Check);
    }
    Stimuli { steps }
}

fn specimens() -> Vec<Spec> {
    let mut specs = vec![
        builders::counter("s_cnt", 4, Some(10)),
        builders::shift_register("s_sr", 8, ShiftDirection::Left),
        builders::clock_divider("s_div", 3),
        builders::pipeline("s_pipe", 8, 2),
        builders::fsm_ab("s_fsm"),
    ];
    for s in &mut specs {
        s.attrs.enable = Some(EnableSpec {
            name: "en".into(),
            active_high: true,
        });
    }
    specs
}

type Corruptor = fn(&mut GenPlan, &mut StdRng);

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds = if quick { 3u64 } else { 8 };
    let corruptions: Vec<(&str, Corruptor)> = vec![
        ("wrong reset kind / polarity", |p, r| {
            hallucinate::corrupt_attributes(p, r)
        }),
        ("wrong clock edge", |p, _| {
            p.style.edge_override = Some(haven_verilog::ast::Edge::Neg);
        }),
        ("flipped enable polarity", |p, _| {
            p.style.flip_enable_polarity = true;
        }),
        ("blocking in sequential", |p, _| {
            p.style.nonblocking_in_seq = false;
        }),
        ("missing reset branch", |p, _| p.style.ignore_reset = true),
        ("registered FSM output", |p, _| {
            p.variant = ConventionVariant::RegisteredFsmOutput;
        }),
    ];

    let engine = Engine::new(EngineOptions::default());
    let oracle = FormalOracle::new(EquivOptions::default());

    let mut table = Table::new(vec![
        "Corruption",
        "full oracle",
        "no mid-tick",
        "naive testbench",
    ]);
    let mut miss_table = Table::new(vec![
        "Corruption",
        "naive false-passes",
        "formally refuted",
        "formal unknown",
    ]);
    let mut total_misses = 0usize;
    let mut total_recovered = 0usize;
    for (label, corrupt) in &corruptions {
        let mut caught = [0usize; 3];
        let mut total = 0usize;
        let (mut misses, mut refuted, mut unknown) = (0usize, 0usize, 0usize);
        for (i, spec) in specimens().iter().enumerate() {
            for seed in 0..seeds {
                let mut rng = StdRng::seed_from_u64(seed * 31 + i as u64);
                let mut plan = GenPlan::faithful(spec.clone());
                corrupt(&mut plan, &mut rng);
                let src = haven_lm::generate::render(&plan);
                // Skip corruption/spec combos that are identical to the
                // correct code (e.g. FSM-only variants on a counter).
                if src == haven_spec::codegen::emit(spec, &EmitStyle::correct())
                    && plan.variant == ConventionVariant::Standard
                {
                    continue;
                }
                total += 1;
                let full = stimuli_for(spec, seed);
                let naive = naive_stimuli(spec, seed);
                let on = CosimOptions {
                    mid_tick_checks: true,
                    ..CosimOptions::default()
                };
                let off = CosimOptions {
                    mid_tick_checks: false,
                    ..CosimOptions::default()
                };
                let runs = [
                    cosimulate_with(spec, &src, &full, &on),
                    cosimulate_with(spec, &src, &full, &off),
                    cosimulate_with(spec, &src, &naive, &off),
                ];
                for (k, rep) in runs.iter().enumerate() {
                    if !matches!(rep.verdict, Verdict::Pass) {
                        caught[k] += 1;
                    }
                }
                // Stimulus-miss: the naive testbench passed a corrupted
                // candidate. The formal oracle sees every assignment —
                // if it produces a replay-confirmed counterexample, the
                // miss is recovered without any stimulus authoring.
                if matches!(runs[2].verdict, Verdict::Pass) {
                    misses += 1;
                    match formal_check(&engine, &oracle, spec, &src)
                        .map(|o| o.report.verdict.clone())
                    {
                        Some(EquivVerdict::Counterexample(_)) => refuted += 1,
                        Some(EquivVerdict::Equivalent) => {}
                        Some(EquivVerdict::Unknown(_)) | None => unknown += 1,
                    }
                }
            }
        }
        total_misses += misses;
        total_recovered += refuted;
        miss_table.row(vec![
            label.to_string(),
            misses.to_string(),
            refuted.to_string(),
            unknown.to_string(),
        ]);
        let pct = |c: usize| {
            if total == 0 {
                "n/a".to_string()
            } else {
                format!("{:.0}% ({c}/{total})", 100.0 * c as f64 / total as f64)
            }
        };
        table.row(vec![
            label.to_string(),
            pct(caught[0]),
            pct(caught[1]),
            pct(caught[2]),
        ]);
    }
    println!("\nOracle ablation — corruption detection rate by testbench strength\n");
    println!("{}", table.render());
    println!("Reading: the discriminating episodes (async probe without a clock edge, enable hold window, mid-tick checkpoint) are what make attribute-level hallucinations *observable*; a naive testbench would silently pass much of the taxonomy.");
    println!("Note: each corruption is applied to all five specimen designs; corruptions that only bite one design class (blocking → multi-stage pipelines, registered output → FSMs) correctly cap at the share of applicable specimens.");

    println!("\nStimulus-miss recovery — naive-testbench false-passes re-judged by the formal oracle\n");
    println!("{}", miss_table.render());
    println!(
        "Reading: of {total_misses} corrupted candidates the naive testbench false-passed, the formal oracle refuted {total_recovered} with replay-confirmed counterexamples — discrimination a finite stimulus program cannot buy without authoring exactly the right episode."
    );
    assert!(
        total_recovered >= 1,
        "acceptance: the formal oracle must recover at least one stimulus miss"
    );
}
