//! Emits `BENCH_formal.json` — the formal equivalence oracle's perf
//! profile (DESIGN.md §16).
//!
//! Three measurements:
//!
//! 1. **AIG build** — `check_equiv` on self-equivalent pairs (every
//!    spec builder's correct emission against itself). Structural
//!    hashing makes both cones literally the same nodes, so no SAT and
//!    no simulation runs: the wall time is bitblasting + miter
//!    construction, and the node count is the hashed miter size.
//! 2. **refutation matrix** — every builder spec crossed with the
//!    emission-level hallucination channels, pushed through the cached
//!    [`FormalOracle`] (cold cache). Tallies verdicts, SAT decisions /
//!    conflicts / propagations, and end-to-end equivalence checks/sec.
//! 3. **counterexample replay** — every `Counterexample` verdict from
//!    the matrix must carry `replay_confirmed` (the oracle re-runs the
//!    decoded stimulus on the scalar compiled simulator and demands a
//!    bit-identical mismatch). The run asserts a 100% confirmation
//!    rate — an unconfirmed counterexample would mean the AIG semantics
//!    drifted from the executor's.
//!
//! ```sh
//! cargo run --release -p haven-bench --bin bench_formal [-- --quick] [-- --out path.json]
//! ```
//!
//! `--quick` trims seeds and timing iterations for CI smoke runs (the
//! JSON then carries `"quick": true` so dashboards don't mix the two).

use std::time::Instant;

use haven_engine::{Engine, EngineOptions, FormalOracle};
use haven_formal::{check_equiv, EquivOptions, EquivVerdict};
use haven_lm::hallucinate::{self, ConventionVariant, GenPlan};
use haven_spec::codegen::{emit, EmitStyle};
use haven_spec::formal::{equiv_options_for, formal_check};
use haven_spec::ir::ShiftDirection;
use haven_spec::{builders, Spec};
use haven_verilog::{compile, CompiledDesign, PassConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn builder_specs() -> Vec<Spec> {
    use haven_verilog::ast::BinaryOp;
    vec![
        builders::gate("f_gate", BinaryOp::BitXor),
        builders::adder("f_adder", 8),
        builders::mux2("f_mux", 4),
        builders::comparator("f_cmp", 4),
        builders::decoder("f_dec", 3),
        builders::fsm_ab("f_fsm"),
        builders::counter("f_cnt", 6, None),
        builders::counter("f_cntm", 4, Some(10)),
        builders::down_counter("f_down", 4, None),
        builders::shift_register("f_shl", 8, ShiftDirection::Left),
        builders::clock_divider("f_div", 5),
        builders::pipeline("f_pipe", 8, 3),
        builders::register("f_reg", 8),
    ]
}

type Corruptor = fn(&mut GenPlan, &mut StdRng);

fn corruption_channels() -> Vec<(&'static str, Corruptor)> {
    vec![
        ("attributes", |p, r| hallucinate::corrupt_attributes(p, r)),
        ("expression", |p, r| hallucinate::corrupt_expression(p, r)),
        ("corner_case", |p, r| hallucinate::corrupt_corner_case(p, r)),
        ("wrong_edge", |p, _| {
            p.style.edge_override = Some(haven_verilog::ast::Edge::Neg);
        }),
        ("blocking_in_seq", |p, _| {
            p.style.nonblocking_in_seq = false;
        }),
        ("missing_reset", |p, _| p.style.ignore_reset = true),
        ("registered_fsm_output", |p, _| {
            p.variant = ConventionVariant::RegisteredFsmOutput;
        }),
    ]
}

fn median(mut samples: Vec<f64>) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_formal.json".to_string());
    let iters = if quick { 5 } else { 31 };
    let seeds = if quick { 2u64 } else { 6 };

    // Phase 1: AIG build time — self-equivalence, structural by
    // construction (median of `iters` runs per design).
    let specs = builder_specs();
    eprintln!(
        "timing self-equivalence AIG builds over {} designs ({iters} iters)...",
        specs.len()
    );
    let base = EquivOptions::default();
    let mut build_us = Vec::new();
    let mut miter_nodes = Vec::new();
    for spec in &specs {
        let src = emit(spec, &EmitStyle::correct());
        let design = compile(&src).expect("correct emission compiles");
        let cd = CompiledDesign::new(design);
        let opts = equiv_options_for(spec, &base);
        let mut nodes = 0usize;
        build_us.push(median(
            (0..iters)
                .map(|_| {
                    let t = Instant::now();
                    let report = check_equiv(&cd, &cd, &opts);
                    let us = t.elapsed().as_nanos() as f64 / 1e3;
                    assert_eq!(
                        report.verdict,
                        EquivVerdict::Equivalent,
                        "{} self-check",
                        spec.name
                    );
                    assert!(report.structural, "{} self-check ran SAT", spec.name);
                    nodes = report.aig_nodes;
                    us
                })
                .collect(),
        ));
        miter_nodes.push(nodes as f64);
    }
    let build_median_us = median(build_us.clone());
    let build_total_us: f64 = build_us.iter().sum();
    let nodes_median = median(miter_nodes);

    // Phase 1b: pass-pipeline effect on AIG size (DESIGN.md §17). Each
    // design is bitblasted from the unoptimized and the fully optimized
    // netlist; the self-miter node counts isolate cone size. A cross
    // miter (unopt vs opt) is also discharged — the pipeline must never
    // be refutable against its own input.
    eprintln!("bitblasting pre/post-optimization netlists...");
    let (mut pre_total, mut post_total) = (0usize, 0usize);
    let (mut pre_nodes, mut post_nodes) = (Vec::new(), Vec::new());
    let (mut cross_equivalent, mut cross_unknown) = (0usize, 0usize);
    for spec in &specs {
        let src = emit(spec, &EmitStyle::correct());
        let design = compile(&src).expect("correct emission compiles");
        let unopt = CompiledDesign::with_passes(design.clone(), PassConfig::none());
        let opt = CompiledDesign::with_passes(design, PassConfig::full());
        let opts = equiv_options_for(spec, &base);
        let pre = check_equiv(&unopt, &unopt, &opts);
        let post = check_equiv(&opt, &opt, &opts);
        pre_total += pre.aig_nodes;
        post_total += post.aig_nodes;
        pre_nodes.push(pre.aig_nodes as f64);
        post_nodes.push(post.aig_nodes as f64);
        let cross = check_equiv(&unopt, &opt, &opts);
        match cross.verdict {
            EquivVerdict::Equivalent => cross_equivalent += 1,
            EquivVerdict::Unknown(_) => cross_unknown += 1,
            EquivVerdict::Counterexample(_) => {
                panic!("{}: optimized netlist refuted against unoptimized", spec.name)
            }
        }
    }
    let pre_median = median(pre_nodes);
    let post_median = median(post_nodes);

    // Phase 2: refutation matrix through the cached oracle (cold).
    eprintln!("running refutation matrix ({seeds} seeds x {} channels)...", 7);
    let engine = Engine::new(EngineOptions::default());
    let oracle = FormalOracle::new(base.clone());
    let (mut equivalent, mut cex, mut unknown, mut unprepared) = (0usize, 0usize, 0usize, 0usize);
    let (mut decisions, mut conflicts, mut propagations) = (0u64, 0u64, 0u64);
    let mut cex_confirmed = 0usize;
    let mut checks = 0usize;
    // Channels that don't bite a spec class render byte-identical
    // sources; dedupe so checks/sec measures cold proofs, not LRU hits.
    let mut seen = std::collections::HashSet::new();
    let t = Instant::now();
    for (i, spec) in specs.iter().enumerate() {
        for (_, corrupt) in &corruption_channels() {
            for seed in 0..seeds {
                let mut rng = StdRng::seed_from_u64(seed * 131 + i as u64);
                let mut plan = GenPlan::faithful(spec.clone());
                corrupt(&mut plan, &mut rng);
                let src = haven_lm::generate::render(&plan);
                if !seen.insert((i, src.clone())) {
                    continue;
                }
                checks += 1;
                match formal_check(&engine, &oracle, spec, &src) {
                    Some(outcome) => {
                        decisions += outcome.report.sat_stats.decisions;
                        conflicts += outcome.report.sat_stats.conflicts;
                        propagations += outcome.report.sat_stats.propagations;
                        match &outcome.report.verdict {
                            EquivVerdict::Equivalent => equivalent += 1,
                            EquivVerdict::Counterexample(_) => {
                                cex += 1;
                                if outcome.replay_confirmed {
                                    cex_confirmed += 1;
                                }
                            }
                            EquivVerdict::Unknown(_) => unknown += 1,
                        }
                    }
                    None => unprepared += 1,
                }
            }
        }
    }
    let matrix_s = t.elapsed().as_secs_f64();
    let checks_per_sec = checks as f64 / matrix_s.max(1e-9);
    let replay_rate = if cex == 0 {
        1.0
    } else {
        cex_confirmed as f64 / cex as f64
    };
    assert!(cex >= 1, "acceptance: the matrix must refute something");
    assert_eq!(
        cex_confirmed, cex,
        "acceptance: every counterexample must be confirmed by bit-identical replay"
    );

    let json = format!(
        "{{\n  \"bench\": \"formal\",\n  \"quick\": {quick},\n  \"designs\": {},\n  \"aig_build\": {{\"median_us\": {build_median_us:.1}, \"total_us\": {build_total_us:.1}, \"median_miter_nodes\": {nodes_median:.0}}},\n  \"pass_pipeline\": {{\"median_pre_nodes\": {pre_median:.0}, \"median_post_nodes\": {post_median:.0}, \"total_pre_nodes\": {pre_total}, \"total_post_nodes\": {post_total}, \"cross_equivalent\": {cross_equivalent}, \"cross_unknown\": {cross_unknown}, \"cross_counterexample\": 0}},\n  \"matrix\": {{\"checks\": {checks}, \"seconds\": {matrix_s:.3}, \"checks_per_sec\": {checks_per_sec:.1}, \"equivalent\": {equivalent}, \"counterexample\": {cex}, \"unknown\": {unknown}, \"unprepared\": {unprepared}}},\n  \"sat\": {{\"decisions\": {decisions}, \"conflicts\": {conflicts}, \"propagations\": {propagations}}},\n  \"cex_replay\": {{\"total\": {cex}, \"confirmed\": {cex_confirmed}, \"rate\": {replay_rate:.3}}}\n}}\n",
        specs.len(),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_formal.json");

    println!(
        "AIG build (self-equiv, structural): median {build_median_us:.1} us/design, median miter {nodes_median:.0} nodes"
    );
    println!(
        "pass pipeline: miter nodes {pre_total} -> {post_total} (median {pre_median:.0} -> {post_median:.0}), cross-miters {cross_equivalent} equivalent / {cross_unknown} unknown"
    );
    println!(
        "refutation matrix: {checks} checks in {matrix_s:.2} s ({checks_per_sec:.1} checks/s) — {equivalent} equivalent / {cex} counterexample / {unknown} unknown / {unprepared} unprepared"
    );
    println!("SAT core: {decisions} decisions, {conflicts} conflicts, {propagations} propagations");
    println!("counterexample replay confirmation: {cex_confirmed}/{cex} ({:.1}%)", 100.0 * replay_rate);
    println!("wrote {out_path}");
}
