//! Emits `BENCH_engine.json` — the artifact-cache and session-reuse
//! perf profile of `haven-engine` (DESIGN.md §12).
//!
//! Four measurements:
//!
//! 1. **prepare latency** — cold compile (parse → elaborate → analyze →
//!    lower) vs a warm cache hit on the same source, per design shape.
//! 2. **session reuse** — many stimuli runs against one artifact: a
//!    fresh `DutSession` per run vs one session reset between runs.
//! 3. **eval workload** — the acceptance workload: repeated-source
//!    candidate screening (the harness `prepare → static gate → cosim`
//!    path with the verdict memoizer *disabled*) over a pre-generated
//!    corpus, timed with the artifact cache off (every sample re-runs
//!    the compile ladder) and on (each distinct source compiles once).
//!    Both arms must produce bit-identical per-sample outcomes.
//! 4. **warm restart** — a durable engine persists its artifacts, is
//!    dropped, and reopens from the same store directory; prepare p50 on
//!    the preloaded entries must be within 2x of the in-memory warm
//!    number (DESIGN.md §14), because warm start rebuilds the LRU at
//!    open time and steady-state lookups are ordinary cache hits.
//!
//! ```sh
//! cargo run --release -p haven-bench --bin bench_engine [-- --quick] [-- --out path.json]
//! ```
//!
//! `--quick` shrinks every dimension for CI smoke runs (the JSON then
//! carries `"quick": true` so dashboards don't mix the two).

use std::time::Instant;

use haven_engine::{Engine, EngineOptions, SimBackend};
use haven_eval::harness::EvalConfig;
use haven_eval::suites;
use haven_lm::profiles::{Levels, ModelProfile};
use haven_verilog::sim::SimBudget;

const COUNTER_SRC: &str = "module cnt(input clk, input rst_n, input en, output reg [31:0] q);
    always @(posedge clk or negedge rst_n)
        if (!rst_n) q <= 32'd0;
        else if (en) q <= q + 32'd1;
endmodule";

const FSM_SRC: &str = "module fsm(input clk, input rst_n, input x, output reg out);
    localparam S_A = 1'd0, S_B = 1'd1;
    reg state, next_state;
    always @(posedge clk or negedge rst_n)
        if (!rst_n) state <= S_A;
        else state <= next_state;
    always @(*)
        case (state)
            S_A: next_state = x ? S_A : S_B;
            S_B: next_state = x ? S_B : S_A;
            default: next_state = S_A;
        endcase
    always @(*)
        case (state)
            S_A: out = 1'd0;
            S_B: out = 1'd1;
            default: out = 1'd0;
        endcase
endmodule";

const PIPE_SRC: &str = "module pipe(input clk, input rst_n, input [15:0] d, output reg [15:0] q);
    reg [15:0] s0, s1, s2;
    always @(posedge clk or negedge rst_n)
        if (!rst_n) s0 <= 16'd0; else s0 <= d + 16'd1;
    always @(posedge clk or negedge rst_n)
        if (!rst_n) s1 <= 16'd0; else s1 <= s0 ^ 16'h5a5a;
    always @(posedge clk or negedge rst_n)
        if (!rst_n) s2 <= 16'd0; else s2 <= s1 + s0;
    always @(posedge clk or negedge rst_n)
        if (!rst_n) q <= 16'd0; else q <= s2;
endmodule";

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct PrepareRow {
    name: &'static str,
    cold_us: f64,
    warm_us: f64,
}

impl PrepareRow {
    fn speedup(&self) -> f64 {
        self.cold_us / self.warm_us.max(1e-9)
    }
}

/// Cold: each iteration prepares on a fresh single-entry engine, so the
/// full ladder runs. Warm: one engine prepares once, then every timed
/// iteration is a cache hit. Median of `iters` iterations each.
fn prepare_latency(name: &'static str, src: &str, iters: usize) -> PrepareRow {
    let cold_us = median(
        (0..iters)
            .map(|_| {
                let engine = Engine::new(EngineOptions {
                    backend: SimBackend::Compiled,
                    budget: SimBudget::default(),
                    cache_capacity: 1,
                    ..EngineOptions::default()
                });
                let t = Instant::now();
                engine.prepare(src).expect("bench design compiles");
                t.elapsed().as_nanos() as f64 / 1e3
            })
            .collect(),
    );

    let engine = Engine::new(EngineOptions {
        backend: SimBackend::Compiled,
        budget: SimBudget::default(),
        cache_capacity: 1,
        ..EngineOptions::default()
    });
    engine.prepare(src).expect("bench design compiles");
    let warm_us = median(
        (0..iters)
            .map(|_| {
                let t = Instant::now();
                engine.prepare(src).expect("bench design compiles");
                t.elapsed().as_nanos() as f64 / 1e3
            })
            .collect(),
    );
    let stats = engine.stats();
    assert_eq!(stats.misses, 1, "warm loop must hit the cache");

    PrepareRow {
        name,
        cold_us,
        warm_us,
    }
}

struct ReuseRow {
    runs: usize,
    ticks_per_run: usize,
    oneshot_ms: f64,
    session_ms: f64,
}

impl ReuseRow {
    fn speedup(&self) -> f64 {
        self.oneshot_ms / self.session_ms.max(1e-9)
    }
}

/// `runs` short stimulus runs (eval-shaped: a handful of cycles each)
/// against one counter design. One-shot is the pre-engine shape — every
/// run re-runs the full ladder (compile → analyze → lower → construct →
/// re-resolve ports); the session path prepares once and resets one
/// `DutSession` between runs, handles persisting.
fn session_reuse(runs: usize, ticks_per_run: usize) -> ReuseRow {
    let engine = Engine::uncached(SimBackend::Compiled, SimBudget::default());

    let t = Instant::now();
    for _ in 0..runs {
        let artifact = engine.prepare(COUNTER_SRC).expect("bench design compiles");
        let mut s = engine.session(&artifact).expect("bench design simulates");
        s.poke_u64("rst_n", 1).expect("bench poke is valid");
        s.poke_u64("en", 1).expect("bench poke is valid");
        s.tick_n("clk", ticks_per_run).expect("bench tick is valid");
    }
    let oneshot_ms = t.elapsed().as_secs_f64() * 1e3;

    let artifact = engine.prepare(COUNTER_SRC).expect("bench design compiles");
    let mut s = engine.session(&artifact).expect("bench design simulates");
    let t = Instant::now();
    for _ in 0..runs {
        s.ensure_fresh().expect("bench reset is valid");
        s.begin_run();
        s.poke_u64("rst_n", 1).expect("bench poke is valid");
        s.poke_u64("en", 1).expect("bench poke is valid");
        s.tick_n("clk", ticks_per_run).expect("bench tick is valid");
    }
    let session_ms = t.elapsed().as_secs_f64() * 1e3;

    ReuseRow {
        runs,
        ticks_per_run,
        oneshot_ms,
        session_ms,
    }
}

struct EvalRow {
    tasks: usize,
    n: usize,
    temperatures: usize,
    sweeps: usize,
    samples: usize,
    distinct_sources: usize,
    syntax_fails: usize,
    static_gated: usize,
    simulated: usize,
    uncached_ms: f64,
    cached_ms: f64,
}

impl EvalRow {
    fn speedup(&self) -> f64 {
        self.uncached_ms / self.cached_ms.max(1e-9)
    }
}

/// The acceptance workload: repeated-source candidate screening — the
/// eval harness path (prepare → static gate → budgeted cosim, exactly
/// `harness::evaluate_source`) with the verdict memoizer disabled, so
/// every duplicate sample re-evaluates instead of replaying a stored
/// verdict. Generation is corpus *prep* — the screening loop consumes
/// candidate sources, it does not produce them — so the corpus is built
/// before the timed region, the way a checked-in candidate set or a
/// shared generation pass would be. `sweeps` models re-screening the
/// same corpus (checkpoint comparison, analyzer A/B, threshold tuning).
///
/// `artifact_cache: 0` re-runs the full compile ladder for every sample;
/// a large cache compiles each distinct source once. Both arms must
/// produce identical per-sample outcomes — warm reuse is only a win if
/// it is verdict-preserving, so this function asserts it.
fn eval_workload(tasks: usize, n: usize, sweeps: usize) -> EvalRow {
    use haven_lm::model::CodeGenModel;
    use haven_spec::cosim::{cosimulate_artifact, CosimOptions};
    use haven_spec::stimuli::stimuli_for;

    // The human-suite prefix is the symbolic-modality subset (truth
    // tables, waveforms, state diagrams) plus sequential design tasks —
    // the case- and reset-shaped designs where a sloppy candidate's
    // defects are static-analysis-visible, and the corpus HaVen's
    // static gate is aimed at.
    let base: Vec<_> = suites::verilog_eval_human(1)
        .into_iter()
        .take(tasks)
        .collect();
    let temperatures = EvalConfig::default().temperatures;
    // A screening-tier candidate model: syntactically reliable but
    // design-sloppy, so the corpus mixes passing and behaviorally wrong
    // candidates. Syntax stays high because failed prepares are (by
    // design) never cached, so they measure nothing about the engine.
    let profile = ModelProfile::from_levels(
        "screen-mid",
        true,
        "7B",
        Levels {
            syntax: 1.0,
            convention: 0.35,
            attributes: 0.4,
            logic_expr: 0.55,
            corner: 0.5,
            instruction: 0.6,
            truth_table: 0.7,
            waveform: 0.7,
            state_diagram: 0.7,
            interface: 0.45,
        },
    );

    let mut corpus: Vec<(usize, String)> = Vec::new();
    for (ti, task) in base.iter().enumerate() {
        for &temperature in &temperatures {
            let model = CodeGenModel::new(profile.clone(), temperature);
            for sample in 0..n {
                corpus.push((ti, model.generate(&task.prompt, &task.id, sample)));
            }
        }
    }
    let distinct_sources = corpus
        .iter()
        .map(|(_, s)| s.as_str())
        .collect::<std::collections::HashSet<_>>()
        .len();
    let stimuli: Vec<_> = base
        .iter()
        .map(|t| stimuli_for(&t.spec, t.stim_seed))
        .collect();

    // One screening pass over the corpus; returns wall time plus the
    // per-sample outcome log used for the verdict-identity assertion.
    let screen = |cache_capacity: usize| -> (f64, Vec<String>, [usize; 3]) {
        let engine = Engine::new(EngineOptions {
            backend: SimBackend::Compiled,
            budget: SimBudget::default(),
            cache_capacity,
            ..EngineOptions::default()
        });
        let mut outcomes = Vec::with_capacity(corpus.len() * sweeps);
        let mut counts = [0usize; 3]; // syntax, gated, simulated
        let t = Instant::now();
        for _ in 0..sweeps {
            for (ti, src) in &corpus {
                match engine.prepare(src) {
                    Err(e) => {
                        counts[0] += 1;
                        outcomes.push(format!("syntax: {e}"));
                    }
                    Ok(artifact) if artifact.report.has_errors() => {
                        counts[1] += 1;
                        outcomes.push(format!("static: {:?}", artifact.report.findings));
                    }
                    Ok(artifact) => {
                        counts[2] += 1;
                        let report = cosimulate_artifact(
                            &base[*ti].spec,
                            &engine,
                            &artifact,
                            &stimuli[*ti],
                            &CosimOptions::default(),
                        );
                        outcomes.push(format!("cosim: {:?}", report.verdict));
                    }
                }
            }
        }
        (t.elapsed().as_secs_f64() * 1e3, outcomes, counts)
    };

    let (uncached_ms, uncached_outcomes, counts) = screen(0);
    let (cached_ms, cached_outcomes, cached_counts) = screen(4096);
    assert_eq!(
        uncached_outcomes, cached_outcomes,
        "warm artifact reuse must be verdict-preserving"
    );
    assert_eq!(counts, cached_counts);

    EvalRow {
        tasks: base.len(),
        n,
        temperatures: temperatures.len(),
        sweeps,
        samples: corpus.len() * sweeps,
        distinct_sources,
        syntax_fails: counts[0],
        static_gated: counts[1],
        simulated: counts[2],
        uncached_ms,
        cached_ms,
    }
}

struct RestartRow {
    name: &'static str,
    warm_us: f64,
    warm_restart_us: f64,
}

impl RestartRow {
    fn ratio(&self) -> f64 {
        self.warm_restart_us / self.warm_us.max(1e-9)
    }
}

/// Prepares every bench design on a durable engine, drops it, reopens
/// from the same store directory, and times prepare on the preloaded
/// entries. Returns (per-design rows, preloaded count).
fn warm_restart(iters: usize, warm: &[PrepareRow]) -> (Vec<RestartRow>, u64) {
    let dir = std::env::temp_dir().join(format!("haven-bench-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options = EngineOptions {
        backend: SimBackend::Compiled,
        budget: SimBudget::default(),
        cache_capacity: 8,
        ..EngineOptions::default()
    };
    let designs: [(&'static str, &str); 3] = [
        ("counter32", COUNTER_SRC),
        ("fsm2", FSM_SRC),
        ("pipe4x16", PIPE_SRC),
    ];
    {
        let engine = Engine::open_durable(options, &dir).expect("open durable engine");
        for (_, src) in designs {
            engine.prepare(src).expect("bench design compiles");
        }
        let stats = engine.durability_stats().expect("durable engine has stats");
        assert_eq!(stats.persisted, 3);
    } // First life ends here — only the on-disk store survives.

    let engine = Engine::open_durable(options, &dir).expect("reopen durable engine");
    let stats = engine.durability_stats().expect("durable engine has stats");
    assert_eq!(stats.preloaded, 3, "restart must preload every artifact");
    let rows = designs
        .iter()
        .zip(warm)
        .map(|(&(name, src), w)| {
            let warm_restart_us = median(
                (0..iters)
                    .map(|_| {
                        let t = Instant::now();
                        engine.prepare(src).expect("bench design compiles");
                        t.elapsed().as_nanos() as f64 / 1e3
                    })
                    .collect(),
            );
            RestartRow {
                name,
                warm_us: w.warm_us,
                warm_restart_us,
            }
        })
        .collect();
    assert_eq!(
        engine.stats().misses,
        0,
        "every restart-phase prepare must hit the preloaded cache"
    );
    let _ = std::fs::remove_dir_all(&dir);
    (rows, stats.preloaded)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let (prep_iters, reuse_runs, reuse_ticks, eval_tasks, eval_n, eval_sweeps) = if quick {
        (11, 50, 10, 6, 4, 2)
    } else {
        (51, 500, 10, 44, 10, 4)
    };

    eprintln!("timing prepare latency (cold vs warm, {prep_iters} iters)...");
    let prepare = vec![
        prepare_latency("counter32", COUNTER_SRC, prep_iters),
        prepare_latency("fsm2", FSM_SRC, prep_iters),
        prepare_latency("pipe4x16", PIPE_SRC, prep_iters),
    ];

    eprintln!("timing session reuse ({reuse_runs} runs x {reuse_ticks} ticks)...");
    let reuse = session_reuse(reuse_runs, reuse_ticks);

    eprintln!(
        "timing eval workload ({eval_tasks} tasks x {eval_n} samples x {eval_sweeps} sweeps, memoize off)..."
    );
    let eval = eval_workload(eval_tasks, eval_n, eval_sweeps);
    if !quick {
        assert!(
            eval.speedup() >= 2.0,
            "acceptance: warm artifact reuse must be >=2x on the repeated-source eval workload (got {:.2}x)",
            eval.speedup()
        );
    }

    eprintln!("timing warm restart from a durable store ({prep_iters} iters)...");
    let (restart, preloaded) = warm_restart(prep_iters, &prepare);
    if !quick {
        for r in &restart {
            assert!(
                r.ratio() <= 2.0,
                "acceptance: warm-restart prepare p50 must be within 2x of in-memory warm \
                 ({}: {:.2} us vs {:.2} us = {:.2}x)",
                r.name,
                r.warm_restart_us,
                r.warm_us,
                r.ratio()
            );
        }
    }

    let mut prep_json = Vec::new();
    for r in &prepare {
        prep_json.push(format!(
            "    {{\"name\": \"{}\", \"cold_us\": {:.1}, \"warm_us\": {:.2}, \"speedup\": {:.1}}}",
            r.name,
            r.cold_us,
            r.warm_us,
            r.speedup()
        ));
    }
    let mut restart_json = Vec::new();
    for r in &restart {
        restart_json.push(format!(
            "    {{\"name\": \"{}\", \"warm_us\": {:.2}, \"warm_restart_us\": {:.2}, \"ratio\": {:.2}}}",
            r.name,
            r.warm_us,
            r.warm_restart_us,
            r.ratio()
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"engine\",\n  \"quick\": {quick},\n  \"prepare\": [\n{}\n  ],\n  \"session_reuse\": {{\"design\": \"counter32\", \"runs\": {}, \"ticks_per_run\": {}, \"oneshot_ms\": {:.1}, \"session_ms\": {:.1}, \"speedup\": {:.2}}},\n  \"eval_workload\": {{\"tasks\": {}, \"samples_per_task\": {}, \"temperatures\": {}, \"sweeps\": {}, \"samples\": {}, \"distinct_sources\": {}, \"syntax_fails\": {}, \"static_gated\": {}, \"simulated\": {}, \"memoize\": false, \"uncached_ms\": {:.1}, \"cached_ms\": {:.1}, \"speedup\": {:.2}}},\n  \"warm_restart\": {{\"preloaded\": {preloaded}, \"rows\": [\n{}\n  ]}}\n}}\n",
        prep_json.join(",\n"),
        reuse.runs,
        reuse.ticks_per_run,
        reuse.oneshot_ms,
        reuse.session_ms,
        reuse.speedup(),
        eval.tasks,
        eval.n,
        eval.temperatures,
        eval.sweeps,
        eval.samples,
        eval.distinct_sources,
        eval.syntax_fails,
        eval.static_gated,
        eval.simulated,
        eval.uncached_ms,
        eval.cached_ms,
        eval.speedup(),
        restart_json.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_engine.json");

    println!("artifact prepare latency (median):");
    for r in &prepare {
        println!(
            "  {:<10} cold {:>8.1} us  warm {:>6.2} us  ({:.0}x)",
            r.name,
            r.cold_us,
            r.warm_us,
            r.speedup()
        );
    }
    println!(
        "session reuse ({} runs x {} ticks): one-shot {:.1} ms -> session {:.1} ms ({:.2}x)",
        reuse.runs,
        reuse.ticks_per_run,
        reuse.oneshot_ms,
        reuse.session_ms,
        reuse.speedup()
    );
    println!(
        "eval workload ({} tasks x {} samples x {} temps x {} sweeps = {} screenings of {} distinct sources; {} syntax / {} gated / {} simulated; memoize off): uncached {:.1} ms -> cached {:.1} ms ({:.2}x)",
        eval.tasks,
        eval.n,
        eval.temperatures,
        eval.sweeps,
        eval.samples,
        eval.distinct_sources,
        eval.syntax_fails,
        eval.static_gated,
        eval.simulated,
        eval.uncached_ms,
        eval.cached_ms,
        eval.speedup()
    );
    println!("warm restart ({preloaded} artifacts preloaded from disk):");
    for r in &restart {
        println!(
            "  {:<10} in-memory warm {:>6.2} us  warm restart {:>6.2} us  ({:.2}x)",
            r.name,
            r.warm_us,
            r.warm_restart_us,
            r.ratio()
        );
    }
    println!("wrote {out_path}");
}
