//! Regenerates **Fig. 3** — the ablation of HaVen's techniques on
//! VerilogEval-human: Base → Vanilla → Vanilla+CoT → Vanilla+KL →
//! Vanilla+CoT+KL, for each of the three base models.
//!
//! ```sh
//! cargo run --release -p haven-bench --bin fig3 [-- --quick]
//! ```

use haven::experiments::{ablation_point, AblationSetting, Suites};
use haven_bench::scale_from_args;
use haven_eval::report::Table;
use haven_lm::profiles;

fn main() {
    let scale = scale_from_args();
    let suites = Suites::generate(&scale);
    eprintln!(
        "fig3: {} human tasks, n = {}, temps {:?}",
        suites.human.len(),
        scale.n,
        scale.temperatures
    );
    let flow = haven_datagen::run(&scale.flow);

    let mut table = Table::new(vec!["Base model", "Setting", "pass@1", "pass@5"]);
    for base in [
        profiles::base_codellama(),
        profiles::base_deepseek(),
        profiles::base_codeqwen(),
    ] {
        for setting in AblationSetting::ALL {
            eprintln!("  {} / {}", base.name, setting.label());
            let p = ablation_point(&base, setting, &flow, &suites, &scale);
            table.row(vec![
                p.base,
                setting.label().to_string(),
                format!("{:.1}", p.pass1),
                format!("{:.1}", p.pass5),
            ]);
        }
    }
    println!("\nFig. 3 — ablation of HaVen techniques on VerilogEval-human (reproduced)\n");
    println!("{}", table.render());
    println!("Paper reference (averages): SI-CoT alone +3.6 p@1 / +6.6 p@5 over Vanilla; KL-dataset +12.3 p@1 / +8.7 p@5; combining both is strictly best.");
}
