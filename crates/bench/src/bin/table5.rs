//! Regenerates **Table V** — evaluation on symbolic modalities: 44 tasks
//! from the human suite (10 truth tables, 13 waveforms, 21 state
//! diagrams), comparing HaVen-CodeQwen (with SI-CoT) against commercial
//! and open Verilog models.
//!
//! ```sh
//! cargo run --release -p haven-bench --bin table5 [-- --quick]
//! ```

use haven::experiments::{haven_roster, table5_row, Suites};
use haven_bench::scale_from_args;
use haven_eval::report::Table;
use haven_lm::profiles;

fn main() {
    let mut scale = scale_from_args();
    scale.task_limit = None; // the 44-task set is already small
    let suites = Suites::generate(&scale);
    eprintln!(
        "table5: {} symbolic tasks, n = {}, temps {:?}",
        suites.symbolic.len(),
        scale.n,
        scale.temperatures
    );

    let flow = haven_datagen::run(&scale.flow);
    let haven_codeqwen = haven_roster(&flow)
        .into_iter()
        .nth(2)
        .expect("CodeQwen is the third base");

    let fmt = |(p, t): (usize, usize)| format!("{p}/{t} ({:.1}%)", 100.0 * p as f64 / t as f64);
    let mut table = Table::new(vec![
        "Model",
        "Truth Table P/T (PR)",
        "Waveform P/T (PR)",
        "State Diagram P/T (PR)",
        "Overall pass@1",
    ]);
    let entries: Vec<(haven_lm::ModelProfile, bool)> = vec![
        (profiles::rtlcoder_deepseek(), false),
        (profiles::origen(), false),
        (profiles::gpt4(), false),
        (profiles::deepseek_coder_v2(), false),
        (haven_codeqwen.profile.clone(), true),
    ];
    for (profile, sicot) in entries {
        eprintln!("  {}", profile.name);
        let row = table5_row(&profile, sicot, &suites, &scale);
        table.row(vec![
            row.model,
            fmt(row.truth_table),
            fmt(row.waveform),
            fmt(row.state_diagram),
            format!("{:.1}%", row.overall),
        ]);
    }
    println!("\nTable V — evaluation on symbolic modalities (reproduced)\n");
    println!("{}", table.render());
    println!("Paper reference overall pass@1: RTLCoder 15.9, OriGen 22.7, GPT-4 22.7, DeepSeek-Coder-V2 34.1, HaVen-CodeQwen 47.4.");
}
