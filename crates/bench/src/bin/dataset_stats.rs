//! Regenerates the **§III-C/D dataset funnel**: corpus → captioned →
//! verified vanilla → matched → K-dataset, plus the L-dataset — the
//! counts the paper quotes as ≈550k → ≈43k vanilla → 14k K + 5k L.
//!
//! ```sh
//! cargo run --release -p haven-bench --bin dataset_stats [-- --quick]
//! cargo run --release -p haven-bench --bin dataset_stats -- --export out/
//! ```
//!
//! `--export <dir>` additionally writes the three datasets as JSON
//! (`vanilla.json`, `k_dataset.json`, `l_dataset.json`).

use std::time::Instant;

use haven_bench::scale_from_args;
use haven_datagen::augment::SETTLE_BUDGET;
use haven_engine::{Engine, SimBackend};
use haven_eval::report::Table;

/// Re-runs the step-8 settle probe over the verified pairs with both
/// backends, so the funnel report shows what the compiled backend buys
/// (`verify_counted` itself only runs the compiled one). Artifacts are
/// prepared outside the timed region: the probe measures session boot
/// (time-zero settle), not compilation.
fn settle_probe_walls(flow: &haven_datagen::FlowOutput) -> (f64, f64, usize) {
    let interp_engine = Engine::uncached(SimBackend::Interpreter, SETTLE_BUDGET);
    let compiled_engine = Engine::uncached(SimBackend::Compiled, SETTLE_BUDGET);
    let pairs: Vec<&str> = flow
        .vanilla
        .pairs
        .iter()
        .chain(&flow.k_dataset.pairs)
        .map(|p| p.code.as_str())
        .collect();
    let interp_arts: Vec<_> = pairs
        .iter()
        .map(|code| interp_engine.prepare(code).expect("verified pairs compile"))
        .collect();
    let compiled_arts: Vec<_> = pairs
        .iter()
        .map(|code| {
            compiled_engine
                .prepare(code)
                .expect("verified pairs compile")
        })
        .collect();

    let t = Instant::now();
    for a in &interp_arts {
        let _ = interp_engine.session(a);
    }
    let interp_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    for a in &compiled_arts {
        let _ = compiled_engine.session(a);
    }
    let compiled_ms = t.elapsed().as_secs_f64() * 1e3;

    (interp_ms, compiled_ms, pairs.len())
}

fn main() {
    let scale = scale_from_args();
    let flow = haven_datagen::run(&scale.flow);
    let s = flow.stats;

    // Optional JSON export.
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--export") {
        let dir = std::path::PathBuf::from(
            args.get(i + 1)
                .map(String::as_str)
                .unwrap_or("dataset-export"),
        );
        std::fs::create_dir_all(&dir).expect("create export dir");
        for (name, data) in [
            ("vanilla.json", &flow.vanilla),
            ("k_dataset.json", &flow.k_dataset),
            ("l_dataset.json", &flow.l_dataset),
        ] {
            let path = dir.join(name);
            let json = serde_json::to_string_pretty(data).expect("serialize dataset");
            std::fs::write(&path, json).expect("write dataset");
            eprintln!("wrote {} ({} pairs)", path.display(), data.len());
        }
    }

    let ratio = 550_000.0 / s.corpus_files as f64;
    let mut table = Table::new(vec!["Stage", "Ours", "x scale", "Paper"]);
    let row = |stage: &str, ours: usize, paper: &str| {
        vec![
            stage.to_string(),
            ours.to_string(),
            format!("{:.0}", ours as f64 * ratio),
            paper.to_string(),
        ]
    };
    table.row(row(
        "corpus files (step 5 input)",
        s.corpus_files,
        "~550,000",
    ));
    table.row(row("captioned", s.captioned, "n/a"));
    table.row(row("vanilla pairs, verified", s.vanilla_valid, "~43,000"));
    table.row(row(
        "  rejected by static analyzer",
        s.vanilla_rejected_static,
        "n/a",
    ));
    table.row(row(
        "  rejected by sim budget",
        s.vanilla_rejected_budget,
        "n/a",
    ));
    table.row(row("matched >=1 exemplar (step 6)", s.matched, "n/a"));
    table.row(row("K-dataset pairs (steps 7-8)", s.k_pairs, "~14,000"));
    table.row(row(
        "  rejected by static analyzer",
        s.k_rejected_static,
        "n/a",
    ));
    table.row(row("  rejected by sim budget", s.k_rejected_budget, "n/a"));
    table.row(row("L-dataset pairs (steps 9-12)", s.l_pairs, "~5,000"));
    table.row(row(
        "KL-dataset (shuffled, step 13)",
        s.k_pairs + s.l_pairs,
        "~19,000",
    ));

    println!(
        "\nDataset generation funnel (Fig. 2), scale 1:{:.0}\n",
        ratio
    );
    println!("{}", table.render());

    // Composition breakdown.
    let mut topics = std::collections::BTreeMap::<&str, usize>::new();
    for p in &flow.k_dataset.pairs {
        *topics.entry(p.topic.label()).or_default() += 1;
    }
    let mut t2 = Table::new(vec!["K-dataset topic", "pairs"]);
    for (topic, n) in topics {
        t2.row(vec![topic.to_string(), n.to_string()]);
    }
    println!("{}", t2.render());

    // Step-8 verification cost: the wall-times the flow recorded (the
    // production path, compiled backend) plus an interpreter-vs-compiled
    // before/after over the same verified pairs.
    println!(
        "Step-8 verification wall-time: vanilla {:.1} ms, K {:.1} ms (compiled settle probe)",
        s.vanilla_verify_micros as f64 / 1e3,
        s.k_verify_micros as f64 / 1e3,
    );
    let (interp_ms, compiled_ms, n) = settle_probe_walls(&flow);
    println!(
        "Settle probe over {n} verified pairs: interpreter {interp_ms:.1} ms -> compiled {compiled_ms:.1} ms ({:.2}x)",
        interp_ms / compiled_ms.max(1e-9),
    );
}
