//! Emits `BENCH_absint.json` — the abstract-interpretation analyzer's
//! perf and precision profile (DESIGN.md §13).
//!
//! Two measurements:
//!
//! 1. **analysis wall-time** — `analyze_design` (dataflow + fixpoint +
//!    rules) timed per design over a mixed corpus: every spec builder's
//!    correct emission, its X-generating `ignore_reset` deviation, and a
//!    set of hand-written value-rule designs (division x-prop, CDC,
//!    forgotten reset siblings, width-decided compares).
//! 2. **confirmation split** — the same corpus pushed through the full
//!    engine ladder (which replays synthesized witnesses), tallying
//!    findings by confirmation status and by analyzer-v2 rule class.
//!
//! The run also enforces the precision acceptance bar: the clean
//! sub-corpus (correct spec emissions) must produce **zero** Confirmed
//! findings — a witness-confirmed defect on known-good code would mean
//! the abstract domains or the replay harness are unsound.
//!
//! ```sh
//! cargo run --release -p haven-bench --bin bench_absint [-- --quick] [-- --out path.json]
//! ```
//!
//! `--quick` trims the timing iterations for CI smoke runs (the JSON
//! then carries `"quick": true` so dashboards don't mix the two).

use std::time::Instant;

use haven_engine::{Engine, SimBackend};
use haven_spec::codegen::{emit, EmitStyle};
use haven_spec::{builders, Spec};
use haven_verilog::sim::SimBudget;
use haven_verilog::{analyze_design, compile, Confirmation};

fn builder_specs() -> Vec<Spec> {
    use haven_spec::ir::ShiftDirection;
    use haven_verilog::ast::BinaryOp;

    vec![
        builders::gate("b_gate", BinaryOp::BitAnd),
        builders::adder("b_adder", 8),
        builders::mux2("b_mux", 4),
        builders::comparator("b_cmp", 4),
        builders::decoder("b_dec", 3),
        builders::fsm_ab("b_fsm"),
        builders::counter("b_cnt", 6, None),
        builders::counter("b_cntm", 4, Some(10)),
        builders::down_counter("b_down", 4, None),
        builders::shift_register("b_shl", 8, ShiftDirection::Left),
        builders::clock_divider("b_div", 5),
        builders::pipeline("b_pipe", 8, 3),
        builders::register("b_reg", 8),
    ]
}

/// Hand-written designs exercising each analyzer-v2 value rule.
fn value_rule_designs() -> Vec<(&'static str, String)> {
    vec![
        (
            "xprop_div",
            "module m(input clk, input rst, input [3:0] a, input [3:0] b, output reg [3:0] q);\n\
              always @(posedge clk)\n if (rst) q <= 4'd0; else q <= a / b;\nendmodule"
                .to_string(),
        ),
        (
            "reset_sibling",
            "module m(input clk, input rst, output reg [3:0] q, output reg [3:0] r);\n\
              always @(posedge clk)\n  if (rst) q <= 4'd0;\n\
              else begin q <= q + 4'd1; r <= r + 4'd1; end\nendmodule"
                .to_string(),
        ),
        (
            "cdc_raw",
            "module m(input clk_a, input clk_b, input d, output reg q);\n reg src;\n\
              always @(posedge clk_a) src <= d;\n always @(posedge clk_b) q <= ~src;\nendmodule"
                .to_string(),
        ),
        (
            "width_compare",
            "module m(input [3:0] a, output y);\n assign y = a > 8'd200;\nendmodule".to_string(),
        ),
        (
            "const_cond",
            "module m(input [2:0] a, output reg y);\n wire [3:0] t;\n\
              assign t = {1'b0, a} + 4'd1;\n\
              always @(*) if (t != 4'd0) y = 1'b1; else y = 1'b0;\nendmodule"
                .to_string(),
        ),
    ]
}

fn median(mut samples: Vec<f64>) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_absint.json".to_string());
    let iters = if quick { 5 } else { 31 };

    // Corpus: (name, source, part of the clean sub-corpus?).
    let mut corpus: Vec<(String, String, bool)> = Vec::new();
    for spec in builder_specs() {
        corpus.push((
            format!("clean:{}", spec.name),
            emit(&spec, &EmitStyle::correct()),
            true,
        ));
        let deviant = emit(
            &spec,
            &EmitStyle {
                ignore_reset: true,
                ..EmitStyle::correct()
            },
        );
        corpus.push((format!("noreset:{}", spec.name), deviant, false));
    }
    for (name, src) in value_rule_designs() {
        corpus.push((format!("value:{name}"), src, false));
    }

    // Phase 1: analysis wall-time (compile excluded; median of `iters`
    // runs per design).
    eprintln!(
        "timing analyze_design over {} designs ({iters} iters)...",
        corpus.len()
    );
    let mut per_design_us = Vec::new();
    let mut analyzed = 0usize;
    for (_, src, _) in &corpus {
        let Ok(design) = compile(src) else { continue };
        analyzed += 1;
        per_design_us.push(median(
            (0..iters)
                .map(|_| {
                    let t = Instant::now();
                    let report = analyze_design(&design);
                    std::hint::black_box(&report);
                    t.elapsed().as_nanos() as f64 / 1e3
                })
                .collect(),
        ));
    }
    let analyze_median_us = median(per_design_us.clone());
    let analyze_total_us: f64 = per_design_us.iter().sum();

    // Phase 2: full-ladder confirmation split (engine prepare replays
    // witnesses; wall time includes compile + lower + replay).
    eprintln!("running engine ladder with witness replay...");
    let engine = Engine::uncached(SimBackend::Compiled, SimBudget::default());
    let (mut structural, mut unconfirmed, mut confirmed) = (0usize, 0usize, 0usize);
    let mut rule_counts: std::collections::BTreeMap<&'static str, usize> = [
        ("SA-XPROP", 0),
        ("SA-SIGNRANGE", 0),
        ("SA-CDC", 0),
        ("SA-RESET", 0),
    ]
    .into_iter()
    .collect();
    let mut clean_confirmed = 0usize;
    let t = Instant::now();
    for (name, src, is_clean) in &corpus {
        let artifact = match engine.prepare(src) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("  skip {name}: {e}");
                continue;
            }
        };
        for finding in &artifact.report.findings {
            match finding.confirmation {
                Confirmation::Structural => structural += 1,
                Confirmation::Unconfirmed => unconfirmed += 1,
                Confirmation::Confirmed => {
                    confirmed += 1;
                    if *is_clean {
                        clean_confirmed += 1;
                        eprintln!("  CLEAN-CORPUS CONFIRMED FINDING on {name}: {finding:?}");
                    }
                }
            }
            if let Some(count) = rule_counts.get_mut(finding.rule.code()) {
                *count += 1;
            }
        }
    }
    let ladder_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        clean_confirmed, 0,
        "acceptance: the clean spec corpus must yield zero Confirmed findings"
    );

    let rules_json: Vec<String> = rule_counts
        .iter()
        .map(|(rule, count)| format!("    \"{rule}\": {count}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"absint\",\n  \"quick\": {quick},\n  \"corpus\": {},\n  \"analyzed\": {analyzed},\n  \"analyze\": {{\"median_us\": {analyze_median_us:.1}, \"total_us\": {analyze_total_us:.1}}},\n  \"ladder_ms\": {ladder_ms:.1},\n  \"confirmation\": {{\"structural\": {structural}, \"unconfirmed\": {unconfirmed}, \"confirmed\": {confirmed}}},\n  \"rules\": {{\n{}\n  }},\n  \"clean_corpus_confirmed\": {clean_confirmed}\n}}\n",
        corpus.len(),
        rules_json.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_absint.json");

    println!(
        "analyze_design over {analyzed} designs: median {analyze_median_us:.1} us, total {analyze_total_us:.1} us"
    );
    println!(
        "full ladder with witness replay: {ladder_ms:.1} ms; findings {structural} structural / {unconfirmed} unconfirmed / {confirmed} confirmed"
    );
    for (rule, count) in &rule_counts {
        println!("  {rule:<13} {count}");
    }
    println!("clean-corpus confirmed findings: {clean_confirmed} (must be 0)");
    println!("wrote {out_path}");
}
