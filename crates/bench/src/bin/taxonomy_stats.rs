//! Regenerates the **taxonomy evidence behind Table II / §II**: classify
//! every failed generation on VerilogEval-human into the hallucination
//! taxonomy, for a base model and for HaVen built on it — showing *which*
//! classes each HaVen technique removes.
//!
//! ```sh
//! cargo run --release -p haven-bench --bin taxonomy_stats [-- --quick]
//! ```

use std::collections::BTreeMap;

use haven::diagnose::diagnose;
use haven::experiments::{haven_roster, Suites};
use haven::taxonomy::HallucinationClass;
use haven_bench::scale_from_args;
use haven_eval::report::Table;
use haven_lm::model::CodeGenModel;
use haven_lm::profiles;
use haven_sicot::SiCot;
use haven_spec::cosim::cosimulate;
use haven_spec::stimuli::stimuli_for;

fn main() {
    let scale = scale_from_args();
    let suites = Suites::generate(&scale);
    let flow = haven_datagen::run(&scale.flow);
    let haven = haven_roster(&flow)
        .into_iter()
        .nth(2)
        .expect("CodeQwen HaVen");

    let samples = 3usize;
    let mut rows: Vec<(String, BTreeMap<&'static str, usize>, usize, usize)> = Vec::new();
    for (profile, sicot) in [
        (profiles::base_codeqwen(), false),
        (haven.profile.clone(), true),
    ] {
        eprintln!("classifying failures of {}", profile.name);
        let model = CodeGenModel::new(profile.clone(), 0.2);
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut failures = 0usize;
        let mut total = 0usize;
        for task in &suites.human {
            let prompt = if sicot {
                SiCot::new(model.clone())
                    .refine(&task.prompt, &task.id)
                    .text
            } else {
                task.prompt.clone()
            };
            let stim = stimuli_for(&task.spec, task.stim_seed);
            for i in 0..samples {
                total += 1;
                let src = model.generate(&prompt, &task.id, i);
                let report = cosimulate(&task.spec, &src, &stim);
                if report.verdict.functional_ok() {
                    continue;
                }
                failures += 1;
                let d = diagnose(&task.spec, &src, &report.verdict, task.modality);
                let label = match d.class {
                    Some(HallucinationClass::Symbolic) => "symbolic",
                    Some(HallucinationClass::Knowledge) => "knowledge",
                    Some(HallucinationClass::Logical) => "logical",
                    None => "unattributed",
                };
                *counts.entry(label).or_default() += 1;
            }
        }
        rows.push((profile.name.clone(), counts, failures, total));
    }

    let mut table = Table::new(vec![
        "Model",
        "failures",
        "symbolic",
        "knowledge",
        "logical",
        "unattributed",
    ]);
    for (name, counts, failures, total) in &rows {
        let pct = |k: &str| {
            let c = counts.get(k).copied().unwrap_or(0);
            if *failures == 0 {
                "0".to_string()
            } else {
                format!("{c} ({:.0}%)", 100.0 * c as f64 / *failures as f64)
            }
        };
        table.row(vec![
            name.clone(),
            format!("{failures}/{total}"),
            pct("symbolic"),
            pct("knowledge"),
            pct("logical"),
            pct("unattributed"),
        ]);
    }
    println!("\nHallucination-class attribution of failures on VerilogEval-human\n");
    println!("{}", table.render());
    println!("Reading: HaVen removes roughly half the failures. The K-dataset wipes most knowledge-class errors (the base model's dominant bucket), so the residual failure mix shifts toward the symbolic and logical classes — attribution picks one cause per failure, and knowledge evidence (lint, attribute mismatch) masks co-occurring symbolic errors in the base model.");
}
