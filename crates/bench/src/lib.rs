//! # haven-bench
//!
//! Experiment binaries regenerating every table and figure of the paper's
//! evaluation (run with `--quick` for a scaled-down pass):
//!
//! * `table4` — main comparison on VerilogEval v1 / RTLLM / VerilogEval v2
//! * `table5` — symbolic-modality evaluation (44 tasks)
//! * `table6` — SI-CoT on commercial LLMs
//! * `fig3`   — technique ablation (Base / Vanilla / +CoT / +KL / +CoT+KL)
//! * `fig4`   — KL-dataset composition grid
//! * `dataset_stats` — the §III-C/D generation funnel
//!
//! plus Criterion benches (`cargo bench`) timing each regeneration and the
//! substrate layers.

#![warn(missing_docs)]

use haven::experiments::Scale;

/// Parses the common `--quick` flag: full paper protocol by default,
/// scaled-down when given.
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--quick") {
        let mut s = Scale::quick();
        s.task_limit = Some(40);
        s.n = 5;
        // The dataset flow is cheap even at full scale; quick mode only
        // trims samples and tasks so HaVen models train on the real data.
        s.flow = haven_datagen::FlowConfig::default();
        s
    } else {
        Scale::full()
    }
}

/// Formats a `(pass@1, pass@5)` pair.
pub fn pair(v: (f64, f64)) -> (String, String) {
    (format!("{:.1}", v.0), format!("{:.1}", v.1))
}
