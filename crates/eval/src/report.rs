//! Plain-text table rendering for experiment reports.

use std::fmt::Write as _;

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use haven_eval::report::Table;
/// let mut t = Table::new(vec!["Model", "pass@1"]);
/// t.row(vec!["GPT-4".into(), "43.5".into()]);
/// let text = t.render();
/// assert!(text.contains("GPT-4"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Table {
        Table {
            headers: headers.into_iter().map(str::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells beyond the header count are dropped; missing
    /// cells render empty).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().take(cols).enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(line, "{cell:<w$}  ");
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().map(|w| w + 2).sum::<usize>() - 2;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a percentage with one decimal, or `n/a` for `None`.
pub fn pct(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.1}"),
        None => "n/a".to_string(),
    }
}

/// One-line harness-health footnote for a suite run: quarantined samples
/// (`HarnessFault`), budget-exhausted samples (`ResourceExhausted`) and
/// retries spent recovering transient faults. `None` when the run was
/// entirely clean, so healthy reports stay unchanged.
pub fn health_line(faults: usize, exhausted: usize, retries: usize) -> Option<String> {
    if faults == 0 && exhausted == 0 && retries == 0 {
        return None;
    }
    Some(format!(
        "harness health: {faults} faulted, {exhausted} budget-exhausted, {retries} retries"
    ))
}

/// One-line cache-utilization footnote: how many sample verdicts were
/// replayed from the per-task dedup cache instead of re-simulated.
/// `None` when the cache never hit (or memoization is off).
pub fn dedup_line(dedup_hits: usize, total_samples: usize) -> Option<String> {
    if dedup_hits == 0 {
        return None;
    }
    let pct = 100.0 * dedup_hits as f64 / total_samples.max(1) as f64;
    Some(format!(
        "memoization: {dedup_hits} of {total_samples} sample verdicts replayed from cache ({pct:.1}%)"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["Model", "pass@1", "pass@5"]);
        t.row(vec!["GPT-4".into(), "43.5".into(), "55.8".into()]);
        t.row(vec!["HaVen-DeepSeek".into(), "57.3".into(), "64.2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Model"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // column alignment: pass@1 starts at same offset in all rows
        let off = lines[0].find("pass@1").unwrap();
        assert_eq!(&lines[2][off..off + 4], "43.5");
        assert_eq!(&lines[3][off..off + 4], "57.3");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(Some(43.52)), "43.5");
        assert_eq!(pct(None), "n/a");
    }

    #[test]
    fn dedup_line_is_silent_without_hits() {
        assert_eq!(dedup_line(0, 100), None);
        let line = dedup_line(30, 120).unwrap();
        assert!(line.contains("30 of 120"), "{line}");
        assert!(line.contains("25.0%"), "{line}");
    }

    #[test]
    fn health_line_is_silent_for_clean_runs() {
        assert_eq!(health_line(0, 0, 0), None);
        let line = health_line(2, 1, 5).unwrap();
        assert!(line.contains("2 faulted"), "{line}");
        assert!(line.contains("1 budget-exhausted"), "{line}");
        assert!(line.contains("5 retries"), "{line}");
    }
}
