//! The evaluation harness: samples a model `n` times per task at each
//! temperature, compiles and co-simulates every sample, and aggregates
//! pass@k — reporting the best temperature, as the paper does
//! ("we set the temperature of each model to 0.2, 0.5 and 0.8, reporting
//! the best performance").

use haven_lm::model::CodeGenModel;
use haven_lm::profiles::ModelProfile;
use haven_sicot::SiCot;

/// How prompts are refined before generation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum SicotMode {
    /// Feed prompts to the model unrefined.
    Off,
    /// The evaluated model refines its own prompts (the HaVen deployment:
    /// "one model is used for SI-CoT, fine-tuning and code generation").
    SelfRefine,
    /// A different model produces the SI-CoT instructions (Table VI feeds
    /// CodeQwen-refined prompts to commercial LLMs).
    External(ModelProfile),
}
use haven_spec::cosim::{cosimulate_compiled, CosimOptions, Verdict};
use haven_spec::stimuli::stimuli_for;
use serde::{Deserialize, Serialize};

use crate::passk::mean_pass_at_k;
use crate::suites::BenchTask;

/// Harness configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Samples per task (paper: 10).
    pub n: usize,
    /// Temperatures swept (paper: 0.2 / 0.5 / 0.8).
    pub temperatures: Vec<f64>,
    /// Prompt refinement mode.
    pub sicot: SicotMode,
    /// Worker threads (tasks are sharded across them).
    pub threads: usize,
    /// Run the dataflow static analyzer on each compiled sample and skip
    /// co-simulation for candidates with Error-severity findings (they are
    /// counted as functional failures without spending simulation cycles).
    pub static_gate: bool,
}

impl Default for EvalConfig {
    fn default() -> EvalConfig {
        EvalConfig {
            n: 10,
            temperatures: vec![0.2, 0.5, 0.8],
            sicot: SicotMode::Off,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            static_gate: true,
        }
    }
}

impl EvalConfig {
    /// Quick single-temperature configuration (examples / tests).
    pub fn quick(n: usize) -> EvalConfig {
        EvalConfig {
            n,
            temperatures: vec![0.2],
            ..EvalConfig::default()
        }
    }
}

/// Outcome of one task under one temperature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskResult {
    /// Task id.
    pub task_id: String,
    /// Samples drawn.
    pub n: usize,
    /// Samples that were syntactically valid.
    pub c_syntax: usize,
    /// Samples that passed co-simulation.
    pub c_func: usize,
    /// Samples whose co-simulation was skipped because the static analyzer
    /// reported an Error-severity finding (counted as functional failures).
    pub skipped_sims: usize,
}

/// A full evaluation of one model on one suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteResult {
    /// Model evaluated.
    pub model: String,
    /// Temperature that won the sweep (by functional pass@1).
    pub best_temperature: f64,
    /// Per-task outcomes at the best temperature.
    pub tasks: Vec<TaskResult>,
}

impl SuiteResult {
    /// Mean functional pass@k (percent).
    pub fn pass_at(&self, k: usize) -> f64 {
        let counts: Vec<(usize, usize)> = self.tasks.iter().map(|t| (t.n, t.c_func)).collect();
        100.0 * mean_pass_at_k(&counts, k)
    }

    /// Mean syntax pass@k (percent).
    pub fn syntax_pass_at(&self, k: usize) -> f64 {
        let counts: Vec<(usize, usize)> = self.tasks.iter().map(|t| (t.n, t.c_syntax)).collect();
        100.0 * mean_pass_at_k(&counts, k)
    }

    /// `(P, T)` for Table V's "pass cases / total cases" columns: the
    /// expected number of tasks a single attempt solves (`Σ c/n`,
    /// rounded) over the task count.
    pub fn pass_counts(&self) -> (usize, usize) {
        let expected: f64 = self
            .tasks
            .iter()
            .map(|t| t.c_func as f64 / t.n.max(1) as f64)
            .sum();
        (expected.round() as usize, self.tasks.len())
    }

    /// Total co-simulations skipped by the static gate across all tasks.
    pub fn skipped_sims(&self) -> usize {
        self.tasks.iter().map(|t| t.skipped_sims).sum()
    }

    /// Filters to the tasks whose ids are in `ids` (per-modality rows).
    pub fn filtered(&self, ids: &[&str]) -> SuiteResult {
        SuiteResult {
            model: self.model.clone(),
            best_temperature: self.best_temperature,
            tasks: self
                .tasks
                .iter()
                .filter(|t| ids.contains(&t.task_id.as_str()))
                .cloned()
                .collect(),
        }
    }
}

/// Evaluates `profile` on `tasks`.
pub fn evaluate(profile: &ModelProfile, tasks: &[BenchTask], cfg: &EvalConfig) -> SuiteResult {
    let mut best: Option<(f64, Vec<TaskResult>)> = None;
    for &temp in &cfg.temperatures {
        let results = run_at_temperature(profile, tasks, cfg, temp);
        let counts: Vec<(usize, usize)> = results.iter().map(|t| (t.n, t.c_func)).collect();
        let p1 = mean_pass_at_k(&counts, 1);
        let better = match &best {
            Some((bt, bres)) => {
                let bcounts: Vec<(usize, usize)> = bres.iter().map(|t| (t.n, t.c_func)).collect();
                let _ = bt;
                p1 > mean_pass_at_k(&bcounts, 1)
            }
            None => true,
        };
        if better {
            best = Some((temp, results));
        }
    }
    let (best_temperature, tasks) = best.expect("at least one temperature");
    SuiteResult {
        model: profile.name.clone(),
        best_temperature,
        tasks,
    }
}

fn run_at_temperature(
    profile: &ModelProfile,
    tasks: &[BenchTask],
    cfg: &EvalConfig,
    temperature: f64,
) -> Vec<TaskResult> {
    let threads = cfg.threads.max(1).min(tasks.len().max(1));
    let chunk = tasks.len().div_ceil(threads);
    let mut out: Vec<TaskResult> = Vec::with_capacity(tasks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .chunks(chunk.max(1))
            .map(|shard| {
                scope.spawn(move || {
                    shard
                        .iter()
                        .map(|t| run_task(profile, t, cfg, temperature))
                        .collect::<Vec<TaskResult>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("worker panicked"));
        }
    });
    out
}

fn run_task(
    profile: &ModelProfile,
    task: &BenchTask,
    cfg: &EvalConfig,
    temperature: f64,
) -> TaskResult {
    let model = CodeGenModel::new(profile.clone(), temperature);
    // Per the paper, the same pre-trained model serves as CoT prompting
    // model and CodeGen-LLM.
    let prompt = match &cfg.sicot {
        SicotMode::Off => task.prompt.clone(),
        SicotMode::SelfRefine => {
            SiCot::new(model.clone())
                .refine(&task.prompt, &task.id)
                .text
        }
        SicotMode::External(p) => {
            let refiner = CodeGenModel::new(p.clone(), temperature);
            SiCot::new(refiner).refine(&task.prompt, &task.id).text
        }
    };
    let stimuli = stimuli_for(&task.spec, task.stim_seed);
    let options = CosimOptions::default();
    let mut c_syntax = 0usize;
    let mut c_func = 0usize;
    let mut skipped_sims = 0usize;
    for sample in 0..cfg.n {
        let source = model.generate(&prompt, &task.id, sample);
        // Compile once; the design is shared by the static gate and the
        // simulator instead of being re-elaborated per stage.
        let design = match haven_verilog::compile(&source) {
            Ok(d) => d,
            Err(_) => continue, // syntax failure: counts toward neither pass
        };
        if cfg.static_gate && haven_verilog::analyze_design(&design).has_errors() {
            // The design compiled (syntax ok) but the dataflow analyzer
            // proved it defective — e.g. a combinational loop or an
            // X-generating reset-less register — so co-simulation could
            // only confirm the failure. Short-circuit it.
            c_syntax += 1;
            skipped_sims += 1;
            continue;
        }
        let report = cosimulate_compiled(&task.spec, design, &stimuli, &options);
        if report.verdict.syntax_ok() {
            c_syntax += 1;
        }
        if matches!(report.verdict, Verdict::Pass) {
            c_func += 1;
        }
    }
    TaskResult {
        task_id: task.id.clone(),
        n: cfg.n,
        c_syntax,
        c_func,
        skipped_sims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites;
    use haven_lm::profiles::ModelProfile;

    fn small_suite() -> Vec<crate::suites::BenchTask> {
        suites::verilog_eval_machine(1)
            .into_iter()
            .take(12)
            .collect()
    }

    #[test]
    fn perfect_model_scores_100() {
        let suite = small_suite();
        let r = evaluate(
            &ModelProfile::uniform("perfect", 1.0),
            &suite,
            &EvalConfig::quick(2),
        );
        assert_eq!(r.pass_at(1), 100.0);
        assert_eq!(r.syntax_pass_at(1), 100.0);
    }

    #[test]
    fn stronger_models_score_higher() {
        let suite = small_suite();
        let cfg = EvalConfig::quick(4);
        let weak = evaluate(&ModelProfile::uniform("weak", 0.3), &suite, &cfg);
        let strong = evaluate(&ModelProfile::uniform("strong", 0.9), &suite, &cfg);
        assert!(
            strong.pass_at(1) > weak.pass_at(1),
            "strong {} <= weak {}",
            strong.pass_at(1),
            weak.pass_at(1)
        );
    }

    #[test]
    fn pass_at_5_at_least_pass_at_1() {
        let suite = small_suite();
        let r = evaluate(
            &ModelProfile::uniform("mid", 0.6),
            &suite,
            &EvalConfig {
                n: 5,
                temperatures: vec![0.2],
                ..EvalConfig::default()
            },
        );
        assert!(r.pass_at(5) >= r.pass_at(1));
        assert!(r.syntax_pass_at(1) >= r.pass_at(1));
    }

    #[test]
    fn evaluation_is_deterministic() {
        let suite = small_suite();
        let cfg = EvalConfig::quick(3);
        let a = evaluate(&ModelProfile::uniform("m", 0.5), &suite, &cfg);
        let b = evaluate(&ModelProfile::uniform("m", 0.5), &suite, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn static_gate_is_transparent_on_clean_code() {
        // A perfect model emits only conventional, analyzer-clean designs,
        // so gating must not change any verdict — and must skip nothing.
        let suite = small_suite();
        let gated = EvalConfig::quick(3);
        let ungated = EvalConfig {
            static_gate: false,
            ..EvalConfig::quick(3)
        };
        let profile = ModelProfile::uniform("perfect", 1.0);
        let g = evaluate(&profile, &suite, &gated);
        let u = evaluate(&profile, &suite, &ungated);
        assert_eq!(g.skipped_sims(), 0);
        assert_eq!(g.pass_at(1), u.pass_at(1));
        assert_eq!(g.syntax_pass_at(1), u.syntax_pass_at(1));
    }

    #[test]
    fn static_gate_skips_simulations_on_hallucinated_code() {
        // A weak model hallucinates often; on counter tasks the common
        // convention slip is dropping the reset branch, which the analyzer
        // proves fatal (SA-XSOURCE). The gate should short-circuit a
        // nonzero number of those candidates without altering pass@k.
        let suite: Vec<_> = suites::verilog_eval_machine(1)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % 9 == 7) // the counter tasks
            .map(|(_, t)| t)
            .take(8)
            .collect();
        let gated = EvalConfig::quick(6);
        let ungated = EvalConfig {
            static_gate: false,
            ..EvalConfig::quick(6)
        };
        let profile = ModelProfile::uniform("weak", 0.5);
        let g = evaluate(&profile, &suite, &gated);
        let u = evaluate(&profile, &suite, &ungated);
        assert!(
            g.skipped_sims() > 0,
            "expected the gate to skip some simulations for a weak model"
        );
        assert_eq!(
            g.pass_at(1),
            u.pass_at(1),
            "gating must not change functional verdicts"
        );
        assert_eq!(g.syntax_pass_at(1), u.syntax_pass_at(1));
    }

    #[test]
    fn sicot_helps_on_symbolic_tasks() {
        let suite: Vec<_> = suites::symbolic44(1).into_iter().take(16).collect();
        let profile = haven_lm::profiles::base_codeqwen();
        let plain = evaluate(&profile, &suite, &EvalConfig::quick(4));
        let cfg = EvalConfig {
            sicot: SicotMode::SelfRefine,
            ..EvalConfig::quick(4)
        };
        let refined = evaluate(&profile, &suite, &cfg);
        assert!(
            refined.pass_at(1) > plain.pass_at(1),
            "SI-CoT {} <= plain {}",
            refined.pass_at(1),
            plain.pass_at(1)
        );
    }
}

#[cfg(test)]
mod result_tests {
    use super::*;

    fn result() -> SuiteResult {
        SuiteResult {
            model: "m".into(),
            best_temperature: 0.2,
            tasks: vec![
                TaskResult {
                    task_id: "a/000".into(),
                    n: 10,
                    c_syntax: 10,
                    c_func: 10,
                    skipped_sims: 0,
                },
                TaskResult {
                    task_id: "a/001".into(),
                    n: 10,
                    c_syntax: 10,
                    c_func: 5,
                    skipped_sims: 2,
                },
                TaskResult {
                    task_id: "b/000".into(),
                    n: 10,
                    c_syntax: 2,
                    c_func: 0,
                    skipped_sims: 1,
                },
            ],
        }
    }

    #[test]
    fn pass_counts_round_expected_single_attempt_passes() {
        // Σ c/n = 1.0 + 0.5 + 0.0 = 1.5 → rounds to 2 of 3.
        assert_eq!(result().pass_counts(), (2, 3));
    }

    #[test]
    fn filtered_keeps_only_named_tasks() {
        let r = result().filtered(&["a/000", "b/000"]);
        assert_eq!(r.tasks.len(), 2);
        assert_eq!(r.pass_at(1), 50.0);
        assert_eq!(result().filtered(&[]).tasks.len(), 0);
    }

    #[test]
    fn syntax_rate_bounds_functional_rate() {
        let r = result();
        assert!(r.syntax_pass_at(1) >= r.pass_at(1));
    }
}
