//! The evaluation harness: samples a model `n` times per task at each
//! temperature, compiles and co-simulates every sample, and aggregates
//! pass@k — reporting the best temperature, as the paper does
//! ("we set the temperature of each model to 0.2, 0.5 and 0.8, reporting
//! the best performance").
//!
//! The harness is fault-tolerant by construction (DESIGN.md "Failure
//! model"): every sample runs inside `catch_unwind` under a resource
//! budget, fault-class outcomes are retried with bounded deterministic
//! backoff before being quarantined as counted [`Verdict::HarnessFault`] /
//! [`Verdict::ResourceExhausted`] results, worker-thread death degrades to
//! per-task fault records instead of aborting the suite, and completed
//! tasks can be journaled so a killed run resumes where it stopped
//! ([`evaluate_resumable`]).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

use haven_lm::model::CodeGenModel;
use haven_lm::profiles::ModelProfile;
use haven_sicot::SiCot;

/// How prompts are refined before generation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum SicotMode {
    /// Feed prompts to the model unrefined.
    Off,
    /// The evaluated model refines its own prompts (the HaVen deployment:
    /// "one model is used for SI-CoT, fine-tuning and code generation").
    SelfRefine,
    /// A different model produces the SI-CoT instructions (Table VI feeds
    /// CodeQwen-refined prompts to commercial LLMs).
    External(ModelProfile),
}
use haven_engine::{Engine, EngineOptions, FormalOracle};
use haven_formal::EquivOptions;
use haven_spec::cosim::{
    cosimulate_batch_planned, BatchPlan, CosimOptions, SimBackend, SimBudget, Verdict,
};
use haven_spec::stimuli::stimuli_for;
use serde::{Deserialize, Serialize};

use crate::fault::{corrupt_source, FaultKind, FaultPlan};
use crate::journal::{read_journal, JournalHeader, JournalWriter};
use crate::passk::mean_pass_at_k;
use crate::suites::BenchTask;

/// Why an evaluation could not start (or resume).
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// `n == 0`: no samples per task means every metric is undefined.
    ZeroSamples,
    /// The temperature sweep is empty, so there is no best temperature.
    NoTemperatures,
    /// A zero resource budget would starve every sample.
    InvalidBudget,
    /// A retry policy with zero attempts would never run anything.
    InvalidRetry,
    /// The journal file could not be read or written.
    Journal(String),
    /// The journal on disk belongs to a different run (model, sample
    /// count, sweep, or task suite differ) and must not be mixed in.
    JournalMismatch {
        /// What this run expected the journal header to be.
        expected: String,
        /// What the journal on disk actually says.
        found: String,
    },
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::ZeroSamples => write!(f, "invalid config: n must be at least 1"),
            EvalError::NoTemperatures => {
                write!(f, "invalid config: the temperature sweep is empty")
            }
            EvalError::InvalidBudget => {
                write!(
                    f,
                    "invalid config: every simulation budget limit must be nonzero"
                )
            }
            EvalError::InvalidRetry => {
                write!(
                    f,
                    "invalid config: retry policy must allow at least one attempt"
                )
            }
            EvalError::Journal(msg) => write!(f, "journal error: {msg}"),
            EvalError::JournalMismatch { expected, found } => write!(
                f,
                "journal belongs to a different run (expected {expected}, found {found})"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

/// How fault-class sample outcomes are retried before quarantine.
///
/// Sample evaluation is deterministic, so genuine model failures reproduce
/// identically on retry and the policy can only change the outcome of
/// *transient* infrastructure faults — which is exactly the property that
/// keeps pass@k invariant under them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per sample (first try included). Must be >= 1.
    pub max_attempts: usize,
    /// Base backoff in milliseconds; attempt `i` sleeps `base << i`,
    /// capped at 50 ms so a permanently faulted suite still terminates
    /// promptly. Zero disables sleeping (used by tests).
    pub backoff_base_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 1,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no backoff).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff_base_ms: 0,
        }
    }

    /// Deterministic bounded backoff before retry number `attempt`.
    fn backoff(&self, attempt: usize) {
        let ms = (self.backoff_base_ms << attempt.min(16)).min(50);
        if ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    }
}

/// Harness configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Samples per task (paper: 10).
    pub n: usize,
    /// Temperatures swept (paper: 0.2 / 0.5 / 0.8).
    pub temperatures: Vec<f64>,
    /// Prompt refinement mode.
    pub sicot: SicotMode,
    /// Worker threads (tasks are sharded across them).
    pub threads: usize,
    /// Run the dataflow static analyzer on each compiled sample and skip
    /// co-simulation for candidates with Error-severity findings (they are
    /// counted as functional failures without spending simulation cycles).
    pub static_gate: bool,
    /// Resource budget applied to every candidate simulation; runaway
    /// candidates yield [`Verdict::ResourceExhausted`] instead of stalling
    /// a worker.
    pub budget: SimBudget,
    /// Retry policy for fault-class sample outcomes.
    pub retry: RetryPolicy,
    /// Simulation engine for candidate designs (see DESIGN.md §10). Both
    /// backends are verdict-equivalent; this exists for A/B timing and as
    /// an escape hatch back to the reference interpreter.
    pub backend: SimBackend,
    /// Deduplicate bit-identical generations within a task by source
    /// hash: the first occurrence is simulated, later ones replay its
    /// verdict. Verdict-preserving because sample evaluation is
    /// deterministic in the source; injected faults bypass the cache.
    pub memoize: bool,
    /// Capacity of the shared engine artifact cache (compiled designs,
    /// static reports, bytecode — see `haven-engine`). Unlike `memoize`,
    /// which replays whole verdicts within one task, this caches the
    /// *compile* ladder across tasks, temperatures and samples. 0 turns
    /// it off (every sample re-compiles — the bench baseline).
    #[serde(default = "default_artifact_cache")]
    pub artifact_cache: usize,
    /// Run the formal equivalence oracle (`haven-formal`) on samples
    /// that pass co-simulation: a replay-confirmed counterexample
    /// demotes the sample to a functional failure (cosim's stimulus
    /// program missed the bug), an `Unknown` is counted as typed
    /// telemetry without changing the verdict. Off by default; when off,
    /// every metric is bit-identical to a build without the oracle.
    #[serde(default)]
    pub formal_oracle: bool,
    /// Deterministic fault injection (tests and resilience drills only;
    /// `None` in production runs).
    pub fault_plan: Option<FaultPlan>,
}

impl Default for EvalConfig {
    fn default() -> EvalConfig {
        EvalConfig {
            n: 10,
            temperatures: vec![0.2, 0.5, 0.8],
            sicot: SicotMode::Off,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            static_gate: true,
            budget: SimBudget::default(),
            retry: RetryPolicy::default(),
            backend: SimBackend::default(),
            memoize: true,
            artifact_cache: default_artifact_cache(),
            formal_oracle: false,
            fault_plan: None,
        }
    }
}

fn default_artifact_cache() -> usize {
    512
}

impl EvalConfig {
    /// Quick single-temperature configuration (examples / tests).
    pub fn quick(n: usize) -> EvalConfig {
        EvalConfig {
            n,
            temperatures: vec![0.2],
            ..EvalConfig::default()
        }
    }

    /// Rejects configurations that cannot produce a meaningful result.
    pub fn validate(&self) -> Result<(), EvalError> {
        if self.n == 0 {
            return Err(EvalError::ZeroSamples);
        }
        if self.temperatures.is_empty() {
            return Err(EvalError::NoTemperatures);
        }
        if !self.budget.is_valid() {
            return Err(EvalError::InvalidBudget);
        }
        if self.retry.max_attempts == 0 {
            return Err(EvalError::InvalidRetry);
        }
        Ok(())
    }
}

/// Outcome of one task under one temperature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskResult {
    /// Task id.
    pub task_id: String,
    /// Samples drawn.
    pub n: usize,
    /// Samples that were syntactically valid.
    pub c_syntax: usize,
    /// Samples that passed co-simulation.
    pub c_func: usize,
    /// Samples whose co-simulation was skipped because the static analyzer
    /// reported an Error-severity finding (counted as functional failures).
    pub skipped_sims: usize,
    /// Samples quarantined as harness faults (worker panic, corrupted
    /// source) after the retry budget. Counted as failures of the
    /// *harness*, not the model: they fail both syntax and functional
    /// metrics but are reported separately so infrastructure trouble is
    /// visible instead of being laundered into model quality.
    pub faults: usize,
    /// Samples whose simulation exhausted its resource budget.
    pub exhausted: usize,
    /// Retry attempts spent on fault-class outcomes across all samples.
    pub retries: usize,
    /// Samples whose verdict was replayed from the in-task memo cache
    /// because an earlier sample generated bit-identical source.
    pub dedup_hits: usize,
    /// Cosim-passing samples the formal oracle examined (zero when
    /// [`EvalConfig::formal_oracle`] is off).
    #[serde(default)]
    pub formal_checked: usize,
    /// Oracle-examined samples proved equivalent to the golden design.
    #[serde(default)]
    pub formal_equivalent: usize,
    /// Cosim-passing samples refuted by a replay-confirmed formal
    /// counterexample and demoted to functional failures — each one is a
    /// bug the stimulus program missed.
    #[serde(default)]
    pub formal_refuted: usize,
    /// Oracle-examined samples left undecided (x-abstraction taint, SAT
    /// budget, unsupported constructs); their cosim pass stands.
    #[serde(default)]
    pub formal_unknown: usize,
}

impl TaskResult {
    /// The record synthesized when a whole worker thread dies: every
    /// sample of the task is quarantined as a harness fault.
    pub fn faulted(task_id: &str, n: usize) -> TaskResult {
        TaskResult {
            task_id: task_id.into(),
            n,
            c_syntax: 0,
            c_func: 0,
            skipped_sims: 0,
            faults: n,
            exhausted: 0,
            retries: 0,
            dedup_hits: 0,
            formal_checked: 0,
            formal_equivalent: 0,
            formal_refuted: 0,
            formal_unknown: 0,
        }
    }
}

/// Batched-simulation telemetry for one evaluation run, summarized from
/// [`Engine::batch_stats`]. Observational only: two runs that produce
/// identical verdicts may batch differently (different backends, cache
/// warmth or memoization), so this field is excluded from `SuiteResult`
/// equality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalBatchStats {
    /// Batched settle sweeps run.
    pub runs: u64,
    /// Stimulus lanes those sweeps carried.
    pub lanes: u64,
    /// Fallbacks to the scalar path (all spill reasons).
    pub fallbacks: u64,
    /// Ops serialized per lane inside batched sweeps.
    pub lane_serialized_ops: u64,
    /// Ops that spilled to the scalar wide-value (>64-bit) path.
    pub wide_value_spills: u64,
}

impl EvalBatchStats {
    fn from_engine(stats: haven_engine::BatchStats) -> EvalBatchStats {
        EvalBatchStats {
            runs: stats.runs,
            lanes: stats.lanes,
            fallbacks: stats.total_fallbacks(),
            lane_serialized_ops: stats.lane_serialized_ops,
            wide_value_spills: stats.wide_value_spills,
        }
    }
}

/// A full evaluation of one model on one suite.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuiteResult {
    /// Model evaluated.
    pub model: String,
    /// Temperature that won the sweep (by functional pass@1).
    pub best_temperature: f64,
    /// Per-task outcomes at the best temperature.
    pub tasks: Vec<TaskResult>,
    /// Batched-simulation telemetry (excluded from equality — see
    /// [`EvalBatchStats`]).
    #[serde(default)]
    pub batch: EvalBatchStats,
}

/// Equality covers the *verdict-bearing* fields only: `batch` is
/// engine telemetry that legitimately differs between runs which must
/// otherwise be bit-identical (backend equivalence, memoization on/off,
/// resumed vs uninterrupted).
impl PartialEq for SuiteResult {
    fn eq(&self, other: &SuiteResult) -> bool {
        self.model == other.model
            && self.best_temperature == other.best_temperature
            && self.tasks == other.tasks
    }
}

impl SuiteResult {
    /// Mean functional pass@k (percent).
    pub fn pass_at(&self, k: usize) -> f64 {
        let counts: Vec<(usize, usize)> = self.tasks.iter().map(|t| (t.n, t.c_func)).collect();
        100.0 * mean_pass_at_k(&counts, k)
    }

    /// Mean syntax pass@k (percent).
    pub fn syntax_pass_at(&self, k: usize) -> f64 {
        let counts: Vec<(usize, usize)> = self.tasks.iter().map(|t| (t.n, t.c_syntax)).collect();
        100.0 * mean_pass_at_k(&counts, k)
    }

    /// `(P, T)` for Table V's "pass cases / total cases" columns: the
    /// expected number of tasks a single attempt solves (`Σ c/n`,
    /// rounded) over the task count.
    pub fn pass_counts(&self) -> (usize, usize) {
        let expected: f64 = self
            .tasks
            .iter()
            .map(|t| t.c_func as f64 / t.n.max(1) as f64)
            .sum();
        (expected.round() as usize, self.tasks.len())
    }

    /// Total co-simulations skipped by the static gate across all tasks.
    pub fn skipped_sims(&self) -> usize {
        self.tasks.iter().map(|t| t.skipped_sims).sum()
    }

    /// Total samples quarantined as harness faults across all tasks.
    pub fn faults(&self) -> usize {
        self.tasks.iter().map(|t| t.faults).sum()
    }

    /// Total samples that exhausted their resource budget.
    pub fn exhausted(&self) -> usize {
        self.tasks.iter().map(|t| t.exhausted).sum()
    }

    /// Total retry attempts spent on fault-class outcomes.
    pub fn retries(&self) -> usize {
        self.tasks.iter().map(|t| t.retries).sum()
    }

    /// Total verdicts replayed from the per-task dedup cache instead of
    /// being re-simulated.
    pub fn dedup_hits(&self) -> usize {
        self.tasks.iter().map(|t| t.dedup_hits).sum()
    }

    /// Total cosim-passing samples the formal oracle examined.
    pub fn formal_checked(&self) -> usize {
        self.tasks.iter().map(|t| t.formal_checked).sum()
    }

    /// Total samples the oracle proved equivalent.
    pub fn formal_equivalent(&self) -> usize {
        self.tasks.iter().map(|t| t.formal_equivalent).sum()
    }

    /// Total cosim passes demoted by a replay-confirmed counterexample.
    pub fn formal_refuted(&self) -> usize {
        self.tasks.iter().map(|t| t.formal_refuted).sum()
    }

    /// Total oracle queries left undecided (typed `Unknown` outcomes).
    pub fn formal_unknown(&self) -> usize {
        self.tasks.iter().map(|t| t.formal_unknown).sum()
    }

    /// Filters to the tasks whose ids are in `ids` (per-modality rows).
    pub fn filtered(&self, ids: &[&str]) -> SuiteResult {
        SuiteResult {
            model: self.model.clone(),
            best_temperature: self.best_temperature,
            tasks: self
                .tasks
                .iter()
                .filter(|t| ids.contains(&t.task_id.as_str()))
                .cloned()
                .collect(),
            batch: self.batch,
        }
    }
}

/// Evaluates `profile` on `tasks`.
pub fn evaluate(
    profile: &ModelProfile,
    tasks: &[BenchTask],
    cfg: &EvalConfig,
) -> Result<SuiteResult, EvalError> {
    cfg.validate()?;
    run_sweep(profile, tasks, cfg, None).ok_or(EvalError::NoTemperatures)
}

/// Evaluates `profile` on `tasks`, journaling completed task results to
/// `journal_path` and resuming from whatever a previous (killed) run with
/// the same configuration already finished. The result is identical to an
/// uninterrupted [`evaluate`] of the same run.
pub fn evaluate_resumable(
    profile: &ModelProfile,
    tasks: &[BenchTask],
    cfg: &EvalConfig,
    journal_path: &Path,
) -> Result<SuiteResult, EvalError> {
    cfg.validate()?;
    let header = JournalHeader {
        model: profile.name.clone(),
        n: cfg.n,
        temperatures: cfg.temperatures.clone(),
        suite_fingerprint: JournalHeader::fingerprint(tasks.iter().map(|t| t.id.as_str())),
    };
    let done = match read_journal(journal_path)? {
        Some(contents) => {
            if contents.header != header {
                return Err(EvalError::JournalMismatch {
                    expected: format!("{header:?}"),
                    found: format!("{:?}", contents.header),
                });
            }
            contents.done
        }
        None => HashMap::new(),
    };
    let writer = JournalWriter::open(journal_path, &header)?;
    run_sweep(profile, tasks, cfg, Some((&done, &writer))).ok_or(EvalError::NoTemperatures)
}

/// Results already on disk, keyed by `(temperature bits, task id)`.
type DoneMap = HashMap<(u64, String), TaskResult>;

fn run_sweep(
    profile: &ModelProfile,
    tasks: &[BenchTask],
    cfg: &EvalConfig,
    journal: Option<(&DoneMap, &JournalWriter)>,
) -> Option<SuiteResult> {
    // One engine for the whole sweep: the artifact cache is shared by
    // every worker thread, task and temperature, so a source generated
    // twice anywhere in the run compiles once.
    let engine = Engine::new(EngineOptions {
        backend: cfg.backend,
        budget: cfg.budget,
        cache_capacity: cfg.artifact_cache,
        ..EngineOptions::default()
    });
    // One oracle for the whole sweep, like the engine: its outcome LRU
    // is keyed by (golden, candidate, options) content, so a pair judged
    // at one temperature replays at every other.
    let oracle = cfg
        .formal_oracle
        .then(|| FormalOracle::new(EquivOptions::default()));
    let mut best: Option<(f64, f64, Vec<TaskResult>)> = None;
    for &temp in &cfg.temperatures {
        let results = match journal {
            None => run_at_temperature(&engine, oracle.as_ref(), profile, tasks, cfg, temp, None),
            Some((done, writer)) => {
                let missing: Vec<BenchTask> = tasks
                    .iter()
                    .filter(|t| !done.contains_key(&(temp.to_bits(), t.id.clone())))
                    .cloned()
                    .collect();
                let on_task = |r: &TaskResult| writer.append(temp, r);
                let fresh = run_at_temperature(
                    &engine,
                    oracle.as_ref(),
                    profile,
                    &missing,
                    cfg,
                    temp,
                    Some(&on_task),
                );
                let mut fresh_by_id: HashMap<String, TaskResult> =
                    fresh.into_iter().map(|r| (r.task_id.clone(), r)).collect();
                tasks
                    .iter()
                    .map(|t| {
                        done.get(&(temp.to_bits(), t.id.clone()))
                            .cloned()
                            .or_else(|| fresh_by_id.remove(&t.id))
                            .unwrap_or_else(|| TaskResult::faulted(&t.id, cfg.n))
                    })
                    .collect()
            }
        };
        let counts: Vec<(usize, usize)> = results.iter().map(|t| (t.n, t.c_func)).collect();
        let p1 = mean_pass_at_k(&counts, 1);
        if best.as_ref().is_none_or(|(_, bp, _)| p1 > *bp) {
            best = Some((temp, p1, results));
        }
    }
    best.map(|(best_temperature, _, tasks)| SuiteResult {
        model: profile.name.clone(),
        best_temperature,
        tasks,
        batch: EvalBatchStats::from_engine(engine.batch_stats()),
    })
}

fn run_at_temperature(
    engine: &Engine,
    oracle: Option<&FormalOracle>,
    profile: &ModelProfile,
    tasks: &[BenchTask],
    cfg: &EvalConfig,
    temperature: f64,
    on_task: Option<&(dyn Fn(&TaskResult) + Sync)>,
) -> Vec<TaskResult> {
    let threads = cfg.threads.max(1).min(tasks.len().max(1));
    let chunk = tasks.len().div_ceil(threads);
    let mut out: Vec<TaskResult> = Vec::with_capacity(tasks.len());
    std::thread::scope(|scope| {
        let handles: Vec<(&[BenchTask], _)> = tasks
            .chunks(chunk.max(1))
            .map(|shard| {
                let handle = scope.spawn(move || {
                    shard
                        .iter()
                        .map(|t| {
                            // Per-task isolation: a panic that escapes the
                            // per-sample layer (e.g. in prompt refinement)
                            // quarantines this task, not the shard.
                            let r = catch_unwind(AssertUnwindSafe(|| {
                                run_task(engine, oracle, profile, t, cfg, temperature)
                            }))
                            .unwrap_or_else(|_| TaskResult::faulted(&t.id, cfg.n));
                            if let Some(cb) = on_task {
                                cb(&r);
                            }
                            r
                        })
                        .collect::<Vec<TaskResult>>()
                });
                (shard, handle)
            })
            .collect();
        for (shard, h) in handles {
            match h.join() {
                Ok(results) => out.extend(results),
                // A worker died in a way even catch_unwind could not
                // absorb (e.g. a panic while panicking). The suite must
                // survive: record every task of the shard as faulted.
                Err(_) => out.extend(shard.iter().map(|t| {
                    let r = TaskResult::faulted(&t.id, cfg.n);
                    if let Some(cb) = on_task {
                        cb(&r);
                    }
                    r
                })),
            }
        }
    });
    out
}

/// What one attempt at one sample produced.
struct SampleOutcome {
    verdict: Verdict,
    /// The static gate short-circuited co-simulation.
    gated: bool,
    /// How the formal oracle classified a cosim pass, when it ran.
    formal: Option<FormalClass>,
}

/// The three-way classification a formal query contributes to the
/// per-task counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FormalClass {
    Equivalent,
    Refuted,
    Unknown,
}

/// Per-task verdict cache keyed by a hash of the generated source.
///
/// Sample evaluation is a pure function of the source text (generation,
/// compilation, gating and co-simulation are all deterministic), so two
/// bit-identical generations — common at low temperature — must produce
/// the same [`SampleOutcome`]. The first occurrence is evaluated for
/// real; later ones replay its verdict and gate flag. Attempts with an
/// injected fault bypass the cache entirely, in both directions: they
/// neither read a cached verdict (the fault must actually strike) nor
/// poison the cache for clean attempts.
#[derive(Default)]
struct TaskMemo {
    verdicts: HashMap<u64, (Verdict, bool, Option<FormalClass>)>,
    hits: usize,
}

impl TaskMemo {
    /// Memo key: the source's content plus the structured
    /// [`haven_engine::EngineFingerprint`] of the configuration that
    /// judged it — built on the same [`haven_hash::ContentHasher`] the
    /// serve-layer response cache uses, so the two caches cannot drift
    /// on what "identical source under the same engine" means.
    fn key(source: &str, fingerprint_key: u64) -> u64 {
        haven_hash::ContentHasher::new()
            .part(source)
            .word(fingerprint_key)
            .finish()
    }
}

impl SampleOutcome {
    fn of(verdict: Verdict) -> SampleOutcome {
        SampleOutcome {
            verdict,
            gated: false,
            formal: None,
        }
    }

    fn fault(detail: impl Into<String>) -> SampleOutcome {
        SampleOutcome::of(Verdict::HarnessFault(detail.into()))
    }
}

fn run_task(
    engine: &Engine,
    oracle: Option<&FormalOracle>,
    profile: &ModelProfile,
    task: &BenchTask,
    cfg: &EvalConfig,
    temperature: f64,
) -> TaskResult {
    // The structured fingerprint of everything besides the source that
    // shapes a verdict; folded into every memo key so a config change
    // can never replay a stale verdict.
    let fingerprint_key = engine
        .fingerprint()
        .with_static_gate(cfg.static_gate)
        .with_formal_oracle(cfg.formal_oracle)
        .key();
    let model = CodeGenModel::new(profile.clone(), temperature);
    // Per the paper, the same pre-trained model serves as CoT prompting
    // model and CodeGen-LLM.
    let prompt = match &cfg.sicot {
        SicotMode::Off => task.prompt.clone(),
        SicotMode::SelfRefine => {
            SiCot::new(model.clone())
                .refine(&task.prompt, &task.id)
                .text
        }
        SicotMode::External(p) => {
            let refiner = CodeGenModel::new(p.clone(), temperature);
            SiCot::new(refiner).refine(&task.prompt, &task.id).text
        }
    };
    let stimuli = stimuli_for(&task.spec, task.stim_seed);
    // One batch plan per task: every candidate sample shares this task's
    // stimulus program, so the golden-model sweep and lane transposition
    // are paid once, not per sample.
    let plan = BatchPlan::new(&task.spec, &stimuli);
    let mut c_syntax = 0usize;
    let mut c_func = 0usize;
    let mut skipped_sims = 0usize;
    let mut faults = 0usize;
    let mut exhausted = 0usize;
    let mut retries = 0usize;
    let mut formal_checked = 0usize;
    let mut formal_equivalent = 0usize;
    let mut formal_refuted = 0usize;
    let mut formal_unknown = 0usize;
    let mut memo = TaskMemo::default();
    for sample in 0..cfg.n {
        let mut attempt = 0usize;
        let outcome = loop {
            let o = catch_unwind(AssertUnwindSafe(|| {
                evaluate_sample(
                    engine,
                    oracle,
                    fingerprint_key,
                    &model,
                    &prompt,
                    task,
                    cfg,
                    temperature,
                    &stimuli,
                    &plan,
                    sample,
                    attempt,
                    &mut memo,
                )
            }))
            .unwrap_or_else(|payload| {
                SampleOutcome::fault(format!("worker panicked: {}", panic_message(&*payload)))
            });
            // Only fault-class verdicts are retried: sample evaluation is
            // deterministic, so retrying a genuine model failure would
            // reproduce it bit-for-bit — which is why retries cannot
            // change pass@k, only recover from transient infrastructure.
            if !o.verdict.is_fault() || attempt + 1 >= cfg.retry.max_attempts {
                break o;
            }
            cfg.retry.backoff(attempt);
            retries += 1;
            attempt += 1;
        };
        if outcome.gated {
            skipped_sims += 1;
        }
        if outcome.verdict.syntax_ok() {
            c_syntax += 1;
        }
        if outcome.verdict.functional_ok() {
            c_func += 1;
        }
        match &outcome.verdict {
            Verdict::HarnessFault(_) => faults += 1,
            Verdict::ResourceExhausted(_) => exhausted += 1,
            _ => {}
        }
        if let Some(class) = outcome.formal {
            formal_checked += 1;
            match class {
                FormalClass::Equivalent => formal_equivalent += 1,
                FormalClass::Refuted => formal_refuted += 1,
                FormalClass::Unknown => formal_unknown += 1,
            }
        }
    }
    TaskResult {
        task_id: task.id.clone(),
        n: cfg.n,
        c_syntax,
        c_func,
        skipped_sims,
        faults,
        exhausted,
        retries,
        dedup_hits: memo.hits,
        formal_checked,
        formal_equivalent,
        formal_refuted,
        formal_unknown,
    }
}

#[allow(clippy::too_many_arguments)]
fn evaluate_sample(
    engine: &Engine,
    oracle: Option<&FormalOracle>,
    fingerprint_key: u64,
    model: &CodeGenModel,
    prompt: &str,
    task: &BenchTask,
    cfg: &EvalConfig,
    temperature: f64,
    stimuli: &haven_spec::stimuli::Stimuli,
    plan: &BatchPlan,
    sample: usize,
    attempt: usize,
    memo: &mut TaskMemo,
) -> SampleOutcome {
    let fault = cfg
        .fault_plan
        .as_ref()
        .and_then(|p| p.fault_at(&task.id, temperature, sample, attempt));
    if fault == Some(FaultKind::WorkerPanic) {
        panic!("injected fault: worker panic at {}#{sample}", task.id);
    }
    let mut source = model.generate(prompt, &task.id, sample);
    if fault == Some(FaultKind::SourceCorruption) {
        source = corrupt_source(&source);
    }
    // Harness-boundary sanity check: generated source that was damaged in
    // flight (NUL bytes, empty buffer) is an infrastructure fault, not a
    // syntax error of the model.
    if source.is_empty() || source.contains('\0') {
        return SampleOutcome::fault(format!(
            "source corrupted at harness boundary for {}#{sample}",
            task.id
        ));
    }
    // Dedup check: past the harness boundary the outcome is a pure
    // function of the source, so a bit-identical earlier generation
    // already decided this sample. Fault-injected attempts must run the
    // real path, so they never consult or fill the cache.
    let memoized = cfg.memoize && fault.is_none();
    let key = TaskMemo::key(&source, fingerprint_key);
    if memoized {
        if let Some((verdict, gated, formal)) = memo.verdicts.get(&key) {
            memo.hits += 1;
            return SampleOutcome {
                verdict: verdict.clone(),
                gated: *gated,
                formal: *formal,
            };
        }
    }
    let outcome = evaluate_source(engine, oracle, &source, task, cfg, stimuli, plan, fault);
    if memoized {
        memo.verdicts
            .insert(key, (outcome.verdict.clone(), outcome.gated, outcome.formal));
    }
    outcome
}

/// The deterministic tail of sample evaluation: everything downstream of
/// the generated source (engine prepare → static gate → co-simulation →
/// optional formal equivalence check on a cosim pass).
#[allow(clippy::too_many_arguments)]
fn evaluate_source(
    engine: &Engine,
    oracle: Option<&FormalOracle>,
    source: &str,
    task: &BenchTask,
    cfg: &EvalConfig,
    stimuli: &haven_spec::stimuli::Stimuli,
    plan: &BatchPlan,
    fault: Option<FaultKind>,
) -> SampleOutcome {
    // One engine prepare climbs the whole ladder (parse → elaborate →
    // analyze → bytecode) and answers from the shared artifact cache when
    // any worker already compiled this exact source. Artifacts are pure
    // compile products, so a cache hit is safe even on fault-injected
    // attempts — the fault machinery lives downstream.
    let artifact = match engine.prepare(source) {
        Ok(a) => a,
        Err(e) => return SampleOutcome::of(Verdict::SyntaxError(e.to_string())),
    };
    if cfg.static_gate && artifact.report.has_errors() {
        // The design compiled (syntax ok) but the dataflow analyzer
        // proved it defective — e.g. a combinational loop or an
        // X-generating reset-less register — so co-simulation could
        // only confirm the failure. Short-circuit it.
        return SampleOutcome {
            verdict: Verdict::FunctionalMismatch {
                at_check: 0,
                detail: "skipped by static gate: analyzer proved the design defective".into(),
            },
            gated: true,
            formal: None,
        };
    }
    let options = CosimOptions {
        mid_tick_checks: true,
        // An injected stall starves this attempt's simulator through the
        // real budget machinery, so the recovery path under test is the
        // production one.
        budget: if fault == Some(FaultKind::SimStall) {
            SimBudget::starved()
        } else {
            cfg.budget
        },
        backend: cfg.backend,
    };
    // Batched co-simulation: combinational stimulus programs sweep up to
    // 64 Check episodes per settle on the bit-parallel engine, falling
    // back to the scalar path (spill counted on the engine) whenever the
    // program or artifact does not qualify. Verdicts are bit-identical
    // either way — pinned by the backend-equivalence test below and the
    // differential suite in crates/spec.
    let verdict =
        cosimulate_batch_planned(&task.spec, engine, &artifact, stimuli, &options, plan).verdict;

    // Formal rung: only cosim passes are worth a proof attempt — every
    // other verdict already names a concrete failure. A replay-confirmed
    // counterexample means the stimulus program false-passed the sample;
    // it is demoted to a functional mismatch. Unknown outcomes are typed
    // telemetry: the cosim pass stands.
    let (verdict, formal) = match (&verdict, oracle) {
        (Verdict::Pass, Some(oracle)) => {
            match haven_spec::formal::formal_check(engine, oracle, &task.spec, source) {
                Some(outcome) => match &outcome.report.verdict {
                    haven_formal::EquivVerdict::Equivalent => {
                        (verdict, Some(FormalClass::Equivalent))
                    }
                    haven_formal::EquivVerdict::Counterexample(trace) => (
                        Verdict::FunctionalMismatch {
                            at_check: trace.mismatch_step,
                            detail: format!(
                                "formal counterexample on `{}` (cosim stimuli missed it)",
                                trace.mismatch_output
                            ),
                        },
                        Some(FormalClass::Refuted),
                    ),
                    haven_formal::EquivVerdict::Unknown(_) => {
                        (verdict, Some(FormalClass::Unknown))
                    }
                },
                // Either side failed to prepare — for a cosim-passing
                // candidate that means the golden emission, which is a
                // harness-side surprise, not a candidate failure.
                None => (verdict, Some(FormalClass::Unknown)),
            }
        }
        _ => (verdict, None),
    };
    SampleOutcome {
        verdict,
        gated: false,
        formal,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites;
    use haven_lm::profiles::ModelProfile;

    fn small_suite() -> Vec<crate::suites::BenchTask> {
        suites::verilog_eval_machine(1)
            .into_iter()
            .take(12)
            .collect()
    }

    #[test]
    fn perfect_model_scores_100() {
        let suite = small_suite();
        let r = evaluate(
            &ModelProfile::uniform("perfect", 1.0),
            &suite,
            &EvalConfig::quick(2),
        )
        .unwrap();
        assert_eq!(r.pass_at(1), 100.0);
        assert_eq!(r.syntax_pass_at(1), 100.0);
        assert_eq!(r.faults(), 0);
        assert_eq!(r.exhausted(), 0);
    }

    #[test]
    fn suite_result_carries_batch_telemetry() {
        let suite = small_suite();
        let r = evaluate(
            &ModelProfile::uniform("perfect", 1.0),
            &suite,
            &EvalConfig::quick(2),
        )
        .unwrap();
        // Every simulated sample either ran batched or was counted as a
        // scalar fallback; a populated suite can't leave both at zero.
        assert!(
            r.batch.runs + r.batch.fallbacks > 0,
            "batch telemetry not wired: {:?}",
            r.batch
        );
        // Each batched sweep carries at least one lane.
        assert!(r.batch.lanes >= r.batch.runs);
    }

    #[test]
    fn stronger_models_score_higher() {
        let suite = small_suite();
        let cfg = EvalConfig::quick(4);
        let weak = evaluate(&ModelProfile::uniform("weak", 0.3), &suite, &cfg).unwrap();
        let strong = evaluate(&ModelProfile::uniform("strong", 0.9), &suite, &cfg).unwrap();
        assert!(
            strong.pass_at(1) > weak.pass_at(1),
            "strong {} <= weak {}",
            strong.pass_at(1),
            weak.pass_at(1)
        );
    }

    #[test]
    fn pass_at_5_at_least_pass_at_1() {
        let suite = small_suite();
        let r = evaluate(
            &ModelProfile::uniform("mid", 0.6),
            &suite,
            &EvalConfig {
                n: 5,
                temperatures: vec![0.2],
                ..EvalConfig::default()
            },
        )
        .unwrap();
        assert!(r.pass_at(5) >= r.pass_at(1));
        assert!(r.syntax_pass_at(1) >= r.pass_at(1));
    }

    #[test]
    fn evaluation_is_deterministic() {
        let suite = small_suite();
        let cfg = EvalConfig::quick(3);
        let a = evaluate(&ModelProfile::uniform("m", 0.5), &suite, &cfg).unwrap();
        let b = evaluate(&ModelProfile::uniform("m", 0.5), &suite, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_samples_is_rejected() {
        let cfg = EvalConfig {
            n: 0,
            ..EvalConfig::default()
        };
        let r = evaluate(&ModelProfile::uniform("m", 0.5), &small_suite(), &cfg);
        assert_eq!(r, Err(EvalError::ZeroSamples));
    }

    #[test]
    fn empty_sweep_is_rejected() {
        let cfg = EvalConfig {
            temperatures: vec![],
            ..EvalConfig::quick(1)
        };
        let r = evaluate(&ModelProfile::uniform("m", 0.5), &small_suite(), &cfg);
        assert_eq!(r, Err(EvalError::NoTemperatures));
    }

    #[test]
    fn zero_budget_is_rejected() {
        let cfg = EvalConfig {
            budget: SimBudget {
                max_ticks: 0,
                ..SimBudget::default()
            },
            ..EvalConfig::quick(1)
        };
        let r = evaluate(&ModelProfile::uniform("m", 0.5), &small_suite(), &cfg);
        assert_eq!(r, Err(EvalError::InvalidBudget));
    }

    #[test]
    fn zero_attempt_retry_is_rejected() {
        let cfg = EvalConfig {
            retry: RetryPolicy {
                max_attempts: 0,
                backoff_base_ms: 0,
            },
            ..EvalConfig::quick(1)
        };
        let r = evaluate(&ModelProfile::uniform("m", 0.5), &small_suite(), &cfg);
        assert_eq!(r, Err(EvalError::InvalidRetry));
    }

    #[test]
    fn starved_budget_exhausts_instead_of_hanging() {
        // Under a starved budget every simulated sample hits the tick
        // limit: the run completes, nothing passes functionally, and the
        // exhaustion is counted — not silently folded into mismatches.
        let suite = small_suite();
        let cfg = EvalConfig {
            budget: SimBudget::starved(),
            retry: RetryPolicy::none(),
            static_gate: false,
            ..EvalConfig::quick(2)
        };
        let r = evaluate(&ModelProfile::uniform("perfect", 1.0), &suite, &cfg).unwrap();
        assert_eq!(r.pass_at(1), 0.0);
        assert!(r.exhausted() > 0, "expected counted budget exhaustion");
        // Budget exhaustion is not a syntax failure.
        assert_eq!(r.syntax_pass_at(1), 100.0);
    }

    #[test]
    fn static_gate_is_transparent_on_clean_code() {
        // A perfect model emits only conventional, analyzer-clean designs,
        // so gating must not change any verdict — and must skip nothing.
        let suite = small_suite();
        let gated = EvalConfig::quick(3);
        let ungated = EvalConfig {
            static_gate: false,
            ..EvalConfig::quick(3)
        };
        let profile = ModelProfile::uniform("perfect", 1.0);
        let g = evaluate(&profile, &suite, &gated).unwrap();
        let u = evaluate(&profile, &suite, &ungated).unwrap();
        assert_eq!(g.skipped_sims(), 0);
        assert_eq!(g.pass_at(1), u.pass_at(1));
        assert_eq!(g.syntax_pass_at(1), u.syntax_pass_at(1));
    }

    #[test]
    fn static_gate_skips_simulations_on_hallucinated_code() {
        // A weak model hallucinates often; on counter tasks the common
        // convention slip is dropping the reset branch, which the analyzer
        // proves fatal (SA-XSOURCE). The gate should short-circuit a
        // nonzero number of those candidates without altering pass@k.
        let suite: Vec<_> = suites::verilog_eval_machine(1)
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % 9 == 7) // the counter tasks
            .map(|(_, t)| t)
            .take(8)
            .collect();
        let gated = EvalConfig::quick(6);
        let ungated = EvalConfig {
            static_gate: false,
            ..EvalConfig::quick(6)
        };
        let profile = ModelProfile::uniform("weak", 0.5);
        let g = evaluate(&profile, &suite, &gated).unwrap();
        let u = evaluate(&profile, &suite, &ungated).unwrap();
        assert!(
            g.skipped_sims() > 0,
            "expected the gate to skip some simulations for a weak model"
        );
        assert_eq!(
            g.pass_at(1),
            u.pass_at(1),
            "gating must not change functional verdicts"
        );
        assert_eq!(g.syntax_pass_at(1), u.syntax_pass_at(1));
    }

    #[test]
    fn analyzer_v2_gate_keeps_passk_bit_identical() {
        // The analyzer-v2 upgrade adds Warn-severity value rules
        // (SA-XPROP, SA-SIGNRANGE, SA-CDC, SA-RESET) and witness-based
        // confirmation; `StaticReport::has_errors` gates only on
        // findings that are Error-severity *and* not unconfirmed, so the
        // gating set is exactly the structural Error set v1 had. Pin
        // that: across model strengths, every pass@k metric is identical
        // with the upgraded gate on and off except for candidates the
        // gate short-circuits — whose verdicts must not change.
        assert_eq!(haven_verilog::ANALYZER_VERSION, 2);
        let suite = small_suite();
        for accuracy in [0.4, 0.7, 1.0] {
            let profile = ModelProfile::uniform("m", accuracy);
            let gated = evaluate(&profile, &suite, &EvalConfig::quick(4)).unwrap();
            let ungated = evaluate(
                &profile,
                &suite,
                &EvalConfig {
                    static_gate: false,
                    ..EvalConfig::quick(4)
                },
            )
            .unwrap();
            for k in [1, 4] {
                assert_eq!(
                    gated.pass_at(k),
                    ungated.pass_at(k),
                    "pass@{k} drifted under the v2 gate at accuracy {accuracy}"
                );
                assert_eq!(gated.syntax_pass_at(k), ungated.syntax_pass_at(k));
            }
        }
    }

    /// Strips the cache-utilization counter so results can be compared
    /// for the *metrics* memoization must not change.
    fn without_dedup_counts(mut r: SuiteResult) -> SuiteResult {
        for t in &mut r.tasks {
            t.dedup_hits = 0;
        }
        r
    }

    #[test]
    fn memoization_leaves_every_metric_bit_identical() {
        let suite = small_suite();
        for accuracy in [0.4, 0.9] {
            let profile = ModelProfile::uniform("m", accuracy);
            let on = EvalConfig::quick(6);
            let off = EvalConfig {
                memoize: false,
                ..EvalConfig::quick(6)
            };
            let with = evaluate(&profile, &suite, &on).unwrap();
            let without = evaluate(&profile, &suite, &off).unwrap();
            assert_eq!(without.dedup_hits(), 0, "disabled cache must never hit");
            assert_eq!(
                without_dedup_counts(with),
                without_dedup_counts(without),
                "memoization changed an observable metric at accuracy {accuracy}"
            );
        }
    }

    #[test]
    fn memoization_dedups_identical_generations() {
        // A deterministic perfect model emits the same source for every
        // sample of a task, so all but the first replay from the cache.
        let suite = small_suite();
        let r = evaluate(
            &ModelProfile::uniform("perfect", 1.0),
            &suite,
            &EvalConfig::quick(4),
        )
        .unwrap();
        assert_eq!(r.pass_at(1), 100.0);
        assert!(
            r.dedup_hits() > 0,
            "identical generations should hit the cache"
        );
    }

    #[test]
    fn interpreter_backend_agrees_with_compiled() {
        let suite = small_suite();
        let profile = ModelProfile::uniform("mid", 0.6);
        let compiled = evaluate(&profile, &suite, &EvalConfig::quick(4)).unwrap();
        let interp = evaluate(
            &profile,
            &suite,
            &EvalConfig {
                backend: SimBackend::Interpreter,
                ..EvalConfig::quick(4)
            },
        )
        .unwrap();
        assert_eq!(compiled, interp, "backends must be verdict-equivalent");
    }

    #[test]
    fn starved_budget_exhausts_under_interpreter_backend_too() {
        // PR 2's exhaustion accounting must hold on both engines.
        let suite = small_suite();
        for backend in [SimBackend::Compiled, SimBackend::Interpreter] {
            let cfg = EvalConfig {
                budget: SimBudget::starved(),
                retry: RetryPolicy::none(),
                static_gate: false,
                backend,
                ..EvalConfig::quick(2)
            };
            let r = evaluate(&ModelProfile::uniform("perfect", 1.0), &suite, &cfg).unwrap();
            assert_eq!(r.pass_at(1), 0.0, "{backend:?}");
            assert!(r.exhausted() > 0, "{backend:?}: uncounted exhaustion");
            assert_eq!(r.syntax_pass_at(1), 100.0, "{backend:?}");
        }
    }

    #[test]
    fn formal_oracle_confirms_a_perfect_model() {
        // Perfect generations are bit-identically the golden emission,
        // so every formal query must prove equivalence and no metric may
        // move relative to an oracle-free run.
        let suite = small_suite();
        let profile = ModelProfile::uniform("perfect", 1.0);
        let off = evaluate(&profile, &suite, &EvalConfig::quick(2)).unwrap();
        let on = evaluate(
            &profile,
            &suite,
            &EvalConfig {
                formal_oracle: true,
                ..EvalConfig::quick(2)
            },
        )
        .unwrap();
        assert_eq!(on.pass_at(1), 100.0);
        assert_eq!(on.pass_at(1), off.pass_at(1));
        assert!(on.formal_checked() > 0, "oracle never consulted");
        assert_eq!(on.formal_refuted(), 0);
        assert_eq!(
            on.formal_checked(),
            on.formal_equivalent() + on.formal_refuted() + on.formal_unknown()
        );
        assert_eq!(off.formal_checked(), 0, "oracle off must not run");
    }

    #[test]
    fn formal_oracle_never_raises_passk() {
        // The oracle can only demote cosim passes (refutation) or leave
        // them standing — pass@k with the oracle on is bounded above by
        // pass@k with it off, at every model strength.
        let suite = small_suite();
        for accuracy in [0.4, 0.7] {
            let profile = ModelProfile::uniform("m", accuracy);
            let off = evaluate(&profile, &suite, &EvalConfig::quick(4)).unwrap();
            let on = evaluate(
                &profile,
                &suite,
                &EvalConfig {
                    formal_oracle: true,
                    ..EvalConfig::quick(4)
                },
            )
            .unwrap();
            assert!(
                on.pass_at(1) <= off.pass_at(1),
                "oracle raised pass@1 at accuracy {accuracy}: {} > {}",
                on.pass_at(1),
                off.pass_at(1)
            );
            // Syntax metrics are upstream of the oracle.
            assert_eq!(on.syntax_pass_at(1), off.syntax_pass_at(1));
        }
    }

    #[test]
    fn sicot_helps_on_symbolic_tasks() {
        let suite: Vec<_> = suites::symbolic44(1).into_iter().take(16).collect();
        let profile = haven_lm::profiles::base_codeqwen();
        let plain = evaluate(&profile, &suite, &EvalConfig::quick(4)).unwrap();
        let cfg = EvalConfig {
            sicot: SicotMode::SelfRefine,
            ..EvalConfig::quick(4)
        };
        let refined = evaluate(&profile, &suite, &cfg).unwrap();
        assert!(
            refined.pass_at(1) > plain.pass_at(1),
            "SI-CoT {} <= plain {}",
            refined.pass_at(1),
            plain.pass_at(1)
        );
    }
}

#[cfg(test)]
mod result_tests {
    use super::*;

    fn result() -> SuiteResult {
        SuiteResult {
            model: "m".into(),
            best_temperature: 0.2,
            tasks: vec![
                TaskResult {
                    task_id: "a/000".into(),
                    n: 10,
                    c_syntax: 10,
                    c_func: 10,
                    skipped_sims: 0,
                    faults: 0,
                    exhausted: 0,
                    retries: 0,
                    dedup_hits: 4,
                    formal_checked: 8,
                    formal_equivalent: 6,
                    formal_refuted: 1,
                    formal_unknown: 1,
                },
                TaskResult {
                    task_id: "a/001".into(),
                    n: 10,
                    c_syntax: 10,
                    c_func: 5,
                    skipped_sims: 2,
                    faults: 0,
                    exhausted: 1,
                    retries: 2,
                    dedup_hits: 1,
                    formal_checked: 5,
                    formal_equivalent: 4,
                    formal_refuted: 1,
                    formal_unknown: 0,
                },
                TaskResult {
                    task_id: "b/000".into(),
                    n: 10,
                    c_syntax: 2,
                    c_func: 0,
                    skipped_sims: 1,
                    faults: 3,
                    exhausted: 0,
                    retries: 6,
                    dedup_hits: 0,
                    formal_checked: 0,
                    formal_equivalent: 0,
                    formal_refuted: 0,
                    formal_unknown: 0,
                },
            ],
            batch: EvalBatchStats::default(),
        }
    }

    #[test]
    fn pass_counts_round_expected_single_attempt_passes() {
        // Σ c/n = 1.0 + 0.5 + 0.0 = 1.5 → rounds to 2 of 3.
        assert_eq!(result().pass_counts(), (2, 3));
    }

    #[test]
    fn filtered_keeps_only_named_tasks() {
        let r = result().filtered(&["a/000", "b/000"]);
        assert_eq!(r.tasks.len(), 2);
        assert_eq!(r.pass_at(1), 50.0);
        assert_eq!(result().filtered(&[]).tasks.len(), 0);
    }

    #[test]
    fn syntax_rate_bounds_functional_rate() {
        let r = result();
        assert!(r.syntax_pass_at(1) >= r.pass_at(1));
    }

    #[test]
    fn fault_counters_aggregate_across_tasks() {
        let r = result();
        assert_eq!(r.faults(), 3);
        assert_eq!(r.exhausted(), 1);
        assert_eq!(r.retries(), 8);
        assert_eq!(r.dedup_hits(), 5);
        assert_eq!(r.formal_checked(), 13);
        assert_eq!(r.formal_equivalent(), 10);
        assert_eq!(r.formal_refuted(), 2);
        assert_eq!(r.formal_unknown(), 1);
    }

    #[test]
    fn faulted_record_quarantines_every_sample() {
        let t = TaskResult::faulted("x/000", 10);
        assert_eq!(t.faults, 10);
        assert_eq!(t.c_syntax, 0);
        assert_eq!(t.c_func, 0);
    }
}
