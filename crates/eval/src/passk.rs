//! The unbiased pass@k estimator (paper Eq. 1, from Chen et al. 2021):
//!
//! `pass@k = E[ 1 − C(n−c, k) / C(n, k) ]`
//!
//! where `n` is the number of samples per problem and `c` the number that
//! passed.

/// Unbiased per-task pass@k estimate.
///
/// # Panics
///
/// Panics if `c > n` or `k > n` or `k == 0`.
pub fn pass_at_k(n: usize, c: usize, k: usize) -> f64 {
    assert!(c <= n, "passes cannot exceed samples");
    assert!(k >= 1 && k <= n, "need 1 <= k <= n");
    if c == 0 {
        return 0.0;
    }
    if n - c < k {
        return 1.0;
    }
    // 1 - prod_{i=n-c+1..=n} (1 - k / i)
    let mut prod = 1.0f64;
    for i in (n - c + 1)..=n {
        prod *= 1.0 - k as f64 / i as f64;
    }
    1.0 - prod
}

/// Mean pass@k over tasks given each task's `(n, c)`.
pub fn mean_pass_at_k(counts: &[(usize, usize)], k: usize) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    counts.iter().map(|&(n, c)| pass_at_k(n, c, k)).sum::<f64>() / counts.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_cases() {
        assert_eq!(pass_at_k(10, 0, 1), 0.0);
        assert_eq!(pass_at_k(10, 10, 1), 1.0);
        assert_eq!(pass_at_k(10, 6, 5), 1.0); // n-c=4 < k=5
    }

    #[test]
    fn pass_at_1_is_c_over_n() {
        for (n, c) in [(10usize, 3usize), (10, 7), (5, 2)] {
            let got = pass_at_k(n, c, 1);
            let want = c as f64 / n as f64;
            assert!((got - want).abs() < 1e-12, "n={n} c={c}: {got} vs {want}");
        }
    }

    #[test]
    fn matches_combinatorial_definition() {
        // 1 - C(n-c,k)/C(n,k) computed directly.
        fn choose(n: usize, k: usize) -> f64 {
            if k > n {
                return 0.0;
            }
            let mut r = 1.0;
            for i in 0..k {
                r *= (n - i) as f64 / (k - i) as f64;
            }
            r
        }
        for n in [5usize, 10] {
            for c in 0..=n {
                for k in 1..=n {
                    let direct = 1.0 - choose(n - c, k) / choose(n, k);
                    let got = pass_at_k(n, c, k);
                    assert!(
                        (got - direct).abs() < 1e-9,
                        "n={n} c={c} k={k}: {got} vs {direct}"
                    );
                }
            }
        }
    }

    #[test]
    fn monotone_in_k_and_c() {
        for c in 0..=10usize {
            let mut prev = 0.0;
            for k in 1..=10usize {
                let v = pass_at_k(10, c, k);
                assert!(v + 1e-12 >= prev);
                prev = v;
            }
        }
        for k in 1..=10usize {
            let mut prev = 0.0;
            for c in 0..=10usize {
                let v = pass_at_k(10, c, k);
                assert!(v + 1e-12 >= prev);
                prev = v;
            }
        }
    }

    #[test]
    fn mean_over_tasks() {
        let counts = [(10, 10), (10, 0)];
        assert!((mean_pass_at_k(&counts, 1) - 0.5).abs() < 1e-12);
        assert!(mean_pass_at_k(&[], 1).abs() < 1e-12);
    }
}
