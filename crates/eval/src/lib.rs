//! # haven-eval
//!
//! Benchmark suites, metrics and the evaluation harness of the HaVen
//! reproduction.
//!
//! * [`suites`] — procedurally generated analogues of VerilogEval v1
//!   (machine 143 / human 156), RTLLM v1.1 (29), VerilogEval v2 (156,
//!   spec-to-RTL chat format) and the 44-task symbolic subset.
//! * [`passk`] — the unbiased pass@k estimator (paper Eq. 1).
//! * [`harness`] — samples a model n times per task across the
//!   temperature sweep, compiles + co-simulates every sample against the
//!   task's golden model, and reports the best temperature. Fault-tolerant:
//!   per-sample panic isolation, resource budgets, bounded retry of
//!   fault-class outcomes, and journal-backed resumable runs.
//! * [`fault`] — seeded deterministic fault injection for resilience
//!   tests (worker panics, simulator stalls, source corruption).
//! * [`journal`] — crash-tolerant per-task result journaling behind
//!   [`harness::evaluate_resumable`].
//! * [`report`] — plain-text tables for experiment binaries.

#![warn(missing_docs)]

pub mod fault;
pub mod harness;
pub mod journal;
pub mod passk;
pub mod report;
pub mod suites;

pub use fault::{FaultKind, FaultPlan};
pub use harness::{
    evaluate, evaluate_resumable, EvalConfig, EvalError, RetryPolicy, SicotMode, SuiteResult,
    TaskResult,
};
pub use journal::{read_journal, JournalHeader, JournalWriter};
pub use passk::{mean_pass_at_k, pass_at_k};
pub use suites::{BenchTask, SuiteKind};
