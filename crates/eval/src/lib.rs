//! # haven-eval
//!
//! Benchmark suites, metrics and the evaluation harness of the HaVen
//! reproduction.
//!
//! * [`suites`] — procedurally generated analogues of VerilogEval v1
//!   (machine 143 / human 156), RTLLM v1.1 (29), VerilogEval v2 (156,
//!   spec-to-RTL chat format) and the 44-task symbolic subset.
//! * [`passk`] — the unbiased pass@k estimator (paper Eq. 1).
//! * [`harness`] — samples a model n times per task across the
//!   temperature sweep, compiles + co-simulates every sample against the
//!   task's golden model, and reports the best temperature.
//! * [`report`] — plain-text tables for experiment binaries.

#![warn(missing_docs)]

pub mod harness;
pub mod passk;
pub mod report;
pub mod suites;

pub use harness::{evaluate, EvalConfig, SicotMode, SuiteResult, TaskResult};
pub use passk::{mean_pass_at_k, pass_at_k};
pub use suites::{BenchTask, SuiteKind};
