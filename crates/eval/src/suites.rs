//! Procedurally generated benchmark suites mirroring the paper's four
//! evaluation sets.
//!
//! | Suite | Size | Mirrors | Character |
//! |---|---|---|---|
//! | [`verilog_eval_machine`] | 143 | VerilogEval-machine | GPT-written, precise, mostly combinational |
//! | [`verilog_eval_human`]   | 156 | VerilogEval-human | engineer-style: symbolic blocks, attributes, logic chains |
//! | [`rtllm`]                | 29  | RTLLM v1.1 | larger parameterized designs |
//! | [`verilog_eval_v2`]      | 156 | VerilogEval v2 | the human tasks in spec-to-RTL chat format |
//! | [`symbolic44`]           | 44  | §IV-C subset | 10 truth tables, 13 waveforms, 21 state diagrams |
//!
//! Every task carries its golden [`Spec`]; prompts are rendered with the
//! same formats the paper's Tables I–III show. Generation is deterministic
//! in the suite seed.

use haven_modality::detect::ModalityKind;
use haven_modality::waveform::Waveform;
use haven_spec::describe::{self, describe, render_chain_words, ChainArm, DescribeStyle, IfChain};
use haven_spec::ir::*;
use haven_spec::{builders, Spec};
use haven_verilog::analyze::ResetKind;
use haven_verilog::ast::{BinaryOp, Edge};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which benchmark a task belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SuiteKind {
    /// VerilogEval v1, machine-generated half.
    VerilogEvalMachine,
    /// VerilogEval v1, human-written half.
    VerilogEvalHuman,
    /// RTLLM v1.1.
    Rtllm,
    /// VerilogEval v2 (specification-to-RTL).
    VerilogEvalV2,
}

impl SuiteKind {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SuiteKind::VerilogEvalMachine => "VerilogEval-machine",
            SuiteKind::VerilogEvalHuman => "VerilogEval-human",
            SuiteKind::Rtllm => "RTLLM v1.1",
            SuiteKind::VerilogEvalV2 => "VerilogEval v2",
        }
    }
}

/// One benchmark task: a prompt plus the golden spec that judges it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchTask {
    /// Stable id (`human/021`, …) — seeds the per-task difficulty draw.
    pub id: String,
    /// Owning suite.
    pub suite: SuiteKind,
    /// The instruction given to the model.
    pub prompt: String,
    /// Golden specification (drives testbench and co-simulation).
    pub spec: Spec,
    /// The symbolic modality this task is built around, if any.
    pub modality: Option<ModalityKind>,
    /// Per-task stimulus seed.
    pub stim_seed: u64,
}

fn task(
    suite: SuiteKind,
    prefix: &str,
    index: usize,
    prompt: String,
    spec: Spec,
    modality: Option<ModalityKind>,
) -> BenchTask {
    BenchTask {
        id: format!("{prefix}/{index:03}"),
        suite,
        prompt,
        spec,
        modality,
        stim_seed: 0x9e37_79b9 ^ (index as u64) << 8 ^ prefix.len() as u64,
    }
}

// ---- random spec/prompt factories ---------------------------------------

fn random_attrs(rng: &mut StdRng, richness: f64) -> AttrSpec {
    let mut attrs = AttrSpec::conventional();
    if rng.gen_bool(richness) {
        attrs.reset = Some(match rng.gen_range(0..3u8) {
            0 => ResetSpec {
                name: "rst_n".into(),
                kind: ResetKind::AsyncActiveLow,
            },
            1 => ResetSpec {
                name: "rst".into(),
                kind: ResetKind::AsyncActiveHigh,
            },
            _ => ResetSpec {
                name: "rst".into(),
                kind: ResetKind::Sync,
            },
        });
    }
    if rng.gen_bool(richness * 0.4) {
        attrs.edge = Edge::Neg;
    }
    if rng.gen_bool(richness * 0.5) {
        attrs.enable = Some(EnableSpec {
            name: "en".into(),
            active_high: rng.gen_bool(0.7),
        });
    }
    attrs
}

fn random_comb_expr(rng: &mut StdRng, inputs: &[&str]) -> haven_verilog::ast::Expr {
    use haven_verilog::ast::Expr;
    let ops = [
        BinaryOp::BitAnd,
        BinaryOp::BitOr,
        BinaryOp::BitXor,
        BinaryOp::Add,
    ];
    let mut e = Expr::ident(inputs[0]);
    for name in &inputs[1..] {
        let op = ops[rng.gen_range(0..ops.len())];
        let rhs = if rng.gen_bool(0.25) {
            Expr::Unary(
                haven_verilog::ast::UnaryOp::BitNot,
                Box::new(Expr::ident(*name)),
            )
        } else {
            Expr::ident(*name)
        };
        e = Expr::Binary(op, Box::new(e), Box::new(rhs));
    }
    e
}

fn random_truth_table(rng: &mut StdRng, name: &str, n_inputs: usize) -> Spec {
    let input_names: Vec<String> = ["a", "b", "c", "d"][..n_inputs]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let rows: Vec<(u64, u64)> = (0..1u64 << n_inputs)
        .map(|i| (i, u64::from(rng.gen_bool(0.5))))
        .collect();
    builders::truth_table_spec(name, input_names, vec!["out".into()], rows)
}

fn random_fsm(rng: &mut StdRng, name: &str, n_states: usize) -> Spec {
    let states: Vec<String> = (0..n_states)
        .map(|i| char::from(b'A' + i as u8).to_string())
        .collect();
    // Random transitions, but keep every state reachable from state 0 by
    // construction: state i's 0-edge goes to (i+1) % n.
    let transitions: Vec<(usize, usize)> = (0..n_states)
        .map(|i| ((i + 1) % n_states, rng.gen_range(0..n_states)))
        .collect();
    let mut outputs: Vec<u64> = (0..n_states)
        .map(|_| u64::from(rng.gen_bool(0.5)))
        .collect();
    // At least one 0 and one 1 output so the FSM is observable.
    outputs[0] = 0;
    outputs[n_states - 1] = 1;
    builders::fsm(name, states, 0, transitions, outputs)
}

/// A waveform task: full-coverage samples of a combinational function in
/// shuffled order, rendered as a chart.
fn waveform_task(rng: &mut StdRng, name: &str, n_inputs: usize) -> (Spec, String) {
    let spec = random_truth_table(rng, name, n_inputs);
    let Behavior::TruthTable(tt) = &spec.behavior else {
        unreachable!()
    };
    let mut order: Vec<u64> = (0..1u64 << n_inputs).collect();
    order.shuffle(rng);
    let names = &tt.inputs;
    let mut signals: Vec<(String, Vec<u8>)> =
        names.iter().map(|n| (n.clone(), Vec::new())).collect();
    let mut out_samples = Vec::new();
    for &combo in &order {
        for (k, (_, samples)) in signals.iter_mut().enumerate() {
            samples.push((combo >> (n_inputs - 1 - k) & 1) as u8);
        }
        out_samples.push(tt.lookup(combo) as u8);
    }
    signals.push(("out".into(), out_samples));
    let time: Vec<u64> = (0..order.len() as u64).map(|i| i * 10).collect();
    let wf = Waveform {
        signals,
        time: Some(time),
    };
    let prompt = format!(
        "Implement a combinational module named `{name}` matching the waveform chart below.\n{}{}",
        wf.to_text(),
        describe::header_sentence(&spec)
    );
    (spec, prompt)
}

fn chain_task(rng: &mut StdRng, name: &str) -> (Spec, String) {
    let pool = ["a", "b", "c", "d"];
    let len = rng.gen_range(2..=3usize);
    let ops = [
        BinaryOp::Add,
        BinaryOp::BitAnd,
        BinaryOp::BitOr,
        BinaryOp::BitXor,
    ];
    let rest: Vec<(BinaryOp, String)> = (0..len)
        .map(|i| {
            (
                ops[rng.gen_range(0..ops.len())],
                pool[(i + 1) % pool.len()].to_string(),
            )
        })
        .collect();
    let expr = describe::chain_expr(pool[0], &rest);
    let words = render_chain_words(pool[0], &rest);
    let mut inputs: Vec<String> = vec![pool[0].to_string()];
    for (_, o) in &rest {
        if !inputs.contains(o) {
            inputs.push(o.clone());
        }
    }
    let width = if rest.iter().any(|(op, _)| *op == BinaryOp::Add) {
        4
    } else {
        1
    };
    let spec = Spec {
        name: name.to_string(),
        inputs: inputs.iter().map(|n| PortSpec::new(n, width)).collect(),
        outputs: vec![PortSpec::new("out", width)],
        behavior: Behavior::Comb(vec![CombRule {
            output: "out".into(),
            expr,
        }]),
        attrs: AttrSpec::default(),
    };
    let prompt = format!(
        "Create a {width}-bit module named `{name}`. The output `out` equals {words}.\n{}",
        describe::header_sentence(&spec)
    );
    (spec, prompt)
}

fn if_chain_task(rng: &mut StdRng, name: &str) -> (Spec, String) {
    let n_arms = rng.gen_range(2..=3usize);
    let arms: Vec<ChainArm> = (0..n_arms)
        .map(|_| ChainArm {
            conditions: vec![
                ("a".into(), u64::from(rng.gen_bool(0.5))),
                ("b".into(), u64::from(rng.gen_bool(0.5))),
            ],
            output_value: u64::from(rng.gen_bool(0.5)),
        })
        .collect();
    let chain = IfChain {
        arms,
        else_value: u64::from(rng.gen_bool(0.5)),
    };
    let expr = chain.to_expr(&|_| 1, 1);
    let spec = Spec {
        name: name.to_string(),
        inputs: vec![PortSpec::bit("a"), PortSpec::bit("b")],
        outputs: vec![PortSpec::bit("out")],
        behavior: Behavior::Comb(vec![CombRule {
            output: "out".into(),
            expr,
        }]),
        attrs: AttrSpec::default(),
    };
    let prompt = format!(
        "Create a module named `{name}`.\n{}\n{}",
        chain.to_text("out"),
        describe::header_sentence(&spec)
    );
    (spec, prompt)
}

fn engineer_prompt(spec: &Spec) -> String {
    describe(spec, DescribeStyle::Engineer)
}

// ---- suite generators ------------------------------------------------------

/// VerilogEval-machine analogue: 143 GPT-style precise tasks, mostly
/// combinational datapath pieces.
pub fn verilog_eval_machine(seed: u64) -> Vec<BenchTask> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0000_6d61_6368);
    let mut tasks = Vec::new();
    for i in 0..143usize {
        let name = format!("m{i:03}");
        let (spec, modality) = match i % 9 {
            0 => (
                builders::gate(
                    &name,
                    [BinaryOp::BitAnd, BinaryOp::BitOr, BinaryOp::BitXor][i / 9 % 3],
                ),
                None,
            ),
            1 => (builders::adder(&name, rng.gen_range(2..=8usize)), None),
            2 => (builders::mux2(&name, rng.gen_range(1..=8usize)), None),
            3 => (builders::comparator(&name, rng.gen_range(2..=6usize)), None),
            4 => (builders::decoder(&name, rng.gen_range(2..=3usize)), None),
            5 => {
                let names = ["a", "b", "c"];
                let expr = random_comb_expr(&mut rng, &names);
                (
                    builders::comb(
                        &name,
                        names.iter().map(|n| PortSpec::bit(*n)).collect(),
                        PortSpec::bit("y"),
                        expr,
                    ),
                    None,
                )
            }
            6 => {
                let mut s = builders::register(&name, rng.gen_range(1..=16usize));
                s.attrs = random_attrs(&mut rng, 0.4);
                (s, None)
            }
            7 => {
                let mut s = builders::counter(&name, rng.gen_range(2..=6usize), None);
                s.attrs = random_attrs(&mut rng, 0.4);
                (s, None)
            }
            _ => (random_truth_table(&mut rng, &name, 2), None),
        };
        let prompt = engineer_prompt(&spec);
        tasks.push(task(
            SuiteKind::VerilogEvalMachine,
            "machine",
            i,
            prompt,
            spec,
            modality,
        ));
    }
    tasks
}

/// VerilogEval-human analogue: 156 engineer-written tasks. The first 44
/// are the symbolic-modality subset of §IV-C (10 truth tables, 13
/// waveforms, 21 state diagrams); the rest mix sequential design tasks
/// with attribute demands and logical-reasoning prompts.
pub fn verilog_eval_human(seed: u64) -> Vec<BenchTask> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0068_756d_616e);
    let mut tasks = Vec::new();
    let mut idx = 0usize;
    let mut push =
        |spec: Spec, prompt: String, modality: Option<ModalityKind>, tasks: &mut Vec<BenchTask>| {
            tasks.push(task(
                SuiteKind::VerilogEvalHuman,
                "human",
                idx,
                prompt,
                spec,
                modality,
            ));
            idx += 1;
        };

    // 10 truth-table tasks.
    for k in 0..10 {
        let spec = random_truth_table(&mut rng, &format!("tt{k}"), 2 + k % 2);
        let prompt = engineer_prompt(&spec);
        push(spec, prompt, Some(ModalityKind::TruthTable), &mut tasks);
    }
    // 13 waveform tasks.
    for k in 0..13 {
        let (spec, prompt) = waveform_task(&mut rng, &format!("wf{k}"), 2 + k % 2);
        push(spec, prompt, Some(ModalityKind::Waveform), &mut tasks);
    }
    // 21 state-diagram tasks.
    for k in 0..21 {
        let spec = random_fsm(&mut rng, &format!("sd{k}"), 2 + k % 3);
        let prompt = engineer_prompt(&spec);
        push(spec, prompt, Some(ModalityKind::StateDiagram), &mut tasks);
    }
    // 112 further engineer tasks.
    for k in 0..112 {
        let name = format!("h{k:03}");
        match k % 8 {
            0 => {
                let width = rng.gen_range(3..=8usize);
                let max_mod = (1u64 << width).min(12);
                let mut s =
                    builders::counter(&name, width, Some(rng.gen_range(5..=max_mod.max(5))));
                s.attrs = random_attrs(&mut rng, 0.9);
                let p = engineer_prompt(&s);
                push(s, p, None, &mut tasks);
            }
            1 => {
                let mut s = builders::shift_register(
                    &name,
                    rng.gen_range(4..=8usize),
                    if rng.gen_bool(0.5) {
                        ShiftDirection::Left
                    } else {
                        ShiftDirection::Right
                    },
                );
                s.attrs = random_attrs(&mut rng, 0.9);
                let p = engineer_prompt(&s);
                push(s, p, None, &mut tasks);
            }
            2 => {
                let mut s = builders::clock_divider(&name, rng.gen_range(2..=6u64));
                s.attrs = random_attrs(&mut rng, 0.9);
                let p = engineer_prompt(&s);
                push(s, p, None, &mut tasks);
            }
            3 => {
                let mut s =
                    builders::pipeline(&name, rng.gen_range(4..=8usize), rng.gen_range(2..=3usize));
                s.attrs = random_attrs(&mut rng, 0.9);
                let p = engineer_prompt(&s);
                push(s, p, None, &mut tasks);
            }
            4 => {
                let ops = [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor];
                let n = rng.gen_range(3..=5usize);
                let s = builders::alu(&name, rng.gen_range(4..=8usize), ops[..n].to_vec());
                let p = engineer_prompt(&s);
                push(s, p, None, &mut tasks);
            }
            5 => {
                let (s, p) = chain_task(&mut rng, &name);
                push(s, p, None, &mut tasks);
            }
            6 => {
                let (s, p) = if_chain_task(&mut rng, &name);
                push(s, p, None, &mut tasks);
            }
            _ => {
                let mut s = builders::down_counter(&name, rng.gen_range(3..=6usize), None);
                s.attrs = random_attrs(&mut rng, 0.9);
                let p = engineer_prompt(&s);
                push(s, p, None, &mut tasks);
            }
        }
    }
    tasks
}

/// The 44-task symbolic subset of §IV-C (Table V): exactly the symbolic
/// tasks of the human suite.
pub fn symbolic44(seed: u64) -> Vec<BenchTask> {
    verilog_eval_human(seed)
        .into_iter()
        .filter(|t| t.modality.is_some())
        .collect()
}

/// RTLLM v1.1 analogue: 29 larger design tasks.
pub fn rtllm(seed: u64) -> Vec<BenchTask> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0072_746c_6c6d);
    let mut tasks = Vec::new();
    for i in 0..29usize {
        let name = format!("r{i:02}");
        let spec = match i % 6 {
            0 => {
                let ops = vec![
                    AluOp::Add,
                    AluOp::Sub,
                    AluOp::And,
                    AluOp::Or,
                    AluOp::Xor,
                    AluOp::NotA,
                    AluOp::ShlA,
                    AluOp::ShrA,
                ];
                builders::alu(&name, rng.gen_range(8..=16usize), ops)
            }
            1 => {
                let mut s = builders::counter(
                    &name,
                    rng.gen_range(8..=12usize),
                    Some(rng.gen_range(50..=100u64)),
                );
                s.attrs = random_attrs(&mut rng, 1.0);
                s
            }
            2 => {
                let mut s = builders::shift_register(
                    &name,
                    rng.gen_range(8..=16usize),
                    ShiftDirection::Right,
                );
                s.attrs = random_attrs(&mut rng, 1.0);
                s
            }
            3 => random_fsm(&mut rng, &name, 4),
            4 => {
                let mut s = builders::pipeline(&name, rng.gen_range(8..=16usize), 3);
                s.attrs = random_attrs(&mut rng, 1.0);
                s
            }
            _ => {
                let mut s = builders::clock_divider(&name, rng.gen_range(4..=10u64));
                s.attrs = random_attrs(&mut rng, 1.0);
                s
            }
        };
        let prompt = engineer_prompt(&spec);
        let modality =
            matches!(spec.behavior, Behavior::Fsm(_)).then_some(ModalityKind::StateDiagram);
        tasks.push(task(SuiteKind::Rtllm, "rtllm", i, prompt, spec, modality));
    }
    tasks
}

/// VerilogEval v2 analogue: the human tasks re-posed as specification-to-
/// RTL chat prompts ("Question: … Answer:").
pub fn verilog_eval_v2(seed: u64) -> Vec<BenchTask> {
    verilog_eval_human(seed)
        .into_iter()
        .enumerate()
        .map(|(i, mut t)| {
            t.id = format!("v2/{i:03}");
            t.suite = SuiteKind::VerilogEvalV2;
            t.prompt = format!("Question:\n{}\nAnswer:", t.prompt);
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use haven_spec::codegen::{emit, EmitStyle};
    use haven_spec::cosim::cosimulate;
    use haven_spec::stimuli::stimuli_for;

    #[test]
    fn suite_sizes_match_the_paper() {
        assert_eq!(verilog_eval_machine(1).len(), 143);
        assert_eq!(verilog_eval_human(1).len(), 156);
        assert_eq!(rtllm(1).len(), 29);
        assert_eq!(verilog_eval_v2(1).len(), 156);
        let s44 = symbolic44(1);
        assert_eq!(s44.len(), 44);
        let count = |k: ModalityKind| s44.iter().filter(|t| t.modality == Some(k)).count();
        assert_eq!(count(ModalityKind::TruthTable), 10);
        assert_eq!(count(ModalityKind::Waveform), 13);
        assert_eq!(count(ModalityKind::StateDiagram), 21);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(verilog_eval_human(7), verilog_eval_human(7));
        assert_ne!(
            verilog_eval_human(7)[50].prompt,
            verilog_eval_human(8)[50].prompt
        );
    }

    /// Reference solutions must pass their own testbenches on every task —
    /// the analogue of the benchmark authors validating golden solutions.
    #[test]
    fn golden_solutions_pass_every_task() {
        let mut all = verilog_eval_machine(1);
        all.extend(verilog_eval_human(1));
        all.extend(rtllm(1));
        for t in &all {
            let src = emit(&t.spec, &EmitStyle::correct());
            let stim = stimuli_for(&t.spec, t.stim_seed);
            let report = cosimulate(&t.spec, &src, &stim);
            assert!(
                report.verdict.functional_ok(),
                "{}: {:?}",
                t.id,
                report.verdict
            );
        }
    }

    /// Every prompt must be faithfully understandable by a perfect model.
    #[test]
    fn prompts_are_perceivable() {
        let mut all = verilog_eval_machine(1);
        all.extend(verilog_eval_human(1));
        all.extend(rtllm(1));
        all.extend(verilog_eval_v2(1));
        for t in &all {
            let p = haven_lm::perception::perceive(&t.prompt)
                .unwrap_or_else(|e| panic!("{}: {e}\n{}", t.id, t.prompt));
            assert_eq!(p.spec.behavior, t.spec.behavior, "{}:\n{}", t.id, t.prompt);
        }
    }

    #[test]
    fn symbolic_tasks_expose_raw_modalities() {
        for t in symbolic44(1) {
            let p = haven_lm::perception::perceive(&t.prompt).unwrap();
            assert!(
                p.has_raw_modality(t.modality.unwrap()),
                "{}: {:?}",
                t.id,
                p.exposures
            );
        }
    }
}
