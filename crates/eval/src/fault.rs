//! Deterministic fault injection for the evaluation harness.
//!
//! A [`FaultPlan`] decides, purely from its seed and the sample's
//! coordinates (task id, temperature, sample index, attempt number),
//! whether the harness should be hit by an injected fault at that site —
//! a worker panic, a starved simulator, or source corruption at the
//! harness boundary. Because the decision is a pure function, a faulted
//! run is exactly reproducible, which is what lets the test suite *prove*
//! properties like "pass@k is invariant under transient faults" instead
//! of sampling them.

use serde::{Deserialize, Serialize};

/// The kinds of infrastructure fault the plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// The worker thread panics mid-sample (absorbed by the harness's
    /// per-sample `catch_unwind`).
    WorkerPanic,
    /// The simulator is starved of resources for this attempt (the
    /// candidate runs under [`haven_spec::cosim::SimBudget::starved`]),
    /// modelling a stalled or preempted worker.
    SimStall,
    /// The candidate's source is corrupted between generation and
    /// compilation (NUL bytes injected), modelling bit-rot at the
    /// harness boundary; the harness's input sanity check catches it.
    SourceCorruption,
}

impl FaultKind {
    /// Display label, used by counters and reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::WorkerPanic => "worker-panic",
            FaultKind::SimStall => "sim-stall",
            FaultKind::SourceCorruption => "source-corruption",
        }
    }
}

/// Serving-layer infrastructure faults, injected by the same seeded
/// [`FaultPlan`] through [`FaultPlan::serve_fault_at`]. A separate enum
/// from [`FaultKind`] on purpose: the eval-harness kinds are pinned by
/// the fault-tolerance acceptance suite, and these model a different
/// layer — the machinery *around* the pipeline (workers, disks, clients)
/// rather than the pipeline's own attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServeFaultKind {
    /// The worker wedges mid-stage (models a lost thread, an OS stall, a
    /// runaway simulation): the per-worker watchdog must detect it,
    /// deliver a typed harness-fault reply, and recycle the worker.
    WorkerHang,
    /// The durable store refuses the write (full disk, yanked volume):
    /// persistence is skipped, counted, and repeated failures push the
    /// server into degraded mode.
    DiskWriteFail,
    /// The durable store's write lands but is silently corrupted after
    /// checksumming: the *next restart's* replay must quarantine it.
    StoreCorruption,
    /// The caller drains its reply slowly (models a congested client
    /// connection): holds the worker longer but must never change the
    /// payload or break accounting.
    SlowClient,
}

impl ServeFaultKind {
    /// Display label, used by counters and reports.
    pub fn label(self) -> &'static str {
        match self {
            ServeFaultKind::WorkerHang => "worker-hang",
            ServeFaultKind::DiskWriteFail => "disk-write-fail",
            ServeFaultKind::StoreCorruption => "store-corruption",
            ServeFaultKind::SlowClient => "slow-client",
        }
    }
}

/// A seeded, deterministic schedule of injected faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the site-hash; two plans with the same seed fault the same
    /// sites.
    pub seed: u64,
    /// Probability that any given sample site is faulted (0.0 ..= 1.0).
    pub rate: f64,
    /// How many consecutive attempts a fault persists at a faulted site.
    /// `1` models transient glitches (one retry clears them);
    /// [`usize::MAX`] models permanent faults that survive every retry.
    pub persist_attempts: usize,
}

impl FaultPlan {
    /// Transient faults: each faulted site fails exactly its first
    /// attempt, so any retry policy with at least one retry clears it.
    pub fn transient(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            rate,
            persist_attempts: 1,
        }
    }

    /// Permanent faults: a faulted site fails every attempt; the harness
    /// quarantines it after the retry budget and counts it.
    pub fn permanent(seed: u64, rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            rate,
            persist_attempts: usize::MAX,
        }
    }

    /// The fault (if any) scheduled for `attempt` of sample
    /// `(task_id, temperature, sample)`. Pure: same arguments, same
    /// answer, forever.
    pub fn fault_at(
        &self,
        task_id: &str,
        temperature: f64,
        sample: usize,
        attempt: usize,
    ) -> Option<FaultKind> {
        if attempt >= self.persist_attempts {
            return None;
        }
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for b in task_id.bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        h = splitmix64(h ^ temperature.to_bits());
        h = splitmix64(h ^ sample as u64);
        // 53 uniform mantissa bits -> [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u >= self.rate {
            return None;
        }
        Some(match h % 3 {
            0 => FaultKind::WorkerPanic,
            1 => FaultKind::SimStall,
            _ => FaultKind::SourceCorruption,
        })
    }

    /// The serving-layer fault (if any) scheduled for `attempt` of the
    /// request site `site` (the serve pipeline uses the generation id —
    /// the content key of the normalized prompt — so the schedule is a
    /// pure function of request *content*, reproducible across runs and
    /// worker counts). Drawn from an independent stream to the eval-layer
    /// [`FaultPlan::fault_at`] so the two schedules never alias.
    pub fn serve_fault_at(&self, site: &str, attempt: usize) -> Option<ServeFaultKind> {
        if attempt >= self.persist_attempts {
            return None;
        }
        let mut h = self.seed ^ 0x7365_7276_655f_6661; // distinct stream tag
        for b in site.bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u >= self.rate {
            return None;
        }
        Some(match h % 4 {
            0 => ServeFaultKind::WorkerHang,
            1 => ServeFaultKind::DiskWriteFail,
            2 => ServeFaultKind::StoreCorruption,
            _ => ServeFaultKind::SlowClient,
        })
    }
}

/// Corrupts `source` the way the [`FaultKind::SourceCorruption`] fault
/// does: deterministic NUL-byte damage that the harness's boundary
/// sanity check is guaranteed to detect.
pub fn corrupt_source(source: &str) -> String {
    let mid = source.len() / 2;
    // Split on a char boundary near the middle.
    let mid = (mid..source.len())
        .find(|&i| source.is_char_boundary(i))
        .unwrap_or(source.len());
    format!("{}\0\0<corrupted>\0{}", &source[..mid], &source[mid..])
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let p = FaultPlan::transient(7, 0.5);
        for sample in 0..50 {
            assert_eq!(
                p.fault_at("human/001", 0.2, sample, 0),
                p.fault_at("human/001", 0.2, sample, 0)
            );
        }
    }

    #[test]
    fn transient_faults_clear_on_retry() {
        let p = FaultPlan::transient(7, 1.0);
        assert!(p.fault_at("t", 0.2, 0, 0).is_some());
        assert_eq!(p.fault_at("t", 0.2, 0, 1), None);
    }

    #[test]
    fn permanent_faults_survive_every_retry() {
        let p = FaultPlan::permanent(7, 1.0);
        for attempt in 0..10 {
            assert!(p.fault_at("t", 0.2, 0, attempt).is_some());
        }
    }

    #[test]
    fn rate_zero_injects_nothing_rate_one_everything() {
        let none = FaultPlan::transient(3, 0.0);
        let all = FaultPlan::transient(3, 1.0);
        for sample in 0..100 {
            assert_eq!(none.fault_at("x", 0.5, sample, 0), None);
            assert!(all.fault_at("x", 0.5, sample, 0).is_some());
        }
    }

    #[test]
    fn moderate_rate_hits_a_plausible_fraction_of_sites() {
        let p = FaultPlan::transient(11, 0.3);
        let hits = (0..1000)
            .filter(|&s| p.fault_at("task", 0.2, s, 0).is_some())
            .count();
        assert!((200..400).contains(&hits), "{hits}");
    }

    #[test]
    fn all_kinds_occur() {
        let p = FaultPlan::permanent(5, 1.0);
        let mut seen = std::collections::HashSet::new();
        for s in 0..64 {
            if let Some(k) = p.fault_at("k", 0.8, s, 0) {
                seen.insert(k);
            }
        }
        assert_eq!(seen.len(), 3, "{seen:?}");
    }

    #[test]
    fn serve_faults_are_deterministic_and_cover_all_kinds() {
        let p = FaultPlan::permanent(5, 1.0);
        let mut seen = std::collections::HashSet::new();
        for s in 0..64 {
            let site = format!("gen-{s}");
            assert_eq!(p.serve_fault_at(&site, 0), p.serve_fault_at(&site, 0));
            if let Some(k) = p.serve_fault_at(&site, 0) {
                seen.insert(k);
            }
        }
        assert_eq!(seen.len(), 4, "{seen:?}");
    }

    #[test]
    fn serve_faults_respect_rate_and_persistence() {
        let none = FaultPlan::transient(3, 0.0);
        let transient = FaultPlan::transient(3, 1.0);
        for s in 0..50 {
            let site = format!("s{s}");
            assert_eq!(none.serve_fault_at(&site, 0), None);
            assert!(transient.serve_fault_at(&site, 0).is_some());
            assert_eq!(transient.serve_fault_at(&site, 1), None, "transient clears");
        }
    }

    #[test]
    fn serve_and_eval_schedules_are_independent_streams() {
        let p = FaultPlan::permanent(7, 0.5);
        // Same seed, same sites: the two draws must not be the same
        // subset of sites (independent streams), which would couple the
        // layers' chaos.
        let eval_hits: Vec<bool> = (0..200)
            .map(|s| p.fault_at(&format!("site{s}"), 0.2, 0, 0).is_some())
            .collect();
        let serve_hits: Vec<bool> = (0..200)
            .map(|s| p.serve_fault_at(&format!("site{s}"), 0).is_some())
            .collect();
        assert_ne!(eval_hits, serve_hits);
    }

    #[test]
    fn corruption_is_detectable_and_deterministic() {
        let src = "module m(input a, output y); assign y = a; endmodule";
        let c = corrupt_source(src);
        assert!(c.contains('\0'));
        assert_eq!(c, corrupt_source(src));
    }
}
