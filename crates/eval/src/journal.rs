//! Crash-tolerant result journaling for resumable suite runs.
//!
//! The harness appends one line per completed `(temperature, task)` to the
//! journal as workers finish, flushing each line, so a run killed mid-sweep
//! loses only its in-flight tasks. [`crate::harness::evaluate_resumable`]
//! replays the journal, re-runs only what is missing, and produces a
//! `SuiteResult` identical to an uninterrupted run.
//!
//! Format: line 1 is a [`JournalHeader`] binding the journal to one
//! (model, suite, config) triple — resuming under a different configuration
//! is refused rather than silently mixing incompatible results. Every
//! further line is a [`JournalEntry`]. Records are tab-separated
//! `key=value` fields closed by a lone `.` sentinel field; a torn final
//! line (the process died mid-write) lacks the sentinel and is ignored on
//! load. Temperatures are stored as exact `f64` bit patterns, so resume
//! matching never depends on decimal round-tripping.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::harness::{EvalError, TaskResult};

/// Magic tag opening every journal header line.
const MAGIC: &str = "haven-journal";
/// Journal format version.
const VERSION: &str = "v1";
/// Sentinel closing every complete record line.
const SENTINEL: &str = ".";

/// Identifies the run a journal belongs to. All fields must match for a
/// resume to be accepted.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalHeader {
    /// Model under evaluation.
    pub model: String,
    /// Samples per task.
    pub n: usize,
    /// Temperature sweep.
    pub temperatures: Vec<f64>,
    /// Order-sensitive fingerprint of the task ids.
    pub suite_fingerprint: u64,
}

impl JournalHeader {
    /// Fingerprints a task-id sequence (order-sensitive FNV-1a).
    pub fn fingerprint(task_ids: impl Iterator<Item = impl AsRef<str>>) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for id in task_ids {
            for b in id.as_ref().bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    fn to_line(&self) -> String {
        let temps: Vec<String> = self
            .temperatures
            .iter()
            .map(|t| format!("{:016x}", t.to_bits()))
            .collect();
        format!(
            "{MAGIC}\t{VERSION}\tmodel={}\tn={}\ttemps={}\tfingerprint={:016x}\t{SENTINEL}",
            escape(&self.model),
            self.n,
            temps.join(","),
            self.suite_fingerprint,
        )
    }

    fn parse_line(line: &str) -> Option<JournalHeader> {
        let fields = split_record(line)?;
        if fields.first().map(String::as_str) != Some(MAGIC)
            || fields.get(1).map(String::as_str) != Some(VERSION)
        {
            return None;
        }
        let get = |key: &str| field(&fields[2..], key);
        let temps = get("temps")?;
        let temperatures: Vec<f64> = if temps.is_empty() {
            Vec::new()
        } else {
            temps
                .split(',')
                .map(|t| u64::from_str_radix(t, 16).ok().map(f64::from_bits))
                .collect::<Option<Vec<f64>>>()?
        };
        Some(JournalHeader {
            model: get("model")?,
            n: get("n")?.parse().ok()?,
            temperatures,
            suite_fingerprint: u64::from_str_radix(&get("fingerprint")?, 16).ok()?,
        })
    }
}

/// One journaled per-task result at one temperature.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Temperature the task ran at.
    pub temperature: f64,
    /// The completed result.
    pub task: TaskResult,
}

impl JournalEntry {
    fn to_line(&self) -> String {
        let t = &self.task;
        format!(
            "t={:016x}\tid={}\tn={}\tsyntax={}\tfunc={}\tskipped={}\tfaults={}\texhausted={}\
             \tretries={}\tdedup={}\tfchecked={}\tfequiv={}\tfrefuted={}\tfunknown={}\t{SENTINEL}",
            self.temperature.to_bits(),
            escape(&t.task_id),
            t.n,
            t.c_syntax,
            t.c_func,
            t.skipped_sims,
            t.faults,
            t.exhausted,
            t.retries,
            t.dedup_hits,
            t.formal_checked,
            t.formal_equivalent,
            t.formal_refuted,
            t.formal_unknown,
        )
    }

    fn parse_line(line: &str) -> Option<JournalEntry> {
        let fields = split_record(line)?;
        let get = |key: &str| field(&fields, key);
        let num = |key: &str| get(key).and_then(|v| v.parse::<usize>().ok());
        Some(JournalEntry {
            temperature: f64::from_bits(u64::from_str_radix(&get("t")?, 16).ok()?),
            task: TaskResult {
                task_id: get("id")?,
                n: num("n")?,
                c_syntax: num("syntax")?,
                c_func: num("func")?,
                skipped_sims: num("skipped")?,
                faults: num("faults")?,
                exhausted: num("exhausted")?,
                retries: num("retries")?,
                // Absent in journals written before the dedup cache
                // existed; those runs had no cache to hit.
                dedup_hits: num("dedup").unwrap_or(0),
                // Likewise for journals predating the formal oracle.
                formal_checked: num("fchecked").unwrap_or(0),
                formal_equivalent: num("fequiv").unwrap_or(0),
                formal_refuted: num("frefuted").unwrap_or(0),
                formal_unknown: num("funknown").unwrap_or(0),
            },
        })
    }
}

/// Splits a record into its unescaped fields, or `None` when the closing
/// sentinel is missing (a torn write).
fn split_record(line: &str) -> Option<Vec<String>> {
    let mut fields: Vec<String> = line.split('\t').map(unescape).collect();
    if fields.last().map(String::as_str) != Some(SENTINEL) {
        return None;
    }
    fields.pop();
    Some(fields)
}

/// Looks up `key=` in a field list.
fn field(fields: &[String], key: &str) -> Option<String> {
    fields
        .iter()
        .find_map(|f| f.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
        .map(str::to_string)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(c) => out.push(c),
            None => out.push('\\'),
        }
    }
    out
}

/// The journal read back from disk.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalContents {
    /// The run this journal belongs to.
    pub header: JournalHeader,
    /// Completed results, keyed by `(temperature bits, task id)`. The
    /// first occurrence wins: a result journaled before a crash beats
    /// anything appended later for the same key.
    pub done: HashMap<(u64, String), TaskResult>,
}

/// Reads a journal, tolerating a torn trailing line. Returns `Ok(None)`
/// when the file does not exist or holds no complete header (a fresh run).
pub fn read_journal(path: &Path) -> Result<Option<JournalContents>, EvalError> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(EvalError::Journal(format!("open {}: {e}", path.display()))),
    };
    let mut lines = BufReader::new(file).lines();
    let header_line = match lines.next() {
        Some(Ok(l)) => l,
        // Empty or unreadable first line: the process died before the
        // header hit the disk. Treat as a fresh run.
        _ => return Ok(None),
    };
    let Some(header) = JournalHeader::parse_line(&header_line) else {
        return Ok(None);
    };
    let mut done = HashMap::new();
    for line in lines {
        let Ok(line) = line else { break };
        // A torn final line fails to parse; everything before it stands.
        let Some(entry) = JournalEntry::parse_line(&line) else {
            break;
        };
        done.entry((entry.temperature.to_bits(), entry.task.task_id.clone()))
            .or_insert(entry.task);
    }
    Ok(Some(JournalContents { header, done }))
}

/// Append-only journal writer shared across worker threads. Each entry is
/// written and flushed atomically under a mutex, so a kill can tear at
/// most the final line.
#[derive(Debug)]
pub struct JournalWriter {
    file: Mutex<BufWriter<File>>,
}

impl JournalWriter {
    /// Opens `path` for appending, writing `header` first if the file is
    /// new (or empty).
    pub fn open(path: &Path, header: &JournalHeader) -> Result<JournalWriter, EvalError> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| EvalError::Journal(format!("open {}: {e}", path.display())))?;
        let fresh = file
            .metadata()
            .map(|m| m.len() == 0)
            .map_err(|e| EvalError::Journal(e.to_string()))?;
        let mut w = BufWriter::new(file);
        if fresh {
            writeln!(w, "{}", header.to_line()).map_err(|e| EvalError::Journal(e.to_string()))?;
            w.flush().map_err(|e| EvalError::Journal(e.to_string()))?;
        }
        Ok(JournalWriter {
            file: Mutex::new(w),
        })
    }

    /// Appends one completed task result and flushes it to disk.
    pub fn append(&self, temperature: f64, task: &TaskResult) {
        let entry = JournalEntry {
            temperature,
            task: task.clone(),
        };
        // A poisoned or failing journal must never take down the run the
        // journal exists to protect; journaling degrades to a no-op.
        if let Ok(mut w) = self.file.lock() {
            let _ = writeln!(w, "{}", entry.to_line());
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("haven-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{name}", std::process::id()))
    }

    fn result(id: &str, c: usize) -> TaskResult {
        TaskResult {
            task_id: id.into(),
            n: 4,
            c_syntax: 4,
            c_func: c,
            skipped_sims: 0,
            faults: 0,
            exhausted: 0,
            retries: 0,
            dedup_hits: 0,
            formal_checked: 2,
            formal_equivalent: 1,
            formal_refuted: 1,
            formal_unknown: 0,
        }
    }

    fn header() -> JournalHeader {
        JournalHeader {
            model: "m".into(),
            n: 4,
            temperatures: vec![0.2],
            suite_fingerprint: JournalHeader::fingerprint(["a", "b"].iter()),
        }
    }

    #[test]
    fn round_trips_entries() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let w = JournalWriter::open(&path, &header()).unwrap();
        w.append(0.2, &result("a", 1));
        w.append(0.2, &result("b", 2));
        drop(w);
        let c = read_journal(&path).unwrap().unwrap();
        assert_eq!(c.header, header());
        assert_eq!(c.done.len(), 2);
        assert_eq!(c.done[&(0.2f64.to_bits(), "b".to_string())], result("b", 2));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn awkward_ids_round_trip() {
        let path = tmp("escape");
        let _ = std::fs::remove_file(&path);
        let id = "weird\tid\\with\nnoise";
        let w = JournalWriter::open(&path, &header()).unwrap();
        w.append(0.8, &result(id, 3));
        drop(w);
        let c = read_journal(&path).unwrap().unwrap();
        assert_eq!(c.done[&(0.8f64.to_bits(), id.to_string())], result(id, 3));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_ignored() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let w = JournalWriter::open(&path, &header()).unwrap();
        w.append(0.2, &result("a", 1));
        drop(w);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        // A record killed mid-write: no closing sentinel.
        write!(f, "t=3fc999999999999a\tid=b\tn=4\tsyntax=4").unwrap();
        drop(f);
        let c = read_journal(&path).unwrap().unwrap();
        assert_eq!(c.done.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_a_fresh_run() {
        assert_eq!(
            read_journal(Path::new("/nonexistent/journal")).unwrap(),
            None
        );
    }

    #[test]
    fn garbage_header_is_a_fresh_run() {
        let path = tmp("garbage");
        std::fs::write(&path, "not a journal\n").unwrap();
        assert_eq!(read_journal(&path).unwrap(), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn first_entry_wins_on_duplicates() {
        let path = tmp("dup");
        let _ = std::fs::remove_file(&path);
        let w = JournalWriter::open(&path, &header()).unwrap();
        w.append(0.2, &result("a", 1));
        w.append(0.2, &result("a", 3));
        drop(w);
        let c = read_journal(&path).unwrap().unwrap();
        assert_eq!(c.done[&(0.2f64.to_bits(), "a".to_string())].c_func, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let a = JournalHeader::fingerprint(["x", "y"].iter());
        let b = JournalHeader::fingerprint(["y", "x"].iter());
        assert_ne!(a, b);
    }

    #[test]
    fn header_line_round_trips() {
        let h = JournalHeader {
            model: "model with spaces\tand tabs".into(),
            n: 10,
            temperatures: vec![0.2, 0.5, 0.8],
            suite_fingerprint: 0xdead_beef,
        };
        assert_eq!(JournalHeader::parse_line(&h.to_line()), Some(h));
    }
}
