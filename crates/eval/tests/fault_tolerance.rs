//! Fault-injection and resumability tests for the evaluation harness —
//! the acceptance suite of the failure model in DESIGN.md:
//!
//! * **transient faults are invisible**: a seeded [`FaultPlan`] whose
//!   faults clear on retry leaves gated pass@k and syntax pass@k
//!   bit-identical to the fault-free run;
//! * **permanent faults degrade gracefully**: the run completes, faulted
//!   samples are counted and attributed per task, and no panic escapes;
//! * **killed runs resume**: a journal truncated mid-sweep (torn tail
//!   included) resumes into the same `SuiteResult` an uninterrupted run
//!   produces.

use std::io::Write;
use std::path::PathBuf;

use haven_eval::fault::FaultPlan;
use haven_eval::harness::{
    evaluate, evaluate_resumable, EvalConfig, EvalError, RetryPolicy, SicotMode,
};
use haven_eval::suites;
use haven_lm::profiles::ModelProfile;

fn small_suite() -> Vec<haven_eval::BenchTask> {
    suites::verilog_eval_machine(1)
        .into_iter()
        .take(10)
        .collect()
}

fn base_cfg() -> EvalConfig {
    EvalConfig {
        n: 4,
        temperatures: vec![0.2, 0.8],
        sicot: SicotMode::Off,
        retry: RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 0,
        },
        ..EvalConfig::default()
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("haven-fault-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{name}.journal", std::process::id()))
}

#[test]
fn transient_faults_leave_passk_invariant() {
    let suite = small_suite();
    let profile = ModelProfile::uniform("mid", 0.6);
    let clean = evaluate(&profile, &suite, &base_cfg()).unwrap();
    let cfg = EvalConfig {
        fault_plan: Some(FaultPlan::transient(0xF00D, 0.5)),
        ..base_cfg()
    };
    let faulted = evaluate(&profile, &suite, &cfg).unwrap();

    // The plan really fired — retries were spent recovering — yet not a
    // single sample was quarantined and every metric is bit-identical.
    assert!(faulted.retries() > 0, "fault plan never fired");
    assert_eq!(faulted.faults(), 0, "transient faults must all recover");
    assert_eq!(clean.best_temperature, faulted.best_temperature);
    assert_eq!(clean.pass_at(1), faulted.pass_at(1));
    assert_eq!(clean.pass_at(4), faulted.pass_at(4));
    assert_eq!(clean.syntax_pass_at(1), faulted.syntax_pass_at(1));
    assert_eq!(clean.skipped_sims(), faulted.skipped_sims());
    for (c, f) in clean.tasks.iter().zip(&faulted.tasks) {
        assert_eq!(c.task_id, f.task_id);
        assert_eq!(c.c_syntax, f.c_syntax, "{}", c.task_id);
        assert_eq!(c.c_func, f.c_func, "{}", c.task_id);
        assert_eq!(c.skipped_sims, f.skipped_sims, "{}", c.task_id);
        assert_eq!(c.exhausted, f.exhausted, "{}", c.task_id);
    }
}

#[test]
fn transient_fault_runs_are_reproducible() {
    let suite = small_suite();
    let profile = ModelProfile::uniform("mid", 0.6);
    let cfg = EvalConfig {
        fault_plan: Some(FaultPlan::transient(0xBEEF, 0.4)),
        ..base_cfg()
    };
    let a = evaluate(&profile, &suite, &cfg).unwrap();
    let b = evaluate(&profile, &suite, &cfg).unwrap();
    assert_eq!(a, b, "same seed, same faults, same result — bit for bit");
}

#[test]
fn permanent_faults_degrade_gracefully() {
    let suite = small_suite();
    let profile = ModelProfile::uniform("mid", 0.6);
    let clean = evaluate(&profile, &suite, &base_cfg()).unwrap();
    let cfg = EvalConfig {
        fault_plan: Some(FaultPlan::permanent(0xF00D, 0.5)),
        ..base_cfg()
    };
    // No panic escapes; the suite completes with every task present.
    let r = evaluate(&profile, &suite, &cfg).unwrap();
    assert_eq!(r.tasks.len(), suite.len());

    // Permanent faults are quarantined and *counted*, per task.
    let quarantined = r.faults() + r.exhausted();
    assert!(quarantined > 0, "permanent plan never fired");
    for t in &r.tasks {
        assert_eq!(t.n, 4);
        assert!(
            t.c_func + t.faults <= t.n && t.c_syntax + t.faults <= t.n,
            "{t:?}"
        );
    }
    // Quarantined samples count as failures, never as passes: the score
    // can only degrade, and the retry budget is bounded (2 retries per
    // faulted sample at 3 attempts).
    assert!(r.pass_at(1) <= clean.pass_at(1));
    assert!(r.retries() <= 2 * 4 * suite.len());
}

#[test]
fn worker_panics_never_abort_the_suite() {
    // Rate 1.0: every sample of every task faults on every attempt, a
    // third of them as raw worker panics. The harness must still return
    // a complete, fully-attributed result.
    let suite = small_suite();
    let cfg = EvalConfig {
        fault_plan: Some(FaultPlan::permanent(7, 1.0)),
        ..base_cfg()
    };
    let r = evaluate(&ModelProfile::uniform("perfect", 1.0), &suite, &cfg).unwrap();
    assert_eq!(r.tasks.len(), suite.len());
    assert_eq!(r.pass_at(1), 0.0);
    for t in &r.tasks {
        assert_eq!(
            t.faults + t.exhausted,
            t.n,
            "every sample must be quarantined: {t:?}"
        );
    }
}

#[test]
fn resumable_run_matches_uninterrupted_run() {
    let suite = small_suite();
    let profile = ModelProfile::uniform("mid", 0.6);
    let cfg = base_cfg();
    let uninterrupted = evaluate(&profile, &suite, &cfg).unwrap();

    // A full resumable run from scratch agrees with plain evaluate.
    let path = tmp("full");
    let _ = std::fs::remove_file(&path);
    let full = evaluate_resumable(&profile, &suite, &cfg, &path).unwrap();
    assert_eq!(full, uninterrupted);

    // Simulate a kill mid-sweep: keep the header and the first three
    // completed entries, then tear the last line mid-write.
    let text = std::fs::read_to_string(&path).unwrap();
    let mut lines = text.lines();
    let mut truncated: Vec<&str> = Vec::new();
    truncated.push(lines.next().unwrap());
    truncated.extend(lines.take(3));
    std::fs::write(&path, format!("{}\n", truncated.join("\n"))).unwrap();
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    write!(f, "t=3fc999999999999a\tid=torn").unwrap();
    drop(f);

    let resumed = evaluate_resumable(&profile, &suite, &cfg, &path).unwrap();
    assert_eq!(
        resumed, uninterrupted,
        "resume from a torn partial journal must reproduce the run"
    );

    // And resuming the now-complete journal is also stable.
    let again = evaluate_resumable(&profile, &suite, &cfg, &path).unwrap();
    assert_eq!(again, uninterrupted);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_under_transient_faults_still_matches() {
    let suite = small_suite();
    let profile = ModelProfile::uniform("mid", 0.6);
    let cfg = EvalConfig {
        fault_plan: Some(FaultPlan::transient(0xABCD, 0.5)),
        ..base_cfg()
    };
    let clean = evaluate(&profile, &suite, &base_cfg()).unwrap();
    let path = tmp("faulted-resume");
    let _ = std::fs::remove_file(&path);
    let r = evaluate_resumable(&profile, &suite, &cfg, &path).unwrap();
    assert_eq!(r.pass_at(1), clean.pass_at(1));
    assert_eq!(r.syntax_pass_at(1), clean.syntax_pass_at(1));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mismatched_journal_is_refused() {
    let suite = small_suite();
    let profile = ModelProfile::uniform("mid", 0.6);
    let path = tmp("mismatch");
    let _ = std::fs::remove_file(&path);
    evaluate_resumable(&profile, &suite, &base_cfg(), &path).unwrap();

    // Same journal, different sample count: refuse, don't mix.
    let other = EvalConfig { n: 7, ..base_cfg() };
    let err = evaluate_resumable(&profile, &suite, &other, &path).unwrap_err();
    assert!(
        matches!(err, EvalError::JournalMismatch { .. }),
        "expected a journal mismatch, got {err:?}"
    );

    // Different task suite (order matters for the fingerprint): refuse.
    let mut reordered = suite.clone();
    reordered.reverse();
    let err = evaluate_resumable(&profile, &reordered, &base_cfg(), &path).unwrap_err();
    assert!(matches!(err, EvalError::JournalMismatch { .. }));
    let _ = std::fs::remove_file(&path);
}
