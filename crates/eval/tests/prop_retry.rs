//! Property: under a fixed [`FaultPlan`] seed, the retry policy and
//! panic-isolation machinery make suite results a pure function of the
//! configuration — the worker-pool size must never show through.
//!
//! The workspace's `proptest` is a compile-only stub, so the property is
//! exercised as a deterministic grid sweep over (plan kind, seed, rate) ×
//! thread counts — every case actually runs, every run is reproducible,
//! and a violation pins the exact (seed, rate, threads) triple.

use haven_eval::fault::FaultPlan;
use haven_eval::harness::{evaluate, EvalConfig, RetryPolicy, SicotMode};
use haven_eval::suites;
use haven_lm::profiles::ModelProfile;

fn suite() -> Vec<haven_eval::BenchTask> {
    suites::verilog_eval_machine(3)
        .into_iter()
        .take(8)
        .collect()
}

fn cfg(threads: usize, plan: Option<FaultPlan>) -> EvalConfig {
    EvalConfig {
        n: 3,
        temperatures: vec![0.2, 0.8],
        sicot: SicotMode::Off,
        threads,
        retry: RetryPolicy {
            max_attempts: 3,
            backoff_base_ms: 0,
        },
        fault_plan: plan,
        ..EvalConfig::default()
    }
}

#[test]
fn suite_results_are_invariant_across_worker_pool_sizes() {
    let profile = ModelProfile::uniform("prop-mid", 0.55);
    let tasks = suite();
    let plans: Vec<Option<FaultPlan>> = vec![
        None,
        Some(FaultPlan::transient(0x0001, 0.3)),
        Some(FaultPlan::transient(0xBEEF, 0.9)),
        Some(FaultPlan::permanent(0x0001, 0.3)),
        Some(FaultPlan::permanent(0xFEED, 0.7)),
    ];
    for plan in plans {
        let reference = evaluate(&profile, &tasks, &cfg(1, plan.clone())).unwrap();
        for threads in [2, 4, 7] {
            let result = evaluate(&profile, &tasks, &cfg(threads, plan.clone())).unwrap();
            assert_eq!(
                reference, result,
                "plan {plan:?}: results diverged between 1 and {threads} workers"
            );
        }
    }
}

#[test]
fn permanent_fault_attribution_is_reproducible_run_to_run() {
    // Same seed, same config, fresh harness each time: the quarantined
    // fault counts must land on exactly the same tasks. (Panic isolation
    // involves catch_unwind and thread scheduling; none of it may leak
    // into results.)
    let profile = ModelProfile::uniform("prop-rerun", 0.6);
    let tasks = suite();
    let plan = Some(FaultPlan::permanent(0xD00D, 0.6));
    let first = evaluate(&profile, &tasks, &cfg(4, plan.clone())).unwrap();
    let faults: usize = first.tasks.iter().map(|t| t.faults).sum();
    assert!(faults > 0, "rate 0.6 must quarantine some samples");
    for _ in 0..3 {
        assert_eq!(
            first,
            evaluate(&profile, &tasks, &cfg(4, plan.clone())).unwrap()
        );
    }
}

#[test]
fn retry_budget_size_does_not_change_what_transient_faults_hide() {
    // Any retry budget >= 2 attempts fully absorbs transient faults
    // (persist_attempts = 1), so results must match the fault-free run
    // for every such budget.
    let profile = ModelProfile::uniform("prop-retry", 0.5);
    let tasks = suite();
    let clean = evaluate(&profile, &tasks, &cfg(2, None)).unwrap();
    for max_attempts in [2, 3, 5] {
        let config = EvalConfig {
            retry: RetryPolicy {
                max_attempts,
                backoff_base_ms: 0,
            },
            ..cfg(2, Some(FaultPlan::transient(0xCAFE, 0.8)))
        };
        let faulted = evaluate(&profile, &tasks, &config).unwrap();
        assert_eq!(
            clean.pass_at(1),
            faulted.pass_at(1),
            "max_attempts={max_attempts}"
        );
        assert_eq!(clean.syntax_pass_at(1), faulted.syntax_pass_at(1));
        let retries: usize = faulted.tasks.iter().map(|t| t.retries).sum();
        assert!(retries > 0, "rate 0.8 must actually burn retries");
    }
}
