//! # haven-hash
//!
//! The one place content keys are computed. Two caches in this workspace
//! are keyed by hashed text — the eval harness's per-task verdict
//! memoizer (`haven-eval`, DESIGN.md §10) and the serving layer's
//! verified-response cache (`haven-serve`, DESIGN.md §11) — and they must
//! agree forever on what "the same content" means, or a cached verdict in
//! one layer could silently disagree with the other. Both call
//! [`content_key`]; neither defines its own hash.
//!
//! This crate sits below every other workspace member on purpose: the
//! `haven` façade crate (`crates/core`) depends on `haven-eval`, so a
//! helper that `haven-eval` itself must call cannot live there — it lives
//! here and is re-exported by the façade.
//!
//! The hash is FNV-1a/64, written out longhand so the key is a *stable
//! function of the bytes*: unlike `std`'s `DefaultHasher`, whose
//! algorithm is explicitly unspecified across releases, these keys can be
//! journaled, compared across processes, and embedded in on-disk caches.
//! FNV is not collision-resistant against adversaries; these keys gate
//! *memoization* (a collision re-serves a deterministic response for the
//! wrong request, it does not corrupt a verdict that is re-derivable), so
//! speed and stability win over cryptographic strength.

#![warn(missing_docs)]

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a/64 hasher over byte chunks.
///
/// Multi-part keys must be built with [`ContentHasher::part`] (or the
/// [`content_key`] convenience), which length-prefixes every part so that
/// `["ab", "c"]` and `["a", "bc"]` produce different keys.
#[derive(Debug, Clone, Copy)]
pub struct ContentHasher {
    state: u64,
}

impl Default for ContentHasher {
    fn default() -> ContentHasher {
        ContentHasher::new()
    }
}

impl ContentHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> ContentHasher {
        ContentHasher { state: FNV_OFFSET }
    }

    /// Absorbs raw bytes (no framing).
    pub fn bytes(mut self, bytes: &[u8]) -> ContentHasher {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a length-prefixed part, so part boundaries are unambiguous.
    pub fn part(self, part: &str) -> ContentHasher {
        self.bytes(&(part.len() as u64).to_le_bytes())
            .bytes(part.as_bytes())
    }

    /// Absorbs a `u64` (little-endian).
    pub fn word(self, word: u64) -> ContentHasher {
        self.bytes(&word.to_le_bytes())
    }

    /// The 64-bit key.
    pub fn finish(self) -> u64 {
        self.state
    }
}

/// Stable 64-bit key of a sequence of length-prefixed string parts.
///
/// This is the workspace's canonical content key: the eval memoizer calls
/// it with `[source]`, the serve cache with `[normalized prompt, model
/// fingerprint, ...]`.
pub fn content_key(parts: &[&str]) -> u64 {
    parts
        .iter()
        .fold(ContentHasher::new(), |h, p| h.part(p))
        .finish()
}

/// Lower-case 16-digit hex rendering of a key, for ids and logs.
pub fn hex16(key: u64) -> String {
    format!("{key:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_across_calls_and_pinned() {
        assert_eq!(content_key(&["abc"]), content_key(&["abc"]));
        // Pinned value: if this assertion ever fails, the hash function
        // changed and every persisted key in the workspace is invalid.
        assert_eq!(content_key(&[]), FNV_OFFSET);
        assert_eq!(
            ContentHasher::new().bytes(b"a").finish(),
            0xaf63_dc4c_8601_ec8c
        );
    }

    #[test]
    fn part_boundaries_matter() {
        assert_ne!(content_key(&["ab", "c"]), content_key(&["a", "bc"]));
        assert_ne!(content_key(&["abc"]), content_key(&["abc", ""]));
        assert_ne!(content_key(&["", "abc"]), content_key(&["abc", ""]));
    }

    #[test]
    fn content_changes_change_the_key() {
        let base = content_key(&["module m(); endmodule"]);
        assert_ne!(base, content_key(&["module n(); endmodule"]));
        assert_ne!(base, content_key(&["module m();  endmodule"]));
    }

    #[test]
    fn hex_rendering_is_fixed_width() {
        assert_eq!(hex16(0).len(), 16);
        assert_eq!(hex16(0xff), "00000000000000ff");
    }

    #[test]
    fn word_and_bytes_compose() {
        let a = ContentHasher::new().word(7).part("x").finish();
        let b = ContentHasher::new().word(7).part("x").finish();
        assert_eq!(a, b);
        assert_ne!(a, ContentHasher::new().word(8).part("x").finish());
    }
}
