//! The hallucination taxonomy of paper §II (Table II), with the mapping
//! onto the simulated model's skill channels.

use haven_lm::skills::Channel;
use serde::{Deserialize, Serialize};

/// Top-level hallucination classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HallucinationClass {
    /// Misreading symbols, diagrams and tabular formats.
    Symbolic,
    /// Missing domain knowledge (conventions, syntax, attributes).
    Knowledge,
    /// Failures of logical reasoning.
    Logical,
}

/// The nine sub-types of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HallucinationType {
    /// State-diagram misinterpretation ("A and B should be reversed").
    StateDiagramMisinterpretation,
    /// Waveform-chart misinterpretation.
    WaveformMisinterpretation,
    /// Truth-table misinterpretation.
    TruthTableMisinterpretation,
    /// Digital-design-convention misapplication (`state = a + b`).
    ConventionMisapplication,
    /// Verilog syntax misapplication (`def adder_4bit()`).
    SyntaxMisapplication,
    /// Misunderstanding Verilog-specific attributes (sync vs async reset).
    AttributeMisunderstanding,
    /// Incorrect logical expression (`(a + c) & b` for "(a+b) | c").
    IncorrectExpression,
    /// Incorrect handling of corner cases (missing `default`).
    CornerCaseMishandling,
    /// Failure to adhere to instructional logic (`&&` read as `||`).
    InstructionalInfidelity,
}

impl HallucinationType {
    /// All sub-types, in Table II order.
    pub const ALL: [HallucinationType; 9] = [
        HallucinationType::StateDiagramMisinterpretation,
        HallucinationType::WaveformMisinterpretation,
        HallucinationType::TruthTableMisinterpretation,
        HallucinationType::ConventionMisapplication,
        HallucinationType::SyntaxMisapplication,
        HallucinationType::AttributeMisunderstanding,
        HallucinationType::IncorrectExpression,
        HallucinationType::CornerCaseMishandling,
        HallucinationType::InstructionalInfidelity,
    ];

    /// The top-level class of this sub-type.
    pub fn class(self) -> HallucinationClass {
        match self {
            HallucinationType::StateDiagramMisinterpretation
            | HallucinationType::WaveformMisinterpretation
            | HallucinationType::TruthTableMisinterpretation => HallucinationClass::Symbolic,
            HallucinationType::ConventionMisapplication
            | HallucinationType::SyntaxMisapplication
            | HallucinationType::AttributeMisunderstanding => HallucinationClass::Knowledge,
            HallucinationType::IncorrectExpression
            | HallucinationType::CornerCaseMishandling
            | HallucinationType::InstructionalInfidelity => HallucinationClass::Logical,
        }
    }

    /// The simulated model's skill channel that governs this sub-type.
    pub fn channel(self) -> Channel {
        match self {
            HallucinationType::StateDiagramMisinterpretation => Channel::SymbolStateDiagram,
            HallucinationType::WaveformMisinterpretation => Channel::SymbolWaveform,
            HallucinationType::TruthTableMisinterpretation => Channel::SymbolTruthTable,
            HallucinationType::ConventionMisapplication => Channel::KnowledgeConvention,
            HallucinationType::SyntaxMisapplication => Channel::KnowledgeSyntax,
            HallucinationType::AttributeMisunderstanding => Channel::KnowledgeAttributes,
            HallucinationType::IncorrectExpression => Channel::LogicExpression,
            HallucinationType::CornerCaseMishandling => Channel::LogicCornerCase,
            HallucinationType::InstructionalInfidelity => Channel::LogicInstruction,
        }
    }

    /// Which HaVen technique mitigates this sub-type.
    pub fn mitigation(self) -> &'static str {
        match self.class() {
            HallucinationClass::Symbolic => "SI-CoT (symbolic interpretation chain-of-thought)",
            HallucinationClass::Knowledge => "K-dataset fine-tuning",
            HallucinationClass::Logical => "L-dataset fine-tuning",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_subtype_has_distinct_channel() {
        let channels: std::collections::HashSet<Channel> =
            HallucinationType::ALL.iter().map(|t| t.channel()).collect();
        assert_eq!(channels.len(), 9);
    }

    #[test]
    fn classes_partition_into_three_by_three() {
        for class in [
            HallucinationClass::Symbolic,
            HallucinationClass::Knowledge,
            HallucinationClass::Logical,
        ] {
            let n = HallucinationType::ALL
                .iter()
                .filter(|t| t.class() == class)
                .count();
            assert_eq!(n, 3, "{class:?}");
        }
    }

    #[test]
    fn mitigations_follow_the_paper() {
        assert!(HallucinationType::TruthTableMisinterpretation
            .mitigation()
            .contains("SI-CoT"));
        assert!(HallucinationType::AttributeMisunderstanding
            .mitigation()
            .contains("K-dataset"));
        assert!(HallucinationType::CornerCaseMishandling
            .mitigation()
            .contains("L-dataset"));
    }
}
