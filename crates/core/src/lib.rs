//! # haven
//!
//! A full reproduction of **"HaVen: Hallucination-Mitigated LLM for
//! Verilog Code Generation Aligned with HDL Engineers"** (DATE 2025) as a
//! Rust workspace — see `DESIGN.md` for the system inventory and the
//! substitutions made for GPU training and proprietary data.
//!
//! This crate is the façade:
//!
//! * [`taxonomy`] — the paper's hallucination taxonomy (Table II);
//! * [`pipeline::Haven`] — SI-CoT prompt refinement in front of a
//!   KL-fine-tuned CodeGen-LLM (Fig. 1);
//! * [`experiments`] — runners for every table and figure of §IV.
//!
//! The substrates live in their own crates and are re-exported here:
//! [`haven_verilog`] (frontend + four-state simulator), [`haven_spec`]
//! (hardware-intent IR, golden models, co-simulation), [`haven_modality`]
//! (truth tables / waveforms / state diagrams), [`haven_lm`] (the
//! simulated CodeGen-LLM), [`haven_sicot`] (SI-CoT), [`haven_datagen`]
//! (K/L dataset flow) and [`haven_eval`] (benchmarks + pass@k harness).
//!
//! ## Quickstart
//!
//! ```
//! use haven::Haven;
//! use haven_lm::profiles;
//!
//! let flow = haven_datagen::run(&haven_datagen::FlowConfig::small(1));
//! let haven = Haven::train(profiles::base_deepseek(), &flow, 0.2);
//! let code = haven.generate(
//!     "Implement the truth table below\na b out\n0 0 0\n0 1 0\n1 0 0\n1 1 1\n\
//!      The module header is: `module and_gate (input a, input b, output out);`",
//!     "quickstart",
//!     0,
//! );
//! assert!(code.contains("module and_gate"));
//! ```

#![warn(missing_docs)]

pub mod diagnose;
pub mod experiments;
pub mod pipeline;
pub mod taxonomy;

pub use diagnose::{diagnose, Diagnosis};
pub use experiments::{Scale, Suites};
pub use pipeline::{train_default_models, Haven};
pub use taxonomy::{HallucinationClass, HallucinationType};

// Re-export the substrate crates under their full names.
pub use haven_datagen;
pub use haven_eval;
pub use haven_hash;
pub use haven_lm;
pub use haven_modality;
pub use haven_sicot;
pub use haven_spec;
pub use haven_verilog;
