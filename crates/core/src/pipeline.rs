//! The HaVen framework façade (paper Fig. 1): a *CoT prompting model*
//! refines user prompts through SI-CoT, then a fine-tuned *CodeGen-LLM*
//! produces Verilog.

use haven_datagen::{Dataset, FlowConfig, FlowOutput};
use haven_lm::finetune::finetune;
use haven_lm::model::CodeGenModel;
use haven_lm::profiles::ModelProfile;
use haven_sicot::{RefinedPrompt, SiCot};

/// A complete HaVen deployment: SI-CoT refinement in front of a
/// KL-fine-tuned CodeGen-LLM.
///
/// # Examples
///
/// ```
/// use haven::Haven;
/// use haven_lm::profiles;
///
/// // Tiny dataset for the doctest; real runs use FlowConfig::default().
/// let flow = haven_datagen::run(&haven_datagen::FlowConfig::small(1));
/// let haven = Haven::train(profiles::base_codeqwen(), &flow, 0.2);
/// let code = haven.generate(
///     "Implement a 4-bit up counter named `cnt` with output `q`.\n\
///      Use an asynchronous active-low reset named `rst_n`.\n\
///      The module header is: `module cnt (input clk, input rst_n, output [3:0] q);`",
///     "demo", 0,
/// );
/// assert!(code.contains("module cnt"));
/// ```
#[derive(Debug, Clone)]
pub struct Haven {
    sicot: SiCot,
    codegen: CodeGenModel,
}

impl Haven {
    /// Assembles the pipeline around an already-tuned profile. Per the
    /// paper, "we use the same pre-trained models for both CoT prompting
    /// model and CodeGen-LLM".
    pub fn new(profile: ModelProfile, temperature: f64) -> Haven {
        let codegen = CodeGenModel::new(profile, temperature);
        Haven {
            sicot: SiCot::new(codegen.clone()),
            codegen,
        }
    }

    /// Fine-tunes `base` on the flow's shuffled KL-dataset and assembles
    /// the pipeline — the full HaVen recipe.
    pub fn train(base: ModelProfile, flow: &FlowOutput, temperature: f64) -> Haven {
        let kl = flow.kl_dataset(KL_SHUFFLE_SEED);
        Haven::new(finetune(&base, &kl.train_samples()), temperature)
    }

    /// Fine-tunes on an explicit dataset (ablation experiments).
    pub fn train_on(base: ModelProfile, dataset: &Dataset, temperature: f64) -> Haven {
        Haven::new(finetune(&base, &dataset.train_samples()), temperature)
    }

    /// The tuned CodeGen-LLM.
    pub fn model(&self) -> &CodeGenModel {
        &self.codegen
    }

    /// The tuned profile.
    pub fn profile(&self) -> &ModelProfile {
        &self.codegen.profile
    }

    /// Runs SI-CoT only (for inspection).
    pub fn refine(&self, prompt: &str, task_id: &str) -> RefinedPrompt {
        self.sicot.refine(prompt, task_id)
    }

    /// End-to-end generation: SI-CoT refinement, then code generation.
    pub fn generate(&self, prompt: &str, task_id: &str, sample: usize) -> String {
        let refined = self.sicot.refine(prompt, task_id);
        self.codegen.generate(&refined.text, task_id, sample)
    }
}

/// Builds the default KL flow and the three HaVen models of Table IV.
pub fn train_default_models(temperature: f64) -> (FlowOutput, Vec<Haven>) {
    let flow = haven_datagen::run(&FlowConfig::default());
    let models = vec![
        Haven::train(haven_lm::profiles::base_codellama(), &flow, temperature),
        Haven::train(haven_lm::profiles::base_deepseek(), &flow, temperature),
        Haven::train(haven_lm::profiles::base_codeqwen(), &flow, temperature),
    ];
    (flow, models)
}

/// Seed for the KL-dataset shuffle (deterministic reproduction).
pub const KL_SHUFFLE_SEED: u64 = 0x4b4c;

#[cfg(test)]
mod tests {
    use super::*;
    use haven_lm::profiles;
    use haven_lm::skills::Channel;

    #[test]
    fn training_improves_on_the_base() {
        let flow = haven_datagen::run(&FlowConfig::small(5));
        let base = profiles::base_codeqwen();
        let haven = Haven::train(base.clone(), &flow, 0.2);
        assert!(haven.profile().name.starts_with("HaVen-"));
        assert!(
            haven.profile().skills.channel(Channel::KnowledgeAttributes)
                > base.skills.channel(Channel::KnowledgeAttributes)
        );
        assert!(
            haven.profile().skills.channel(Channel::LogicExpression)
                > base.skills.channel(Channel::LogicExpression)
        );
    }

    #[test]
    fn generate_refines_then_emits() {
        let haven = Haven::new(profiles::ModelProfile::uniform("perfect", 1.0), 0.2);
        let prompt = "Implement the finite state machine named `fsm` described by the state diagram below, using the conventional three-process FSM style.\nA[out=0]-[x=0]->B\nA[out=0]-[x=1]->A\nB[out=1]-[x=0]->A\nB[out=1]-[x=1]->B\nUse an asynchronous active-low reset named `rst_n`.\nThe module header is: `module fsm (input clk, input rst_n, input x, output out);`";
        let refined = haven.refine(prompt, "t");
        assert!(refined.text.contains("States&Outputs:"));
        let code = haven.generate(prompt, "t", 0);
        assert!(code.contains("module fsm"));
        assert!(code.contains("next_state"));
    }
}
