//! Reusable experiment runners — one per paper table/figure. The
//! `haven-bench` binaries are thin wrappers that print these results.

use haven_datagen::{Dataset, FlowConfig, FlowOutput};
use haven_eval::harness::{evaluate, EvalConfig, SicotMode, SuiteResult};
use haven_eval::suites::{self, BenchTask};
use haven_lm::finetune::finetune;
use haven_lm::profiles::{self, ModelProfile};
use haven_modality::detect::ModalityKind;
use serde::{Deserialize, Serialize};

/// How big to run an experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Samples per task.
    pub n: usize,
    /// Temperature sweep.
    pub temperatures: Vec<f64>,
    /// Cap on tasks per suite (`None` = full suite).
    pub task_limit: Option<usize>,
    /// Dataset flow configuration.
    pub flow: FlowConfig,
}

impl Scale {
    /// The paper's protocol: n = 10, temperatures {0.2, 0.5, 0.8}, full
    /// suites, full (1:100) dataset flow.
    pub fn full() -> Scale {
        Scale {
            n: 10,
            temperatures: vec![0.2, 0.5, 0.8],
            task_limit: None,
            flow: FlowConfig::default(),
        }
    }

    /// A fast configuration for tests and Criterion benches.
    pub fn quick() -> Scale {
        Scale {
            n: 3,
            temperatures: vec![0.2],
            task_limit: Some(20),
            flow: FlowConfig::small(7),
        }
    }

    fn config(&self, sicot: SicotMode) -> EvalConfig {
        EvalConfig {
            n: self.n,
            temperatures: self.temperatures.clone(),
            sicot,
            ..EvalConfig::default()
        }
    }

    fn cap<T>(&self, mut v: Vec<T>) -> Vec<T> {
        if let Some(limit) = self.task_limit {
            v.truncate(limit);
        }
        v
    }
}

/// The benchmark seed used across all experiments.
pub const SUITE_SEED: u64 = 2025;

/// All experiment configs come from [`Scale::config`], which always
/// produces a valid harness configuration; a harness error here is a bug.
fn run(profile: &ModelProfile, tasks: &[BenchTask], cfg: &EvalConfig) -> SuiteResult {
    evaluate(profile, tasks, cfg).expect("experiment eval configs are valid by construction")
}

/// All suites, generated once.
#[derive(Debug, Clone)]
pub struct Suites {
    /// VerilogEval-machine analogue.
    pub machine: Vec<BenchTask>,
    /// VerilogEval-human analogue.
    pub human: Vec<BenchTask>,
    /// RTLLM analogue.
    pub rtllm: Vec<BenchTask>,
    /// VerilogEval v2 analogue.
    pub v2: Vec<BenchTask>,
    /// The 44-task symbolic subset.
    pub symbolic: Vec<BenchTask>,
}

impl Suites {
    /// Generates all suites at the canonical seed, capped by `scale`.
    pub fn generate(scale: &Scale) -> Suites {
        Suites {
            machine: scale.cap(suites::verilog_eval_machine(SUITE_SEED)),
            human: scale.cap(suites::verilog_eval_human(SUITE_SEED)),
            rtllm: scale.cap(suites::rtllm(SUITE_SEED)),
            v2: scale.cap(suites::verilog_eval_v2(SUITE_SEED)),
            symbolic: scale.cap(suites::symbolic44(SUITE_SEED)),
        }
    }
}

// ---- Table IV -------------------------------------------------------------

/// One row of Table IV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Model name.
    pub model: String,
    /// Open-source flag.
    pub open_source: bool,
    /// Size label.
    pub size: String,
    /// Group label (General LLM / CodeGen LLM / LLM for Verilog / Ours).
    pub group: &'static str,
    /// VerilogEval-machine pass@1 / pass@5.
    pub machine: (f64, f64),
    /// VerilogEval-human pass@1 / pass@5.
    pub human: (f64, f64),
    /// RTLLM syntax pass@5 / functional pass@5.
    pub rtllm: (f64, f64),
    /// VerilogEval v2 pass@1 / pass@5.
    pub v2: (f64, f64),
}

/// A model entry for the main comparison.
pub struct Contender {
    /// Profile to evaluate.
    pub profile: ModelProfile,
    /// Whether it deploys SI-CoT (the HaVen rows).
    pub sicot: bool,
    /// Row group.
    pub group: &'static str,
}

/// The paper's baseline roster (Table IV rows 1–17).
pub fn baseline_roster() -> Vec<Contender> {
    let g = "General LLM";
    let c = "CodeGen LLM";
    let v = "LLM for Verilog";
    let mk = |p: ModelProfile, group| Contender {
        profile: p,
        sicot: false,
        group,
    };
    vec![
        mk(profiles::gpt35(), g),
        mk(profiles::gpt4(), g),
        mk(profiles::starcoder(), c),
        mk(profiles::base_codellama(), c),
        mk(profiles::base_deepseek(), c),
        mk(profiles::base_codeqwen(), c),
        mk(profiles::chipnemo(), v),
        mk(profiles::thakur(), v),
        mk(profiles::rtlcoder_mistral(), v),
        mk(profiles::rtlcoder_deepseek(), v),
        mk(profiles::betterv_codellama(), v),
        mk(profiles::betterv_deepseek(), v),
        mk(profiles::betterv_codeqwen(), v),
        mk(profiles::autovcoder_codellama(), v),
        mk(profiles::autovcoder_deepseek(), v),
        mk(profiles::autovcoder_codeqwen(), v),
        mk(profiles::origen(), v),
    ]
}

/// The three HaVen contenders, trained on the flow's KL-dataset.
pub fn haven_roster(flow: &FlowOutput) -> Vec<Contender> {
    let kl = flow.kl_dataset(crate::pipeline::KL_SHUFFLE_SEED);
    let samples = kl.train_samples();
    [
        profiles::base_codellama(),
        profiles::base_deepseek(),
        profiles::base_codeqwen(),
    ]
    .into_iter()
    .map(|base| Contender {
        profile: finetune(&base, &samples),
        sicot: true,
        group: "Ours",
    })
    .collect()
}

/// Evaluates one contender across all four benchmarks.
pub fn table4_row(contender: &Contender, suites: &Suites, scale: &Scale) -> Table4Row {
    let mode = if contender.sicot {
        SicotMode::SelfRefine
    } else {
        SicotMode::Off
    };
    let cfg = scale.config(mode);
    let machine = run(&contender.profile, &suites.machine, &cfg);
    let human = run(&contender.profile, &suites.human, &cfg);
    let rtllm = run(&contender.profile, &suites.rtllm, &cfg);
    let v2 = run(&contender.profile, &suites.v2, &cfg);
    let k5 = scale.n.min(5);
    Table4Row {
        model: contender.profile.name.clone(),
        open_source: contender.profile.open_source,
        size: contender.profile.size.clone(),
        group: contender.group,
        machine: (machine.pass_at(1), machine.pass_at(k5)),
        human: (human.pass_at(1), human.pass_at(k5)),
        rtllm: (rtllm.syntax_pass_at(k5), rtllm.pass_at(k5)),
        v2: (v2.pass_at(1), v2.pass_at(k5)),
    }
}

// ---- Table V ---------------------------------------------------------------

/// One row of Table V.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    /// Model name.
    pub model: String,
    /// (passes, total) per modality.
    pub truth_table: (usize, usize),
    /// Waveform results.
    pub waveform: (usize, usize),
    /// State-diagram results.
    pub state_diagram: (usize, usize),
    /// Overall pass@1 (percent).
    pub overall: f64,
}

/// Evaluates a model on the 44 symbolic tasks, split per modality.
pub fn table5_row(
    profile: &ModelProfile,
    sicot: bool,
    suites: &Suites,
    scale: &Scale,
) -> Table5Row {
    let mode = if sicot {
        SicotMode::SelfRefine
    } else {
        SicotMode::Off
    };
    let cfg = scale.config(mode);
    let result = run(profile, &suites.symbolic, &cfg);
    let ids_of = |kind: ModalityKind| -> Vec<&str> {
        suites
            .symbolic
            .iter()
            .filter(|t| t.modality == Some(kind))
            .map(|t| t.id.as_str())
            .collect()
    };
    let part =
        |kind: ModalityKind| -> (usize, usize) { result.filtered(&ids_of(kind)).pass_counts() };
    Table5Row {
        model: profile.name.clone(),
        truth_table: part(ModalityKind::TruthTable),
        waveform: part(ModalityKind::Waveform),
        state_diagram: part(ModalityKind::StateDiagram),
        overall: result.pass_at(1),
    }
}

// ---- Table VI ---------------------------------------------------------------

/// One column of Table VI: a commercial model with and without SI-CoT
/// instructions produced by the base CodeQwen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table6Entry {
    /// Model name.
    pub model: String,
    /// pass@1 without SI-CoT (percent).
    pub without: f64,
    /// pass@1 with CodeQwen-produced SI-CoT instructions (percent).
    pub with: f64,
}

/// Runs the Table VI protocol for one commercial model.
pub fn table6_entry(profile: &ModelProfile, suites: &Suites, scale: &Scale) -> Table6Entry {
    let plain = run(profile, &suites.symbolic, &scale.config(SicotMode::Off));
    let refined = run(
        profile,
        &suites.symbolic,
        &scale.config(SicotMode::External(profiles::base_codeqwen())),
    );
    Table6Entry {
        model: profile.name.clone(),
        without: plain.pass_at(1),
        with: refined.pass_at(1),
    }
}

// ---- Fig. 3 -----------------------------------------------------------------

/// The five ablation settings of Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AblationSetting {
    /// Original pre-trained LLM.
    Base,
    /// Fine-tuned on the vanilla dataset only.
    Vanilla,
    /// Vanilla fine-tune + SI-CoT prompting.
    VanillaCot,
    /// Fine-tuned on vanilla + KL.
    VanillaKl,
    /// Vanilla + KL fine-tune + SI-CoT (the full HaVen).
    VanillaCotKl,
}

impl AblationSetting {
    /// All settings in Fig. 3 order.
    pub const ALL: [AblationSetting; 5] = [
        AblationSetting::Base,
        AblationSetting::Vanilla,
        AblationSetting::VanillaCot,
        AblationSetting::VanillaKl,
        AblationSetting::VanillaCotKl,
    ];

    /// Fig. 3 legend label.
    pub fn label(self) -> &'static str {
        match self {
            AblationSetting::Base => "Base",
            AblationSetting::Vanilla => "Vanilla",
            AblationSetting::VanillaCot => "Vanilla+CoT",
            AblationSetting::VanillaKl => "Vanilla+KL",
            AblationSetting::VanillaCotKl => "Vanilla+CoT+KL",
        }
    }
}

/// One Fig. 3 measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationPoint {
    /// Base model.
    pub base: String,
    /// Setting.
    pub setting: AblationSetting,
    /// pass@1 / pass@5 on VerilogEval-human (percent).
    pub pass1: f64,
    /// pass@5.
    pub pass5: f64,
}

/// Runs one ablation cell.
pub fn ablation_point(
    base: &ModelProfile,
    setting: AblationSetting,
    flow: &FlowOutput,
    suites: &Suites,
    scale: &Scale,
) -> AblationPoint {
    use AblationSetting::*;
    let vanilla = flow.vanilla.train_samples();
    let kl = flow.kl_dataset(crate::pipeline::KL_SHUFFLE_SEED);
    let mut vanilla_kl = flow.vanilla.clone();
    vanilla_kl.extend(kl.pairs.iter().cloned());

    let profile = match setting {
        Base => base.clone(),
        Vanilla | VanillaCot => finetune(base, &vanilla),
        VanillaKl | VanillaCotKl => finetune(base, &vanilla_kl.train_samples()),
    };
    let mode = match setting {
        VanillaCot | VanillaCotKl => SicotMode::SelfRefine,
        _ => SicotMode::Off,
    };
    let result = run(&profile, &suites.human, &scale.config(mode));
    AblationPoint {
        base: base.name.clone(),
        setting,
        pass1: result.pass_at(1),
        pass5: result.pass_at(scale.n.min(5)),
    }
}

// ---- Fig. 4 ------------------------------------------------------------------

/// One Fig. 4 grid cell: a {0, 50, 100}% mix of K and L data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompositionPoint {
    /// Fraction of the K-dataset used (0.0 / 0.5 / 1.0).
    pub k_fraction: f64,
    /// Fraction of the L-dataset used.
    pub l_fraction: f64,
    /// pass@1 on VerilogEval-human (percent).
    pub pass1: f64,
    /// pass@5.
    pub pass5: f64,
}

/// Runs one composition cell on CodeQwen (the paper's Fig. 4 base model).
pub fn composition_point(
    k_fraction: f64,
    l_fraction: f64,
    flow: &FlowOutput,
    suites: &Suites,
    scale: &Scale,
) -> CompositionPoint {
    let k = flow.k_dataset.take_fraction(k_fraction);
    let l = flow.l_dataset.take_fraction(l_fraction);
    let mut data = flow.vanilla.clone();
    data.extend(Dataset::combine_shuffled(&[&k, &l], 0x4b4c).pairs);
    let profile = finetune(&profiles::base_codeqwen(), &data.train_samples());
    let result = run(&profile, &suites.human, &scale.config(SicotMode::Off));
    CompositionPoint {
        k_fraction,
        l_fraction,
        pass1: result.pass_at(1),
        pass5: result.pass_at(scale.n.min(5)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale {
            n: 2,
            temperatures: vec![0.2],
            task_limit: Some(10),
            flow: FlowConfig::small(3),
        }
    }

    #[test]
    fn table4_row_produces_percentages() {
        let scale = tiny_scale();
        let suites = Suites::generate(&scale);
        let row = table4_row(
            &Contender {
                profile: profiles::gpt4(),
                sicot: false,
                group: "General LLM",
            },
            &suites,
            &scale,
        );
        for v in [
            row.machine.0,
            row.machine.1,
            row.human.0,
            row.human.1,
            row.rtllm.0,
            row.rtllm.1,
            row.v2.0,
            row.v2.1,
        ] {
            assert!((0.0..=100.0).contains(&v), "{row:?}");
        }
        assert!(row.machine.1 >= row.machine.0);
    }

    #[test]
    fn table5_row_counts_sum_to_suite() {
        let scale = Scale {
            task_limit: None,
            ..tiny_scale()
        };
        let suites = Suites::generate(&scale);
        let row = table5_row(&profiles::deepseek_coder_v2(), false, &suites, &scale);
        assert_eq!(row.truth_table.1, 10);
        assert_eq!(row.waveform.1, 13);
        assert_eq!(row.state_diagram.1, 21);
    }

    #[test]
    fn ablation_and_composition_run() {
        let scale = tiny_scale();
        let suites = Suites::generate(&scale);
        let flow = haven_datagen::run(&scale.flow);
        let p = ablation_point(
            &profiles::base_codeqwen(),
            AblationSetting::VanillaCotKl,
            &flow,
            &suites,
            &scale,
        );
        assert!(p.pass1 >= 0.0);
        let c = composition_point(0.5, 1.0, &flow, &suites, &scale);
        assert!(c.pass1 >= 0.0);
    }
}
