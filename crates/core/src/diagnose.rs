//! Post-mortem failure attribution: given a failed candidate, decide which
//! hallucination class (and, where possible, sub-type) produced it.
//!
//! This is the executable counterpart of the paper's Table II "error
//! analysis" column: the original presents hand-classified examples; here
//! the classification is computed from the artifacts — the verdict, the
//! candidate's AST, its lint report and its attribute analysis versus the
//! golden spec.

use std::sync::{Arc, OnceLock};

use haven_engine::{Artifact, Engine, EngineOptions, SimBackend};
use haven_modality::detect::ModalityKind;
use haven_spec::cosim::Verdict;
use haven_spec::ir::Behavior;
use haven_spec::Spec;
use haven_verilog::analyze::{analyze, ResetKind};
use haven_verilog::lint::{lint_module, LintRule};
use haven_verilog::parser::parse;
use haven_verilog::sim::SimBudget;
use serde::{Deserialize, Serialize};

use crate::taxonomy::{HallucinationClass, HallucinationType};

/// Shared engine for post-mortem static analysis. Diagnosis runs over
/// sweep outputs where the same failing source recurs (several verdict
/// arms below consult the analyzer), so a small artifact cache turns the
/// repeat compiles into lookups.
fn analysis_engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(|| {
        Engine::new(EngineOptions {
            backend: SimBackend::Interpreter,
            budget: SimBudget::default(),
            cache_capacity: 64,
            ..EngineOptions::default()
        })
    })
}

/// Compile-and-analyze through the engine; `None` when the source does
/// not elaborate (the caller already holds a more specific verdict).
fn static_artifact(source: &str) -> Option<Arc<Artifact>> {
    analysis_engine().prepare(source).ok()
}

/// The attribution for one failed sample.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// Best-guess sub-type, when the evidence pins one down.
    pub hallucination: Option<HallucinationType>,
    /// Top-level class (present whenever `hallucination` is, and
    /// sometimes when only the class is determinable).
    pub class: Option<HallucinationClass>,
    /// Human-readable evidence trail.
    pub evidence: Vec<String>,
}

impl Diagnosis {
    fn of(t: HallucinationType, evidence: Vec<String>) -> Diagnosis {
        Diagnosis {
            hallucination: Some(t),
            class: Some(t.class()),
            evidence,
        }
    }

    fn class_only(c: HallucinationClass, evidence: Vec<String>) -> Diagnosis {
        Diagnosis {
            hallucination: None,
            class: Some(c),
            evidence,
        }
    }

    fn unknown(evidence: Vec<String>) -> Diagnosis {
        Diagnosis {
            hallucination: None,
            class: None,
            evidence,
        }
    }
}

/// Attributes a failed sample to a hallucination class.
///
/// `modality` is the symbolic modality the task was posed in, if any —
/// functional mismatches on symbolic tasks default to the symbolic class
/// when no knowledge-level evidence overrides them.
pub fn diagnose(
    spec: &Spec,
    source: &str,
    verdict: &Verdict,
    modality: Option<ModalityKind>,
) -> Diagnosis {
    match verdict {
        Verdict::Pass => Diagnosis::unknown(vec!["sample passed".into()]),
        Verdict::SyntaxError(msg) => Diagnosis::of(
            HallucinationType::SyntaxMisapplication,
            vec![format!("compiler rejected the code: {msg}")],
        ),
        Verdict::InterfaceError(msg) => Diagnosis::class_only(
            HallucinationClass::Knowledge,
            vec![format!(
                "module interface does not match the requested header: {msg}"
            )],
        ),
        Verdict::SimulationError(msg) => {
            let mut evidence = vec![format!("runtime failure: {msg}")];
            // A simulation that never settles usually means a combinational
            // loop; the dataflow analyzer can prove it.
            if let Some(artifact) = static_artifact(source) {
                if let Some(f) = artifact
                    .report
                    .findings
                    .iter()
                    .find(|f| f.rule == haven_verilog::analyze_static::StaticRule::CombLoop)
                {
                    evidence.push(format!(
                        "static analysis: [{}] {}",
                        f.rule.code(),
                        f.message
                    ));
                    return Diagnosis::of(HallucinationType::ConventionMisapplication, evidence);
                }
            }
            Diagnosis::class_only(HallucinationClass::Knowledge, evidence)
        }
        Verdict::FunctionalMismatch { detail, .. } => {
            diagnose_functional(spec, source, detail, modality)
        }
        Verdict::ResourceExhausted(msg) => {
            let mut evidence = vec![format!("resource budget exhausted: {msg}")];
            // A candidate that burns its budget without settling usually
            // hides a combinational loop or a runaway always-block; when
            // the dataflow analyzer can prove the loop, attribute it.
            if let Some(artifact) = static_artifact(source) {
                if let Some(f) = artifact
                    .report
                    .findings
                    .iter()
                    .find(|f| f.rule == haven_verilog::analyze_static::StaticRule::CombLoop)
                {
                    evidence.push(format!(
                        "static analysis: [{}] {}",
                        f.rule.code(),
                        f.message
                    ));
                    return Diagnosis::of(HallucinationType::ConventionMisapplication, evidence);
                }
            }
            Diagnosis::class_only(HallucinationClass::Logical, evidence)
        }
        // A harness fault says nothing about the candidate; attributing it
        // to the model would corrupt the Table II histogram.
        Verdict::HarnessFault(msg) => {
            Diagnosis::unknown(vec![format!("harness fault, not attributable: {msg}")])
        }
    }
}

fn diagnose_functional(
    spec: &Spec,
    source: &str,
    detail: &str,
    modality: Option<ModalityKind>,
) -> Diagnosis {
    let mut evidence = vec![format!("functional mismatch: {detail}")];
    let Ok(file) = parse(source) else {
        return Diagnosis::of(HallucinationType::SyntaxMisapplication, evidence);
    };
    let Some(module) = file.modules.first() else {
        return Diagnosis::of(HallucinationType::SyntaxMisapplication, evidence);
    };
    let analysis = analyze(module);

    // 1. Attribute-level evidence: reset kind / clock edge / enable.
    if spec.behavior.is_sequential() {
        let wanted_reset = spec.attrs.reset.as_ref().map(|r| r.kind);
        let got_reset = analysis.attributes.reset;
        let reset_differs = match (wanted_reset, got_reset) {
            (Some(w), Some(g)) => w.is_async() != g.is_async() || async_polarity_differs(w, g),
            (Some(_), None) => true,
            _ => false,
        };
        if reset_differs {
            evidence.push(format!(
                "reset style differs: spec {wanted_reset:?}, code {got_reset:?}"
            ));
            return Diagnosis::of(HallucinationType::AttributeMisunderstanding, evidence);
        }
        if let Some(edge) = analysis.attributes.clock_edge {
            if edge != spec.attrs.edge {
                evidence.push(format!(
                    "clock edge differs: spec {:?}, code {edge:?}",
                    spec.attrs.edge
                ));
                return Diagnosis::of(HallucinationType::AttributeMisunderstanding, evidence);
            }
        }
        if detail.contains("at clk-low") {
            evidence.push("divergence at the inactive clock phase".into());
            return Diagnosis::of(HallucinationType::AttributeMisunderstanding, evidence);
        }
    }

    // 1b. Dataflow-level evidence: an Error-severity static finding proves
    // a structural defect, and each rule carries its own Table II
    // attribution (see `StaticRule::taxonomy`).
    if let Some(artifact) = static_artifact(source) {
        if let Some(f) = artifact
            .report
            .findings
            .iter()
            .find(|f| f.severity == haven_verilog::analyze_static::Severity::Error)
        {
            if let Some(t) = hallucination_from_hint(f.rule.taxonomy()) {
                evidence.push(format!(
                    "static analysis: [{}] {}",
                    f.rule.code(),
                    f.message
                ));
                return Diagnosis::of(t, evidence);
            }
        }
    }

    // 2. Convention-level evidence from lint.
    let issues = lint_module(module);
    for issue in &issues {
        match issue.rule {
            LintRule::BlockingInSequential | LintRule::IncompleteSensitivity => {
                evidence.push(format!("lint: {}", issue.message));
                return Diagnosis::of(HallucinationType::ConventionMisapplication, evidence);
            }
            LintRule::CaseMissingDefault | LintRule::InferredLatch => {
                evidence.push(format!("lint: {}", issue.message));
                return Diagnosis::of(HallucinationType::CornerCaseMishandling, evidence);
            }
            LintRule::MissingReset if spec.attrs.reset.is_some() => {
                evidence.push(format!("lint: {}", issue.message));
                return Diagnosis::of(HallucinationType::ConventionMisapplication, evidence);
            }
            _ => {}
        }
    }

    // 2b. FSM convention: a Moore output written inside an edge-triggered
    // block (registered output — one cycle late) violates the
    // three-process convention even when lint-clean.
    if matches!(spec.behavior, Behavior::Fsm(_)) {
        let mut seq_writes = Vec::new();
        for item in &module.items {
            if let haven_verilog::ast::Item::Always {
                sensitivity: haven_verilog::ast::Sensitivity::Edges(_),
                body,
                ..
            } = item
            {
                body.collect_writes(&mut seq_writes);
            }
        }
        if spec.outputs.iter().any(|o| seq_writes.contains(&o.name)) {
            evidence.push("Moore output is registered in the clocked block".into());
            return Diagnosis::of(HallucinationType::ConventionMisapplication, evidence);
        }
    }

    // 3. Symbolic tasks with none of the above: the interpretation itself
    // was wrong.
    if let Some(kind) = modality {
        evidence.push(format!(
            "task was posed as a {} and the structure is convention-clean",
            kind.label()
        ));
        let t = match kind {
            ModalityKind::TruthTable => HallucinationType::TruthTableMisinterpretation,
            ModalityKind::Waveform => HallucinationType::WaveformMisinterpretation,
            ModalityKind::StateDiagram => HallucinationType::StateDiagramMisinterpretation,
        };
        return Diagnosis::of(t, evidence);
    }

    // 4. Combinational specs that parse clean: a wrong expression.
    if matches!(spec.behavior, Behavior::Comb(_)) {
        evidence.push("combinational task with convention-clean code".into());
        return Diagnosis::of(HallucinationType::IncorrectExpression, evidence);
    }

    Diagnosis::class_only(HallucinationClass::Logical, evidence)
}

/// Maps a `StaticRule::taxonomy` hint (spelled like a
/// [`HallucinationType`] variant, so `haven-verilog` needs no dependency
/// on this crate) back to the typed taxonomy.
fn hallucination_from_hint(hint: &str) -> Option<HallucinationType> {
    Some(match hint {
        "StateDiagramMisinterpretation" => HallucinationType::StateDiagramMisinterpretation,
        "WaveformMisinterpretation" => HallucinationType::WaveformMisinterpretation,
        "TruthTableMisinterpretation" => HallucinationType::TruthTableMisinterpretation,
        "ConventionMisapplication" => HallucinationType::ConventionMisapplication,
        "SyntaxMisapplication" => HallucinationType::SyntaxMisapplication,
        "AttributeMisunderstanding" => HallucinationType::AttributeMisunderstanding,
        "IncorrectExpression" => HallucinationType::IncorrectExpression,
        "CornerCaseMishandling" => HallucinationType::CornerCaseMishandling,
        "InstructionalInfidelity" => HallucinationType::InstructionalInfidelity,
        _ => return None,
    })
}

fn async_polarity_differs(want: ResetKind, got: ResetKind) -> bool {
    matches!(
        (want, got),
        (ResetKind::AsyncActiveLow, ResetKind::AsyncActiveHigh)
            | (ResetKind::AsyncActiveHigh, ResetKind::AsyncActiveLow)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use haven_spec::builders;
    use haven_spec::codegen::{emit, EmitStyle};
    use haven_spec::cosim::cosimulate;
    use haven_spec::stimuli::stimuli_for;

    fn run(spec: &Spec, src: &str) -> Verdict {
        cosimulate(spec, src, &stimuli_for(spec, 5)).verdict
    }

    #[test]
    fn python_code_is_syntax_misapplication() {
        let spec = builders::adder("a", 4);
        let v = run(&spec, "def adder(a, b): return a + b");
        let d = diagnose(&spec, "def adder(a, b): return a + b", &v, None);
        assert_eq!(
            d.hallucination,
            Some(HallucinationType::SyntaxMisapplication)
        );
    }

    #[test]
    fn wrong_reset_style_is_attribute_misunderstanding() {
        let spec = builders::counter("c", 4, None); // async rst_n
        let src = emit(
            &spec,
            &EmitStyle {
                reset_kind_override: Some(ResetKind::Sync),
                ..EmitStyle::correct()
            },
        );
        let v = run(&spec, &src);
        let d = diagnose(&spec, &src, &v, None);
        assert_eq!(
            d.hallucination,
            Some(HallucinationType::AttributeMisunderstanding),
            "{d:?}"
        );
    }

    #[test]
    fn wrong_edge_is_attribute_misunderstanding() {
        use haven_verilog::ast::Edge;
        let spec = builders::counter("c", 4, None);
        let src = emit(
            &spec,
            &EmitStyle {
                edge_override: Some(Edge::Neg),
                ..EmitStyle::correct()
            },
        );
        let v = run(&spec, &src);
        let d = diagnose(&spec, &src, &v, None);
        assert_eq!(
            d.hallucination,
            Some(HallucinationType::AttributeMisunderstanding),
            "{d:?}"
        );
    }

    #[test]
    fn blocking_pipeline_is_convention_misapplication() {
        let spec = builders::pipeline("p", 4, 2);
        let src = emit(
            &spec,
            &EmitStyle {
                nonblocking_in_seq: false,
                ..EmitStyle::correct()
            },
        );
        let v = run(&spec, &src);
        let d = diagnose(&spec, &src, &v, None);
        assert_eq!(
            d.hallucination,
            Some(HallucinationType::ConventionMisapplication),
            "{d:?}"
        );
    }

    #[test]
    fn wrong_gate_is_incorrect_expression() {
        let spec = builders::gate("g", haven_verilog::ast::BinaryOp::BitAnd);
        let src = "module g(input a, input b, output y);\n    assign y = a | b;\nendmodule";
        let v = run(&spec, src);
        let d = diagnose(&spec, src, &v, None);
        assert_eq!(
            d.hallucination,
            Some(HallucinationType::IncorrectExpression)
        );
    }

    #[test]
    fn symbolic_task_failure_attributes_to_modality() {
        // A truth-table task implemented convention-clean but wrong.
        let spec = builders::truth_table_spec(
            "t",
            vec!["a".into(), "b".into()],
            vec!["out".into()],
            vec![(0, 0), (1, 0), (2, 0), (3, 1)],
        );
        let wrong = builders::truth_table_spec(
            "t",
            vec!["a".into(), "b".into()],
            vec!["out".into()],
            vec![(0, 1), (1, 0), (2, 0), (3, 1)],
        );
        let src = emit(&wrong, &EmitStyle::correct());
        let v = run(&spec, &src);
        let d = diagnose(&spec, &src, &v, Some(ModalityKind::TruthTable));
        assert_eq!(
            d.hallucination,
            Some(HallucinationType::TruthTableMisinterpretation),
            "{d:?}"
        );
    }

    #[test]
    fn overlapping_drivers_attribute_via_static_analysis() {
        // Elaboration admits partially-overlapping slice assigns; only the
        // dataflow analyzer proves bits 1..=2 of `s` are double-driven.
        let spec = builders::adder("a", 4);
        let src = "module a(input [3:0] a, input [3:0] b, output [3:0] s);\n    assign s[2:0] = a[2:0] + b[2:0];\n    assign s[3:1] = a[3:1];\nendmodule";
        let v = run(&spec, src);
        assert!(matches!(v, Verdict::FunctionalMismatch { .. }), "{v:?}");
        let d = diagnose(&spec, src, &v, None);
        assert_eq!(
            d.hallucination,
            Some(HallucinationType::ConventionMisapplication),
            "{d:?}"
        );
        assert!(
            d.evidence.iter().any(|e| e.contains("SA-MULTIDRIVE")),
            "{d:?}"
        );
    }

    #[test]
    fn unsettled_simulation_attributes_to_comb_loop() {
        // Signals power up as `x` (a fixpoint of any loop), so the ring
        // must escape it via an input before it actually oscillates.
        let spec = builders::adder("a", 4);
        let src = "module a(input [3:0] a, input [3:0] b, output [3:0] s);\n    wire [3:0] p;\n    assign p = ~s;\n    assign s = ((a | b) != 4'd0) ? p : 4'd0;\nendmodule";
        let v = run(&spec, src);
        assert!(matches!(v, Verdict::SimulationError(_)), "{v:?}");
        let d = diagnose(&spec, src, &v, None);
        assert_eq!(
            d.hallucination,
            Some(HallucinationType::ConventionMisapplication),
            "{d:?}"
        );
        assert!(
            d.evidence.iter().any(|e| e.contains("SA-COMBLOOP")),
            "{d:?}"
        );
    }

    #[test]
    fn renamed_port_is_knowledge_class() {
        let spec = builders::adder("a", 4);
        let src = "module a(input [3:0] x, input [3:0] y, output [3:0] s);\n    assign s = x + y;\nendmodule";
        let v = run(&spec, src);
        let d = diagnose(&spec, src, &v, None);
        assert_eq!(d.class, Some(HallucinationClass::Knowledge));
        assert_eq!(d.hallucination, None);
    }

    #[test]
    fn passing_sample_is_not_diagnosed() {
        let spec = builders::adder("a", 4);
        let src = emit(&spec, &EmitStyle::correct());
        let v = run(&spec, &src);
        let d = diagnose(&spec, &src, &v, None);
        assert_eq!(d.class, None);
    }
}

#[cfg(test)]
mod registered_output_tests {
    use super::*;
    use haven_lm::hallucinate::{ConventionVariant, GenPlan};
    use haven_spec::builders;
    use haven_spec::cosim::cosimulate;
    use haven_spec::stimuli::stimuli_for;

    #[test]
    fn registered_fsm_output_is_convention_misapplication() {
        let spec = builders::fsm_ab("f");
        let plan = GenPlan {
            variant: ConventionVariant::RegisteredFsmOutput,
            ..GenPlan::faithful(spec.clone())
        };
        let src = haven_lm::generate::render(&plan);
        let v = cosimulate(&spec, &src, &stimuli_for(&spec, 3)).verdict;
        let d = diagnose(&spec, &src, &v, None);
        assert_eq!(
            d.hallucination,
            Some(HallucinationType::ConventionMisapplication),
            "{d:?}"
        );
    }
}
