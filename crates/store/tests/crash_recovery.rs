//! Kill-9 crash recovery: the acceptance test for the durability layer.
//!
//! The parent test re-spawns this test binary as a child process (the
//! hidden `#[ignore]`d writer entries below, selected by environment
//! variable), lets it commit entries as fast as it can, and SIGKILLs it
//! mid-write — no atexit handlers, no flush, no mercy. Reopening the
//! store/log afterwards must recover every committed entry, sweep or
//! quarantine anything torn, and never panic. This exercises the real
//! crash path rather than asserting durability by construction.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use haven_store::{ObjectStore, Wal};

const CHILD_ENV: &str = "HAVEN_STORE_CRASH_CHILD";
const DIR_ENV: &str = "HAVEN_STORE_CRASH_DIR";

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("haven-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn payload_for(i: u64) -> Vec<u8> {
    // Deterministic, variable-length, recomputable by the parent.
    format!(
        "module crash_{i}(); // {}\nendmodule\n",
        "x".repeat((i % 97) as usize)
    )
    .into_bytes()
}

/// Spawns this test binary re-running `entry` with the writer env set.
fn spawn_writer(entry: &str, dir: &std::path::Path) -> Child {
    Command::new(std::env::current_exe().unwrap())
        .args([entry, "--ignored", "--exact", "--nocapture"])
        .env(CHILD_ENV, entry)
        .env(DIR_ENV, dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn crash-writer child")
}

fn fs_count_obj(dir: &std::path::Path) -> usize {
    std::fs::read_dir(dir)
        .map(|d| {
            d.filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == "obj"))
                .count()
        })
        .unwrap_or(0)
}

fn wait_for<F: Fn() -> bool>(what: &str, cond: F) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

// ---------------------------------------------------------------------
// Hidden child entries: infinite writer loops, killed by the parent.
// Without the env var they are skipped no-ops (and `--ignored` keeps
// them out of normal runs anyway).
// ---------------------------------------------------------------------

#[test]
#[ignore = "crash-writer child entry, spawned by the parent tests"]
fn child_object_writer() {
    if std::env::var(CHILD_ENV).as_deref() != Ok("child_object_writer") {
        return;
    }
    let store = ObjectStore::open(std::env::var_os(DIR_ENV).unwrap()).unwrap();
    for i in 0u64.. {
        let _ = store.put(i, &payload_for(i));
    }
}

#[test]
#[ignore = "crash-writer child entry, spawned by the parent tests"]
fn child_wal_writer() {
    if std::env::var(CHILD_ENV).as_deref() != Ok("child_wal_writer") {
        return;
    }
    let dir: PathBuf = std::env::var_os(DIR_ENV).unwrap().into();
    let (mut wal, _) = Wal::open(dir.join("log.wal")).unwrap();
    for i in 0u64.. {
        let _ = wal.append(&payload_for(i));
    }
}

// ---------------------------------------------------------------------
// Parent tests.
// ---------------------------------------------------------------------

#[test]
fn kill9_mid_object_writes_recovers_every_committed_entry() {
    let dir = fresh_dir("objects");
    let mut child = spawn_writer("child_object_writer", &dir);
    // Let it commit a healthy number of entries, then SIGKILL mid-write.
    // (Passive poll: opening the store here would sweep the child's
    // in-flight .tmp file out from under its rename.)
    wait_for("25 committed objects", || fs_count_obj(&dir) >= 25);
    child.kill().expect("SIGKILL the writer");
    child.wait().unwrap();

    let store = ObjectStore::open(&dir).expect("reopen after kill -9 must not fail");
    let entries = store.scan();
    assert!(
        entries.len() >= 25,
        "committed entries lost: {}",
        entries.len()
    );
    // Every recovered entry must be bit-exact: the committed payloads are
    // a deterministic function of the key, so recompute and compare.
    for entry in &entries {
        assert_eq!(
            entry.payload,
            payload_for(entry.key),
            "entry {} must be bit-identical after recovery",
            entry.key
        );
    }
    // Keys are committed in order; the committed set must be a prefix
    // (no holes): entry k durable implies entries 0..k durable.
    let mut keys: Vec<u64> = entries.iter().map(|e| e.key).collect();
    keys.sort_unstable();
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(*k, i as u64, "committed keys must form a gapless prefix");
    }
    // Whatever the kill tore mid-write was swept, not served.
    assert_eq!(store.scan().len(), entries.len(), "rescan must be stable");
}

#[test]
fn kill9_mid_wal_appends_recovers_the_committed_prefix() {
    let dir = fresh_dir("wal");
    let path = dir.join("log.wal");
    let mut child = spawn_writer("child_wal_writer", &dir);
    wait_for("a few KiB of wal", || {
        std::fs::metadata(&path)
            .map(|m| m.len() > 4096)
            .unwrap_or(false)
    });
    child.kill().expect("SIGKILL the writer");
    child.wait().unwrap();

    let (_, replay) = Wal::open(&path).expect("reopen after kill -9 must not fail");
    assert!(replay.records.len() >= 25, "committed frames lost");
    for (i, record) in replay.records.iter().enumerate() {
        assert_eq!(
            record,
            &payload_for(i as u64),
            "frame {i} must be bit-identical after recovery"
        );
    }
    // A second open sees a clean, truncated log: same records, no tear.
    let (_, again) = Wal::open(&path).unwrap();
    assert_eq!(again.records, replay.records);
    assert!(!again.torn_tail, "recovery must have truncated the tear");
}
