//! Fuzz-style corruption coverage: truncate an on-disk entry at every
//! length and flip every byte, one mutation at a time. The store must
//! never panic, never serve a payload that fails its checksum, and must
//! quarantine each invalid file so the next read is an honest miss.

use std::fs;
use std::path::PathBuf;

use haven_store::{ObjectStore, Wal};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("haven-corrupt-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

const PAYLOAD: &[u8] = b"module quarantine_me(input a, output y); assign y = a; endmodule";

#[test]
fn truncation_at_every_length_is_quarantined_never_served() {
    let dir = fresh_dir("truncate");
    let store = ObjectStore::open(&dir).unwrap();
    store.put(42, PAYLOAD).unwrap();
    let path = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "obj"))
        .unwrap();
    let pristine = fs::read(&path).unwrap();

    for len in 0..pristine.len() {
        fs::write(&path, &pristine[..len]).unwrap();
        assert_eq!(
            store.get(42),
            None,
            "truncation to {len} bytes must read as a miss"
        );
        assert!(
            !path.exists(),
            "truncated file (len {len}) must be quarantined"
        );
        // Restore for the next mutation.
        fs::write(&path, &pristine).unwrap();
    }
    assert_eq!(
        store.get(42).as_deref(),
        Some(PAYLOAD),
        "pristine file still serves"
    );
    assert_eq!(store.stats().quarantined, pristine.len() as u64);
}

#[test]
fn single_bit_flip_at_every_byte_is_quarantined_never_wrong() {
    let dir = fresh_dir("bitflip");
    let store = ObjectStore::open(&dir).unwrap();
    store.put(7, PAYLOAD).unwrap();
    let path = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "obj"))
        .unwrap();
    let pristine = fs::read(&path).unwrap();

    for byte in 0..pristine.len() {
        let mut mutated = pristine.clone();
        mutated[byte] ^= 0x01;
        fs::write(&path, &mutated).unwrap();
        // The flip must never surface as a *wrong* payload: either the
        // checksums catch it (miss + quarantine) — which they must for
        // any single-bit flip with FNV-1a framing over these fields.
        assert_eq!(
            store.get(7),
            None,
            "bit flip at byte {byte} must be caught, not served"
        );
        assert!(
            !path.exists(),
            "flipped file (byte {byte}) must be quarantined"
        );
        fs::write(&path, &pristine).unwrap();
    }
    assert_eq!(store.get(7).as_deref(), Some(PAYLOAD));
}

#[test]
fn scan_survives_a_mixed_directory_of_valid_and_damaged_entries() {
    let dir = fresh_dir("mixed");
    let store = ObjectStore::open(&dir).unwrap();
    for key in 0u64..8 {
        store.put(key, format!("entry {key}").as_bytes()).unwrap();
    }
    // Damage three entries three different ways.
    let paths: Vec<PathBuf> = {
        let mut v: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "obj"))
            .collect();
        v.sort();
        v
    };
    let truncate_me = &paths[1];
    let bytes = fs::read(truncate_me).unwrap();
    fs::write(truncate_me, &bytes[..bytes.len() / 2]).unwrap();
    let flip_me = &paths[3];
    let mut bytes = fs::read(flip_me).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x80;
    fs::write(flip_me, &bytes).unwrap();
    fs::write(&paths[5], b"garbage, not an entry").unwrap();

    let entries = store.scan();
    assert_eq!(entries.len(), 5, "five pristine entries survive");
    for entry in &entries {
        assert_eq!(entry.payload, format!("entry {}", entry.key).into_bytes());
    }
    assert_eq!(store.stats().quarantined, 3);
    assert_eq!(store.quarantine_len(), 3);
}

#[test]
fn wal_fuzz_truncation_always_yields_a_valid_prefix() {
    let dir = fresh_dir("wal-truncate");
    let path = dir.join("log.wal");
    let records: Vec<Vec<u8>> = (0u8..10).map(|i| vec![i; 1 + i as usize * 3]).collect();
    {
        let (mut wal, _) = Wal::open(&path).unwrap();
        for r in &records {
            wal.append(r).unwrap();
        }
    }
    let pristine = fs::read(&path).unwrap();
    for len in 0..pristine.len() {
        fs::write(&path, &pristine[..len]).unwrap();
        let (_, replay) = Wal::open(&path).unwrap();
        assert!(
            replay.records.len() <= records.len(),
            "truncation cannot invent records"
        );
        assert_eq!(
            replay.records,
            records[..replay.records.len()],
            "truncation to {len} must recover an exact prefix"
        );
        // Clean quarantine sidecars so the next iteration starts fresh.
        for e in fs::read_dir(&dir).unwrap().filter_map(|e| e.ok()) {
            if e.path() != path {
                let _ = fs::remove_file(e.path());
            }
        }
    }
}
