//! # haven-store
//!
//! Crash-safe disk persistence for the serving stack (DESIGN.md §14):
//! a content-addressed [`ObjectStore`] for compile artifacts and an
//! append-only checksummed [`Wal`] for redo-log replay, both built on the
//! same torn-write discipline the eval journal pioneered
//! (`crates/eval/src/journal.rs`) and generalized here:
//!
//! * **Committed means durable.** An object becomes visible only through
//!   write-temp → `fsync` → atomic-rename; a WAL record only after its
//!   length-prefixed, checksummed frame is flushed. A `kill -9` at any
//!   instant leaves either the old state or the new state, never a
//!   half-written entry that parses.
//! * **Corruption is quarantined, never served and never fatal.** Every
//!   entry carries an FNV-1a/64 checksum ([`haven_hash`], the same hash
//!   the in-memory caches key on). A mismatch on read moves the entry to
//!   a `quarantine/` sidecar directory, counts it, and reports a miss —
//!   callers fall back to recomputing, exactly as if the cache were cold.
//! * **Torn tails are expected.** The WAL treats a truncated or
//!   bit-flipped final frame as the signature of a crash mid-append: the
//!   torn bytes are quarantined and the log is truncated back to its last
//!   good frame. Records before the tear are always recovered.
//! * **Chaos is a first-class input.** A seeded [`ChaosPolicy`] injects
//!   deterministic write failures and post-checksum corruption so every
//!   recovery path above is exercised by tests against the *production*
//!   code, not a mock.
//!
//! The store never panics on untrusted disk state; every read path
//! returns typed results and every invalid byte sequence has a defined
//! destination (quarantine) and a defined observable effect (a miss).

#![warn(missing_docs)]

mod chaos;
mod object;
mod wal;

pub use chaos::{ChaosPolicy, ChaosVerdict};
pub use object::{ObjectEntry, ObjectStore, StoreStats};
pub use wal::{Wal, WalReplay, WalStats};

/// Checksum used by every on-disk frame in this crate: FNV-1a/64 over the
/// raw bytes, via the workspace's canonical [`haven_hash::ContentHasher`].
pub(crate) fn checksum(bytes: &[u8]) -> u64 {
    haven_hash::ContentHasher::new().bytes(bytes).finish()
}
