//! The write-ahead log: append-only checksummed frames with torn-tail
//! recovery.
//!
//! A WAL file is the 8-byte magic `HVSTWAL1` followed by frames:
//!
//! ```text
//! offset  size  field
//!      0     4  payload_len u32 LE
//!      4     8  payload checksum, FNV-1a/64
//!     12     …  payload
//! ```
//!
//! The framing generalizes the eval journal's torn-write discipline
//! (`crates/eval/src/journal.rs`): a crash mid-append leaves a final
//! frame that is short or fails its checksum, and replay treats exactly
//! that — and only that — as the crash signature. The torn bytes are
//! moved to a `.quarantine.<n>` sidecar, the log is truncated back to
//! the last good frame, and every frame before the tear is returned.
//! Garbage *before* the tail (a bit-flipped middle frame) also stops
//! replay at the last trustworthy prefix: once framing desynchronizes,
//! byte offsets downstream are meaningless, so the safe prefix is all
//! the log can vouch for.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::PathBuf;

use crate::chaos::{ChaosPolicy, ChaosVerdict};
use crate::checksum;

const MAGIC: &[u8; 8] = b"HVSTWAL1";
const FRAME_HEADER: usize = 12;
/// Upper bound on a single frame payload (16 MiB): a length prefix
/// larger than this is treated as corruption, not as an allocation
/// request.
const MAX_FRAME: usize = 16 << 20;

/// What replay recovered from disk at open.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalReplay {
    /// Every committed frame payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Whether a torn or corrupt tail was quarantined and truncated.
    pub torn_tail: bool,
    /// Bytes moved to the quarantine sidecar.
    pub quarantined_bytes: u64,
}

/// WAL telemetry counters (monotone since open).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Frames durably appended since open.
    pub appends: u64,
    /// Append attempts that failed (I/O error or injected failure).
    pub append_failures: u64,
}

/// An append-only, checksum-framed, torn-tail-safe log.
pub struct Wal {
    path: PathBuf,
    file: File,
    chaos: Option<ChaosPolicy>,
    ops: u64,
    stats: WalStats,
}

impl Wal {
    /// Opens (creating if needed) the log at `path`, replaying every
    /// committed frame and quarantining any torn tail. A file that does
    /// not even carry the magic is quarantined whole and restarted.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<(Wal, WalReplay)> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut replay = WalReplay::default();
        let mut good_len = MAGIC.len() as u64;
        match fs::read(&path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                let mut file = File::create(&path)?;
                file.write_all(MAGIC)?;
                file.sync_all()?;
            }
            Err(e) => return Err(e),
            Ok(bytes) => {
                if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
                    // Not our log at all: quarantine the whole file.
                    quarantine_bytes(&path, &bytes, 0)?;
                    replay.torn_tail = true;
                    replay.quarantined_bytes = bytes.len() as u64;
                    let mut file = File::create(&path)?;
                    file.write_all(MAGIC)?;
                    file.sync_all()?;
                } else {
                    let mut offset = MAGIC.len();
                    loop {
                        match next_frame(&bytes, offset) {
                            Frame::Complete(payload, end) => {
                                replay.records.push(payload);
                                offset = end;
                                good_len = end as u64;
                            }
                            Frame::End => break,
                            Frame::Torn => {
                                let tail = &bytes[offset..];
                                quarantine_bytes(&path, tail, offset)?;
                                replay.torn_tail = true;
                                replay.quarantined_bytes = tail.len() as u64;
                                break;
                            }
                        }
                    }
                }
            }
        }
        let file = OpenOptions::new().write(true).open(&path)?;
        // Truncate back to the last good frame so future appends extend
        // a clean log instead of burying the tear.
        file.set_len(good_len.max(MAGIC.len() as u64))?;
        let mut wal = Wal {
            path,
            file,
            chaos: None,
            ops: 0,
            stats: WalStats::default(),
        };
        wal.seek_end()?;
        Ok((wal, replay))
    }

    /// Attaches a deterministic chaos policy (tests and drills only).
    pub fn with_chaos(mut self, chaos: ChaosPolicy) -> Wal {
        self.chaos = Some(chaos);
        self
    }

    /// Durably appends one frame. On success the frame is flushed to
    /// disk and will be replayed by every future open.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let verdict = match &self.chaos {
            Some(policy) => {
                let v = policy.verdict(self.ops);
                self.ops += 1;
                v
            }
            None => ChaosVerdict::Clean,
        };
        if verdict == ChaosVerdict::FailWrite {
            self.stats.append_failures += 1;
            return Err(io::Error::other("injected wal append failure"));
        }
        self.write_frame(payload, verdict == ChaosVerdict::CorruptWrite)
    }

    /// Appends a frame whose payload is flipped *after* checksumming — a
    /// chaos-drill API modelling silent media corruption. The append
    /// "succeeds"; the next open's replay must detect the frame as a
    /// tear and quarantine it.
    pub fn append_corrupt(&mut self, payload: &[u8]) -> io::Result<()> {
        self.write_frame(payload, true)
    }

    fn write_frame(&mut self, payload: &[u8], corrupt: bool) -> io::Result<()> {
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&checksum(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        if corrupt && !payload.is_empty() {
            // Post-checksum bit flip: replay must detect and quarantine.
            let idx = FRAME_HEADER + payload.len() / 2;
            frame[idx] ^= 0x20;
        }
        let written = (|| -> io::Result<()> {
            self.file.write_all(&frame)?;
            self.file.sync_data()
        })();
        match written {
            Ok(()) => {
                self.stats.appends += 1;
                Ok(())
            }
            Err(e) => {
                self.stats.append_failures += 1;
                Err(e)
            }
        }
    }

    /// Telemetry snapshot.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// The log's path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    fn seek_end(&mut self) -> io::Result<()> {
        use std::io::Seek;
        self.file.seek(io::SeekFrom::End(0)).map(|_| ())
    }
}

enum Frame {
    Complete(Vec<u8>, usize),
    Torn,
    End,
}

fn next_frame(bytes: &[u8], offset: usize) -> Frame {
    if offset == bytes.len() {
        return Frame::End;
    }
    let Some(header) = bytes.get(offset..offset + FRAME_HEADER) else {
        return Frame::Torn;
    };
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME {
        return Frame::Torn;
    }
    let sum = u64::from_le_bytes(header[4..12].try_into().unwrap());
    let start = offset + FRAME_HEADER;
    let Some(payload) = bytes.get(start..start + len) else {
        return Frame::Torn;
    };
    if checksum(payload) != sum {
        return Frame::Torn;
    }
    Frame::Complete(payload.to_vec(), start + len)
}

fn quarantine_bytes(path: &std::path::Path, bytes: &[u8], offset: usize) -> io::Result<()> {
    for n in 0.. {
        let dest = path.with_extension(format!("quarantine.{n}"));
        if !dest.exists() {
            let mut file = File::create(dest)?;
            writeln!(file, "# torn wal tail quarantined from offset {offset}")?;
            file.write_all(bytes)?;
            return Ok(());
        }
    }
    unreachable!("quarantine sidecar numbering is unbounded")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpwal(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "haven-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir.join("log.wal")
    }

    #[test]
    fn append_and_replay_round_trip() {
        let path = tmpwal("roundtrip");
        {
            let (mut wal, replay) = Wal::open(&path).unwrap();
            assert!(replay.records.is_empty() && !replay.torn_tail);
            wal.append(b"one").unwrap();
            wal.append(b"two").unwrap();
            wal.append(b"").unwrap();
        }
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(
            replay.records,
            vec![b"one".to_vec(), b"two".to_vec(), Vec::new()]
        );
        assert!(!replay.torn_tail);
    }

    #[test]
    fn torn_tail_is_quarantined_and_prefix_recovered() {
        let path = tmpwal("torn");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(b"committed").unwrap();
        }
        // Simulate a crash mid-append: half a frame header.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[9, 0, 0]);
        fs::write(&path, &bytes).unwrap();
        let (mut wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, vec![b"committed".to_vec()]);
        assert!(replay.torn_tail);
        assert_eq!(replay.quarantined_bytes, 3);
        // The log keeps working after recovery.
        wal.append(b"after").unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(
            replay.records,
            vec![b"committed".to_vec(), b"after".to_vec()]
        );
        assert!(!replay.torn_tail);
    }

    #[test]
    fn foreign_file_is_quarantined_whole() {
        let path = tmpwal("foreign");
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, b"not a wal at all").unwrap();
        let (_, replay) = Wal::open(&path).unwrap();
        assert!(replay.records.is_empty());
        assert!(replay.torn_tail);
        assert!(path.with_extension("quarantine.0").exists());
    }

    #[test]
    fn absurd_length_prefix_is_corruption_not_allocation() {
        let path = tmpwal("hugelen");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(b"good").unwrap();
        }
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 8]);
        fs::write(&path, &bytes).unwrap();
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records, vec![b"good".to_vec()]);
        assert!(replay.torn_tail);
    }

    #[test]
    fn injected_append_failure_keeps_the_log_clean() {
        let path = tmpwal("chaos-fail");
        let (wal, _) = Wal::open(&path).unwrap();
        let mut wal = wal.with_chaos(ChaosPolicy::failing(2, 1.0));
        assert!(wal.append(b"never lands").is_err());
        assert_eq!(wal.stats().append_failures, 1);
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        assert!(replay.records.is_empty() && !replay.torn_tail);
    }

    #[test]
    fn injected_corruption_is_detected_on_replay() {
        let path = tmpwal("chaos-corrupt");
        let (wal, _) = Wal::open(&path).unwrap();
        let mut wal = wal.with_chaos(ChaosPolicy::corrupting(6, 1.0));
        wal.append(b"sabotaged frame").unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        assert!(replay.records.is_empty());
        assert!(replay.torn_tail, "flipped frame must read as a tear");
    }
}
