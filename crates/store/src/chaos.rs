//! Seeded, deterministic fault injection for the persistence layer.
//!
//! The same philosophy as the eval harness's `FaultPlan`
//! (`crates/eval/src/fault.rs`): whether an operation is sabotaged is a
//! *pure function* of the policy's seed and the operation's ordinal, so a
//! chaotic run is exactly reproducible and tests can assert recovery
//! behaviour instead of sampling it.

/// What the chaos policy decided for one write operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosVerdict {
    /// The write proceeds untouched.
    Clean,
    /// The write fails with an I/O error before any byte lands on disk —
    /// models a full disk or a yanked volume. The store surfaces the
    /// error to its caller (who falls back to memory-only operation).
    FailWrite,
    /// The write succeeds but its payload is flipped *after* the
    /// checksum was computed — models silent media corruption. The next
    /// read of the entry must detect the mismatch and quarantine it.
    CorruptWrite,
}

/// A seeded schedule of injected persistence faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPolicy {
    /// Seed of the per-operation hash; same seed, same sabotage.
    pub seed: u64,
    /// Probability that a write fails outright (0.0 ..= 1.0).
    pub fail_rate: f64,
    /// Probability that a write is silently corrupted (0.0 ..= 1.0).
    /// Drawn after `fail_rate`; an operation is never both.
    pub corrupt_rate: f64,
}

impl ChaosPolicy {
    /// A policy that only fails writes.
    pub fn failing(seed: u64, fail_rate: f64) -> ChaosPolicy {
        ChaosPolicy {
            seed,
            fail_rate,
            corrupt_rate: 0.0,
        }
    }

    /// A policy that only corrupts writes.
    pub fn corrupting(seed: u64, corrupt_rate: f64) -> ChaosPolicy {
        ChaosPolicy {
            seed,
            fail_rate: 0.0,
            corrupt_rate,
        }
    }

    /// The verdict for write operation number `op`. Pure: same policy,
    /// same ordinal, same verdict, forever.
    pub fn verdict(&self, op: u64) -> ChaosVerdict {
        let h = splitmix64(self.seed ^ splitmix64(op ^ 0x6368_616f_735f_6f70));
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.fail_rate {
            ChaosVerdict::FailWrite
        } else if u < self.fail_rate + self.corrupt_rate {
            ChaosVerdict::CorruptWrite
        } else {
            ChaosVerdict::Clean
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_are_deterministic() {
        let p = ChaosPolicy {
            seed: 9,
            fail_rate: 0.3,
            corrupt_rate: 0.3,
        };
        for op in 0..200 {
            assert_eq!(p.verdict(op), p.verdict(op));
        }
    }

    #[test]
    fn rates_partition_the_unit_interval() {
        let p = ChaosPolicy {
            seed: 4,
            fail_rate: 0.25,
            corrupt_rate: 0.25,
        };
        let mut fail = 0;
        let mut corrupt = 0;
        let mut clean = 0;
        for op in 0..2000 {
            match p.verdict(op) {
                ChaosVerdict::FailWrite => fail += 1,
                ChaosVerdict::CorruptWrite => corrupt += 1,
                ChaosVerdict::Clean => clean += 1,
            }
        }
        assert!((350..650).contains(&fail), "{fail}");
        assert!((350..650).contains(&corrupt), "{corrupt}");
        assert!((800..1200).contains(&clean), "{clean}");
    }

    #[test]
    fn zero_rates_never_sabotage() {
        let p = ChaosPolicy {
            seed: 1,
            fail_rate: 0.0,
            corrupt_rate: 0.0,
        };
        assert!((0..500).all(|op| p.verdict(op) == ChaosVerdict::Clean));
    }
}
