//! The content-addressed object store: one file per entry, committed by
//! atomic rename, verified by checksum on every read.
//!
//! ## On-disk format
//!
//! An entry for key `k` lives at `<hex16(k)>.obj`:
//!
//! ```text
//! offset  size  field
//!      0     8  magic  b"HVSTOBJ1"
//!      8     8  key    u64 LE (must match the file name)
//!     16     4  payload_len u32 LE
//!     20     4  reserved (zero)
//!     24     8  payload checksum, FNV-1a/64
//!     32     8  header checksum, FNV-1a/64 over bytes 0..32
//!     40     …  payload
//! ```
//!
//! Writes go to `<hex16(k)>.<nonce>.tmp`, are `fsync`ed, then renamed
//! over the final name; the directory is fsynced after the rename so the
//! *name* is durable too. A crash leaves either no entry or a complete
//! entry — `.tmp` droppings are swept (and counted) on open. Any file
//! that fails validation on read is moved to `quarantine/` and reported
//! as a miss; the store never serves bytes whose checksum does not match
//! and never panics on hostile disk state.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::chaos::{ChaosPolicy, ChaosVerdict};
use crate::checksum;

const MAGIC: &[u8; 8] = b"HVSTOBJ1";
const HEADER_LEN: usize = 40;

/// A fully validated entry read back from disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectEntry {
    /// The content key the entry was stored under.
    pub key: u64,
    /// The entry's payload bytes, checksum-verified.
    pub payload: Vec<u8>,
}

/// Store telemetry counters (monotone since open).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Entries durably committed by `put`.
    pub puts: u64,
    /// `put` calls that failed (I/O error or injected write failure).
    pub put_failures: u64,
    /// `put` calls skipped because the key was already present.
    pub put_skips: u64,
    /// Entries that failed validation and were moved to quarantine.
    pub quarantined: u64,
    /// Orphaned `.tmp` files swept on open (crash droppings).
    pub tmp_swept: u64,
}

/// A disk-backed content-addressed store of checksummed entries.
///
/// Thread-safe: keys are content addresses, so concurrent writers of the
/// same key write identical bytes and the atomic rename makes the race
/// harmless (last rename wins, both files are valid).
pub struct ObjectStore {
    dir: PathBuf,
    quarantine: PathBuf,
    chaos: Option<ChaosPolicy>,
    ops: AtomicU64,
    nonce: AtomicU64,
    puts: AtomicU64,
    put_failures: AtomicU64,
    put_skips: AtomicU64,
    quarantined: AtomicU64,
    tmp_swept: AtomicU64,
}

impl ObjectStore {
    /// Opens (creating if needed) the store rooted at `dir`, sweeping any
    /// `.tmp` droppings a previous crash left behind.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ObjectStore> {
        let dir = dir.into();
        let quarantine = dir.join("quarantine");
        fs::create_dir_all(&quarantine)?;
        let store = ObjectStore {
            dir,
            quarantine,
            chaos: None,
            ops: AtomicU64::new(0),
            nonce: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            put_failures: AtomicU64::new(0),
            put_skips: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            tmp_swept: AtomicU64::new(0),
        };
        let mut swept = 0;
        for path in store.list_files("tmp")? {
            let _ = fs::remove_file(&path);
            swept += 1;
        }
        store.tmp_swept.store(swept, Ordering::Relaxed);
        Ok(store)
    }

    /// Attaches a deterministic chaos policy (tests and drills only).
    pub fn with_chaos(mut self, chaos: ChaosPolicy) -> ObjectStore {
        self.chaos = Some(chaos);
        self
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Durably stores `payload` under `key`. Returns `Ok(true)` when a
    /// new entry was committed, `Ok(false)` when the key already existed
    /// (entries are content-addressed, so rewriting would be a no-op).
    pub fn put(&self, key: u64, payload: &[u8]) -> io::Result<bool> {
        let final_path = self.entry_path(key);
        if final_path.exists() {
            self.put_skips.fetch_add(1, Ordering::Relaxed);
            return Ok(false);
        }
        let verdict = match &self.chaos {
            Some(policy) => policy.verdict(self.ops.fetch_add(1, Ordering::Relaxed)),
            None => ChaosVerdict::Clean,
        };
        if verdict == ChaosVerdict::FailWrite {
            self.put_failures.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::other("injected store write failure"));
        }
        let mut bytes = encode_entry(key, payload);
        if verdict == ChaosVerdict::CorruptWrite {
            // Silent media corruption: flip a payload bit *after* the
            // checksum was computed, so the read path must catch it.
            let idx = HEADER_LEN
                + (key as usize % payload.len().max(1)).min(bytes.len() - HEADER_LEN - 1);
            bytes[idx] ^= 0x40;
        }
        let tmp = self.dir.join(format!(
            "{}.{}.tmp",
            haven_hash::hex16(key),
            self.nonce.fetch_add(1, Ordering::Relaxed)
        ));
        let committed = (|| -> io::Result<()> {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&bytes)?;
            file.sync_all()?;
            drop(file);
            fs::rename(&tmp, &final_path)?;
            // Make the new *name* durable too; failure here is tolerable
            // (worst case the entry vanishes across a crash, which is a
            // recoverable miss, not corruption).
            let _ = fs::File::open(&self.dir).and_then(|d| d.sync_all());
            Ok(())
        })();
        match committed {
            Ok(()) => {
                self.puts.fetch_add(1, Ordering::Relaxed);
                Ok(true)
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                self.put_failures.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Reads the entry stored under `key`, verifying its checksums.
    /// Returns `None` for absent entries *and* for invalid ones — an
    /// entry that fails validation is quarantined and becomes a miss, so
    /// callers always fall back to recomputing.
    pub fn get(&self, key: u64) -> Option<Vec<u8>> {
        let path = self.entry_path(key);
        let bytes = fs::read(&path).ok()?;
        match decode_entry(&bytes) {
            Some(entry) if entry.key == key => Some(entry.payload),
            _ => {
                self.quarantine_file(&path);
                None
            }
        }
    }

    /// Validates and returns every entry in the store, quarantining any
    /// file that fails its checksums. Order is deterministic (sorted by
    /// file name, i.e. by key). This is the warm-restart preload path.
    pub fn scan(&self) -> Vec<ObjectEntry> {
        let mut paths = self.list_files("obj").unwrap_or_default();
        paths.sort();
        let mut entries = Vec::with_capacity(paths.len());
        for path in paths {
            let Ok(bytes) = fs::read(&path) else { continue };
            let named_key = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(|s| u64::from_str_radix(s, 16).ok());
            match decode_entry(&bytes) {
                Some(entry) if Some(entry.key) == named_key => entries.push(entry),
                _ => self.quarantine_file(&path),
            }
        }
        entries
    }

    /// Number of (unvalidated) entries currently on disk.
    pub fn len(&self) -> usize {
        self.list_files("obj").map(|v| v.len()).unwrap_or(0)
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Files currently sitting in quarantine.
    pub fn quarantine_len(&self) -> usize {
        fs::read_dir(&self.quarantine)
            .map(|d| d.filter_map(|e| e.ok()).count())
            .unwrap_or(0)
    }

    /// Telemetry snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            puts: self.puts.load(Ordering::Relaxed),
            put_failures: self.put_failures.load(Ordering::Relaxed),
            put_skips: self.put_skips.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            tmp_swept: self.tmp_swept.load(Ordering::Relaxed),
        }
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{}.obj", haven_hash::hex16(key)))
    }

    fn quarantine_file(&self, path: &Path) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "unnamed".into());
        let dest = self.quarantine.join(format!(
            "{}.{name}",
            self.nonce.fetch_add(1, Ordering::Relaxed)
        ));
        if fs::rename(path, &dest).is_err() {
            let _ = fs::remove_file(path);
        }
    }

    fn list_files(&self, extension: &str) -> io::Result<Vec<PathBuf>> {
        Ok(fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == extension))
            .collect())
    }
}

fn encode_entry(key: u64, payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&key.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    bytes.extend_from_slice(&checksum(payload).to_le_bytes());
    let head = checksum(&bytes[..32]);
    bytes.extend_from_slice(&head.to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

/// Parses and fully validates one entry. `None` means the bytes are not
/// a committed entry — torn, truncated, bit-flipped, or foreign.
fn decode_entry(bytes: &[u8]) -> Option<ObjectEntry> {
    if bytes.len() < HEADER_LEN || &bytes[..8] != MAGIC {
        return None;
    }
    let head = u64::from_le_bytes(bytes[32..40].try_into().ok()?);
    if head != checksum(&bytes[..32]) {
        return None;
    }
    let key = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
    let payload_len = u32::from_le_bytes(bytes[16..20].try_into().ok()?) as usize;
    if bytes.len() != HEADER_LEN + payload_len {
        return None;
    }
    let body = u64::from_le_bytes(bytes[24..32].try_into().ok()?);
    let payload = &bytes[HEADER_LEN..];
    if body != checksum(payload) {
        return None;
    }
    Some(ObjectEntry {
        key,
        payload: payload.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "haven-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_round_trips() {
        let store = ObjectStore::open(tmpdir("roundtrip")).unwrap();
        assert!(store.put(7, b"module m; endmodule").unwrap());
        assert_eq!(store.get(7).as_deref(), Some(&b"module m; endmodule"[..]));
        assert_eq!(store.get(8), None);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn second_put_of_same_key_is_skipped() {
        let store = ObjectStore::open(tmpdir("skip")).unwrap();
        assert!(store.put(1, b"a").unwrap());
        assert!(!store.put(1, b"a").unwrap());
        assert_eq!(store.stats().put_skips, 1);
        assert_eq!(store.stats().puts, 1);
    }

    #[test]
    fn scan_returns_entries_sorted_by_key() {
        let store = ObjectStore::open(tmpdir("scan")).unwrap();
        for key in [9u64, 3, 12] {
            store.put(key, format!("payload-{key}").as_bytes()).unwrap();
        }
        let keys: Vec<u64> = store.scan().iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![3, 9, 12]);
    }

    #[test]
    fn reopen_recovers_committed_entries_and_sweeps_tmp() {
        let dir = tmpdir("reopen");
        {
            let store = ObjectStore::open(&dir).unwrap();
            store.put(5, b"five").unwrap();
            // A crash dropping: half-written temp that never renamed.
            fs::write(dir.join("dead.0.tmp"), b"HVSTOBJ1 torn").unwrap();
        }
        let store = ObjectStore::open(&dir).unwrap();
        assert_eq!(store.stats().tmp_swept, 1);
        assert_eq!(store.get(5).as_deref(), Some(&b"five"[..]));
        assert!(!dir.join("dead.0.tmp").exists());
    }

    #[test]
    fn mismatched_file_name_is_quarantined() {
        let dir = tmpdir("rename-attack");
        let store = ObjectStore::open(&dir).unwrap();
        store.put(1, b"one").unwrap();
        // A valid entry renamed to another key's slot must not serve.
        fs::rename(
            dir.join(format!("{}.obj", haven_hash::hex16(1))),
            dir.join(format!("{}.obj", haven_hash::hex16(2))),
        )
        .unwrap();
        assert_eq!(store.get(2), None);
        assert_eq!(store.stats().quarantined, 1);
        assert_eq!(store.quarantine_len(), 1);
    }

    #[test]
    fn injected_write_failure_surfaces_and_leaves_no_debris() {
        let dir = tmpdir("chaos-fail");
        let store = ObjectStore::open(&dir)
            .unwrap()
            .with_chaos(ChaosPolicy::failing(3, 1.0));
        assert!(store.put(1, b"x").is_err());
        assert_eq!(store.stats().put_failures, 1);
        assert_eq!(store.len(), 0);
        assert!(ObjectStore::open(&dir).unwrap().stats().tmp_swept == 0);
    }

    #[test]
    fn injected_corruption_is_caught_on_read() {
        let store = ObjectStore::open(tmpdir("chaos-corrupt"))
            .unwrap()
            .with_chaos(ChaosPolicy::corrupting(5, 1.0));
        assert!(store.put(4, b"payload under sabotage").unwrap());
        assert_eq!(store.get(4), None, "corrupt entry must read as a miss");
        assert_eq!(store.stats().quarantined, 1);
        assert_eq!(store.len(), 0, "corrupt entry must leave the data dir");
    }
}
