//! Behavioural invariants of the simulated LLM that the experiments rely
//! on: temperature hurts, fine-tuning efficiency orders gains, SI-CoT's
//! structured text is easier than raw symbols.

use haven_lm::finetune::{finetune, SampleKind, TrainSample};
use haven_lm::model::CodeGenModel;
use haven_lm::profiles::{self, ModelProfile};
use haven_lm::skills::Channel;
use haven_spec::cosim::cosimulate;
use haven_spec::describe::{describe, DescribeStyle};
use haven_spec::stimuli::stimuli_for;
use haven_spec::{builders, Spec};
use haven_verilog::analyze::Topic;

fn task_pool() -> Vec<Spec> {
    (0..12)
        .map(|i| match i % 4 {
            0 => builders::counter(&format!("t{i}"), 4 + i % 3, None),
            1 => builders::fsm_ab(&format!("t{i}")),
            2 => builders::adder(&format!("t{i}"), 4 + i % 4),
            _ => builders::shift_register(
                &format!("t{i}"),
                4 + i % 4,
                haven_spec::ir::ShiftDirection::Left,
            ),
        })
        .collect()
}

#[test]
fn lower_temperature_has_higher_success_probabilities() {
    // Deterministic form of "temperature hurts": compare the channel
    // success probabilities recorded in the generation traces (the
    // per-sample Bernoulli draws themselves are too noisy at test scale).
    let specs = task_pool();
    let profile = ModelProfile::uniform("temp-test", 0.6);
    let cold = CodeGenModel::new(profile.clone(), 0.2);
    let hot = CodeGenModel::new(profile, 0.8);
    let mut cold_sum = 0.0;
    let mut hot_sum = 0.0;
    let mut n = 0usize;
    for spec in &specs {
        let prompt = describe(spec, DescribeStyle::Engineer);
        let (_, tc) = cold.generate_traced(&prompt, &spec.name, 0);
        let (_, th) = hot.generate_traced(&prompt, &spec.name, 0);
        for (dc, dh) in tc.decisions.iter().zip(&th.decisions) {
            assert_eq!(dc.channel, dh.channel);
            assert!(
                dc.p_success >= dh.p_success - 1e-12,
                "{:?}: cold {} < hot {}",
                dc.channel,
                dc.p_success,
                dh.p_success
            );
            cold_sum += dc.p_success;
            hot_sum += dh.p_success;
            n += 1;
        }
    }
    assert!(n > 20, "too few decisions compared");
    assert!(cold_sum > hot_sum, "no aggregate temperature effect");
}

#[test]
fn finetune_efficiency_orders_skill_gains() {
    // Same dataset, three bases with different efficiencies: the gain in
    // convention mastery must order with efficiency.
    let data: Vec<TrainSample> = (0..12)
        .map(|_| TrainSample {
            kind: SampleKind::Knowledge,
            topic: Topic::Counter,
            has_attributes: true,
            logic_category: None,
        })
        .collect();
    let gain = |base: ModelProfile| {
        let before = base.skills.topic(Topic::Counter);
        let after = finetune(&base, &data).skills.topic(Topic::Counter);
        after - before
    };
    let g_cl = gain(profiles::base_codellama());
    let g_cq = gain(profiles::base_codeqwen());
    assert!(
        g_cq > g_cl,
        "CodeQwen gain {g_cq:.3} should exceed CodeLlama gain {g_cl:.3}"
    );
}

#[test]
fn finetuned_model_outperforms_base_on_matching_topic_only() {
    let base = profiles::base_codeqwen();
    let data: Vec<TrainSample> = (0..30)
        .map(|_| TrainSample {
            kind: SampleKind::Knowledge,
            topic: Topic::Counter,
            has_attributes: true,
            logic_category: None,
        })
        .collect();
    let tuned = finetune(&base, &data);
    // Counter conventions rose; FSM conventions did not (topic-specific).
    assert!(tuned.skills.topic(Topic::Counter) > base.skills.topic(Topic::Counter));
    assert_eq!(
        tuned.skills.topic(Topic::Fsm),
        base.skills.topic(Topic::Fsm)
    );
    // Attributes rose (stated in the K pairs).
    assert!(
        tuned.skills.channel(Channel::KnowledgeAttributes)
            > base.skills.channel(Channel::KnowledgeAttributes)
    );
}

#[test]
fn structured_fsm_prompt_beats_raw_diagram_for_the_same_model() {
    let spec = builders::fsm_ab("fsm");
    let raw = describe(&spec, DescribeStyle::Engineer);
    // Build the structured version the way SI-CoT would.
    let Behavior::Fsm(f) = &spec.behavior else {
        panic!()
    };
    use haven_spec::ir::Behavior;
    let sd = haven_modality::state_diagram::StateDiagram::parse(
        &haven_spec::describe::state_diagram_text(f),
    )
    .unwrap();
    let structured = raw.replace(
        &haven_spec::describe::state_diagram_text(f),
        &sd.to_natural_language(),
    );
    let model = CodeGenModel::new(ModelProfile::uniform("sicot-test", 0.4), 0.2);
    let stim = stimuli_for(&spec, 3);
    let rate = |prompt: &str| {
        (0..20)
            .filter(|&i| {
                let src = model.generate(prompt, "fsm-b", i);
                cosimulate(&spec, &src, &stim).verdict.functional_ok()
            })
            .count()
    };
    let raw_rate = rate(&raw);
    let structured_rate = rate(&structured);
    assert!(
        structured_rate > raw_rate,
        "structured {structured_rate}/20 <= raw {raw_rate}/20"
    );
}
