//! Rendering a [`GenPlan`] to Verilog source, including the structural
//! convention variants that need custom emission.

use haven_spec::codegen::{emit, EmitStyle};
use haven_spec::ir::{Behavior, Spec};
use haven_verilog::analyze::ResetKind;
use haven_verilog::ast::Edge;

use crate::hallucinate::{apply_sabotage, ConventionVariant, GenPlan};

/// Renders the plan to source text (the model's "completion").
pub fn render(plan: &GenPlan) -> String {
    let base = match plan.variant {
        ConventionVariant::Standard => emit(&plan.spec, &plan.style),
        ConventionVariant::RegisteredFsmOutput => emit_registered_fsm(&plan.spec, &plan.style),
        ConventionVariant::IncompleteSensitivity => emit_incomplete_sensitivity(&plan.spec),
    };
    match plan.sabotage {
        Some(s) => apply_sabotage(&base, s, &plan.spec.name),
        None => base,
    }
}

/// FSM emission where the Moore output is *registered* — structurally
/// plausible but one clock late versus the conventional style.
fn emit_registered_fsm(spec: &Spec, style: &EmitStyle) -> String {
    let Behavior::Fsm(f) = &spec.behavior else {
        return emit(spec, style);
    };
    let sw = f.state_width();
    let clk = &spec.attrs.clock;
    let edge = match style.edge_override.unwrap_or(spec.attrs.edge) {
        Edge::Pos => "posedge",
        Edge::Neg => "negedge",
    };
    let mut ports = Vec::new();
    for p in spec.all_inputs() {
        ports.push(format!("input {}", p.name));
    }
    for p in &spec.outputs {
        let range = if p.width == 1 {
            String::new()
        } else {
            format!("[{}:0] ", p.width - 1)
        };
        ports.push(format!("output reg {range}{}", p.name));
    }
    let params: Vec<String> = f
        .states
        .iter()
        .enumerate()
        .map(|(i, s)| format!("S_{} = {}'d{}", s.to_uppercase(), sw, i))
        .collect();
    let mut sens = format!("{edge} {clk}");
    let mut reset_branch = String::new();
    if let Some(r) = &spec.attrs.reset {
        if r.kind.is_async() {
            let redge = match r.kind {
                ResetKind::AsyncActiveLow => "negedge",
                _ => "posedge",
            };
            sens.push_str(&format!(" or {redge} {}", r.name));
        }
        let cond = match r.kind {
            ResetKind::AsyncActiveLow => format!("!{}", r.name),
            ResetKind::AsyncActiveHigh => r.name.clone(),
            ResetKind::Sync => {
                if r.name.ends_with("_n") {
                    format!("!{}", r.name)
                } else {
                    r.name.clone()
                }
            }
        };
        reset_branch = format!(
            "        if ({cond}) begin state <= S_{}; {} <= {}'d{}; end\n        else ",
            f.states[f.initial].to_uppercase(),
            f.output,
            f.output_width,
            f.outputs[f.initial]
        );
    }
    let mut arms = String::new();
    for (i, s) in f.states.iter().enumerate() {
        let (t0, t1) = f.transitions[i];
        arms.push_str(&format!(
            "            S_{}: state <= {} ? S_{} : S_{};\n",
            s.to_uppercase(),
            f.input,
            f.states[t1].to_uppercase(),
            f.states[t0].to_uppercase()
        ));
    }
    format!(
        "module {name} (\n    {ports}\n);\n    localparam {params};\n    reg [{swm}:0] state;\n    always @({sens})\n{reset}begin\n        case (state)\n{arms}            default: state <= S_{init};\n        endcase\n        {out} <= {outexpr};\n        end\nendmodule\n",
        name = spec.name,
        ports = ports.join(",\n    "),
        params = params.join(", "),
        swm = sw - 1,
        sens = sens,
        reset = reset_branch,
        arms = arms,
        init = f.states[f.initial].to_uppercase(),
        out = f.output,
        outexpr = output_mux(f),
    )
}

fn output_mux(f: &haven_spec::ir::FsmSpec) -> String {
    // Nested ternaries over the *current* state — combined with the
    // non-blocking write this registers the output one cycle late.
    let sw = f.state_width();
    let mut expr = format!("{}'d{}", f.output_width, f.outputs[f.initial]);
    for (i, _) in f.states.iter().enumerate().rev() {
        expr = format!(
            "(state == {sw}'d{i}) ? {w}'d{v} : ({expr})",
            w = f.output_width,
            v = f.outputs[i]
        );
    }
    expr
}

/// Combinational emission with a deliberately incomplete sensitivity list
/// (first input only).
fn emit_incomplete_sensitivity(spec: &Spec) -> String {
    let mut style = EmitStyle::correct();
    style.comb_always_block = true;
    let src = emit(spec, &style);
    match spec.inputs.first() {
        Some(p) => src.replacen("always @(*)", &format!("always @({})", p.name), 1),
        None => src,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haven_spec::builders;
    use haven_spec::cosim::{cosimulate, Verdict};
    use haven_spec::stimuli::stimuli_for;
    use haven_verilog::elab::compile;

    #[test]
    fn faithful_plans_pass_cosim() {
        let spec = builders::fsm_ab("f");
        let plan = GenPlan::faithful(spec.clone());
        let src = render(&plan);
        let report = cosimulate(&spec, &src, &stimuli_for(&spec, 3));
        assert!(report.verdict.functional_ok(), "{:?}", report.verdict);
    }

    #[test]
    fn registered_fsm_output_compiles_and_fails_functionally() {
        let spec = builders::fsm_ab("f");
        let plan = GenPlan {
            variant: ConventionVariant::RegisteredFsmOutput,
            ..GenPlan::faithful(spec.clone())
        };
        let src = render(&plan);
        compile(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let report = cosimulate(&spec, &src, &stimuli_for(&spec, 3));
        assert!(
            matches!(report.verdict, Verdict::FunctionalMismatch { .. }),
            "{:?}\n{src}",
            report.verdict
        );
    }

    #[test]
    fn incomplete_sensitivity_compiles_and_fails_functionally() {
        let spec = builders::gate("g", haven_verilog::ast::BinaryOp::BitAnd);
        let plan = GenPlan {
            variant: ConventionVariant::IncompleteSensitivity,
            ..GenPlan::faithful(spec.clone())
        };
        let src = render(&plan);
        compile(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let report = cosimulate(&spec, &src, &stimuli_for(&spec, 3));
        assert!(
            matches!(report.verdict, Verdict::FunctionalMismatch { .. }),
            "{:?}\n{src}",
            report.verdict
        );
    }

    #[test]
    fn sabotaged_plan_fails_syntax() {
        let spec = builders::counter("c", 4, None);
        let plan = GenPlan {
            sabotage: Some(crate::hallucinate::Sabotage::PythonDef),
            ..GenPlan::faithful(spec.clone())
        };
        let report = cosimulate(&spec, &render(&plan), &stimuli_for(&spec, 3));
        assert!(matches!(report.verdict, Verdict::SyntaxError(_)));
    }
}
