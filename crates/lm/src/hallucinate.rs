//! Concrete corruption operators, one family per hallucination sub-type.
//!
//! When a channel "fires" for a sample, one of these operators perturbs
//! the generation plan. The perturbed plan still renders to real Verilog
//! that is then compiled and co-simulated — whether the corruption is
//! fatal is decided by execution, not by this module.

use haven_spec::codegen::EmitStyle;
use haven_spec::ir::*;
use haven_verilog::analyze::{ResetKind, Topic};
use haven_verilog::ast::{BinaryOp, Edge, Expr};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Text-level syntax sabotage (Verilog-syntax-misapplication).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sabotage {
    /// Python-style definition (`def adder_4bit():` — the Table II case).
    PythonDef,
    /// One missing statement semicolon.
    MissingSemicolon,
    /// Missing `endmodule`.
    MissingEndmodule,
    /// Dangling `begin` without its `end`.
    UnbalancedBegin,
    /// A reference to a signal that is never declared.
    UndeclaredSignal,
}

/// Structural convention errors that need dedicated emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConventionVariant {
    /// Standard emission (possibly with style knobs).
    Standard,
    /// FSM whose Moore output is registered (one cycle late).
    RegisteredFsmOutput,
    /// Combinational block with an incomplete sensitivity list.
    IncompleteSensitivity,
}

/// Everything needed to render one candidate completion.
#[derive(Debug, Clone, PartialEq)]
pub struct GenPlan {
    /// (Possibly corrupted) spec the model intends to implement.
    pub spec: Spec,
    /// Emission conventions.
    pub style: EmitStyle,
    /// Structural emission variant.
    pub variant: ConventionVariant,
    /// Syntax sabotage applied after rendering.
    pub sabotage: Option<Sabotage>,
}

impl GenPlan {
    /// A faithful plan for a spec.
    pub fn faithful(spec: Spec) -> GenPlan {
        GenPlan {
            spec,
            style: EmitStyle::correct(),
            variant: ConventionVariant::Standard,
            sabotage: None,
        }
    }
}

// ---- symbolic corruptions ------------------------------------------------

/// Misinterpret a truth table: flip one or two row outputs, or misread a
/// whole output column as a different function of the inputs.
pub fn corrupt_truth_table(plan: &mut GenPlan, rng: &mut StdRng) {
    let Behavior::TruthTable(tt) = &mut plan.spec.behavior else {
        return;
    };
    if tt.rows.is_empty() {
        return;
    }
    match rng.gen_range(0..3u8) {
        0 => {
            // Flip output bits of one random row ("out should be a & b").
            let i = rng.gen_range(0..tt.rows.len());
            let bits = tt.outputs.len().max(1);
            let flip = 1u64 << rng.gen_range(0..bits);
            tt.rows[i].1 ^= flip;
        }
        1 => {
            // Flip two distinct rows (or one, for single-row tables).
            let n = tt.rows.len();
            let i = rng.gen_range(0..n);
            tt.rows[i].1 ^= 1;
            if n > 1 {
                let j = (i + 1 + rng.gen_range(0..n - 1)) % n;
                tt.rows[j].1 ^= 1;
            }
        }
        _ => {
            // Misread row order: reverse the input-bit association.
            let n = tt.rows.len();
            let outs: Vec<u64> = tt.rows.iter().map(|(_, o)| *o).collect();
            for (k, row) in tt.rows.iter_mut().enumerate() {
                row.1 = outs[n - 1 - k];
            }
        }
    }
}

/// Misinterpret a state diagram: the Table II failure ("A and B should be
/// reversed") and close relatives.
pub fn corrupt_state_diagram(plan: &mut GenPlan, rng: &mut StdRng) {
    let Behavior::Fsm(f) = &mut plan.spec.behavior else {
        return;
    };
    let n = f.states.len();
    if n < 2 {
        return;
    }
    match rng.gen_range(0..3u8) {
        0 => {
            // Swap the roles of two states in every transition target.
            let a = rng.gen_range(0..n);
            let mut b = rng.gen_range(0..n);
            if a == b {
                b = (b + 1) % n;
            }
            for t in &mut f.transitions {
                for target in [&mut t.0, &mut t.1] {
                    if *target == a {
                        *target = b;
                    } else if *target == b {
                        *target = a;
                    }
                }
            }
        }
        1 => {
            // Invert the input condition of one state (swap its 0/1 edges).
            let s = rng.gen_range(0..n);
            let (t0, t1) = f.transitions[s];
            f.transitions[s] = (t1, t0);
        }
        _ => {
            // Misread a transition target (always to a *different* state).
            let s = rng.gen_range(0..n);
            if rng.gen_bool(0.5) {
                let cur = f.transitions[s].0;
                f.transitions[s].0 = (cur + 1 + rng.gen_range(0..n - 1)) % n;
            } else {
                let cur = f.transitions[s].1;
                f.transitions[s].1 = (cur + 1 + rng.gen_range(0..n - 1)) % n;
            }
        }
    }
}

/// Misinterpret a waveform: shift the perceived alignment by one sample
/// (outputs associated with the previous inputs), or drop a sample.
pub fn corrupt_waveform(plan: &mut GenPlan, rng: &mut StdRng) {
    let Behavior::TruthTable(tt) = &mut plan.spec.behavior else {
        return;
    };
    if tt.rows.len() < 2 {
        return;
    }
    if rng.gen_bool(0.5) {
        // Misalignment: rotate outputs against inputs. Guarantee a real
        // change (a constant output column rotates onto itself).
        let outs: Vec<u64> = tt.rows.iter().map(|(_, o)| *o).collect();
        let n = outs.len();
        for (k, row) in tt.rows.iter_mut().enumerate() {
            row.1 = outs[(k + 1) % n];
        }
        if tt.rows.iter().map(|(_, o)| *o).collect::<Vec<_>>() == outs {
            tt.rows[0].1 ^= 1;
        }
    } else {
        // Dropped sample: the misread row must actually matter, so drop a
        // row whose outputs are non-zero (a dropped all-zero row reads
        // back identically through the default arm).
        let candidates: Vec<usize> = tt
            .rows
            .iter()
            .enumerate()
            .filter(|(_, (_, o))| *o != 0)
            .map(|(i, _)| i)
            .collect();
        match candidates.as_slice() {
            [] => tt.rows[0].1 ^= 1,
            c => {
                let i = c[rng.gen_range(0..c.len())];
                tt.rows.remove(i);
            }
        }
        plan.style.case_default = true; // remaining combos read as 0
    }
}

// ---- knowledge corruptions -------------------------------------------

/// Misunderstand reset/edge/enable attributes (Table II: "the reset
/// should be asynchronous").
pub fn corrupt_attributes(plan: &mut GenPlan, rng: &mut StdRng) {
    let has_reset = plan.spec.attrs.reset.is_some();
    let has_enable = plan.spec.attrs.enable.is_some();
    let mut options: Vec<u8> = Vec::new();
    if has_reset {
        options.extend([0, 1]);
    }
    options.push(2);
    if has_enable {
        options.push(3);
    }
    match options[rng.gen_range(0..options.len())] {
        0 => {
            // async <-> sync confusion
            let kind = plan.spec.attrs.reset.as_ref().expect("has reset").kind;
            plan.style.reset_kind_override = Some(match kind {
                ResetKind::Sync => ResetKind::AsyncActiveHigh,
                _ => ResetKind::Sync,
            });
        }
        1 => {
            // polarity confusion
            let kind = plan.spec.attrs.reset.as_ref().expect("has reset").kind;
            plan.style.reset_kind_override = Some(match kind {
                ResetKind::AsyncActiveLow => ResetKind::AsyncActiveHigh,
                ResetKind::AsyncActiveHigh => ResetKind::AsyncActiveLow,
                ResetKind::Sync => ResetKind::AsyncActiveLow,
            });
        }
        2 => {
            // edge confusion
            let edge = plan.style.edge_override.unwrap_or(plan.spec.attrs.edge);
            plan.style.edge_override = Some(match edge {
                Edge::Pos => Edge::Neg,
                Edge::Neg => Edge::Pos,
            });
        }
        _ => plan.style.flip_enable_polarity = true,
    }
}

/// Violate a digital-design convention appropriate to the topic. Some of
/// these are fatal, some merely unconventional — execution decides.
pub fn corrupt_convention(plan: &mut GenPlan, topic: Topic, rng: &mut StdRng) {
    match topic {
        Topic::Fsm => match rng.gen_range(0..3u8) {
            0 => plan.variant = ConventionVariant::RegisteredFsmOutput,
            1 => plan.style.ignore_reset = true,
            _ => plan.style.case_default = false,
        },
        Topic::Counter | Topic::ClockDivider => match rng.gen_range(0..3u8) {
            0 => plan.style.ignore_reset = true,
            1 => off_by_one(plan),
            _ => plan.style.nonblocking_in_seq = false,
        },
        Topic::ShiftRegister => match rng.gen_range(0..3u8) {
            0 => flip_shift_direction(plan),
            1 => plan.style.ignore_reset = true,
            _ => plan.style.nonblocking_in_seq = false,
        },
        Topic::Register => match rng.gen_range(0..2u8) {
            0 => plan.style.nonblocking_in_seq = false,
            _ => plan.style.ignore_reset = true,
        },
        Topic::Alu => match rng.gen_range(0..2u8) {
            0 => plan.style.case_default = false,
            _ => swap_alu_ops(plan, rng),
        },
        _ => match rng.gen_range(0..2u8) {
            0 => plan.variant = ConventionVariant::IncompleteSensitivity,
            _ => plan.style.case_default = false,
        },
    }
}

fn off_by_one(plan: &mut GenPlan) {
    match &mut plan.spec.behavior {
        Behavior::Counter(c) => {
            if let Some(m) = &mut c.modulus {
                *m = m.saturating_add(1);
            } else {
                plan.style.ignore_reset = true;
            }
        }
        Behavior::ClockDiv(c) => c.half_period += 1,
        _ => {}
    }
}

fn flip_shift_direction(plan: &mut GenPlan) {
    if let Behavior::ShiftReg(s) = &mut plan.spec.behavior {
        s.direction = match s.direction {
            ShiftDirection::Left => ShiftDirection::Right,
            ShiftDirection::Right => ShiftDirection::Left,
        };
    }
}

fn swap_alu_ops(plan: &mut GenPlan, rng: &mut StdRng) {
    if let Behavior::Alu(a) = &mut plan.spec.behavior {
        if a.ops.len() >= 2 {
            let i = rng.gen_range(0..a.ops.len());
            let j = (i + 1) % a.ops.len();
            a.ops.swap(i, j);
        }
    }
}

/// Pick a syntax sabotage (Verilog-syntax misapplication).
pub fn pick_sabotage(rng: &mut StdRng) -> Sabotage {
    match rng.gen_range(0..5u8) {
        0 => Sabotage::PythonDef,
        1 => Sabotage::MissingSemicolon,
        2 => Sabotage::MissingEndmodule,
        3 => Sabotage::UnbalancedBegin,
        _ => Sabotage::UndeclaredSignal,
    }
}

/// Apply a sabotage to otherwise-correct source text.
pub fn apply_sabotage(source: &str, sabotage: Sabotage, module_name: &str) -> String {
    match sabotage {
        Sabotage::PythonDef => {
            format!("def {module_name}():\n    return output\n")
        }
        Sabotage::MissingSemicolon => {
            // Remove the first statement-terminating semicolon after the
            // header.
            match source.match_indices(';').nth(1) {
                Some((i, _)) => {
                    let mut s = source.to_string();
                    s.remove(i);
                    s
                }
                None => source.to_string(),
            }
        }
        Sabotage::MissingEndmodule => source.replacen("endmodule", "", 1),
        Sabotage::UnbalancedBegin => source.replacen("endmodule", "begin\nendmodule", 1),
        Sabotage::UndeclaredSignal => source.replacen(
            "endmodule",
            "    assign phantom_wire = ghost_sig;\nendmodule",
            1,
        ),
    }
}

// ---- logical corruptions -----------------------------------------------

/// Incorrect logical expression: wrong operator, swapped operands or
/// right-associated chain (the Table II `(a + c) & b` failure family).
pub fn corrupt_expression(plan: &mut GenPlan, rng: &mut StdRng) {
    let Behavior::Comb(rules) = &mut plan.spec.behavior else {
        return;
    };
    let Some(rule) = rules.first_mut() else {
        return;
    };
    match rng.gen_range(0..3u8) {
        0 => mutate_operator(&mut rule.expr, rng),
        1 => swap_operands(&mut rule.expr),
        _ => reassociate_right(&mut rule.expr),
    }
}

fn mutate_operator(e: &mut Expr, rng: &mut StdRng) {
    if let Expr::Binary(op, _, _) = e {
        let alternatives = [
            BinaryOp::Add,
            BinaryOp::BitOr,
            BinaryOp::BitAnd,
            BinaryOp::BitXor,
            BinaryOp::Sub,
        ];
        let mut pick = alternatives[rng.gen_range(0..alternatives.len())];
        if pick == *op {
            pick = alternatives[(rng.gen_range(0..alternatives.len()) + 1) % alternatives.len()];
        }
        *op = pick;
        return;
    }
    if let Expr::Ternary(_, t, _) = e {
        mutate_operator(t, rng);
    }
}

fn swap_operands(e: &mut Expr) {
    if let Expr::Binary(_, a, b) = e {
        // Swap the innermost left operand with the outer right operand:
        // (a + b) | c  →  (c + b) | a.
        if let Expr::Binary(_, inner_a, _) = a.as_mut() {
            std::mem::swap(inner_a, b);
        } else {
            std::mem::swap(a, b);
        }
    }
}

fn reassociate_right(e: &mut Expr) {
    // (a OP1 b) OP2 c  →  a OP1 (b OP2 c)
    if let Expr::Binary(op2, left, c) = e {
        if let Expr::Binary(op1, a, b) = left.as_mut() {
            let new = Expr::Binary(
                *op1,
                a.clone(),
                Box::new(Expr::Binary(*op2, b.clone(), c.clone())),
            );
            *e = new;
        }
    }
}

/// Incorrect corner-case handling: drop the default/else fallback.
pub fn corrupt_corner_case(plan: &mut GenPlan, rng: &mut StdRng) {
    match &mut plan.spec.behavior {
        Behavior::TruthTable(tt) => {
            // Forget the all-zero rows and the default arm: unlisted
            // combinations now latch.
            plan.style.case_default = false;
            if tt.rows.len() > 1 {
                tt.rows.retain(|(_, o)| *o != 0);
                if tt.rows.is_empty() {
                    tt.rows.push((0, 0));
                }
            }
        }
        Behavior::Comb(rules) => {
            if let Some(rule) = rules.first_mut() {
                replace_final_else(&mut rule.expr, rng);
            }
        }
        Behavior::Alu(_) => plan.style.case_default = false,
        _ => plan.style.case_default = false,
    }
}

fn replace_final_else(e: &mut Expr, rng: &mut StdRng) {
    // Walk to the last ternary else and zero it (or flip a 1-bit value).
    if let Expr::Ternary(_, _, f) = e {
        if matches!(f.as_ref(), Expr::Ternary(..)) {
            replace_final_else(f, rng);
        } else {
            **f = Expr::lit(u64::from(rng.gen_bool(0.5)), 1);
        }
    }
}

/// Failure to adhere to instructional logic: weaken a conjunction to a
/// disjunction or skew one tested constant (Table II's `a==0 || b==0`).
pub fn corrupt_instruction(plan: &mut GenPlan, rng: &mut StdRng) {
    let Behavior::Comb(rules) = &mut plan.spec.behavior else {
        return;
    };
    let Some(rule) = rules.first_mut() else {
        return;
    };
    if !weaken_first_and(&mut rule.expr) {
        mutate_operator(&mut rule.expr, rng);
    }
}

fn weaken_first_and(e: &mut Expr) -> bool {
    match e {
        Expr::Binary(op @ BinaryOp::LogicAnd, _, _) => {
            *op = BinaryOp::LogicOr;
            true
        }
        Expr::Binary(_, a, b) => weaken_first_and(a) || weaken_first_and(b),
        Expr::Ternary(c, t, f) => weaken_first_and(c) || weaken_first_and(t) || weaken_first_and(f),
        Expr::Unary(_, a) => weaken_first_and(a),
        _ => false,
    }
}

// ---- interface corruption ----------------------------------------------

/// Ignore the given header: rename a port or change a width.
pub fn corrupt_interface(plan: &mut GenPlan, rng: &mut StdRng) {
    let n_in = plan.spec.inputs.len();
    let n_out = plan.spec.outputs.len();
    if n_in + n_out == 0 {
        return;
    }
    let pick = rng.gen_range(0..n_in + n_out);
    let (old, port_is_input) = if pick < n_in {
        (plan.spec.inputs[pick].name.clone(), true)
    } else {
        (plan.spec.outputs[pick - n_in].name.clone(), false)
    };
    if rng.gen_bool(0.7) {
        // Rename: `sum` → `sum_out`, `a` → `a_in`, etc.
        let suffix = if port_is_input { "_in" } else { "_out" };
        let new = format!("{old}{suffix}");
        if port_is_input {
            plan.spec.inputs[pick].name = new.clone();
        } else {
            plan.spec.outputs[pick - n_in].name = new.clone();
        }
        crate::perception::rename_port_in_behavior(&mut plan.spec.behavior, &old, &new);
    } else {
        // Width skew.
        let port = if port_is_input {
            &mut plan.spec.inputs[pick]
        } else {
            &mut plan.spec.outputs[pick - n_in]
        };
        port.width = (port.width + 1).min(64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haven_spec::builders;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn truth_table_corruption_changes_rows() {
        for seed in 0..10 {
            let spec = builders::truth_table_spec(
                "t",
                vec!["a".into(), "b".into()],
                vec!["out".into()],
                vec![(0, 0), (1, 0), (2, 0), (3, 1)],
            );
            let mut plan = GenPlan::faithful(spec.clone());
            corrupt_truth_table(&mut plan, &mut rng(seed));
            assert_ne!(plan.spec.behavior, spec.behavior, "seed {seed}");
        }
    }

    #[test]
    fn state_diagram_corruption_changes_transitions() {
        for seed in 0..10 {
            let spec = builders::fsm_ab("f");
            let mut plan = GenPlan::faithful(spec.clone());
            corrupt_state_diagram(&mut plan, &mut rng(seed));
            assert_ne!(plan.spec.behavior, spec.behavior, "seed {seed}");
        }
    }

    #[test]
    fn expression_corruption_changes_expr() {
        use haven_verilog::pretty::pretty_expr;
        let rest = vec![
            (BinaryOp::Add, "b".to_string()),
            (BinaryOp::BitOr, "c".to_string()),
        ];
        let expr = haven_spec::describe::chain_expr("a", &rest);
        for seed in 0..10 {
            let spec = haven_spec::builders::comb(
                "m",
                vec![
                    haven_spec::ir::PortSpec::bit("a"),
                    haven_spec::ir::PortSpec::bit("b"),
                    haven_spec::ir::PortSpec::bit("c"),
                ],
                haven_spec::ir::PortSpec::bit("out"),
                expr.clone(),
            );
            let mut plan = GenPlan::faithful(spec);
            corrupt_expression(&mut plan, &mut rng(seed));
            let Behavior::Comb(rules) = &plan.spec.behavior else {
                panic!()
            };
            assert_ne!(
                pretty_expr(&rules[0].expr),
                pretty_expr(&expr),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn sabotages_break_compilation() {
        use haven_spec::codegen::{emit, EmitStyle};
        use haven_verilog::elab::compile;
        let spec = builders::counter("c", 4, None);
        let good = emit(&spec, &EmitStyle::correct());
        assert!(compile(&good).is_ok());
        for s in [
            Sabotage::PythonDef,
            Sabotage::MissingSemicolon,
            Sabotage::MissingEndmodule,
            Sabotage::UnbalancedBegin,
            Sabotage::UndeclaredSignal,
        ] {
            let bad = apply_sabotage(&good, s, "c");
            assert!(compile(&bad).is_err(), "{s:?} should not compile:\n{bad}");
        }
    }

    #[test]
    fn attribute_corruption_touches_style() {
        for seed in 0..10 {
            let mut spec = builders::counter("c", 4, None);
            spec.attrs.enable = Some(haven_spec::ir::EnableSpec {
                name: "en".into(),
                active_high: true,
            });
            let mut plan = GenPlan::faithful(spec);
            corrupt_attributes(&mut plan, &mut rng(seed));
            let changed = plan.style != EmitStyle::correct();
            assert!(changed, "seed {seed}");
        }
    }

    #[test]
    fn interface_corruption_changes_a_port() {
        for seed in 0..10 {
            let spec = builders::adder("a", 4);
            let mut plan = GenPlan::faithful(spec.clone());
            corrupt_interface(&mut plan, &mut rng(seed));
            let same = plan.spec.inputs == spec.inputs && plan.spec.outputs == spec.outputs;
            assert!(!same, "seed {seed}");
        }
    }

    #[test]
    fn instruction_corruption_weakens_and() {
        use haven_spec::describe::{ChainArm, IfChain};
        let chain = IfChain {
            arms: vec![ChainArm {
                conditions: vec![("a".into(), 0), ("b".into(), 0)],
                output_value: 0,
            }],
            else_value: 1,
        };
        let expr = chain.to_expr(&|_| 1, 1);
        let spec = haven_spec::builders::comb(
            "m",
            vec![
                haven_spec::ir::PortSpec::bit("a"),
                haven_spec::ir::PortSpec::bit("b"),
            ],
            haven_spec::ir::PortSpec::bit("out"),
            expr,
        );
        let mut plan = GenPlan::faithful(spec);
        corrupt_instruction(&mut plan, &mut rng(1));
        let Behavior::Comb(rules) = &plan.spec.behavior else {
            panic!()
        };
        let printed = haven_verilog::pretty::pretty_expr(&rules[0].expr);
        assert!(printed.contains("||"), "{printed}");
    }
}
