//! Model profiles: skill presets for every model the paper compares.
//!
//! Base models (CodeLlama / DeepSeek-Coder / CodeQwen) are starting points
//! for fine-tuning experiments; commercial and prior-work models are fixed
//! presets calibrated so the evaluation harness lands near the paper's
//! Table IV / V / VI numbers. HaVen models are **not** presets — they are
//! produced at experiment time by running
//! [`finetune`](crate::finetune::finetune) on a base profile with the
//! generated KL-dataset, exactly as the paper trains them.

use serde::{Deserialize, Serialize};

use haven_verilog::analyze::Topic;

use crate::skills::{Channel, SkillSet};

/// Identity and competence of one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Display name (also seeds all random draws).
    pub name: String,
    /// Whether the original model is open source (Table IV column).
    pub open_source: bool,
    /// Parameter-count label (Table IV column).
    pub size: String,
    /// Per-channel skills.
    pub skills: SkillSet,
    /// How efficiently fine-tuning data moves this model's skills
    /// (multiplies the effective sample count in the learning law).
    /// Calibrated from the paper's Table IV: CodeQwen absorbs Verilog
    /// fine-tuning best, CodeLlama worst ("CodeLlama performs worse than
    /// the other two models" after tuning, §IV-B).
    #[serde(default = "default_efficiency")]
    pub finetune_efficiency: f64,
}

fn default_efficiency() -> f64 {
    1.0
}

/// Named skill levels for building a profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Levels {
    /// Verilog syntax reliability.
    pub syntax: f64,
    /// Digital-design convention mastery (baseline across topics).
    pub convention: f64,
    /// Reset/edge/enable attribute handling.
    pub attributes: f64,
    /// Logical expression construction.
    pub logic_expr: f64,
    /// Corner-case handling.
    pub corner: f64,
    /// Instructional-logic fidelity.
    pub instruction: f64,
    /// Raw truth-table reading.
    pub truth_table: f64,
    /// Raw waveform reading.
    pub waveform: f64,
    /// Raw state-diagram reading.
    pub state_diagram: f64,
    /// Interface discipline.
    pub interface: f64,
}

impl ModelProfile {
    /// A profile with every skill at `level` (tests, baselines).
    pub fn uniform(name: &str, level: f64) -> ModelProfile {
        ModelProfile {
            name: name.to_string(),
            open_source: true,
            size: "n/a".to_string(),
            skills: SkillSet::uniform(level),
            finetune_efficiency: 1.0,
        }
    }

    /// Builds a profile from named levels.
    pub fn from_levels(name: &str, open_source: bool, size: &str, l: Levels) -> ModelProfile {
        let mut skills = SkillSet::uniform(0.5);
        skills
            .set_channel(Channel::KnowledgeSyntax, l.syntax)
            .set_channel(Channel::KnowledgeConvention, l.convention)
            .set_channel(Channel::KnowledgeAttributes, l.attributes)
            .set_channel(Channel::LogicExpression, l.logic_expr)
            .set_channel(Channel::LogicCornerCase, l.corner)
            .set_channel(Channel::LogicInstruction, l.instruction)
            .set_channel(Channel::SymbolTruthTable, l.truth_table)
            .set_channel(Channel::SymbolWaveform, l.waveform)
            .set_channel(Channel::SymbolStateDiagram, l.state_diagram)
            .set_channel(Channel::Interface, l.interface);
        ModelProfile {
            name: name.to_string(),
            open_source,
            size: size.to_string(),
            skills,
            finetune_efficiency: 1.0,
        }
    }

    /// Overrides one topic's convention mastery.
    pub fn with_topic(mut self, t: Topic, v: f64) -> ModelProfile {
        self.skills.set_topic(t, v);
        self
    }
}

// ---- base models for fine-tuning (Table IV "Ours" rows start here) ------

/// CodeLlama-7b-Instruct.
pub fn base_codellama() -> ModelProfile {
    let mut p = ModelProfile::from_levels(
        "CodeLlama",
        true,
        "7B",
        Levels {
            syntax: 0.9,
            convention: 0.26,
            attributes: 0.3,
            logic_expr: 0.42,
            corner: 0.33,
            instruction: 0.44,
            truth_table: 0.18,
            waveform: 0.15,
            state_diagram: 0.22,
            interface: 0.93,
        },
    );
    p.finetune_efficiency = 0.7;
    p
}

/// DeepSeek-Coder-6.7b-Instruct.
pub fn base_deepseek() -> ModelProfile {
    let mut p = ModelProfile::from_levels(
        "DeepSeek-Coder",
        true,
        "6.7B",
        Levels {
            syntax: 0.96,
            convention: 0.46,
            attributes: 0.48,
            logic_expr: 0.55,
            corner: 0.5,
            instruction: 0.55,
            truth_table: 0.28,
            waveform: 0.22,
            state_diagram: 0.33,
            interface: 0.96,
        },
    );
    p.finetune_efficiency = 0.95;
    p
}

/// CodeQwen1.5-7B-Chat.
pub fn base_codeqwen() -> ModelProfile {
    let mut p = ModelProfile::from_levels(
        "CodeQwen",
        true,
        "7B",
        Levels {
            syntax: 0.93,
            convention: 0.37,
            attributes: 0.41,
            logic_expr: 0.48,
            corner: 0.44,
            instruction: 0.49,
            truth_table: 0.24,
            waveform: 0.20,
            state_diagram: 0.28,
            interface: 0.94,
        },
    );
    p.finetune_efficiency = 1.6;
    p
}

// ---- commercial LLMs -----------------------------------------------------

/// GPT-3.5 (the captioner of §III-C and a Table IV baseline).
pub fn gpt35() -> ModelProfile {
    ModelProfile::from_levels(
        "GPT-3.5",
        false,
        "n/a",
        Levels {
            syntax: 0.95,
            convention: 0.4,
            attributes: 0.47,
            logic_expr: 0.53,
            corner: 0.42,
            instruction: 0.55,
            truth_table: 0.22,
            waveform: 0.20,
            state_diagram: 0.26,
            interface: 0.95,
        },
    )
}

/// GPT-4.
pub fn gpt4() -> ModelProfile {
    ModelProfile::from_levels(
        "GPT-4",
        false,
        "n/a",
        Levels {
            syntax: 0.995,
            convention: 0.61,
            attributes: 0.63,
            logic_expr: 0.66,
            corner: 0.56,
            instruction: 0.68,
            truth_table: 0.3,
            waveform: 0.13,
            state_diagram: 0.34,
            interface: 0.99,
        },
    )
}

/// GPT-4o mini (Table VI).
pub fn gpt4o_mini() -> ModelProfile {
    ModelProfile::from_levels(
        "GPT-4o mini",
        false,
        "n/a",
        Levels {
            syntax: 0.99,
            convention: 0.64,
            attributes: 0.66,
            logic_expr: 0.72,
            corner: 0.66,
            instruction: 0.74,
            truth_table: 0.5,
            waveform: 0.3,
            state_diagram: 0.52,
            interface: 0.98,
        },
    )
}

/// DeepSeek-Coder-V2 (Tables V and VI).
pub fn deepseek_coder_v2() -> ModelProfile {
    ModelProfile::from_levels(
        "DeepSeek-Coder-V2",
        false,
        "n/a",
        Levels {
            syntax: 0.99,
            convention: 0.70,
            attributes: 0.72,
            logic_expr: 0.78,
            corner: 0.72,
            instruction: 0.78,
            truth_table: 0.38,
            waveform: 0.15,
            state_diagram: 0.58,
            interface: 0.99,
        },
    )
}

// ---- prior Verilog-specialized works -------------------------------------

/// StarCoder 15B.
pub fn starcoder() -> ModelProfile {
    ModelProfile::from_levels(
        "Starcoder",
        true,
        "15B",
        Levels {
            syntax: 0.97,
            convention: 0.3,
            attributes: 0.34,
            logic_expr: 0.42,
            corner: 0.36,
            instruction: 0.43,
            truth_table: 0.18,
            waveform: 0.16,
            state_diagram: 0.20,
            interface: 0.95,
        },
    )
}

/// ChipNeMo 13B.
pub fn chipnemo() -> ModelProfile {
    ModelProfile::from_levels(
        "ChipNeMo",
        false,
        "13B",
        Levels {
            syntax: 0.93,
            convention: 0.45,
            attributes: 0.48,
            logic_expr: 0.50,
            corner: 0.46,
            instruction: 0.52,
            truth_table: 0.20,
            waveform: 0.17,
            state_diagram: 0.24,
            interface: 0.93,
        },
    )
}

/// Thakur et al. (VeriGen) 16B.
pub fn thakur() -> ModelProfile {
    ModelProfile::from_levels(
        "Thakur et al.",
        true,
        "16B",
        Levels {
            syntax: 0.93,
            convention: 0.52,
            attributes: 0.54,
            logic_expr: 0.56,
            corner: 0.50,
            instruction: 0.56,
            truth_table: 0.20,
            waveform: 0.18,
            state_diagram: 0.25,
            interface: 0.92,
        },
    )
}

/// RTLCoder-Mistral.
pub fn rtlcoder_mistral() -> ModelProfile {
    ModelProfile::from_levels(
        "RTLCoder-Mistral",
        true,
        "7B",
        Levels {
            syntax: 0.97,
            convention: 0.56,
            attributes: 0.60,
            logic_expr: 0.62,
            corner: 0.58,
            instruction: 0.62,
            truth_table: 0.18,
            waveform: 0.22,
            state_diagram: 0.24,
            interface: 0.97,
        },
    )
}

/// RTLCoder-DeepSeek (also the "RTLCoder" row of Table V).
pub fn rtlcoder_deepseek() -> ModelProfile {
    ModelProfile::from_levels(
        "RTLCoder-DeepSeek",
        true,
        "6.7B",
        Levels {
            syntax: 0.96,
            convention: 0.64,
            attributes: 0.63,
            logic_expr: 0.65,
            corner: 0.60,
            instruction: 0.65,
            truth_table: 0.18,
            waveform: 0.22,
            state_diagram: 0.24,
            interface: 0.97,
        },
    )
}

/// BetterV on CodeLlama.
pub fn betterv_codellama() -> ModelProfile {
    baseline_verilog_model("BetterV-CodeLlama", "7B", 0.63)
}

/// BetterV on DeepSeek.
pub fn betterv_deepseek() -> ModelProfile {
    baseline_verilog_model("BetterV-DeepSeek", "6.7B", 0.67)
}

/// BetterV on CodeQwen.
pub fn betterv_codeqwen() -> ModelProfile {
    baseline_verilog_model("BetterV-CodeQwen", "7B", 0.675)
}

/// AutoVCoder on CodeLlama.
pub fn autovcoder_codellama() -> ModelProfile {
    baseline_verilog_model("AutoVCoder-CodeLlama", "7B", 0.66)
}

/// AutoVCoder on DeepSeek.
pub fn autovcoder_deepseek() -> ModelProfile {
    baseline_verilog_model("AutoVCoder-DeepSeek", "6.7B", 0.685)
}

/// AutoVCoder on CodeQwen.
pub fn autovcoder_codeqwen() -> ModelProfile {
    baseline_verilog_model("AutoVCoder-CodeQwen", "7B", 0.69)
}

/// OriGen (DeepSeek-v1.5 base) — the strongest prior open model.
pub fn origen() -> ModelProfile {
    let mut p = baseline_verilog_model("OriGen-DeepSeek-7B-v1.5", "7B", 0.74);
    p.skills.set_channel(Channel::SymbolTruthTable, 0.22);
    p.skills.set_channel(Channel::SymbolWaveform, 0.15);
    p.skills.set_channel(Channel::SymbolStateDiagram, 0.27);
    p
}

/// Shared shape for closed fine-tuned Verilog models: strong syntax and
/// conventions, weak raw-symbolic reading (they were trained on
/// caption-style data, not symbolic modalities).
fn baseline_verilog_model(name: &str, size: &str, level: f64) -> ModelProfile {
    let open = name.starts_with("RTLCoder") || name.starts_with("OriGen");
    ModelProfile::from_levels(
        name,
        open,
        size,
        Levels {
            syntax: 0.975,
            convention: level,
            attributes: level,
            logic_expr: level + 0.03,
            corner: level - 0.02,
            instruction: level + 0.02,
            truth_table: 0.19,
            waveform: 0.21,
            state_diagram: 0.23,
            interface: 0.975,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_distinct_and_ordered_sensibly() {
        let weak = base_codellama();
        let strong = gpt4();
        assert!(
            strong.skills.channel(Channel::KnowledgeConvention)
                > weak.skills.channel(Channel::KnowledgeConvention)
        );
        assert!(
            origen().skills.channel(Channel::KnowledgeConvention)
                > rtlcoder_deepseek()
                    .skills
                    .channel(Channel::KnowledgeConvention)
        );
    }

    #[test]
    fn all_skills_in_unit_interval() {
        for p in [
            base_codellama(),
            base_deepseek(),
            base_codeqwen(),
            gpt35(),
            gpt4(),
            gpt4o_mini(),
            deepseek_coder_v2(),
            starcoder(),
            chipnemo(),
            thakur(),
            rtlcoder_mistral(),
            rtlcoder_deepseek(),
            betterv_codellama(),
            betterv_deepseek(),
            betterv_codeqwen(),
            autovcoder_codellama(),
            autovcoder_deepseek(),
            autovcoder_codeqwen(),
            origen(),
        ] {
            for c in Channel::ALL {
                let v = p.skills.channel(c);
                assert!((0.0..=1.0).contains(&v), "{} {:?} = {v}", p.name, c);
            }
        }
    }
}
