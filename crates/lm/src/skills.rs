//! The skill model: one scalar per hallucination channel.
//!
//! Each skill is the model's *task-averaged* probability of getting that
//! channel right at low temperature. Per-task difficulty and temperature
//! modulate it (see [`effective_success`]), and fine-tuning moves it
//! (see [`crate::finetune::finetune`]).

use std::collections::BTreeMap;

use haven_verilog::analyze::Topic;
use serde::{Deserialize, Serialize};

use crate::rng::unit_float;

/// The nine hallucination sub-channels of the paper's taxonomy (Table II),
/// plus interface discipline (emitting the exact requested header).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Channel {
    /// Symbolic: truth-table misinterpretation.
    SymbolTruthTable,
    /// Symbolic: waveform-chart misinterpretation.
    SymbolWaveform,
    /// Symbolic: state-diagram misinterpretation.
    SymbolStateDiagram,
    /// Knowledge: digital-design-convention misapplication (per topic).
    KnowledgeConvention,
    /// Knowledge: Verilog syntax misapplication.
    KnowledgeSyntax,
    /// Knowledge: misunderstanding Verilog-specific attributes.
    KnowledgeAttributes,
    /// Logical: incorrect logical expression.
    LogicExpression,
    /// Logical: incorrect handling of corner cases.
    LogicCornerCase,
    /// Logical: failure to adhere to instructional logic.
    LogicInstruction,
    /// Interface discipline: exact module header / port names.
    Interface,
}

impl Channel {
    /// All channels, stable order.
    pub const ALL: [Channel; 10] = [
        Channel::SymbolTruthTable,
        Channel::SymbolWaveform,
        Channel::SymbolStateDiagram,
        Channel::KnowledgeConvention,
        Channel::KnowledgeSyntax,
        Channel::KnowledgeAttributes,
        Channel::LogicExpression,
        Channel::LogicCornerCase,
        Channel::LogicInstruction,
        Channel::Interface,
    ];

    /// Short key for hashing / reports.
    pub fn key(self) -> &'static str {
        match self {
            Channel::SymbolTruthTable => "sym.tt",
            Channel::SymbolWaveform => "sym.wf",
            Channel::SymbolStateDiagram => "sym.sd",
            Channel::KnowledgeConvention => "kn.conv",
            Channel::KnowledgeSyntax => "kn.syn",
            Channel::KnowledgeAttributes => "kn.attr",
            Channel::LogicExpression => "lg.expr",
            Channel::LogicCornerCase => "lg.corner",
            Channel::LogicInstruction => "lg.instr",
            Channel::Interface => "iface",
        }
    }
}

/// A model's per-channel competence, each in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkillSet {
    /// Success probability per channel (task-averaged).
    pub channels: BTreeMap<Channel, f64>,
    /// Per-topic convention mastery, refining
    /// [`Channel::KnowledgeConvention`]; topics absent here fall back to
    /// the channel-level value.
    pub topics: BTreeMap<Topic, f64>,
}

impl SkillSet {
    /// A uniform skill set (useful as a base for builders and tests).
    pub fn uniform(level: f64) -> SkillSet {
        SkillSet {
            channels: Channel::ALL.iter().map(|&c| (c, level)).collect(),
            topics: BTreeMap::new(),
        }
    }

    /// Channel skill.
    pub fn channel(&self, c: Channel) -> f64 {
        self.channels.get(&c).copied().unwrap_or(0.5)
    }

    /// Sets a channel skill (clamped to `[0, 1]`).
    pub fn set_channel(&mut self, c: Channel, v: f64) -> &mut SkillSet {
        self.channels.insert(c, v.clamp(0.0, 1.0));
        self
    }

    /// Convention mastery for a topic (falls back to the channel value).
    pub fn topic(&self, t: Topic) -> f64 {
        self.topics
            .get(&t)
            .copied()
            .unwrap_or_else(|| self.channel(Channel::KnowledgeConvention))
    }

    /// Sets per-topic mastery.
    pub fn set_topic(&mut self, t: Topic, v: f64) -> &mut SkillSet {
        self.topics.insert(t, v.clamp(0.0, 1.0));
        self
    }
}

/// Per-task latent difficulty draw in `[0, 1)`, deterministic in
/// `(model, task, channel)`.
pub fn task_difficulty(model: &str, task_id: &str, channel: Channel) -> f64 {
    unit_float(&["difficulty", model, task_id, channel.key()])
}

/// Residual failure rate on tasks the model "gets" (per failure unit).
const EASY_RESIDUAL: f64 = 0.07;
/// Success rate retained on tasks the model does not get (per skill unit).
const HARD_RESIDUAL: f64 = 0.02;

/// The per-sample success probability for one channel on one task.
///
/// The per-task distribution is **two-point (bimodal)**, mean-preserving:
/// a model either essentially masters a task on this channel
/// (`p ≈ 1 − 0.07·(1−skill)`) or essentially does not (`p ≈ 0.02·skill`),
/// with the mastered fraction chosen so the task-averaged success equals
/// `skill`. Real LLM benchmarks behave this way — repeated sampling barely
/// rescues tasks the model gets wrong — and it is what keeps pass@5 a
/// modest margin above pass@1 (paper: 43.5 → 55.8 for GPT-4), instead of
/// saturating.
///
/// `temperature` scales the failure probability mildly: higher temperature
/// errs more (the paper sweeps {0.2, 0.5, 0.8} and keeps the best).
pub fn effective_success(
    skill: f64,
    model: &str,
    task_id: &str,
    channel: Channel,
    temperature: f64,
) -> f64 {
    let m = skill.clamp(0.0, 1.0);
    let p_hi = 1.0 - EASY_RESIDUAL * (1.0 - m);
    let p_lo = HARD_RESIDUAL * m;
    // Mastered-task fraction: a·p_hi + (1−a)·p_lo = m.
    let a = (m - p_lo) / (p_hi - p_lo);
    let u = task_difficulty(model, task_id, channel);
    let p_task = if u < a { p_hi } else { p_lo };
    let temp_factor = 0.85 + 0.5 * temperature;
    (1.0 - (1.0 - p_task) * temp_factor).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difficulty_is_deterministic_and_in_range() {
        let a = task_difficulty("m", "t1", Channel::KnowledgeSyntax);
        let b = task_difficulty("m", "t1", Channel::KnowledgeSyntax);
        assert_eq!(a, b);
        assert!((0.0..1.0).contains(&a));
        assert_ne!(a, task_difficulty("m", "t2", Channel::KnowledgeSyntax));
    }

    #[test]
    fn mean_success_tracks_skill() {
        // The two-point mixture is mean-preserving at temp factor 1;
        // at temperature 0.2 (factor 0.95) the mean sits slightly above
        // the raw skill.
        for skill in [0.2f64, 0.5, 0.8, 0.95] {
            let mean: f64 = (0..4000)
                .map(|i| {
                    effective_success(skill, "m", &format!("t{i}"), Channel::LogicExpression, 0.2)
                })
                .sum::<f64>()
                / 4000.0;
            assert!((mean - skill).abs() < 0.06, "skill {skill}: mean {mean}");
        }
    }

    #[test]
    fn higher_temperature_is_never_better_per_task() {
        for i in 0..50 {
            let t = format!("t{i}");
            let lo = effective_success(0.7, "m", &t, Channel::SymbolWaveform, 0.2);
            let hi = effective_success(0.7, "m", &t, Channel::SymbolWaveform, 0.8);
            assert!(hi <= lo + 1e-12);
        }
    }

    #[test]
    fn topic_falls_back_to_channel() {
        let mut s = SkillSet::uniform(0.6);
        assert_eq!(s.topic(Topic::Fsm), 0.6);
        s.set_topic(Topic::Fsm, 0.9);
        assert_eq!(s.topic(Topic::Fsm), 0.9);
        assert_eq!(s.topic(Topic::Counter), 0.6);
    }

    #[test]
    fn skills_clamped() {
        let mut s = SkillSet::uniform(0.5);
        s.set_channel(Channel::KnowledgeSyntax, 1.7);
        assert_eq!(s.channel(Channel::KnowledgeSyntax), 1.0);
        s.set_topic(Topic::Alu, -0.3);
        assert_eq!(s.topic(Topic::Alu), 0.0);
    }
}
