//! Deterministic randomness: every stochastic decision in the simulated
//! LLM derives from a stable hash of `(model, task, sample, purpose)`, so
//! whole experiment tables reproduce bit-for-bit.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// FNV-1a, stable across platforms and runs (unlike `DefaultHasher`).
pub fn stable_hash(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A seeded RNG for the given key parts.
pub fn rng_for(parts: &[&str]) -> StdRng {
    StdRng::seed_from_u64(stable_hash(parts))
}

/// A uniform float in `[0, 1)` for the given key parts (one-shot, no RNG
/// state) — used for per-task latent difficulty draws.
pub fn unit_float(parts: &[&str]) -> f64 {
    (stable_hash(parts) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn stable_across_calls() {
        assert_eq!(stable_hash(&["a", "b"]), stable_hash(&["a", "b"]));
        assert_ne!(stable_hash(&["a", "b"]), stable_hash(&["ab"]));
        assert_ne!(stable_hash(&["a", "b"]), stable_hash(&["b", "a"]));
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for i in 0..1000 {
            let v = unit_float(&["key", &i.to_string()]);
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.05 && hi > 0.95, "poor spread: [{lo}, {hi}]");
    }

    #[test]
    fn rng_reproducible() {
        let a: u64 = rng_for(&["x"]).gen();
        let b: u64 = rng_for(&["x"]).gen();
        assert_eq!(a, b);
    }
}
