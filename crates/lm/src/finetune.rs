//! Fine-tuning dynamics: how a dataset moves a model's skills.
//!
//! The paper fine-tunes with AdamW on 2×A100; we substitute a saturating
//! learning law — `skill' = skill + (ceiling − skill)·(1 − e^(−n/τ))` —
//! applied per skill dimension, where `n` counts the dataset samples that
//! exercise that dimension. The law has the two properties the paper's
//! ablations rely on:
//!
//! * **more data of a kind keeps helping, with diminishing returns**
//!   (Fig. 4's monotone K%/L% grid and the "further enlarging KL-dataset
//!   is still beneficial" remark);
//! * **data quality bounds the outcome**: vanilla captions have lower
//!   ceilings than exemplar-aligned K-data, so `Vanilla < Vanilla+KL`
//!   (Fig. 3) no matter how large the vanilla set grows.

use haven_verilog::analyze::Topic;
use serde::{Deserialize, Serialize};

use crate::profiles::ModelProfile;
use crate::skills::Channel;

/// Which pipeline produced a training sample (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SampleKind {
    /// Step 5: GPT-3.5-captioned code from the scraped corpus.
    Vanilla,
    /// Steps 4–8: exemplar-aligned, compile-verified K-dataset pair.
    Knowledge,
    /// Steps 9–12: generated L-dataset pair.
    Logic,
}

/// Which logical-reasoning category an L-sample trains (§III-D step 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogicCategory {
    /// Finding the concise expression (Karnaugh maps, minimization).
    Expression,
    /// Covering all input combinations / defaults.
    CornerCase,
    /// Faithfully implementing stepwise instructions.
    Instruction,
}

/// One instruction–code training pair, reduced to what the learning law
/// needs. (The full text pairs live in `haven-datagen`.)
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrainSample {
    /// Producing pipeline.
    pub kind: SampleKind,
    /// Design topic of the code.
    pub topic: Topic,
    /// Whether the instruction states reset/edge/enable attributes.
    pub has_attributes: bool,
    /// L-sample category.
    pub logic_category: Option<LogicCategory>,
}

/// Ceilings and time-constants of the learning law.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearningConfig {
    /// (ceiling, tau) for syntax from any sample.
    pub syntax: (f64, f64),
    /// (ceiling, tau) for per-topic conventions from vanilla samples.
    pub vanilla_convention: (f64, f64),
    /// (ceiling, tau) for attributes from vanilla samples.
    pub vanilla_attributes: (f64, f64),
    /// (ceiling, tau) for per-topic conventions from K samples.
    pub knowledge_convention: (f64, f64),
    /// (ceiling, tau) for attributes from K samples (those stating them).
    pub knowledge_attributes: (f64, f64),
    /// (ceiling, tau) for each logic channel from matching L samples.
    pub logic: (f64, f64),
    /// (ceiling, tau) for interface discipline from any sample.
    pub interface: (f64, f64),
}

impl Default for LearningConfig {
    fn default() -> LearningConfig {
        LearningConfig {
            syntax: (0.97, 120.0),
            vanilla_convention: (0.66, 40.0),
            vanilla_attributes: (0.60, 120.0),
            knowledge_convention: (0.78, 9.0),
            knowledge_attributes: (0.76, 25.0),
            logic: (0.78, 6.0),
            interface: (0.96, 120.0),
        }
    }
}

fn raise(current: f64, ceiling: f64, tau: f64, n_effective: f64) -> f64 {
    if n_effective <= 0.0 || ceiling <= current {
        return current;
    }
    current + (ceiling - current) * (1.0 - (-n_effective / tau).exp())
}

/// Fine-tunes `base` on `dataset`, returning the tuned profile (named
/// `HaVen-<base>` when the dataset contains K or L samples, else
/// `Vanilla-<base>`).
pub fn finetune(base: &ModelProfile, dataset: &[TrainSample]) -> ModelProfile {
    finetune_with(base, dataset, &LearningConfig::default())
}

/// [`finetune`] with explicit learning constants (ablation benches).
pub fn finetune_with(
    base: &ModelProfile,
    dataset: &[TrainSample],
    cfg: &LearningConfig,
) -> ModelProfile {
    let mut out = base.clone();
    let eff = |n: usize| n as f64 * base.finetune_efficiency;
    let total = dataset.len();
    let n_attr_k = dataset
        .iter()
        .filter(|s| s.kind == SampleKind::Knowledge && s.has_attributes)
        .count();
    let n_vanilla = dataset
        .iter()
        .filter(|s| s.kind == SampleKind::Vanilla)
        .count();

    // Syntax and interface discipline improve with any data volume.
    let syn = out.skills.channel(Channel::KnowledgeSyntax);
    out.skills.set_channel(
        Channel::KnowledgeSyntax,
        raise(syn, cfg.syntax.0, cfg.syntax.1, eff(total)),
    );
    let ifc = out.skills.channel(Channel::Interface);
    out.skills.set_channel(
        Channel::Interface,
        raise(ifc, cfg.interface.0, cfg.interface.1, eff(total)),
    );

    // Per-topic conventions: vanilla first (lower ceiling), then K-data
    // (higher ceiling) — order does not matter because `raise` never
    // lowers a skill.
    for topic in Topic::ALL {
        let n_v = dataset
            .iter()
            .filter(|s| s.kind == SampleKind::Vanilla && s.topic == topic)
            .count();
        // Logic pairs are precise, verified instruction-code pairs too:
        // they teach their (combinational) topic at knowledge grade.
        let n_k = dataset
            .iter()
            .filter(|s| {
                matches!(s.kind, SampleKind::Knowledge | SampleKind::Logic) && s.topic == topic
            })
            .count();
        if n_v + n_k == 0 {
            continue;
        }
        let mut v = out.skills.topic(topic);
        v = raise(
            v,
            cfg.vanilla_convention.0,
            cfg.vanilla_convention.1,
            eff(n_v),
        );
        v = raise(
            v,
            cfg.knowledge_convention.0,
            cfg.knowledge_convention.1,
            eff(n_k),
        );
        out.skills.set_topic(topic, v);
    }

    // Attributes.
    let mut attr = out.skills.channel(Channel::KnowledgeAttributes);
    attr = raise(
        attr,
        cfg.vanilla_attributes.0,
        cfg.vanilla_attributes.1,
        eff(n_vanilla),
    );
    attr = raise(
        attr,
        cfg.knowledge_attributes.0,
        cfg.knowledge_attributes.1,
        eff(n_attr_k),
    );
    out.skills.set_channel(Channel::KnowledgeAttributes, attr);

    // Logic channels from L samples.
    for (cat, channel) in [
        (LogicCategory::Expression, Channel::LogicExpression),
        (LogicCategory::CornerCase, Channel::LogicCornerCase),
        (LogicCategory::Instruction, Channel::LogicInstruction),
    ] {
        let n = dataset
            .iter()
            .filter(|s| s.logic_category == Some(cat))
            .count();
        let v = out.skills.channel(channel);
        out.skills
            .set_channel(channel, raise(v, cfg.logic.0, cfg.logic.1, eff(n)));
    }

    let has_kl = dataset
        .iter()
        .any(|s| matches!(s.kind, SampleKind::Knowledge | SampleKind::Logic));
    out.name = if has_kl {
        format!("HaVen-{}", base.name)
    } else {
        format!("Vanilla-{}", base.name)
    };
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    fn k_sample(topic: Topic) -> TrainSample {
        TrainSample {
            kind: SampleKind::Knowledge,
            topic,
            has_attributes: true,
            logic_category: None,
        }
    }

    fn v_sample(topic: Topic) -> TrainSample {
        TrainSample {
            kind: SampleKind::Vanilla,
            topic,
            has_attributes: false,
            logic_category: None,
        }
    }

    fn l_sample(cat: LogicCategory) -> TrainSample {
        TrainSample {
            kind: SampleKind::Logic,
            topic: Topic::CombLogic,
            has_attributes: false,
            logic_category: Some(cat),
        }
    }

    #[test]
    fn knowledge_data_beats_vanilla_on_conventions() {
        let base = profiles::base_codeqwen();
        let vanilla: Vec<TrainSample> = (0..200).map(|_| v_sample(Topic::Fsm)).collect();
        let knowledge: Vec<TrainSample> = (0..50).map(|_| k_sample(Topic::Fsm)).collect();
        let after_v = finetune(&base, &vanilla);
        let after_k = finetune(&base, &knowledge);
        assert!(after_k.skills.topic(Topic::Fsm) > after_v.skills.topic(Topic::Fsm));
        // Vanilla still beats base.
        assert!(after_v.skills.topic(Topic::Fsm) > base.skills.topic(Topic::Fsm));
    }

    #[test]
    fn more_data_monotonically_helps() {
        let base = profiles::base_codeqwen();
        let mut prev = base.skills.topic(Topic::Counter);
        for n in [5usize, 20, 80, 300] {
            let data: Vec<TrainSample> = (0..n).map(|_| k_sample(Topic::Counter)).collect();
            let tuned = finetune(&base, &data);
            let now = tuned.skills.topic(Topic::Counter);
            assert!(now >= prev, "n={n}: {now} < {prev}");
            prev = now;
        }
    }

    #[test]
    fn logic_samples_move_only_their_category() {
        let base = profiles::base_codeqwen();
        let data: Vec<TrainSample> = (0..40)
            .map(|_| l_sample(LogicCategory::Expression))
            .collect();
        let tuned = finetune(&base, &data);
        assert!(
            tuned.skills.channel(Channel::LogicExpression)
                > base.skills.channel(Channel::LogicExpression)
        );
        assert_eq!(
            tuned.skills.channel(Channel::LogicInstruction),
            base.skills.channel(Channel::LogicInstruction)
        );
    }

    #[test]
    fn finetuning_never_lowers_a_skill() {
        let base = profiles::gpt4(); // strong base
        let data: Vec<TrainSample> = (0..100).map(|_| v_sample(Topic::Fsm)).collect();
        let tuned = finetune(&base, &data);
        for c in Channel::ALL {
            assert!(tuned.skills.channel(c) >= base.skills.channel(c) - 1e-12);
        }
        assert!(tuned.skills.topic(Topic::Fsm) >= base.skills.topic(Topic::Fsm));
    }

    #[test]
    fn naming_reflects_dataset_composition() {
        let base = profiles::base_deepseek();
        let v: Vec<TrainSample> = (0..10).map(|_| v_sample(Topic::Adder)).collect();
        assert_eq!(finetune(&base, &v).name, "Vanilla-DeepSeek-Coder");
        let mut kl = v;
        kl.push(k_sample(Topic::Adder));
        assert_eq!(finetune(&base, &kl).name, "HaVen-DeepSeek-Coder");
    }
}
