//! # haven-lm
//!
//! The simulated CodeGen-LLM at the heart of the HaVen reproduction.
//!
//! Real LLM fine-tuning is not reproducible on this substrate (no GPUs, no
//! 550k-sample corpus), so this crate substitutes a *mechanistic* model of
//! how code LLMs succeed and fail on Verilog tasks:
//!
//! * a prompt is [`perception::perceive`]d into a faithful
//!   [`Spec`](haven_spec::Spec);
//! * each hallucination channel of the paper's taxonomy (Table II) may
//!   fire — a deterministic Bernoulli draw against a skill-, task- and
//!   temperature-dependent probability ([`skills`]);
//! * a fired channel applies a concrete [corruption](hallucinate) (swap
//!   FSM states, weaken `&&` to `||`, drop the default arm, flip reset
//!   polarity, break the syntax, …);
//! * the plan renders to real Verilog that downstream harnesses compile
//!   and co-simulate — correctness is decided by execution, never by the
//!   coin flip itself.
//!
//! [`finetune`](finetune::finetune) moves skills under a saturating
//! learning law driven by dataset composition, mirroring the paper's
//! K/L-dataset training. [`profiles`] holds calibrated presets for every
//! model in the paper's tables.

#![warn(missing_docs)]

pub mod finetune;
pub mod generate;
pub mod hallucinate;
pub mod model;
pub mod perception;
pub mod profiles;
pub mod rng;
pub mod skills;

pub use finetune::{finetune, SampleKind, TrainSample};
pub use model::{CodeGenModel, GenTrace};
pub use perception::{perceive, Perception};
pub use profiles::ModelProfile;
pub use skills::{Channel, SkillSet};
