//! The simulated CodeGen-LLM.
//!
//! Generation pipeline per sample:
//!
//! 1. [`perceive`] the prompt faithfully;
//! 2. decide, channel by channel, whether this sample hallucinates there
//!    (Bernoulli draw against
//!    [`effective_success`], which mixes
//!    the model's skill, a per-task latent difficulty and the sampling
//!    temperature);
//! 3. apply the matching corruption operators to the generation plan;
//! 4. render the plan to Verilog.
//!
//! Everything is deterministic in `(model name, task id, sample index,
//! temperature)`.

use haven_modality::detect::ModalityKind;
use haven_modality::state_diagram::StateDiagram;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::hallucinate::{self, GenPlan};
use crate::perception::{perceive, Exposure, Perception};
use crate::profiles::ModelProfile;
use crate::rng::rng_for;
use crate::skills::{effective_success, Channel};

/// How much easier a structured (SI-CoT interpreted) modality is to read
/// than a raw one: the failure probability is multiplied by this factor.
/// Calibrated per modality against Table V's HaVen row — SI-CoT nearly
/// solves truth tables, helps state diagrams substantially, but leaves
/// waveform tasks largely hard (paper: 60.0% / 52.4% / 30.8%).
fn structured_risk_factor(kind: ModalityKind) -> f64 {
    match kind {
        ModalityKind::TruthTable => 0.35,
        ModalityKind::Waveform => 0.80,
        ModalityKind::StateDiagram => 0.50,
    }
}

/// One channel decision made while generating a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelDecision {
    /// The channel.
    pub channel: Channel,
    /// Success probability used for the draw.
    pub p_success: f64,
    /// Whether the channel hallucinated on this sample.
    pub fired: bool,
}

/// Diagnostic record of one generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenTrace {
    /// Channel decisions in application order.
    pub decisions: Vec<ChannelDecision>,
    /// Whether the prompt was understood at all.
    pub perceived: bool,
}

impl GenTrace {
    /// Whether any channel hallucinated.
    pub fn any_fired(&self) -> bool {
        self.decisions.iter().any(|d| d.fired)
    }
}

/// A (simulated) code-generation language model.
#[derive(Debug, Clone)]
pub struct CodeGenModel {
    /// The model's identity and skills.
    pub profile: ModelProfile,
    /// Sampling temperature (the paper sweeps 0.2 / 0.5 / 0.8).
    pub temperature: f64,
}

impl CodeGenModel {
    /// Creates a model at the given temperature.
    pub fn new(profile: ModelProfile, temperature: f64) -> CodeGenModel {
        CodeGenModel {
            profile,
            temperature,
        }
    }

    /// Generates one completion for `prompt`.
    ///
    /// `task_id` identifies the benchmark task (it seeds the per-task
    /// difficulty draw); `sample` is the index within the task's `n`
    /// samples.
    pub fn generate(&self, prompt: &str, task_id: &str, sample: usize) -> String {
        self.generate_traced(prompt, task_id, sample).0
    }

    /// [`CodeGenModel::generate`] plus the channel decision trace.
    pub fn generate_traced(
        &self,
        prompt: &str,
        task_id: &str,
        sample: usize,
    ) -> (String, GenTrace) {
        let mut trace = GenTrace {
            decisions: Vec::new(),
            perceived: true,
        };
        let perception = match perceive(prompt) {
            Ok(p) => p,
            Err(_) => {
                trace.perceived = false;
                return (self.fallback_completion(prompt, task_id, sample), trace);
            }
        };
        let mut plan = GenPlan::faithful(perception.spec.clone());
        let sample_key = sample.to_string();

        let decide = |this: &CodeGenModel,
                      trace: &mut GenTrace,
                      channel: Channel,
                      skill: f64,
                      risk_factor: f64|
         -> bool {
            let p = 1.0
                - (1.0
                    - effective_success(
                        skill,
                        &this.profile.name,
                        task_id,
                        channel,
                        this.temperature,
                    ))
                    * risk_factor;
            let mut rng = rng_for(&[
                &this.profile.name,
                task_id,
                &sample_key,
                channel.key(),
                &format!("{:.2}", this.temperature),
            ]);
            let fired = rng.gen::<f64>() >= p;
            trace.decisions.push(ChannelDecision {
                channel,
                p_success: p,
                fired,
            });
            fired
        };

        // --- symbolic channels ------------------------------------------
        for exposure in &perception.exposures {
            let (kind, risk) = match exposure {
                Exposure::RawModality(k) => (*k, 1.0),
                Exposure::StructuredModality(k) => (*k, structured_risk_factor(*k)),
                _ => continue,
            };
            let channel = match kind {
                ModalityKind::TruthTable => Channel::SymbolTruthTable,
                ModalityKind::Waveform => Channel::SymbolWaveform,
                ModalityKind::StateDiagram => Channel::SymbolStateDiagram,
            };
            let skill = self.profile.skills.channel(channel);
            if decide(self, &mut trace, channel, skill, risk) {
                let mut rng = rng_for(&[
                    &self.profile.name,
                    task_id,
                    &sample_key,
                    "corrupt",
                    channel.key(),
                ]);
                match kind {
                    ModalityKind::TruthTable => {
                        hallucinate::corrupt_truth_table(&mut plan, &mut rng)
                    }
                    ModalityKind::Waveform => hallucinate::corrupt_waveform(&mut plan, &mut rng),
                    ModalityKind::StateDiagram => {
                        hallucinate::corrupt_state_diagram(&mut plan, &mut rng)
                    }
                }
            }
        }

        // --- logical channels ---------------------------------------------
        if perception.exposures.contains(&Exposure::WordChain) {
            let skill = self.profile.skills.channel(Channel::LogicExpression);
            if decide(self, &mut trace, Channel::LogicExpression, skill, 1.0) {
                let mut rng =
                    rng_for(&[&self.profile.name, task_id, &sample_key, "corrupt", "lgx"]);
                hallucinate::corrupt_expression(&mut plan, &mut rng);
            }
        }
        if perception.exposures.contains(&Exposure::IfChain) {
            let skill = self.profile.skills.channel(Channel::LogicInstruction);
            if decide(self, &mut trace, Channel::LogicInstruction, skill, 1.0) {
                let mut rng =
                    rng_for(&[&self.profile.name, task_id, &sample_key, "corrupt", "lgi"]);
                hallucinate::corrupt_instruction(&mut plan, &mut rng);
            }
        }
        if exercises_corner_cases(&perception) {
            let skill = self.profile.skills.channel(Channel::LogicCornerCase);
            if decide(self, &mut trace, Channel::LogicCornerCase, skill, 1.0) {
                let mut rng =
                    rng_for(&[&self.profile.name, task_id, &sample_key, "corrupt", "lgc"]);
                hallucinate::corrupt_corner_case(&mut plan, &mut rng);
            }
        }

        // --- knowledge channels --------------------------------------------
        let topic = perception.spec.behavior.topic();
        let conv_skill = self.profile.skills.topic(topic);
        if decide(
            self,
            &mut trace,
            Channel::KnowledgeConvention,
            conv_skill,
            1.0,
        ) {
            let mut rng = rng_for(&[&self.profile.name, task_id, &sample_key, "corrupt", "knc"]);
            hallucinate::corrupt_convention(&mut plan, topic, &mut rng);
        }
        if perception.spec.behavior.is_sequential() {
            let skill = self.profile.skills.channel(Channel::KnowledgeAttributes);
            if decide(self, &mut trace, Channel::KnowledgeAttributes, skill, 1.0) {
                let mut rng =
                    rng_for(&[&self.profile.name, task_id, &sample_key, "corrupt", "kna"]);
                hallucinate::corrupt_attributes(&mut plan, &mut rng);
            }
        }

        // --- interface discipline -------------------------------------------
        if perception.exposures.contains(&Exposure::HeaderGiven) {
            let skill = self.profile.skills.channel(Channel::Interface);
            if decide(self, &mut trace, Channel::Interface, skill, 1.0) {
                let mut rng =
                    rng_for(&[&self.profile.name, task_id, &sample_key, "corrupt", "ifc"]);
                hallucinate::corrupt_interface(&mut plan, &mut rng);
            }
        }

        // --- syntax -----------------------------------------------------------
        let skill = self.profile.skills.channel(Channel::KnowledgeSyntax);
        if decide(self, &mut trace, Channel::KnowledgeSyntax, skill, 1.0) {
            let mut rng = rng_for(&[&self.profile.name, task_id, &sample_key, "corrupt", "kns"]);
            plan.sabotage = Some(hallucinate::pick_sabotage(&mut rng));
        }

        (crate::generate::render(&plan), trace)
    }

    /// When the prompt cannot be understood, real models still emit
    /// *something*; ours emits a syntactically valid stub that will fail
    /// functionally (or an outright broken snippet at low syntax skill).
    fn fallback_completion(&self, _prompt: &str, task_id: &str, sample: usize) -> String {
        let mut rng = rng_for(&[&self.profile.name, task_id, &sample.to_string(), "fallback"]);
        if rng.gen::<f64>() > self.profile.skills.channel(Channel::KnowledgeSyntax) {
            "def module():\n    pass\n".to_string()
        } else {
            "module top_module (\n    input a,\n    output y\n);\n    assign y = a;\nendmodule\n"
                .to_string()
        }
    }

    /// The *CoT prompting model* role (Fig. 1): interprets a state diagram
    /// into the structured NL of Table III. Interpretation through
    /// structured CoT succeeds far more often than inline reading, but is
    /// still fallible — failures propagate a corrupted interpretation.
    pub fn interpret_state_diagram(&self, diagram: &StateDiagram, task_id: &str) -> String {
        let skill = self.profile.skills.channel(Channel::SymbolStateDiagram);
        let p = 1.0
            - (1.0
                - effective_success(
                    skill,
                    &self.profile.name,
                    task_id,
                    Channel::SymbolStateDiagram,
                    self.temperature,
                ))
                * structured_risk_factor(ModalityKind::StateDiagram);
        let mut rng = rng_for(&[&self.profile.name, task_id, "cot-interpret"]);
        if rng.gen::<f64>() < p {
            diagram.to_natural_language()
        } else {
            // Interpret a *corrupted* diagram.
            let mut plan = GenPlan::faithful(
                crate::perception::perceive(&format!(
                    "Implement the finite state machine named `tmp` described by the state diagram below.\n{}",
                    diagram.to_text()
                ))
                .map(|p| p.spec)
                .unwrap_or_else(|_| haven_spec::builders::fsm_ab("tmp")),
            );
            hallucinate::corrupt_state_diagram(&mut plan, &mut rng);
            if let haven_spec::ir::Behavior::Fsm(f) = &plan.spec.behavior {
                fsm_to_diagram(f).to_natural_language()
            } else {
                diagram.to_natural_language()
            }
        }
    }
}

/// Rebuilds a diagram from an FSM spec (for corrupted interpretations).
fn fsm_to_diagram(f: &haven_spec::ir::FsmSpec) -> StateDiagram {
    use haven_modality::state_diagram::StateEdge;
    let mut edges = Vec::new();
    for (i, s) in f.states.iter().enumerate() {
        let (t0, t1) = f.transitions[i];
        for (v, t) in [(0u8, t0), (1u8, t1)] {
            edges.push(StateEdge {
                from: s.clone(),
                output: f.outputs[i],
                input: f.input.clone(),
                input_value: v,
                to: f.states[t].clone(),
            });
        }
    }
    StateDiagram { edges }
}

/// Does the task give the model an opportunity to mishandle corner cases?
///
/// Corner-case hallucination is about *implicit* conditions: a truth
/// table that lists every combination leaves nothing to forget, while a
/// partial table, an ALU with out-of-range opcodes or an if/else chain
/// all have an "otherwise" the model can drop.
fn exercises_corner_cases(p: &Perception) -> bool {
    use haven_spec::ir::Behavior;
    match &p.spec.behavior {
        Behavior::TruthTable(tt) => {
            let full = 1usize << tt.inputs.len().min(16);
            tt.rows.len() < full
        }
        Behavior::Alu(_) => true,
        Behavior::Comb(rules) => rules
            .iter()
            .any(|r| matches!(r.expr, haven_verilog::ast::Expr::Ternary(..))),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::ModelProfile;
    use haven_spec::cosim::cosimulate;
    use haven_spec::describe::{describe, DescribeStyle};
    use haven_spec::stimuli::stimuli_for;
    use haven_spec::{builders, Spec};

    fn perfect() -> CodeGenModel {
        CodeGenModel::new(ModelProfile::uniform("perfect", 1.0), 0.2)
    }

    fn hopeless() -> CodeGenModel {
        CodeGenModel::new(ModelProfile::uniform("hopeless", 0.02), 0.8)
    }

    fn run(model: &CodeGenModel, spec: &Spec, samples: usize) -> usize {
        let prompt = describe(spec, DescribeStyle::Engineer);
        let stim = stimuli_for(spec, 7);
        (0..samples)
            .filter(|&i| {
                let src = model.generate(&prompt, &spec.name, i);
                cosimulate(spec, &src, &stim).verdict.functional_ok()
            })
            .count()
    }

    #[test]
    fn perfect_model_always_passes() {
        for spec in [
            builders::counter("cnt", 4, Some(10)),
            builders::fsm_ab("fsm"),
            builders::adder("add", 8),
            builders::alu(
                "alu",
                8,
                vec![haven_spec::ir::AluOp::Add, haven_spec::ir::AluOp::Sub],
            ),
        ] {
            assert_eq!(run(&perfect(), &spec, 5), 5, "{}", spec.name);
        }
    }

    #[test]
    fn hopeless_model_mostly_fails() {
        let spec = builders::fsm_ab("fsm");
        assert!(run(&hopeless(), &spec, 8) <= 2);
    }

    #[test]
    fn generation_is_deterministic() {
        let model = CodeGenModel::new(ModelProfile::uniform("m", 0.6), 0.5);
        let prompt = describe(&builders::counter("c", 4, None), DescribeStyle::Engineer);
        assert_eq!(
            model.generate(&prompt, "t", 3),
            model.generate(&prompt, "t", 3)
        );
    }

    #[test]
    fn samples_differ_for_imperfect_models() {
        let model = CodeGenModel::new(ModelProfile::uniform("m", 0.5), 0.8);
        let prompt = describe(&builders::fsm_ab("f"), DescribeStyle::Engineer);
        let outputs: std::collections::HashSet<String> =
            (0..10).map(|i| model.generate(&prompt, "t", i)).collect();
        assert!(outputs.len() > 1, "all 10 samples identical");
    }

    #[test]
    fn trace_records_channels() {
        let model = perfect();
        let prompt = describe(&builders::counter("c", 4, None), DescribeStyle::Engineer);
        let (_, trace) = model.generate_traced(&prompt, "t", 0);
        assert!(trace.perceived);
        let channels: Vec<Channel> = trace.decisions.iter().map(|d| d.channel).collect();
        assert!(channels.contains(&Channel::KnowledgeConvention));
        assert!(channels.contains(&Channel::KnowledgeAttributes));
        assert!(channels.contains(&Channel::KnowledgeSyntax));
        assert!(channels.contains(&Channel::Interface));
        assert!(!trace.any_fired());
    }

    #[test]
    fn fallback_on_gibberish() {
        let model = perfect();
        let (src, trace) = model.generate_traced("do the thing", "t", 0);
        assert!(!trace.perceived);
        assert!(src.contains("module"));
    }

    #[test]
    fn cot_interpretation_for_good_model_matches_parser_output() {
        let sd = haven_modality::state_diagram::StateDiagram::parse(
            "A[out=0]-[x=0]->B\nA[out=0]-[x=1]->A\nB[out=1]-[x=0]->A\nB[out=1]-[x=1]->B",
        )
        .unwrap();
        let model = perfect();
        assert_eq!(
            model.interpret_state_diagram(&sd, "t"),
            sd.to_natural_language()
        );
    }
}
