//! Prompt understanding: recovers a [`Spec`] from instruction text.
//!
//! This is the *faithful* reading of a prompt — what a model with perfect
//! skills would understand. Hallucination channels (see
//! [`crate::hallucinate`]) then corrupt this perception stochastically.
//!
//! The parser inverts three prompt registers:
//!
//! 1. the engineer-style sentences of [`haven_spec::describe`];
//! 2. raw symbolic blocks (truth tables, waveforms, state diagrams);
//! 3. the structured natural-language forms SI-CoT produces (Table III).

use haven_modality::detect::{detect, ModalityKind, ParsedModality};
use haven_modality::state_diagram::StateDiagram;
use haven_modality::truth_table::TruthTable;
use haven_spec::describe::{word_binop, ChainArm, IfChain};
use haven_spec::ir::*;
use haven_verilog::analyze::ResetKind;
use haven_verilog::ast::{BinaryOp, Edge, Expr};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// What kinds of hallucination risk a prompt exposes the model to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Exposure {
    /// A raw (unparsed) symbolic block the model must interpret itself.
    RawModality(ModalityKind),
    /// A symbolic block already interpreted into structured NL by SI-CoT.
    StructuredModality(ModalityKind),
    /// A logical expression phrased as a word chain.
    WordChain,
    /// An instructional if/elif/else chain.
    IfChain,
    /// The exact module header was given.
    HeaderGiven,
    /// Reset/edge/enable attributes were stated explicitly.
    AttributesStated,
}

/// A faithful reading of the prompt.
#[derive(Debug, Clone, PartialEq)]
pub struct Perception {
    /// The recovered specification.
    pub spec: Spec,
    /// Risk channels this prompt exercises.
    pub exposures: Vec<Exposure>,
}

impl Perception {
    /// Whether the prompt exposed the model to a raw modality block.
    pub fn has_raw_modality(&self, kind: ModalityKind) -> bool {
        self.exposures.contains(&Exposure::RawModality(kind))
    }
}

/// Failure to recover any task from a prompt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerceiveError {
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for PerceiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot understand prompt: {}", self.message)
    }
}

impl Error for PerceiveError {}

fn err(m: impl Into<String>) -> PerceiveError {
    PerceiveError { message: m.into() }
}

/// Parses a prompt into the task it describes.
///
/// # Errors
///
/// Returns [`PerceiveError`] when no known task shape is recognizable —
/// the simulated model then falls back to emitting a guess.
pub fn perceive(prompt: &str) -> Result<Perception, PerceiveError> {
    // Strip a VerilogEval-v2 style chat envelope if present.
    let body = strip_chat_envelope(prompt);
    let mut exposures = Vec::new();

    // Header (exact interface), if provided anywhere.
    let header = find_header(&body);
    if header.is_some() {
        exposures.push(Exposure::HeaderGiven);
    }

    // Attributes.
    let (attrs, attrs_stated) = parse_attrs(&body);
    if attrs_stated {
        exposures.push(Exposure::AttributesStated);
    }

    // Raw symbolic blocks.
    let blocks = detect(&body);

    // Structured SI-CoT text?
    let structured = parse_structured(&body);

    let lower = body.to_ascii_lowercase();
    let name = find_name(&body, &header);

    // --- dispatch on task shape ---------------------------------------
    let mut spec: Option<Spec> = None;

    if lower.contains("implement the logic below") {
        exposures.push(Exposure::IfChain);
        spec = Some(parse_if_chain_task(&body, &name, &header)?);
    } else if let Some(s) = parse_chain_task(&body, &name, &header) {
        exposures.push(Exposure::WordChain);
        spec = Some(s);
    } else if lower.contains("state machine") || lower.contains("fsm") {
        // FSM from raw diagram or structured interpretation.
        if let Some(block) = blocks.iter().find(|b| b.kind == ModalityKind::StateDiagram) {
            exposures.push(Exposure::RawModality(ModalityKind::StateDiagram));
            let ParsedModality::StateDiagram(sd) = block.parse().map_err(|e| err(e.to_string()))?
            else {
                unreachable!()
            };
            spec = Some(fsm_spec_from_diagram(&sd, &name, &attrs)?);
        } else if let Some(Structured::Fsm(sd)) = &structured {
            exposures.push(Exposure::StructuredModality(ModalityKind::StateDiagram));
            spec = Some(fsm_spec_from_diagram(sd, &name, &attrs)?);
        }
    } else if lower.contains("counter") {
        spec = Some(parse_counter(&lower, &name, &attrs)?);
    } else if lower.contains("shift register") {
        spec = Some(parse_shift_register(&body, &lower, &name, &attrs)?);
    } else if lower.contains("clock divider") {
        spec = Some(parse_clock_divider(&body, &lower, &name, &attrs)?);
    } else if lower.contains("pipeline register") || lower.contains("d register") {
        spec = Some(parse_register(&lower, &name, &attrs)?);
    } else if lower.contains("alu") {
        spec = Some(parse_alu(&body, &lower, &name)?);
    }

    if spec.is_none() {
        // Truth table / waveform tasks (raw or structured) and generic
        // combinational tasks.
        if let Some(block) = blocks.iter().find(|b| b.kind == ModalityKind::TruthTable) {
            exposures.push(Exposure::RawModality(ModalityKind::TruthTable));
            let ParsedModality::TruthTable(tt) = block.parse().map_err(|e| err(e.to_string()))?
            else {
                unreachable!()
            };
            spec = Some(tt_spec(&tt, &name));
        } else if let Some(block) = blocks.iter().find(|b| b.kind == ModalityKind::Waveform) {
            exposures.push(Exposure::RawModality(ModalityKind::Waveform));
            let ParsedModality::Waveform(w) = block.parse().map_err(|e| err(e.to_string()))? else {
                unreachable!()
            };
            spec = Some(waveform_spec(&w, &name));
        } else if let Some(Structured::Table(tt)) = &structured {
            // Structured rules text covers both TT and waveform tasks.
            let kind = if body.contains("When time is") {
                ModalityKind::Waveform
            } else {
                ModalityKind::TruthTable
            };
            exposures.push(Exposure::StructuredModality(kind));
            spec = Some(tt_spec(tt, &name));
        } else if lower.contains("combinational module") || lower.contains("function:") {
            spec = Some(parse_comb(&body, &name)?);
        }
    }

    let mut spec = spec.ok_or_else(|| err("no recognizable task shape"))?;
    if spec.behavior.is_sequential() {
        spec.attrs = attrs;
    }

    // The header, when present, pins down exact port names and widths.
    if let Some(h) = &header {
        apply_header(&mut spec, h);
    }

    Ok(Perception { spec, exposures })
}

// ---- helpers -----------------------------------------------------------

fn strip_chat_envelope(prompt: &str) -> String {
    // "Question:" ... "Answer:" — keep only the question body.
    if let Some(q) = prompt.find("Question:") {
        let rest = &prompt[q + "Question:".len()..];
        let body = match rest.find("Answer:") {
            Some(a) => &rest[..a],
            None => rest,
        };
        body.trim().to_string()
    } else {
        prompt.to_string()
    }
}

/// Extracts backticked fragments of a string.
fn backticked(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find('`') {
        let after = &rest[start + 1..];
        match after.find('`') {
            Some(end) => {
                out.push(after[..end].to_string());
                rest = &after[end + 1..];
            }
            None => break,
        }
    }
    out
}

/// First number matching `<n>-bit` / `<n>-stage`, or after a keyword.
fn number_before(text: &str, suffix: &str) -> Option<u64> {
    let idx = text.find(suffix)?;
    let head = &text[..idx];
    let digits: String = head
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    let digits: String = digits.chars().rev().collect();
    digits.parse().ok()
}

fn number_after(text: &str, prefix: &str) -> Option<u64> {
    let idx = text.find(prefix)?;
    let tail = text[idx + prefix.len()..].trim_start();
    let digits: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// A `module name (ports...);` header anywhere in the prompt.
fn find_header(body: &str) -> Option<haven_verilog::ast::Module> {
    for (idx, _) in body.match_indices("module ") {
        let tail = &body[idx..];
        let Some(end) = tail.find(';') else { continue };
        let text = format!("{} endmodule", &tail[..=end]);
        if let Ok(f) = haven_verilog::parser::parse(&text) {
            return f.modules.into_iter().next();
        }
    }
    None
}

fn find_name(body: &str, header: &Option<haven_verilog::ast::Module>) -> String {
    if let Some(h) = header {
        return h.name.clone();
    }
    for marker in ["named `", "called `"] {
        if let Some(i) = body.find(marker) {
            let tail = &body[i + marker.len()..];
            if let Some(end) = tail.find('`') {
                return tail[..end].to_string();
            }
        }
    }
    for marker in ["named ", "called "] {
        if let Some(i) = body.find(marker) {
            let tail = &body[i + marker.len()..];
            let word: String = tail
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if !word.is_empty() {
                return word;
            }
        }
    }
    "top_module".to_string()
}

fn parse_attrs(body: &str) -> (AttrSpec, bool) {
    let lower = body.to_ascii_lowercase();
    let mut attrs = AttrSpec::default();
    let mut stated = false;
    let named_after = |key: &str| -> Option<String> {
        let i = lower.find(key)?;
        let ticks = backticked(&body[i + key.len()..]);
        ticks.into_iter().next()
    };
    if lower.contains("asynchronous active-low reset") {
        attrs.reset = Some(ResetSpec {
            name: named_after("asynchronous active-low reset named ")
                .unwrap_or_else(|| "rst_n".into()),
            kind: ResetKind::AsyncActiveLow,
        });
        stated = true;
    } else if lower.contains("asynchronous active-high reset") {
        attrs.reset = Some(ResetSpec {
            name: named_after("asynchronous active-high reset named ")
                .unwrap_or_else(|| "rst".into()),
            kind: ResetKind::AsyncActiveHigh,
        });
        stated = true;
    } else if lower.contains("synchronous reset") {
        attrs.reset = Some(ResetSpec {
            name: named_after("synchronous reset named ").unwrap_or_else(|| "rst".into()),
            kind: ResetKind::Sync,
        });
        stated = true;
    }
    if lower.contains("negative edge") {
        attrs.edge = Edge::Neg;
        stated = true;
    }
    if lower.contains("active-high enable") {
        attrs.enable = Some(EnableSpec {
            name: named_after("active-high enable named ").unwrap_or_else(|| "en".into()),
            active_high: true,
        });
        stated = true;
    } else if lower.contains("active-low enable") {
        attrs.enable = Some(EnableSpec {
            name: named_after("active-low enable named ").unwrap_or_else(|| "en".into()),
            active_high: false,
        });
        stated = true;
    }
    (attrs, stated)
}

fn apply_header(spec: &mut Spec, header: &haven_verilog::ast::Module) {
    spec.name = header.name.clone();
    // Keep behaviour; adopt port names/widths where they correspond by
    // position among data inputs and outputs.
    use haven_verilog::ast::Direction;
    let widths: Vec<(String, usize, Direction)> = header
        .ports
        .iter()
        .filter_map(|p| {
            let d = p.direction?;
            let w = match &p.range {
                Some(r) => {
                    let msb = haven_verilog::eval::eval_const(&r.msb)?.to_u64()? as usize;
                    let lsb = haven_verilog::eval::eval_const(&r.lsb)?.to_u64()? as usize;
                    msb - lsb + 1
                }
                None => 1,
            };
            Some((p.name.clone(), w, d))
        })
        .collect();
    let control: Vec<String> = spec
        .attrs
        .control_ports()
        .into_iter()
        .map(|p| p.name)
        .collect();
    let ins: Vec<(String, usize)> = widths
        .iter()
        .filter(|(n, _, d)| *d == Direction::Input && !control.contains(n))
        .map(|(n, w, _)| (n.clone(), *w))
        .collect();
    let outs: Vec<(String, usize)> = widths
        .iter()
        .filter(|(_, _, d)| *d == Direction::Output)
        .map(|(n, w, _)| (n.clone(), *w))
        .collect();
    let mut renames: Vec<(String, String)> = Vec::new();
    if ins.len() == spec.inputs.len() {
        for (port, (n, w)) in spec.inputs.iter_mut().zip(&ins) {
            if port.name != *n {
                renames.push((port.name.clone(), n.clone()));
            }
            port.name = n.clone();
            port.width = *w;
        }
    }
    if outs.len() == spec.outputs.len() {
        for (port, (n, w)) in spec.outputs.iter_mut().zip(&outs) {
            if port.name != *n {
                renames.push((port.name.clone(), n.clone()));
            }
            port.name = n.clone();
            port.width = *w;
        }
    }
    for (old, new) in renames {
        rename_port_in_behavior(&mut spec.behavior, &old, &new);
    }
}

/// Renames a port everywhere the behaviour references it.
pub fn rename_port_in_behavior(b: &mut Behavior, old: &str, new: &str) {
    let fix = |s: &mut String| {
        if s == old {
            *s = new.to_string();
        }
    };
    match b {
        Behavior::Comb(rules) => {
            for r in rules {
                fix(&mut r.output);
                rename_in_expr(&mut r.expr, old, new);
            }
        }
        Behavior::TruthTable(tt) => {
            tt.inputs.iter_mut().for_each(fix);
            tt.outputs.iter_mut().for_each(fix);
        }
        Behavior::Fsm(f) => {
            fix(&mut f.input);
            fix(&mut f.output);
        }
        Behavior::Counter(c) => fix(&mut c.output),
        Behavior::ShiftReg(s) => {
            fix(&mut s.serial_in);
            fix(&mut s.output);
        }
        Behavior::ClockDiv(c) => fix(&mut c.output),
        Behavior::Register(r) => {
            fix(&mut r.input);
            fix(&mut r.output);
        }
        Behavior::Alu(a) => {
            fix(&mut a.a);
            fix(&mut a.b);
            fix(&mut a.op);
            fix(&mut a.y);
        }
    }
}

fn rename_in_expr(e: &mut Expr, old: &str, new: &str) {
    match e {
        Expr::Ident(n) | Expr::Index(n, _) | Expr::Slice(n, _, _) => {
            if n == old {
                *n = new.to_string();
            }
        }
        Expr::Literal(_) => {}
        Expr::Unary(_, a) => rename_in_expr(a, old, new),
        Expr::Binary(_, a, b) => {
            rename_in_expr(a, old, new);
            rename_in_expr(b, old, new);
        }
        Expr::Ternary(c, t, f) => {
            rename_in_expr(c, old, new);
            rename_in_expr(t, old, new);
            rename_in_expr(f, old, new);
        }
        Expr::Concat(parts) => parts.iter_mut().for_each(|p| rename_in_expr(p, old, new)),
        Expr::Replicate(n, inner) => {
            rename_in_expr(n, old, new);
            rename_in_expr(inner, old, new);
        }
    }
}

// ---- structured SI-CoT text ---------------------------------------------

enum Structured {
    Table(TruthTable),
    Fsm(StateDiagram),
}

fn parse_structured(body: &str) -> Option<Structured> {
    if body.contains("States&Outputs:") {
        return parse_structured_fsm(body).map(Structured::Fsm);
    }
    if body.contains("Variables:") && body.contains("Rules:") {
        return parse_structured_rules(body).map(Structured::Table);
    }
    None
}

/// Parses `Variables: 1. a(input); ... Rules: 1. If a=0, b=1, then out=0;`
/// and the waveform variant `When time is 0ns, a=0, b=1, out=1;` into a
/// truth table.
fn parse_structured_rules(body: &str) -> Option<TruthTable> {
    let vars_idx = body.find("Variables:")?;
    let rules_idx = body.find("Rules:")?;
    let vars_text = &body[vars_idx + "Variables:".len()..rules_idx];
    let rules_text = &body[rules_idx + "Rules:".len()..];

    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    for item in vars_text.split(';') {
        let item = item.trim();
        let Some(open) = item.find('(') else { continue };
        let name = item[..open]
            .rsplit(|c: char| c.is_whitespace() || c == '.')
            .next()?
            .trim()
            .to_string();
        if item[open..].starts_with("(input") {
            inputs.push(name);
        } else if item[open..].starts_with("(output") {
            outputs.push(name);
        }
    }
    if inputs.is_empty() || outputs.is_empty() {
        return None;
    }

    let mut rows: Vec<(u64, u64)> = Vec::new();
    for rule in rules_text.split(';') {
        let rule = rule.trim();
        if rule.is_empty() {
            continue;
        }
        // Collect name=value pairs regardless of phrasing.
        let mut in_bits = 0u64;
        let mut out_bits = 0u64;
        let mut seen_in = 0usize;
        let mut seen_out = 0usize;
        for token in rule
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|t| t.contains('='))
        {
            let (k, v) = token.split_once('=')?;
            let k = k.trim();
            let v: u64 = v.trim().trim_end_matches('.').parse().ok()?;
            if let Some(pos) = inputs.iter().position(|n| n == k) {
                in_bits |= (v & 1) << (inputs.len() - 1 - pos);
                seen_in += 1;
            } else if let Some(pos) = outputs.iter().position(|n| n == k) {
                out_bits |= (v & 1) << (outputs.len() - 1 - pos);
                seen_out += 1;
            }
        }
        if seen_in == inputs.len()
            && seen_out == outputs.len()
            && !rows.iter().any(|(i, _)| *i == in_bits)
        {
            rows.push((in_bits, out_bits));
        }
    }
    if rows.is_empty() {
        return None;
    }
    Some(TruthTable {
        inputs,
        outputs,
        rows,
    })
}

/// Parses `States&Outputs: 1. state A(out=0); ... State transition: 1.
/// From state A: If x = 0, then transit to state B; ...`.
fn parse_structured_fsm(body: &str) -> Option<StateDiagram> {
    use haven_modality::state_diagram::StateEdge;
    let so_idx = body.find("States&Outputs:")?;
    let tr_idx = body.find("State transition:")?;
    let so_text = &body[so_idx + "States&Outputs:".len()..tr_idx];
    let tr_text = &body[tr_idx + "State transition:".len()..];

    let mut outputs: Vec<(String, u64)> = Vec::new();
    for item in so_text.split(';') {
        let item = item.trim();
        let Some(i) = item.find("state ") else {
            continue;
        };
        let rest = &item[i + "state ".len()..];
        let open = rest.find('(')?;
        let name = rest[..open].trim().to_string();
        let out_val: u64 = rest[open..]
            .trim_start_matches('(')
            .trim_start_matches("out=")
            .trim_end_matches(')')
            .parse()
            .ok()?;
        outputs.push((name, out_val));
    }

    let mut edges = Vec::new();
    // Split into per-state clauses on "From state".
    for clause in tr_text.split("From state ").skip(1) {
        let colon = clause.find(':')?;
        let from = clause[..colon].trim().to_string();
        let from_out = outputs
            .iter()
            .find(|(n, _)| *n == from)
            .map(|(_, v)| *v)
            .unwrap_or(0);
        for cond in clause[colon + 1..].split(';') {
            let cond = cond.trim();
            let Some(if_idx) = cond.find("If ") else {
                continue;
            };
            let Some(then_idx) = cond.find("then transit to state ") else {
                continue;
            };
            let test = &cond[if_idx + 3..then_idx];
            let (input, val) = test.split_once('=')?;
            let input = input.trim().to_string();
            let input_value: u8 = val.trim().trim_end_matches(',').parse().ok()?;
            let to = cond[then_idx + "then transit to state ".len()..]
                .trim()
                .trim_end_matches('.')
                .to_string();
            edges.push(StateEdge {
                from: from.clone(),
                output: from_out,
                input,
                input_value,
                to,
            });
        }
    }
    if edges.is_empty() {
        return None;
    }
    Some(StateDiagram { edges })
}

// ---- per-shape spec builders --------------------------------------------

fn tt_spec(tt: &TruthTable, name: &str) -> Spec {
    Spec {
        name: name.to_string(),
        inputs: tt.inputs.iter().map(PortSpec::bit).collect(),
        outputs: tt.outputs.iter().map(PortSpec::bit).collect(),
        behavior: Behavior::TruthTable(tt.to_spec()),
        attrs: AttrSpec::default(),
    }
}

fn waveform_spec(w: &haven_modality::waveform::Waveform, name: &str) -> Spec {
    let inputs: Vec<String> = w.input_names().iter().map(|s| s.to_string()).collect();
    let outputs: Vec<String> = w.output_names().iter().map(|s| s.to_string()).collect();
    let mut rows = w.to_samples();
    rows.sort_unstable();
    Spec {
        name: name.to_string(),
        inputs: inputs.iter().map(PortSpec::bit).collect(),
        outputs: outputs.iter().map(PortSpec::bit).collect(),
        behavior: Behavior::TruthTable(haven_spec::ir::TruthTableSpec {
            inputs,
            outputs,
            rows,
        }),
        attrs: AttrSpec::default(),
    }
}

fn fsm_spec_from_diagram(
    sd: &StateDiagram,
    name: &str,
    _attrs: &AttrSpec,
) -> Result<Spec, PerceiveError> {
    let f = sd.to_fsm_spec("out", 1).map_err(|e| err(e.to_string()))?;
    Ok(Spec {
        name: name.to_string(),
        inputs: vec![PortSpec::bit(f.input.clone())],
        outputs: vec![PortSpec::new(f.output.clone(), f.output_width)],
        behavior: Behavior::Fsm(f),
        attrs: AttrSpec::conventional(),
    })
}

fn parse_counter(lower: &str, name: &str, _attrs: &AttrSpec) -> Result<Spec, PerceiveError> {
    let width = number_before(lower, "-bit").unwrap_or(4) as usize;
    let direction = if lower.contains(" down counter") {
        CountDirection::Down
    } else {
        CountDirection::Up
    };
    let modulus = number_after(lower, "modulo ");
    let mut spec = haven_spec::builders::counter(name, width.clamp(1, 64), modulus);
    if let Behavior::Counter(c) = &mut spec.behavior {
        c.direction = direction;
    }
    Ok(spec)
}

fn parse_shift_register(
    body: &str,
    lower: &str,
    name: &str,
    _attrs: &AttrSpec,
) -> Result<Spec, PerceiveError> {
    let width = number_before(lower, "-bit").unwrap_or(8) as usize;
    let direction = if lower.contains("shifts right") || lower.contains("shift right") {
        ShiftDirection::Right
    } else {
        ShiftDirection::Left
    };
    let mut spec = haven_spec::builders::shift_register(name, width.clamp(1, 64), direction);
    if let Some(i) = lower.find("serial input") {
        if let Some(n) = backticked(&body[i..]).into_iter().next() {
            if let Behavior::ShiftReg(s) = &mut spec.behavior {
                s.serial_in = n.clone();
            }
            spec.inputs[0].name = n;
        }
    }
    if let Some(i) = lower.find("parallel output") {
        if let Some(n) = backticked(&body[i..]).into_iter().next() {
            if let Behavior::ShiftReg(s) = &mut spec.behavior {
                s.output = n.clone();
            }
            spec.outputs[0].name = n;
        }
    }
    Ok(spec)
}

fn parse_clock_divider(
    body: &str,
    lower: &str,
    name: &str,
    _attrs: &AttrSpec,
) -> Result<Spec, PerceiveError> {
    let hp = number_after(lower, "toggles every ").unwrap_or(2);
    let mut spec = haven_spec::builders::clock_divider(name, hp.max(1));
    if let Some(i) = lower.find("output") {
        if let Some(n) = backticked(&body[i..]).into_iter().next() {
            if let Behavior::ClockDiv(c) = &mut spec.behavior {
                c.output = n.clone();
            }
            spec.outputs[0].name = n;
        }
    }
    Ok(spec)
}

fn parse_register(lower: &str, name: &str, _attrs: &AttrSpec) -> Result<Spec, PerceiveError> {
    let width = number_before(lower, "-bit").unwrap_or(8) as usize;
    let stages = number_before(lower, "-stage").unwrap_or(1) as usize;
    Ok(haven_spec::builders::pipeline(
        name,
        width.clamp(1, 64),
        stages.clamp(1, 8),
    ))
}

fn parse_alu(body: &str, lower: &str, name: &str) -> Result<Spec, PerceiveError> {
    let width = number_before(lower, "-bit").unwrap_or(8) as usize;
    let mut ops = Vec::new();
    if let Some(i) = body.find("Opcodes:") {
        let line = body[i + "Opcodes:".len()..]
            .lines()
            .next()
            .unwrap_or_default();
        for item in line.split(';') {
            let Some((_, mnemonic)) = item.split_once(':') else {
                continue;
            };
            let m = mnemonic.trim().trim_end_matches('.').to_ascii_uppercase();
            let op = match m.as_str() {
                "ADD" => AluOp::Add,
                "SUB" => AluOp::Sub,
                "AND" => AluOp::And,
                "OR" => AluOp::Or,
                "XOR" => AluOp::Xor,
                "NOT" => AluOp::NotA,
                "SHL" => AluOp::ShlA,
                "SHR" => AluOp::ShrA,
                _ => continue,
            };
            ops.push(op);
        }
    }
    if ops.is_empty() {
        ops = vec![AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or];
    }
    Ok(haven_spec::builders::alu(name, width.clamp(1, 64), ops))
}

fn parse_comb(body: &str, name: &str) -> Result<Spec, PerceiveError> {
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    let mut rules = Vec::new();
    for line in body.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("Inputs:") {
            inputs = parse_port_list(rest);
        } else if let Some(rest) = t.strip_prefix("Outputs:") {
            outputs = parse_port_list(rest);
        } else if let Some(rest) = t.strip_prefix("Function:") {
            let rest = rest.trim().trim_end_matches(';');
            let (out, expr_text) = rest
                .split_once('=')
                .ok_or_else(|| err("malformed Function line"))?;
            let expr = haven_verilog::parser::parse_expr(expr_text.trim())
                .map_err(|e| err(format!("bad function expression: {e}")))?;
            rules.push(CombRule {
                output: out.trim().to_string(),
                expr,
            });
        }
    }
    if rules.is_empty() {
        return Err(err("combinational task without Function lines"));
    }
    if inputs.is_empty() {
        // Infer from expression reads.
        let mut reads = Vec::new();
        for r in &rules {
            r.expr.collect_reads(&mut reads);
        }
        reads.sort();
        reads.dedup();
        inputs = reads.into_iter().map(PortSpec::bit).collect();
    }
    if outputs.is_empty() {
        outputs = rules
            .iter()
            .map(|r| PortSpec::bit(r.output.clone()))
            .collect();
    }
    Ok(Spec {
        name: name.to_string(),
        inputs,
        outputs,
        behavior: Behavior::Comb(rules),
        attrs: AttrSpec::default(),
    })
}

fn parse_port_list(rest: &str) -> Vec<PortSpec> {
    // "`a` (4 bits), `b` (1 bit)."
    let mut out = Vec::new();
    for item in rest.split(',') {
        let names = backticked(item);
        let Some(name) = names.into_iter().next() else {
            continue;
        };
        let width = number_after(item, "(").unwrap_or(1) as usize;
        out.push(PortSpec::new(name, width.clamp(1, 64)));
    }
    out
}

/// `The output `y` equals a plus b, then or c.`
fn parse_chain_task(
    body: &str,
    name: &str,
    _header: &Option<haven_verilog::ast::Module>,
) -> Option<Spec> {
    let lower = body.to_ascii_lowercase();
    let idx = lower.find("equals ")?;
    // Only treat as a chain task when the marker phrasing is present.
    if !lower.contains("the output") {
        return None;
    }
    let out_name = backticked(&body[..idx])
        .into_iter()
        .last()
        .unwrap_or_else(|| "out".to_string());
    let tail = body[idx + "equals ".len()..]
        .lines()
        .next()?
        .trim()
        .trim_end_matches('.');
    let tokens: Vec<String> = tail
        .replace(',', " , ")
        .split_whitespace()
        .map(str::to_string)
        .collect();
    // Grammar: ident (op ident)（, then op ident)*
    let mut iter = tokens.iter().peekable();
    let first = iter.next()?.clone();
    if !first.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    let mut rest: Vec<(BinaryOp, String)> = Vec::new();
    while let Some(tok) = iter.next() {
        let op_word = if tok == "," {
            // ", then <op>"
            if iter.next().map(String::as_str) != Some("then") {
                return None;
            }
            iter.next()?.clone()
        } else {
            tok.clone()
        };
        let op = word_binop(&op_word)?;
        let operand = iter.next()?.clone();
        rest.push((op, operand));
    }
    if rest.is_empty() {
        return None;
    }
    let expr = haven_spec::describe::chain_expr(&first, &rest);
    let mut reads = vec![first];
    reads.extend(rest.iter().map(|(_, o)| o.clone()));
    reads.sort();
    reads.dedup();
    let width = number_before(&lower, "-bit").unwrap_or(1) as usize;
    Some(Spec {
        name: name.to_string(),
        inputs: reads.into_iter().map(|n| PortSpec::new(n, width)).collect(),
        outputs: vec![PortSpec::new(out_name.clone(), width)],
        behavior: Behavior::Comb(vec![CombRule {
            output: out_name,
            expr,
        }]),
        attrs: AttrSpec::default(),
    })
}

/// `Implement the logic below:\nif a == 0 && b == 0; out = 0;\nelif ...\nelse; out = 1;`
fn parse_if_chain_task(
    body: &str,
    name: &str,
    _header: &Option<haven_verilog::ast::Module>,
) -> Result<Spec, PerceiveError> {
    let mut arms = Vec::new();
    let mut else_value = 0u64;
    let mut output = "out".to_string();
    for line in body.lines() {
        let t = line.trim();
        let (cond_part, assign_part) = if let Some(rest) = t.strip_prefix("if ") {
            let Some((c, a)) = rest.split_once(';') else {
                continue;
            };
            (Some(c), a)
        } else if let Some(rest) = t.strip_prefix("elif ") {
            let Some((c, a)) = rest.split_once(';') else {
                continue;
            };
            (Some(c), a)
        } else if let Some(rest) = t.strip_prefix("else;") {
            (None, rest)
        } else {
            continue;
        };
        let Some((o, v)) = assign_part.split_once('=') else {
            continue;
        };
        output = o.trim().to_string();
        let value: u64 = v
            .trim()
            .trim_end_matches(';')
            .parse()
            .map_err(|_| err("bad output value in logic chain"))?;
        match cond_part {
            Some(c) => {
                let mut conditions = Vec::new();
                for clause in c.split("&&") {
                    let Some((var, val)) = clause.split_once("==") else {
                        return Err(err("bad condition in logic chain"));
                    };
                    conditions.push((
                        var.trim().to_string(),
                        val.trim().parse().map_err(|_| err("bad condition value"))?,
                    ));
                }
                arms.push(ChainArm {
                    conditions,
                    output_value: value,
                });
            }
            None => else_value = value,
        }
    }
    if arms.is_empty() {
        return Err(err("logic chain has no arms"));
    }
    let chain = IfChain { arms, else_value };
    let mut input_names: Vec<String> = Vec::new();
    for arm in &chain.arms {
        for (n, _) in &arm.conditions {
            if !input_names.contains(n) {
                input_names.push(n.clone());
            }
        }
    }
    let expr = chain.to_expr(&|_| 1, 1);
    Ok(Spec {
        name: name.to_string(),
        inputs: input_names.iter().map(PortSpec::bit).collect(),
        outputs: vec![PortSpec::bit(output.clone())],
        behavior: Behavior::Comb(vec![CombRule { output, expr }]),
        attrs: AttrSpec::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use haven_spec::builders;
    use haven_spec::describe::{describe, DescribeStyle};

    /// Every engineer-style description must round-trip through
    /// perception back to an equivalent spec.
    #[test]
    fn engineer_descriptions_roundtrip() {
        use haven_spec::ir::{AluOp, ShiftDirection};
        let specs = vec![
            builders::counter("cnt", 4, Some(10)),
            builders::down_counter("dc", 6, None),
            builders::shift_register("sr", 8, ShiftDirection::Right),
            builders::clock_divider("cd", 3),
            builders::pipeline("pipe", 8, 3),
            builders::register("r", 16),
            builders::alu("alu", 8, vec![AluOp::Add, AluOp::Sub, AluOp::Xor]),
            builders::adder("add", 8),
            builders::mux2("mux", 4),
        ];
        for spec in specs {
            let prompt = describe(&spec, DescribeStyle::Engineer);
            let p = perceive(&prompt).unwrap_or_else(|e| panic!("{}: {e}\n{prompt}", spec.name));
            assert_eq!(p.spec.behavior, spec.behavior, "behavior for {}", spec.name);
            assert_eq!(p.spec.attrs, spec.attrs, "attrs for {}", spec.name);
            assert_eq!(p.spec.name, spec.name);
            assert!(p.exposures.contains(&Exposure::HeaderGiven));
        }
    }

    #[test]
    fn raw_state_diagram_perceived() {
        let prompt = "Implement the finite state machine named `fsm` described by the state diagram below.\nA[out=0]-[x=0]->B\nA[out=0]-[x=1]->A\nB[out=1]-[x=0]->A\nB[out=1]-[x=1]->B\nUse an asynchronous active-low reset named `rst_n`.";
        let p = perceive(prompt).unwrap();
        assert!(p.has_raw_modality(ModalityKind::StateDiagram));
        let Behavior::Fsm(f) = &p.spec.behavior else {
            panic!()
        };
        assert_eq!(f.transitions, vec![(1, 0), (0, 1)]);
    }

    #[test]
    fn structured_fsm_text_perceived_without_raw_exposure() {
        let prompt = "Implement the finite state machine named `fsm`.\nStates&Outputs: 1. state A(out=0); 2. state B(out=1);\nState transition: 1. From state A: If x = 0, then transit to state B; If x = 1, then transit to state A; 2. From state B: If x = 0, then transit to state A; If x = 1, then transit to state B;\nUse an asynchronous active-low reset named `rst_n`.";
        let p = perceive(prompt).unwrap();
        assert!(!p.has_raw_modality(ModalityKind::StateDiagram));
        assert!(p
            .exposures
            .contains(&Exposure::StructuredModality(ModalityKind::StateDiagram)));
        let Behavior::Fsm(f) = &p.spec.behavior else {
            panic!()
        };
        assert_eq!(f.transitions, vec![(1, 0), (0, 1)]);
    }

    #[test]
    fn raw_truth_table_perceived() {
        let prompt = "Implement a combinational module named `tt` realizing the truth table below.\na b out\n0 0 0\n0 1 0\n1 0 0\n1 1 1";
        let p = perceive(prompt).unwrap();
        assert!(p.has_raw_modality(ModalityKind::TruthTable));
        let Behavior::TruthTable(tt) = &p.spec.behavior else {
            panic!()
        };
        assert_eq!(tt.lookup(0b11), 1);
    }

    #[test]
    fn structured_rules_text_perceived() {
        let prompt = "Implement a combinational module named `tt`.\nVariables: 1. a(input); 2. b(input); 3. out(output);\nRules: 1. If a=0, b=0, then out=0; 2. If a=0, b=1, then out=0; 3. If a=1, b=0, then out=0; 4. If a=1, b=1, then out=1;";
        let p = perceive(prompt).unwrap();
        assert!(p
            .exposures
            .contains(&Exposure::StructuredModality(ModalityKind::TruthTable)));
        let Behavior::TruthTable(tt) = &p.spec.behavior else {
            panic!()
        };
        assert_eq!(tt.rows.len(), 4);
        assert_eq!(tt.lookup(0b11), 1);
    }

    #[test]
    fn waveform_chart_perceived() {
        let prompt = "Implement a combinational module named `w` matching the waveform below.\na: 0 1 0 1\nb: 0 0 1 1\nout: 0 0 0 1\ntime(ns): 0 10 20 30";
        let p = perceive(prompt).unwrap();
        assert!(p.has_raw_modality(ModalityKind::Waveform));
        let Behavior::TruthTable(tt) = &p.spec.behavior else {
            panic!()
        };
        assert_eq!(tt.lookup(0b11), 1);
        assert_eq!(tt.lookup(0b10), 0);
    }

    #[test]
    fn chain_words_task_perceived() {
        let prompt = "Create a module named `m`. The output `out` equals a plus b, then or c.";
        let p = perceive(prompt).unwrap();
        assert!(p.exposures.contains(&Exposure::WordChain));
        let Behavior::Comb(rules) = &p.spec.behavior else {
            panic!()
        };
        assert_eq!(
            haven_verilog::pretty::pretty_expr(&rules[0].expr),
            "(a + b) | c"
        );
    }

    #[test]
    fn if_chain_task_perceived() {
        let chain = IfChain {
            arms: vec![
                ChainArm {
                    conditions: vec![("a".into(), 0), ("b".into(), 0)],
                    output_value: 0,
                },
                ChainArm {
                    conditions: vec![("a".into(), 1), ("b".into(), 0)],
                    output_value: 0,
                },
            ],
            else_value: 1,
        };
        let prompt = format!("Create a module named `m`.\n{}", chain.to_text("out"));
        let p = perceive(&prompt).unwrap();
        assert!(p.exposures.contains(&Exposure::IfChain));
        let Behavior::Comb(rules) = &p.spec.behavior else {
            panic!()
        };
        assert_eq!(rules[0].output, "out");
        assert_eq!(p.spec.inputs.len(), 2);
    }

    #[test]
    fn chat_envelope_stripped() {
        let prompt = "Question:\nImplement a 4-bit up counter named `c` with output `q`.\nUse an asynchronous active-low reset named `rst_n`.\nThe module header is: `module c (input clk, input rst_n, output [3:0] q);`\nAnswer:";
        let p = perceive(prompt).unwrap();
        assert!(matches!(p.spec.behavior, Behavior::Counter(_)));
        assert_eq!(p.spec.name, "c");
    }

    #[test]
    fn gibberish_is_an_error() {
        assert!(perceive("please write something nice").is_err());
    }

    #[test]
    fn header_overrides_port_names() {
        let prompt = "Implement a 4-bit up counter named `cnt` with output `count`.\nUse an asynchronous active-low reset named `rst_n`.\nThe module header is: `module cnt (input clk, input rst_n, output [3:0] count);`";
        let p = perceive(prompt).unwrap();
        assert_eq!(p.spec.outputs[0].name, "count");
    }
}
