//! Bitblasting: symbolic execution of compiled bytecode into an AIG.
//!
//! The blaster mirrors [`haven_verilog::exec::CompiledSim`] instruction
//! by instruction, but carries a [`Lit`] per bit instead of a packed
//! four-state word. Free inputs become AIG primary inputs, so after a
//! poke/tick schedule every signal holds a vector of literals that *is*
//! the design's next-state/output function of those inputs.
//!
//! # The two-valued abstraction
//!
//! The executor is four-state; the AIG is two-valued. Each symbolic
//! value pairs its literals with per-bit **symbolic taint planes**
//! ([`SVal::x`]): the taint is itself an AIG literal, evaluated under
//! the same free-input assignment as the value bits, and maintains one
//! per-valuation invariant:
//!
//! > under any assignment of the free inputs, if `x[i]` evaluates to
//! > false, the executor's bit is **known** (0/1) and equals the
//! > literal `bits[i]` under that assignment; where `x[i]` evaluates
//! > true, no claim is made about that bit at all.
//!
//! `Lit::FALSE` taint means "known everywhere" (the old untainted
//! case), `Lit::TRUE` means "no claim anywhere", and any other literal
//! is a *conditional* taint — exactly what an uninitialized `reg`
//! assigned through a guarded chain needs. When a `case` with a
//! `default` covers every path, the residual taint literal is
//! unsatisfiable, and the SAT stage downstream can discharge it instead
//! of giving up with `Unknown`.
//!
//! Taint is introduced exactly where the executor introduces `x`/`z`
//! (uninitialized state, division by a possibly-zero divisor, …) or
//! where the two-valued domain cannot track the executor (an `if` whose
//! condition is tainted guards its writes with the taint). Every
//! transfer function below either reproduces the executor's `cval`
//! semantics exactly on taint-free valuations or widens to taint;
//! width-decision points (loop bounds, replication counts, part-select
//! bounds) still require *definitely* untainted operands: constructs
//! whose *width* would become data-dependent (dynamic part-selects,
//! dynamic replication) abort with [`BlastError`] instead, because a
//! wrong width cannot be expressed as per-bit taint once a concat shifts
//! bit positions. The equivalence checker downstream treats taint on a
//! compared output as "unknown", never as "equal" — see DESIGN.md §16
//! for the soundness argument.
//!
//! # Scheduling
//!
//! Only levelized designs are blasted (the qualification rules of
//! DESIGN.md §10). Those rules buy confluence: combinational processes
//! are pure functions of their (completely declared) read sets, so the
//! blaster replaces the executor's dirty-set bookkeeping — which is
//! undecidable under symbolic values — with full sweeps of
//! `level_order`. One extra restriction applies: a signal written by
//! both a combinational and a sequential/`initial` process would make
//! the executor's value depend on *which* writes the dirty set skipped,
//! so such designs are rejected.

use std::collections::HashMap;

use haven_verilog::ast::{BinaryOp, CaseKind, UnaryOp};
use haven_verilog::compile::{CLval, CStmt, CompiledDesign, ExprId, Op, NO_SIGNAL};
use haven_verilog::elab::{SignalKind, Trigger};
use haven_verilog::logic::{Logic, LogicVec};
use haven_verilog::netlist::{CellId, CellKind, Netlist};
use haven_verilog::sim::edge_fired;

use crate::aig::{Aig, Lit};

/// Loop-iteration cap per `for` statement (termination guard; the
/// executor enforces its own budget, and exceeding ours is an
/// [`BlastError`], never a wrong answer).
const MAX_LOOP_ITERATIONS: usize = 4096;

/// Widest symbolic index a dynamic bit-select mux tree will expand.
const MAX_DYN_INDEX_BITS: usize = 12;

/// A construct the two-valued abstraction cannot blast soundly.
///
/// Errors are *incompleteness*, not unsoundness: the equivalence layer
/// maps them to an `Unknown` verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlastError {
    /// Human-readable reason, surfaced in `EquivVerdict::Unknown`.
    pub reason: String,
}

impl BlastError {
    fn new(reason: impl Into<String>) -> BlastError {
        BlastError {
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for BlastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bitblast: {}", self.reason)
    }
}

impl std::error::Error for BlastError {}

type Result<T> = std::result::Result<T, BlastError>;

/// A symbolic logic vector: one AIG literal and one taint *literal* per
/// bit, LSB first. See the module docs for the per-valuation invariant
/// tying the two planes together.
#[derive(Debug, Clone, PartialEq)]
pub struct SVal {
    /// Per-bit literals; meaningless under valuations where the
    /// corresponding taint literal evaluates true.
    pub bits: Vec<Lit>,
    /// Per-bit symbolic taint: `Lit::FALSE` means "known everywhere",
    /// `Lit::TRUE` means "no claim anywhere", anything else is a
    /// conditional claim.
    pub x: Vec<Lit>,
}

impl SVal {
    /// An untainted constant of the given width (bits ≥ 64 read zero).
    pub fn constant(value: u64, width: usize) -> SVal {
        let bits = (0..width)
            .map(|i| {
                if i < 64 && value >> i & 1 == 1 {
                    Lit::TRUE
                } else {
                    Lit::FALSE
                }
            })
            .collect();
        SVal {
            bits,
            x: vec![Lit::FALSE; width],
        }
    }

    /// A fully tainted value.
    pub fn all_x(width: usize) -> SVal {
        SVal {
            bits: vec![Lit::FALSE; width],
            x: vec![Lit::TRUE; width],
        }
    }

    /// Lowers a four-state constant: known bits become constant literals,
    /// `x`/`z` bits become taint.
    pub fn from_lv(v: &LogicVec) -> SVal {
        let mut out = SVal::all_x(v.width());
        for (i, b) in v.iter().enumerate() {
            match b {
                Logic::Zero => {
                    out.bits[i] = Lit::FALSE;
                    out.x[i] = Lit::FALSE;
                }
                Logic::One => {
                    out.bits[i] = Lit::TRUE;
                    out.x[i] = Lit::FALSE;
                }
                Logic::X | Logic::Z => {}
            }
        }
        out
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Whether any bit is *possibly* tainted (its taint literal is not
    /// the constant false). Widening transfer functions branch on this;
    /// a conditional taint widens exactly like a certain one, which is
    /// conservative and sound.
    pub fn any_x(&self) -> bool {
        self.x.iter().any(|&l| l != Lit::FALSE)
    }

    /// The untainted constant value, mirroring `to_u64` of the executor:
    /// `None` when any bit is possibly tainted or non-constant, **or
    /// when the width exceeds 64** (the executor's wide representation
    /// always answers `None`, and several opcodes branch on exactly
    /// that).
    pub fn to_u64_mirror(&self) -> Option<u64> {
        if self.width() > 64 {
            return None;
        }
        let mut out = 0u64;
        for (i, (&b, &xf)) in self.bits.iter().zip(&self.x).enumerate() {
            if xf != Lit::FALSE {
                return None;
            }
            match b.const_value() {
                Some(true) => out |= 1 << i,
                Some(false) => {}
                None => return None,
            }
        }
        Some(out)
    }

    /// Zero-extends or truncates (mirrors the executor's `resized`).
    pub fn resized(&self, width: usize) -> SVal {
        let mut bits = self.bits.clone();
        let mut x = self.x.clone();
        bits.resize(width, Lit::FALSE);
        x.resize(width, Lit::FALSE);
        bits.truncate(width);
        x.truncate(width);
        SVal { bits, x }
    }

    /// `(literal, taint)` at position `i`, zero-extended beyond the
    /// width (the executor's planes read known-zero there).
    fn at(&self, i: usize) -> (Lit, Lit) {
        if i < self.width() {
            (self.bits[i], self.x[i])
        } else {
            (Lit::FALSE, Lit::FALSE)
        }
    }
}

/// One resolved bit-range write (the mirror of the executor's `CWrite`).
struct RWrite {
    sig: u32,
    lo: usize,
    value: SVal,
}

/// A pending non-blocking assignment with its control-flow guard.
struct GuardedWrite {
    sig: u32,
    lo: usize,
    value: SVal,
    guard: Lit,
    guard_x: Lit,
}

/// Symbolic executor over a compiled design. All mutating methods take
/// the shared [`Aig`] explicitly so two blasters (golden and candidate)
/// can interleave on one graph and hash-cons across designs.
pub struct Blaster<'a> {
    cd: &'a CompiledDesign,
    values: Vec<SVal>,
    nba: Vec<GuardedWrite>,
    /// Exact four-state bit 0 per signal, maintained only for undriven
    /// inputs (the only signals edge decisions ever consult — rule 4).
    edge0: Vec<Logic>,
    stack: Vec<SVal>,
}

impl<'a> Blaster<'a> {
    /// Blasts the time-zero settled state of `cd` into `g`.
    ///
    /// # Errors
    ///
    /// Fails for non-levelized designs and for signals driven by both a
    /// combinational and a sequential/`initial` process (see the module
    /// docs for why full sweeps need that exclusion).
    pub fn new(g: &mut Aig, cd: &'a CompiledDesign) -> Result<Blaster<'a>> {
        if !cd.is_levelized() {
            return Err(BlastError::new(
                "design does not qualify for levelized settling",
            ));
        }
        let design = cd.design();
        let mut comb_written = vec![false; design.signals.len()];
        for p in &design.processes {
            if matches!(p.trigger, Trigger::Comb(_)) {
                for &w in &p.writes {
                    comb_written[w.0 as usize] = true;
                }
            }
        }
        for p in &design.processes {
            if matches!(p.trigger, Trigger::Edge(_) | Trigger::Once) {
                for &w in &p.writes {
                    if comb_written[w.0 as usize] {
                        return Err(BlastError::new(format!(
                            "signal `{}` has both combinational and procedural drivers",
                            design.info(w).name
                        )));
                    }
                }
            }
        }
        let values: Vec<SVal> = design
            .signals
            .iter()
            .map(|s| match &s.init {
                Some(v) => SVal::from_lv(&v.resized(s.width)),
                None => SVal::all_x(s.width),
            })
            .collect();
        let edge0: Vec<Logic> = design
            .signals
            .iter()
            .map(|s| match &s.init {
                Some(v) => v.resized(s.width).bit(0),
                None => Logic::X,
            })
            .collect();
        let mut b = Blaster {
            cd,
            values,
            nba: Vec::new(),
            edge0,
            stack: Vec::new(),
        };
        // Time zero: the executor runs `init_order` through its event
        // queue. The initial batch executes in process-id order with
        // wakes appended *behind* it, so running the batch in order and
        // then settling combinationally reproduces the schedule exactly
        // (woken comb re-runs are confluent with the full sweep).
        for pid in cd.init_order().to_vec() {
            b.exec_proc(g, pid)?;
        }
        b.sweep(g)?;
        while !b.nba.is_empty() {
            b.commit_nba(g);
            b.sweep(g)?;
        }
        Ok(b)
    }

    /// The settled symbolic value of a signal.
    pub fn value(&self, sig: u32) -> &SVal {
        &self.values[sig as usize]
    }

    /// Drives an input with a constant and settles, mirroring the
    /// executor's `poke` (skip-if-equal, comb wakes, edge fires).
    pub fn poke_const(&mut self, g: &mut Aig, sig: u32, value: u64) -> Result<()> {
        let info = self.cd.design().info(haven_verilog::elab::SignalId(sig));
        if info.kind != SignalKind::Input {
            return Err(BlastError::new(format!(
                "cannot poke non-input signal `{}`",
                info.name
            )));
        }
        let width = info.width;
        let new = SVal::constant(value, width);
        if self.values[sig as usize] == new {
            // Exact skip: an input's symbolic value is either a poked
            // constant or its four-state initial value, so literal
            // equality here is executor equality (and inequality,
            // including taint, is executor inequality).
            return Ok(());
        }
        let old0 = self.edge0[sig as usize];
        let new0 = if value & 1 == 1 { Logic::One } else { Logic::Zero };
        self.values[sig as usize] = new;
        self.edge0[sig as usize] = new0;
        let fired: Vec<u32> = self.cd.edge_woken()[sig as usize]
            .iter()
            .filter(|&&(edge, _)| edge_fired(edge, old0, new0))
            .map(|&(_, q)| q)
            .collect();
        self.settle(g, &fired)
    }

    /// Drives an input with fresh/derived literals and settles.
    ///
    /// # Errors
    ///
    /// Rejects edge-watched inputs: a symbolic old/new pair makes the
    /// edge decision data-dependent, which the scheduler cannot mirror.
    pub fn poke_sym(&mut self, g: &mut Aig, sig: u32, bits: Vec<Lit>) -> Result<()> {
        let info = self.cd.design().info(haven_verilog::elab::SignalId(sig));
        if info.kind != SignalKind::Input {
            return Err(BlastError::new(format!(
                "cannot poke non-input signal `{}`",
                info.name
            )));
        }
        if !self.cd.edge_woken()[sig as usize].is_empty() {
            return Err(BlastError::new(format!(
                "symbolic poke of edge-watched input `{}`",
                info.name
            )));
        }
        let x = vec![Lit::FALSE; bits.len()];
        let new = SVal { bits, x }.resized(info.width);
        if self.values[sig as usize] == new {
            return Ok(());
        }
        // The executor may skip this poke on valuations where old == new;
        // skipping only suppresses comb wakes, and the full sweep is
        // confluent with them, so always settling is exact.
        self.values[sig as usize] = new;
        self.settle(g, &[])
    }

    /// One full clock cycle on `clk`: poke 0, then poke 1 (the
    /// executor's `tick`).
    pub fn tick(&mut self, g: &mut Aig, clk: u32) -> Result<()> {
        self.poke_const(g, clk, 0)?;
        self.poke_const(g, clk, 1)
    }

    /// Post-poke settling: fired edge processes first (they read
    /// pre-sweep combinational values, exactly as `run_step_level`
    /// drains its active queue before the dirty sweep), then a full
    /// combinational sweep, then non-blocking commits until quiescent.
    fn settle(&mut self, g: &mut Aig, fired: &[u32]) -> Result<()> {
        for &pid in fired {
            self.exec_proc(g, pid)?;
        }
        self.sweep(g)?;
        while !self.nba.is_empty() {
            self.commit_nba(g);
            self.sweep(g)?;
        }
        Ok(())
    }

    /// Executes every levelized combinational process in topological
    /// order. Confluent with the executor's dirty-set sweep: each comb
    /// process is a pure function of its completely-declared reads.
    fn sweep(&mut self, g: &mut Aig) -> Result<()> {
        for pid in self.cd.level_order().to_vec() {
            self.exec_proc(g, pid)?;
        }
        Ok(())
    }

    fn exec_proc(&mut self, g: &mut Aig, pid: u32) -> Result<()> {
        let body = &self.cd.bodies()[pid as usize];
        self.exec_stmt(g, body, Lit::TRUE, Lit::FALSE)
    }

    /// Commits the non-blocking batch in queue order against the
    /// *current* values, guard-muxing each write.
    fn commit_nba(&mut self, g: &mut Aig) {
        let batch = std::mem::take(&mut self.nba);
        for w in batch {
            debug_assert!(
                self.cd.edge_woken()[w.sig as usize].is_empty(),
                "rule 4: non-blocking writes cannot target edge-watched signals"
            );
            let old = &self.values[w.sig as usize];
            let new = guarded_overlay(g, old, w.lo, &w.value, w.guard, w.guard_x);
            self.values[w.sig as usize] = new;
        }
    }

    fn exec_stmt(&mut self, g: &mut Aig, s: &CStmt, guard: Lit, gx: Lit) -> Result<()> {
        match s {
            CStmt::Block(stmts) => {
                for s in stmts {
                    self.exec_stmt(g, s, guard, gx)?;
                }
                Ok(())
            }
            CStmt::Blocking { lhs, rhs } => {
                let value = self.run_expr(g, *rhs)?;
                let mut writes = Vec::new();
                self.resolve(g, lhs, value, &mut writes)?;
                for w in &writes {
                    let old = &self.values[w.sig as usize];
                    let new = guarded_overlay(g, old, w.lo, &w.value, guard, gx);
                    self.values[w.sig as usize] = new;
                }
                Ok(())
            }
            CStmt::NonBlocking { lhs, rhs } => {
                let value = self.run_expr(g, *rhs)?;
                let mut writes = Vec::new();
                self.resolve(g, lhs, value, &mut writes)?;
                for w in writes {
                    self.nba.push(GuardedWrite {
                        sig: w.sig,
                        lo: w.lo,
                        value: w.value,
                        guard,
                        guard_x: gx,
                    });
                }
                Ok(())
            }
            CStmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.run_expr(g, *cond)?;
                let (t, tx) = truthiness_pair(g, &c);
                if tx == Lit::FALSE {
                    if t == Lit::TRUE {
                        return self.exec_stmt(g, then_branch, guard, gx);
                    }
                    if t == Lit::FALSE {
                        return match else_branch {
                            Some(e) => self.exec_stmt(g, e, guard, gx),
                            None => Ok(()),
                        };
                    }
                }
                let ngx = g.or(gx, tx);
                let then_guard = g.and(guard, t);
                self.exec_branch(g, then_branch, then_guard, ngx)?;
                if let Some(e) = else_branch {
                    let else_guard = g.and(guard, t.not());
                    self.exec_branch(g, e, else_guard, ngx)?;
                }
                Ok(())
            }
            CStmt::Case {
                kind,
                expr,
                arms,
                default,
            } => {
                let sel = self.run_expr(g, *expr)?;
                // Priority chain: arm k runs when it matches and no
                // earlier arm did. Taint on any match condition taints
                // every later decision in the chain — symbolically, so
                // an exhaustive chain's residual taint stays refutable.
                let mut prior = Lit::FALSE;
                let mut chain_x = Lit::FALSE;
                for (labels, body) in arms {
                    let mut arm = Lit::FALSE;
                    let mut arm_x = Lit::FALSE;
                    for &label in labels {
                        let (m, mx) = self.match_cond(g, &sel, *kind, label)?;
                        arm = g.or(arm, m);
                        arm_x = g.or(arm_x, mx);
                    }
                    let up_x = g.or(gx, chain_x);
                    let taken_x = g.or(up_x, arm_x);
                    let not_prior = prior.not();
                    let taken = g.and(guard, arm);
                    let taken = g.and(taken, not_prior);
                    self.exec_branch(g, body, taken, taken_x)?;
                    prior = g.or(prior, arm);
                    chain_x = g.or(chain_x, arm_x);
                }
                if let Some(d) = default {
                    let taken = g.and(guard, prior.not());
                    let dx = g.or(gx, chain_x);
                    self.exec_branch(g, d, taken, dx)?;
                }
                Ok(())
            }
            CStmt::For {
                var,
                init,
                cond,
                step_var,
                step,
                body,
            } => {
                let iv = self.run_expr(g, *init)?;
                self.assign_whole(g, *var, iv, guard, gx);
                let mut iterations = 0usize;
                loop {
                    let c = self.run_expr(g, *cond)?;
                    if c.any_x() {
                        return Err(BlastError::new("tainted for-loop condition"));
                    }
                    let (t, _) = truthiness_pair(g, &c);
                    if t == Lit::FALSE {
                        return Ok(());
                    }
                    if t != Lit::TRUE {
                        return Err(BlastError::new("symbolic for-loop bound"));
                    }
                    iterations += 1;
                    if iterations > MAX_LOOP_ITERATIONS {
                        return Err(BlastError::new("for-loop iteration cap exceeded"));
                    }
                    self.exec_stmt(g, body, guard, gx)?;
                    let sv = self.run_expr(g, *step)?;
                    self.assign_whole(g, *step_var, sv, guard, gx);
                }
            }
            CStmt::Empty => Ok(()),
            CStmt::Error(msg) => Err(BlastError::new(format!("unresolved statement: {msg}"))),
        }
    }

    /// Executes a guarded branch body, skipping it entirely when the
    /// guard is constant-false *and* untainted (the executor provably
    /// never entered it).
    fn exec_branch(&mut self, g: &mut Aig, body: &CStmt, guard: Lit, gx: Lit) -> Result<()> {
        if guard == Lit::FALSE && gx == Lit::FALSE {
            return Ok(());
        }
        self.exec_stmt(g, body, guard, gx)
    }

    /// Whole-signal guarded assignment (the executor's `assign_var`).
    fn assign_whole(&mut self, g: &mut Aig, sig: u32, value: SVal, guard: Lit, gx: Lit) {
        let width = self.cd.design().signals[sig as usize].width;
        let value = value.resized(width);
        let old = &self.values[sig as usize];
        let new = guarded_overlay(g, old, 0, &value, guard, gx);
        self.values[sig as usize] = new;
    }

    /// Match condition of one case label against the selector. Returns
    /// `(condition, taint)`. Literal labels get exact four-state
    /// wildcard handling from their stored planes; computed labels fall
    /// back to two-valued equality plus taint.
    fn match_cond(
        &mut self,
        g: &mut Aig,
        sel: &SVal,
        kind: CaseKind,
        label: ExprId,
    ) -> Result<(Lit, Lit)> {
        let cd: &'a CompiledDesign = self.cd;
        if let [Op::Lit(i)] = cd.expr(label) {
            let lv = &cd.literals()[*i as usize];
            let w = sel.width().max(lv.width());
            let mut conj = Lit::TRUE;
            let mut taint = Lit::FALSE;
            for i in 0..w {
                let lb = if i < lv.width() { lv.bit(i) } else { Logic::Zero };
                match (kind, lb) {
                    (CaseKind::Z, Logic::Z) => continue,
                    (CaseKind::X, Logic::X | Logic::Z) => continue,
                    _ => {}
                }
                let (sb, sx) = sel.at(i);
                match lb {
                    // Where the selector bit may be unknown, a definite
                    // match claim needs the bit known; the taint literal
                    // records exactly the valuations where it is not.
                    Logic::One => {
                        let m = if sx == Lit::FALSE { sb } else { g.or(sb, sx) };
                        conj = g.and(conj, m);
                        taint = g.or(taint, sx);
                    }
                    Logic::Zero => {
                        let m = if sx == Lit::FALSE { sb.not() } else { g.or(sb.not(), sx) };
                        conj = g.and(conj, m);
                        taint = g.or(taint, sx);
                    }
                    // A known 0/1 selector bit can never satisfy an
                    // x/z label bit that survived the wildcard filter;
                    // a possibly-unknown one might (exact match on x).
                    Logic::X | Logic::Z => {
                        if sx == Lit::FALSE {
                            return Ok((Lit::FALSE, Lit::FALSE));
                        }
                        conj = g.and(conj, sx);
                        taint = g.or(taint, sx);
                    }
                }
            }
            return Ok((conj, taint));
        }
        let l = self.run_expr(g, label)?;
        let mut taint = Lit::FALSE;
        for &xf in sel.x.iter().chain(&l.x) {
            taint = g.or(taint, xf);
        }
        let lit = eq_lit(g, sel, &l);
        Ok((lit, taint))
    }

    /// Mirrors the executor's `resolve_writes`: lvalue bounds are
    /// evaluated now; constant bounds resolve exactly (including the
    /// silent drop of out-of-range writes), tainted bounds widen to a
    /// whole-signal taint, and genuinely symbolic bounds abort.
    fn resolve(&mut self, g: &mut Aig, lhs: &CLval, value: SVal, out: &mut Vec<RWrite>) -> Result<()> {
        let design = self.cd.design();
        match lhs {
            CLval::Whole(sig) => {
                let width = design.signals[*sig as usize].width;
                out.push(RWrite {
                    sig: *sig,
                    lo: 0,
                    value: value.resized(width),
                });
                Ok(())
            }
            CLval::Bit { sig, ix } => {
                let info = &design.signals[*sig as usize];
                let (lsb, width) = (info.lsb, info.width);
                let iv = self.run_expr(g, *ix)?;
                match iv.to_u64_mirror() {
                    Some(i) => {
                        let i = i as usize;
                        if i >= lsb && i - lsb < width {
                            out.push(RWrite {
                                sig: *sig,
                                lo: i - lsb,
                                value: value.resized(1),
                            });
                        }
                        Ok(())
                    }
                    None if iv.any_x() => {
                        // The executor either dropped the write or hit
                        // one unknown bit; taint the whole signal.
                        out.push(RWrite {
                            sig: *sig,
                            lo: 0,
                            value: SVal::all_x(width),
                        });
                        Ok(())
                    }
                    None => Err(BlastError::new("dynamic bit-select assignment target")),
                }
            }
            CLval::Part { sig, hi, lo } => {
                let info = &design.signals[*sig as usize];
                let (lsb, width) = (info.lsb, info.width);
                let hv = self.run_expr(g, *hi)?;
                let lv = self.run_expr(g, *lo)?;
                match (hv.to_u64_mirror(), lv.to_u64_mirror()) {
                    (Some(h), Some(l)) => {
                        let (h, l) = (h as usize, l as usize);
                        if h >= l && l >= lsb && h - lsb < width {
                            out.push(RWrite {
                                sig: *sig,
                                lo: l - lsb,
                                value: value.resized(h - l + 1),
                            });
                        }
                        Ok(())
                    }
                    _ if hv.any_x() || lv.any_x() => {
                        out.push(RWrite {
                            sig: *sig,
                            lo: 0,
                            value: SVal::all_x(width),
                        });
                        Ok(())
                    }
                    _ => Err(BlastError::new("dynamic part-select assignment target")),
                }
            }
            CLval::Concat(parts) => {
                let mut widths = Vec::with_capacity(parts.len());
                for p in parts {
                    match self.clval_width(g, p)? {
                        Some(w) => widths.push(w),
                        None => {
                            // A tainted bound makes every split point
                            // uncertain: taint every target signal.
                            for sig in lval_sigs(lhs) {
                                let w = design.signals[sig as usize].width;
                                out.push(RWrite {
                                    sig,
                                    lo: 0,
                                    value: SVal::all_x(w),
                                });
                            }
                            return Ok(());
                        }
                    }
                }
                let total: usize = widths.iter().sum();
                let value = value.resized(total);
                let mut hi = total;
                for (part, w) in parts.iter().zip(widths) {
                    let lo = hi - w;
                    let mut slice = SVal::all_x(w);
                    for i in 0..w {
                        slice.bits[i] = value.bits[lo + i];
                        slice.x[i] = value.x[lo + i];
                    }
                    self.resolve(g, part, slice, out)?;
                    hi = lo;
                }
                Ok(())
            }
        }
    }

    /// Mirror of the executor's `clval_width`; `Ok(None)` marks a
    /// tainted (unknowable) width, symbolic widths abort.
    fn clval_width(&mut self, g: &mut Aig, lv: &CLval) -> Result<Option<usize>> {
        match lv {
            CLval::Whole(sig) => Ok(Some(self.cd.design().signals[*sig as usize].width)),
            CLval::Bit { .. } => Ok(Some(1)),
            CLval::Part { hi, lo, .. } => {
                let hv = self.run_expr(g, *hi)?;
                let lv = self.run_expr(g, *lo)?;
                match (hv.to_u64_mirror(), lv.to_u64_mirror()) {
                    (Some(h), Some(l)) if h >= l => Ok(Some((h - l + 1) as usize)),
                    (Some(_), Some(_)) => Ok(Some(1)),
                    _ if hv.any_x() || lv.any_x() => Ok(None),
                    _ => Err(BlastError::new("dynamic part-select width")),
                }
            }
            CLval::Concat(parts) => {
                let mut total = 0usize;
                for p in parts {
                    match self.clval_width(g, p)? {
                        Some(w) => total += w,
                        None => return Ok(None),
                    }
                }
                Ok(Some(total))
            }
        }
    }

    /// Executes one expression chunk symbolically.
    ///
    /// When the compile pipeline kept the word-level netlist rung (it
    /// always does now), the chunk is blasted from its root *cell*
    /// instead of the flat bytecode: the cell graph is a DAG, so a
    /// subexpression the stack machine had to duplicate — `(a & b)` in
    /// `(a & b) ^ (a & b + 1)`, every leaf a rebalanced reduction tree
    /// shares — blasts exactly once per chunk via the memo, giving
    /// shallower and smaller AIGs for the SAT stage. Chunks that failed
    /// netlist import (`expr_root` is `None`) fall back to the bytecode
    /// walk, which remains semantically identical.
    fn run_expr(&mut self, g: &mut Aig, id: ExprId) -> Result<SVal> {
        let cd: &'a CompiledDesign = self.cd;
        if let Some(nl) = cd.netlist() {
            if let Some(root) = cd.expr_root(id) {
                let nl: &'a Netlist = nl.as_ref();
                let mut memo: HashMap<CellId, SVal> = HashMap::new();
                return self.blast_cell(g, nl, root, &mut memo);
            }
        }
        let base = self.stack.len();
        // Copy the design reference out so the op slice borrows `'a`,
        // not `&mut self`.
        for op in cd.expr(id) {
            let v = match op {
                Op::Lit(i) => SVal::from_lv(&cd.literals()[*i as usize]),
                Op::Load(sig) => {
                    if *sig == NO_SIGNAL {
                        SVal::all_x(1)
                    } else {
                        self.values[*sig as usize].clone()
                    }
                }
                Op::Unary(uop) => {
                    let a = self.stack.pop().expect("unary operand");
                    unary(g, *uop, &a)
                }
                Op::Binary(bop) => {
                    let b = self.stack.pop().expect("binary rhs");
                    let a = self.stack.pop().expect("binary lhs");
                    binary(g, *bop, &a, &b)?
                }
                Op::Ternary => {
                    let f = self.stack.pop().expect("ternary else");
                    let t = self.stack.pop().expect("ternary then");
                    let c = self.stack.pop().expect("ternary cond");
                    ternary(g, &c, &t, &f)?
                }
                Op::Concat(n) => {
                    if *n == 0 {
                        SVal::all_x(1)
                    } else {
                        let mut acc = self.stack.pop().expect("concat part");
                        for _ in 1..*n {
                            let hi = self.stack.pop().expect("concat part");
                            let mut bits = acc.bits;
                            let mut x = acc.x;
                            bits.extend_from_slice(&hi.bits);
                            x.extend_from_slice(&hi.x);
                            acc = SVal { bits, x };
                        }
                        acc
                    }
                }
                Op::Replicate => {
                    let v = self.stack.pop().expect("replicate inner");
                    let n = self.stack.pop().expect("replicate count");
                    match n.to_u64_mirror() {
                        Some(c) if (1..=64).contains(&c) => {
                            let mut bits = Vec::with_capacity(v.width() * c as usize);
                            let mut x = Vec::with_capacity(v.width() * c as usize);
                            for _ in 0..c {
                                bits.extend_from_slice(&v.bits);
                                x.extend_from_slice(&v.x);
                            }
                            SVal { bits, x }
                        }
                        Some(_) => SVal::all_x(v.width()),
                        // A non-constant count makes the result width
                        // data-dependent (the executor folds only
                        // executor-constant counts).
                        None => {
                            return Err(BlastError::new("dynamic replication count"));
                        }
                    }
                }
                Op::Index(sig) => {
                    let ix = self.stack.pop().expect("index operand");
                    self.index_op(g, *sig, &ix)?
                }
                Op::Slice(sig) => {
                    let lo = self.stack.pop().expect("slice lo");
                    let hi = self.stack.pop().expect("slice hi");
                    self.slice_op(*sig, &hi, &lo)?
                }
            };
            self.stack.push(v);
        }
        debug_assert_eq!(self.stack.len(), base + 1, "chunk must net one value");
        Ok(self.stack.pop().expect("bytecode result"))
    }

    /// Blasts one netlist cell, memoized per `run_expr` call (the memo
    /// is only valid for the current signal state, so it never outlives
    /// the chunk evaluation). Each transfer function is the same one the
    /// bytecode walk uses — only the traversal changed from a tree to a
    /// DAG.
    fn blast_cell(
        &mut self,
        g: &mut Aig,
        nl: &'a Netlist,
        id: CellId,
        memo: &mut HashMap<CellId, SVal>,
    ) -> Result<SVal> {
        if let Some(v) = memo.get(&id) {
            return Ok(v.clone());
        }
        let v = match nl.kind(id) {
            CellKind::Const(c) => SVal::from_lv(c),
            CellKind::Load(sig) => {
                if *sig == NO_SIGNAL {
                    SVal::all_x(1)
                } else {
                    self.values[*sig as usize].clone()
                }
            }
            CellKind::Unary(uop, a) => {
                let a = self.blast_cell(g, nl, *a, memo)?;
                unary(g, *uop, &a)
            }
            CellKind::Binary(bop, a, b) => {
                let a = self.blast_cell(g, nl, *a, memo)?;
                let b = self.blast_cell(g, nl, *b, memo)?;
                binary(g, *bop, &a, &b)?
            }
            CellKind::Mux {
                cond,
                then_arm,
                else_arm,
            } => {
                let c = self.blast_cell(g, nl, *cond, memo)?;
                let t = self.blast_cell(g, nl, *then_arm, memo)?;
                let f = self.blast_cell(g, nl, *else_arm, memo)?;
                ternary(g, &c, &t, &f)?
            }
            CellKind::Concat(parts) => {
                if parts.is_empty() {
                    SVal::all_x(1)
                } else {
                    // Parts are MSB-first; SVal bits are LSB-first, so
                    // append from the last (least significant) part up.
                    let mut bits = Vec::new();
                    let mut x = Vec::new();
                    for &p in parts.iter().rev() {
                        let v = self.blast_cell(g, nl, p, memo)?;
                        bits.extend_from_slice(&v.bits);
                        x.extend_from_slice(&v.x);
                    }
                    SVal { bits, x }
                }
            }
            CellKind::Replicate { count, value } => {
                let n = self.blast_cell(g, nl, *count, memo)?;
                let v = self.blast_cell(g, nl, *value, memo)?;
                match n.to_u64_mirror() {
                    Some(c) if (1..=64).contains(&c) => {
                        let mut bits = Vec::with_capacity(v.width() * c as usize);
                        let mut x = Vec::with_capacity(v.width() * c as usize);
                        for _ in 0..c {
                            bits.extend_from_slice(&v.bits);
                            x.extend_from_slice(&v.x);
                        }
                        SVal { bits, x }
                    }
                    Some(_) => SVal::all_x(v.width()),
                    None => {
                        return Err(BlastError::new("dynamic replication count"));
                    }
                }
            }
            CellKind::BitSelect { sig, index } => {
                let ix = self.blast_cell(g, nl, *index, memo)?;
                self.index_op(g, *sig, &ix)?
            }
            CellKind::PartSelect { sig, hi, lo } => {
                let hi = self.blast_cell(g, nl, *hi, memo)?;
                let lo = self.blast_cell(g, nl, *lo, memo)?;
                self.slice_op(*sig, &hi, &lo)?
            }
        };
        memo.insert(id, v.clone());
        Ok(v)
    }

    /// `sig[ix]` — constant indices resolve exactly (out-of-range and
    /// below-LSB reads are executor `x`, hence taint); symbolic indices
    /// expand to a mux tree over every reachable position.
    fn index_op(&mut self, g: &mut Aig, sig: u32, ix: &SVal) -> Result<SVal> {
        if sig == NO_SIGNAL {
            return Ok(SVal::all_x(1));
        }
        let info = &self.cd.design().signals[sig as usize];
        let (lsb, width) = (info.lsb, info.width);
        match ix.to_u64_mirror() {
            Some(i) => {
                let i = i as usize;
                if i < lsb || i - lsb >= width {
                    return Ok(SVal::all_x(1));
                }
                let base = &self.values[sig as usize];
                Ok(SVal {
                    bits: vec![base.bits[i - lsb]],
                    x: vec![base.x[i - lsb]],
                })
            }
            None if ix.any_x() => Ok(SVal::all_x(1)),
            None => {
                let iw = ix.width();
                if iw > MAX_DYN_INDEX_BITS {
                    return Ok(SVal::all_x(1));
                }
                let span = 1usize << iw;
                let base = self.values[sig as usize].clone();
                let mut acc = Lit::FALSE;
                let mut taint = Lit::FALSE;
                for j in 0..span {
                    let sel = eq_const(g, ix, j as u64);
                    if j < lsb || j - lsb >= width {
                        // An out-of-range selection reads x.
                        taint = g.or(taint, sel);
                        continue;
                    }
                    let hit = g.and(sel, base.bits[j - lsb]);
                    acc = g.or(acc, hit);
                    let tx = g.and(sel, base.x[j - lsb]);
                    taint = g.or(taint, tx);
                }
                Ok(SVal {
                    bits: vec![acc],
                    x: vec![taint],
                })
            }
        }
    }

    /// `sig[hi:lo]` — only constant bounds keep the width decidable.
    fn slice_op(&mut self, sig: u32, hi: &SVal, lo: &SVal) -> Result<SVal> {
        let (base, lsb) = if sig == NO_SIGNAL {
            (SVal::all_x(1), 0usize)
        } else {
            let info = &self.cd.design().signals[sig as usize];
            (self.values[sig as usize].clone(), info.lsb)
        };
        match (hi.to_u64_mirror(), lo.to_u64_mirror()) {
            (Some(h), Some(l)) if h >= l => {
                let (h, l) = (h as usize, l as usize);
                let w = h - l + 1;
                if l < lsb {
                    return Ok(SVal::all_x(w));
                }
                let mut out = SVal::all_x(w);
                for i in 0..w {
                    let j = l - lsb + i;
                    if j < base.width() {
                        out.bits[i] = base.bits[j];
                        out.x[i] = base.x[j];
                    }
                }
                Ok(out)
            }
            (Some(h), Some(l)) => Ok(SVal::all_x((l - h) as usize + 1)),
            _ => Err(BlastError::new("dynamic part-select bounds")),
        }
    }
}

/// Signals written (at any depth) by an lvalue.
fn lval_sigs(lv: &CLval) -> Vec<u32> {
    match lv {
        CLval::Whole(sig) | CLval::Bit { sig, .. } | CLval::Part { sig, .. } => vec![*sig],
        CLval::Concat(parts) => parts.iter().flat_map(lval_sigs).collect(),
    }
}

/// Overlays `value` at `lo` onto `old` under a control-flow guard.
///
/// With a constant-true untainted guard the overlay is the executor's
/// `write_bits` exactly; a constant-false untainted guard is a no-op; in
/// between, each written bit muxes on the guard — and so does its
/// **taint**: under valuations where the guard is exact and true the
/// written taint applies, where exact and false the old taint survives.
/// This guard-mux on the taint plane is what lets an exhaustive
/// `if`/`case` chain fully discharge an uninitialized register's
/// initial X: the residual taint literal becomes unsatisfiable.
fn guarded_overlay(g: &mut Aig, old: &SVal, lo: usize, value: &SVal, guard: Lit, gx: Lit) -> SVal {
    if guard == Lit::FALSE && gx == Lit::FALSE {
        return old.clone();
    }
    let w = old.width();
    if lo >= w {
        return old.clone();
    }
    let n = value.width().min(w - lo);
    let mut out = old.clone();
    for i in 0..n {
        let (ob, ox) = (old.bits[lo + i], old.x[lo + i]);
        let (mb, mx) = (value.bits[i], value.x[i]);
        if guard == Lit::TRUE && gx == Lit::FALSE {
            out.bits[lo + i] = mb;
            out.x[lo + i] = mx;
        } else {
            out.bits[lo + i] = g.mux(guard, mb, ob);
            let sel_x = g.mux(guard, mx, ox);
            out.x[lo + i] = g.or(gx, sel_x);
        }
    }
    out
}

/// `(truthiness literal, taint literal)`: the executor's reduction-OR.
/// A known constant-one bit decides `One` regardless of unknowns (the
/// static fast path); symbolically, any *defined* one bit does the same,
/// so the taint literal is "some bit unknown ∧ no defined one".
fn truthiness_pair(g: &mut Aig, v: &SVal) -> (Lit, Lit) {
    for (b, &xf) in v.bits.iter().zip(&v.x) {
        if xf == Lit::FALSE && *b == Lit::TRUE {
            return (Lit::TRUE, Lit::FALSE);
        }
    }
    if v.x.iter().all(|&xf| xf == Lit::FALSE) {
        let mut t = Lit::FALSE;
        for &b in &v.bits {
            t = g.or(t, b);
        }
        return (t, Lit::FALSE);
    }
    let mut t = Lit::FALSE;
    let mut anyx = Lit::FALSE;
    for (&b, &xf) in v.bits.iter().zip(&v.x) {
        let defined_one = g.and(b, xf.not());
        t = g.or(t, defined_one);
        anyx = g.or(anyx, xf);
    }
    let taint = g.and(anyx, t.not());
    (t, taint)
}

/// Two-valued equality over the zero-extended max width.
fn eq_lit(g: &mut Aig, a: &SVal, b: &SVal) -> Lit {
    let w = a.width().max(b.width());
    let mut conj = Lit::TRUE;
    for i in 0..w {
        let (ab, _) = a.at(i);
        let (bb, _) = b.at(i);
        let same = g.xnor(ab, bb);
        conj = g.and(conj, same);
    }
    conj
}

/// Equality of an (untainted) vector with a constant.
fn eq_const(g: &mut Aig, v: &SVal, c: u64) -> Lit {
    let mut conj = Lit::TRUE;
    for (i, &b) in v.bits.iter().enumerate() {
        let want = i < 64 && c >> i & 1 == 1;
        conj = g.and(conj, if want { b } else { b.not() });
    }
    conj
}

/// Unsigned `a < b` over the zero-extended max width (MSB-down ripple).
fn lt_lit(g: &mut Aig, a: &SVal, b: &SVal) -> Lit {
    let w = a.width().max(b.width());
    let mut lt = Lit::FALSE;
    let mut eq = Lit::TRUE;
    for i in (0..w).rev() {
        let (ab, _) = a.at(i);
        let (bb, _) = b.at(i);
        let here = g.and(ab.not(), bb);
        let here = g.and(eq, here);
        lt = g.or(lt, here);
        let same = g.xnor(ab, bb);
        eq = g.and(eq, same);
    }
    lt
}

/// Ripple-carry `a + b (+ carry_in)` at width `w` (operands pre-extended
/// via [`SVal::at`]).
fn add_bits(g: &mut Aig, a: &SVal, b: &SVal, w: usize, negate_b: bool, carry_in: bool) -> Vec<Lit> {
    let mut carry = if carry_in { Lit::TRUE } else { Lit::FALSE };
    let mut out = Vec::with_capacity(w);
    for i in 0..w {
        let (ab, _) = a.at(i);
        let (bb0, _) = b.at(i);
        let bb = if negate_b { bb0.not() } else { bb0 };
        let axb = g.xor(ab, bb);
        out.push(g.xor(axb, carry));
        let gen = g.and(ab, bb);
        let prop = g.and(axb, carry);
        carry = g.or(gen, prop);
    }
    out
}

/// Disjunction of every taint literal in `v` (true where *some* bit is
/// unknown under the valuation).
fn or_taint(g: &mut Aig, v: &SVal) -> Lit {
    let mut acc = Lit::FALSE;
    for &xf in &v.x {
        acc = g.or(acc, xf);
    }
    acc
}

fn unary(g: &mut Aig, op: UnaryOp, a: &SVal) -> SVal {
    let w = a.width();
    let ax = a.any_x();
    let single = |l: Lit, t: Lit| SVal {
        bits: vec![l],
        x: vec![t],
    };
    match op {
        UnaryOp::LogicNot => {
            let (t, tx) = truthiness_pair(g, a);
            single(t.not(), tx)
        }
        UnaryOp::BitNot => SVal {
            bits: a.bits.iter().map(|b| b.not()).collect(),
            x: a.x.clone(),
        },
        UnaryOp::ReduceAnd | UnaryOp::ReduceNand => {
            // A known-zero bit decides the reduction under any taint;
            // symbolically, a *defined* zero does the same, so the
            // taint literal is "some bit unknown ∧ no defined zero".
            let exact_zero = a
                .bits
                .iter()
                .zip(&a.x)
                .any(|(&b, &xf)| xf == Lit::FALSE && b == Lit::FALSE);
            let (v, t) = if exact_zero {
                (Lit::FALSE, Lit::FALSE)
            } else if !ax {
                let mut conj = Lit::TRUE;
                for &b in &a.bits {
                    conj = g.and(conj, b);
                }
                (conj, Lit::FALSE)
            } else {
                let mut conj = Lit::TRUE;
                let mut defined_zero = Lit::FALSE;
                let mut anyx = Lit::FALSE;
                for (&b, &xf) in a.bits.iter().zip(&a.x) {
                    // Unknown bits cannot pull the conjunction down.
                    let masked = g.or(b, xf);
                    conj = g.and(conj, masked);
                    let dz = g.and(b.not(), xf.not());
                    defined_zero = g.or(defined_zero, dz);
                    anyx = g.or(anyx, xf);
                }
                (conj, g.and(anyx, defined_zero.not()))
            };
            single(if op == UnaryOp::ReduceNand { v.not() } else { v }, t)
        }
        UnaryOp::ReduceOr | UnaryOp::ReduceNor => {
            let (t, tx) = truthiness_pair(g, a);
            single(if op == UnaryOp::ReduceNor { t.not() } else { t }, tx)
        }
        UnaryOp::ReduceXor | UnaryOp::ReduceXnor => {
            let mut acc = Lit::FALSE;
            for &b in &a.bits {
                acc = g.xor(acc, b);
            }
            let t = or_taint(g, a);
            single(if op == UnaryOp::ReduceXnor { acc.not() } else { acc }, t)
        }
        UnaryOp::Negate => {
            // The executor answers all-x on any unknown bit or width > 64.
            if ax || w > 64 {
                return SVal::all_x(w);
            }
            let not_a = SVal {
                bits: a.bits.iter().map(|b| b.not()).collect(),
                x: vec![Lit::FALSE; w],
            };
            let zero = SVal::constant(0, w);
            SVal {
                bits: add_bits(g, &not_a, &zero, w, false, true),
                x: vec![Lit::FALSE; w],
            }
        }
        UnaryOp::Plus => a.clone(),
    }
}

fn binary(g: &mut Aig, op: BinaryOp, a: &SVal, b: &SVal) -> Result<SVal> {
    let w = a.width().max(b.width());
    let ax = a.any_x();
    let bx = b.any_x();
    let single = |l: Lit, t: Lit| SVal {
        bits: vec![l],
        x: vec![t],
    };
    match op {
        BinaryOp::LogicOr => {
            let (at, atx) = truthiness_pair(g, a);
            let (bt, btx) = truthiness_pair(g, b);
            if (atx == Lit::FALSE && at == Lit::TRUE) || (btx == Lit::FALSE && bt == Lit::TRUE) {
                return Ok(single(Lit::TRUE, Lit::FALSE));
            }
            // A defined-true side absorbs the other side's unknown.
            let da = g.and(at, atx.not());
            let db = g.and(bt, btx.not());
            let decided = g.or(da, db);
            let anyx = g.or(atx, btx);
            let taint = g.and(anyx, decided.not());
            Ok(single(g.or(at, bt), taint))
        }
        BinaryOp::LogicAnd => {
            let (at, atx) = truthiness_pair(g, a);
            let (bt, btx) = truthiness_pair(g, b);
            if (atx == Lit::FALSE && at == Lit::FALSE) || (btx == Lit::FALSE && bt == Lit::FALSE) {
                return Ok(single(Lit::FALSE, Lit::FALSE));
            }
            // A defined-false side absorbs the other side's unknown.
            let da = g.and(at.not(), atx.not());
            let db = g.and(bt.not(), btx.not());
            let decided = g.or(da, db);
            let anyx = g.or(atx, btx);
            let taint = g.and(anyx, decided.not());
            Ok(single(g.and(at, bt), taint))
        }
        BinaryOp::BitOr => {
            let mut out = SVal::all_x(w);
            for i in 0..w {
                let (ab, axi) = a.at(i);
                let (bb, bxi) = b.at(i);
                // A known-one operand bit absorbs any unknown.
                if (axi == Lit::FALSE && ab == Lit::TRUE) || (bxi == Lit::FALSE && bb == Lit::TRUE) {
                    out.bits[i] = Lit::TRUE;
                    out.x[i] = Lit::FALSE;
                } else {
                    out.bits[i] = g.or(ab, bb);
                    out.x[i] = if axi == Lit::FALSE && bxi == Lit::FALSE {
                        Lit::FALSE
                    } else {
                        // Symbolic absorption: a defined one decides.
                        let da = g.and(ab, axi.not());
                        let db = g.and(bb, bxi.not());
                        let decided = g.or(da, db);
                        let anyx = g.or(axi, bxi);
                        g.and(anyx, decided.not())
                    };
                }
            }
            Ok(out)
        }
        BinaryOp::BitAnd => {
            let mut out = SVal::all_x(w);
            for i in 0..w {
                let (ab, axi) = a.at(i);
                let (bb, bxi) = b.at(i);
                // A known-zero operand bit absorbs any unknown.
                if (axi == Lit::FALSE && ab == Lit::FALSE) || (bxi == Lit::FALSE && bb == Lit::FALSE)
                {
                    out.bits[i] = Lit::FALSE;
                    out.x[i] = Lit::FALSE;
                } else {
                    out.bits[i] = g.and(ab, bb);
                    out.x[i] = if axi == Lit::FALSE && bxi == Lit::FALSE {
                        Lit::FALSE
                    } else {
                        // Symbolic absorption: a defined zero decides.
                        let da = g.and(ab.not(), axi.not());
                        let db = g.and(bb.not(), bxi.not());
                        let decided = g.or(da, db);
                        let anyx = g.or(axi, bxi);
                        g.and(anyx, decided.not())
                    };
                }
            }
            Ok(out)
        }
        BinaryOp::BitXor | BinaryOp::BitXnor => {
            let mut out = SVal::all_x(w);
            for i in 0..w {
                let (ab, axi) = a.at(i);
                let (bb, bxi) = b.at(i);
                let v = g.xor(ab, bb);
                out.bits[i] = if op == BinaryOp::BitXnor { v.not() } else { v };
                out.x[i] = g.or(axi, bxi);
            }
            Ok(out)
        }
        BinaryOp::Eq | BinaryOp::Neq => {
            // Definite mismatch on a doubly-known bit decides 0 even
            // with unknowns elsewhere (the executor's eq_logic).
            for i in 0..w {
                let (ab, axi) = a.at(i);
                let (bb, bxi) = b.at(i);
                // Complementary literals differ under every valuation.
                if axi == Lit::FALSE && bxi == Lit::FALSE && ab == bb.not() {
                    let v = if op == BinaryOp::Neq { Lit::TRUE } else { Lit::FALSE };
                    return Ok(single(v, Lit::FALSE));
                }
            }
            let e = eq_lit(g, a, b);
            let ta = or_taint(g, a);
            let tb = or_taint(g, b);
            let taint = g.or(ta, tb);
            Ok(single(if op == BinaryOp::Neq { e.not() } else { e }, taint))
        }
        BinaryOp::CaseEq | BinaryOp::CaseNeq => {
            // With no unknowns on either side, `===` is plain equality;
            // otherwise the four-state planes are out of reach.
            let e = eq_lit(g, a, b);
            let ta = or_taint(g, a);
            let tb = or_taint(g, b);
            let taint = g.or(ta, tb);
            Ok(single(if op == BinaryOp::CaseNeq { e.not() } else { e }, taint))
        }
        BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => {
            if ax || bx || w > 64 {
                return Ok(single(Lit::FALSE, Lit::TRUE));
            }
            let v = match op {
                BinaryOp::Lt => lt_lit(g, a, b),
                BinaryOp::Gt => lt_lit(g, b, a),
                BinaryOp::Le => lt_lit(g, b, a).not(),
                _ => lt_lit(g, a, b).not(),
            };
            Ok(single(v, Lit::FALSE))
        }
        BinaryOp::Shl | BinaryOp::Shr => shift(g, a, b, op == BinaryOp::Shl, false),
        BinaryOp::AShr => shift(g, a, b, false, true),
        BinaryOp::Add | BinaryOp::Sub => {
            if ax || bx || w > 64 {
                return Ok(SVal::all_x(w));
            }
            let sub = op == BinaryOp::Sub;
            Ok(SVal {
                bits: add_bits(g, a, b, w, sub, sub),
                x: vec![Lit::FALSE; w],
            })
        }
        BinaryOp::Mul => {
            if ax || bx || w > 64 {
                return Ok(SVal::all_x(w));
            }
            // Shift-and-add over b's bits (wrapping at width w).
            let mut acc = SVal::constant(0, w);
            for (k, &bb) in b.bits.iter().enumerate() {
                if k >= w {
                    break;
                }
                let mut partial = SVal::constant(0, w);
                for i in k..w {
                    let (abit, _) = a.at(i - k);
                    partial.bits[i] = g.and(abit, bb);
                }
                acc = SVal {
                    bits: add_bits(g, &acc, &partial, w, false, false),
                    x: vec![Lit::FALSE; w],
                };
            }
            Ok(acc)
        }
        BinaryOp::Div | BinaryOp::Rem | BinaryOp::Pow => {
            match (a.to_u64_mirror(), b.to_u64_mirror()) {
                (Some(av), Some(bv)) => {
                    let r = match op {
                        BinaryOp::Div if bv != 0 => Some(av / bv),
                        BinaryOp::Rem if bv != 0 => Some(av % bv),
                        BinaryOp::Pow => {
                            let mut acc: u64 = 1;
                            for _ in 0..bv.min(64) {
                                acc = acc.wrapping_mul(av);
                            }
                            Some(acc)
                        }
                        _ => None, // division by a literal zero is all-x
                    };
                    Ok(match r {
                        Some(v) => SVal::constant(v, w),
                        None => SVal::all_x(w),
                    })
                }
                _ => Ok(SVal::all_x(w)),
            }
        }
    }
}

/// Shifts. The result width is always the **left** operand's width (the
/// executor's self-determined rule), which keeps every case — constant,
/// tainted or symbolic amount — width-safe.
fn shift(g: &mut Aig, a: &SVal, b: &SVal, left: bool, arith: bool) -> Result<SVal> {
    let aw = a.width();
    if let Some(n) = b.to_u64_mirror() {
        // Constant amount: exact per-bit shift of values *and* taint,
        // matching the executor's plane shifts (zero fill, or the
        // four-state MSB fill for arithmetic right shifts).
        let n = n.min(u32::MAX as u64) as usize;
        let mut out = SVal::constant(0, aw);
        let (fill_b, fill_x) = if arith {
            (a.bits[aw - 1], a.x[aw - 1])
        } else {
            (Lit::FALSE, Lit::FALSE)
        };
        for i in 0..aw {
            if left {
                if i >= n {
                    out.bits[i] = a.bits[i - n];
                    out.x[i] = a.x[i - n];
                }
            } else if i + n < aw {
                out.bits[i] = a.bits[i + n];
                out.x[i] = a.x[i + n];
            } else if arith {
                out.bits[i] = fill_b;
                out.x[i] = fill_x;
            }
        }
        return Ok(out);
    }
    if b.width() > 64 {
        // The executor's wide amount always reads as "unknown" — even
        // when it is a constant — and poisons the whole result.
        return Ok(SVal::all_x(aw));
    }
    if a.any_x() || b.any_x() {
        return Ok(SVal::all_x(aw));
    }
    // Symbolic amount: barrel shifter over b's low bits, with one
    // "overflow" clause for any high amount bit that already shifts
    // everything out.
    let mut cur: Vec<Lit> = a.bits.clone();
    let mut overflow = Lit::FALSE;
    let fill = if arith { a.bits[aw - 1] } else { Lit::FALSE };
    for (k, &bb) in b.bits.iter().enumerate() {
        let amount = 1u128 << k.min(64);
        if amount >= aw as u128 {
            overflow = g.or(overflow, bb);
            continue;
        }
        let amount = amount as usize;
        let mut next = Vec::with_capacity(aw);
        for i in 0..aw {
            let shifted = if left {
                if i >= amount { cur[i - amount] } else { Lit::FALSE }
            } else if i + amount < aw {
                cur[i + amount]
            } else {
                fill
            };
            next.push(g.mux(bb, shifted, cur[i]));
        }
        cur = next;
    }
    let out_bits: Vec<Lit> = cur
        .into_iter()
        .map(|b| g.mux(overflow, fill, b))
        .collect();
    Ok(SVal {
        bits: out_bits,
        x: vec![Lit::FALSE; aw],
    })
}

/// `cond ? t : f` with the executor's x-merge on unknowable conditions.
fn ternary(g: &mut Aig, c: &SVal, t: &SVal, f: &SVal) -> Result<SVal> {
    let (cl, cx) = truthiness_pair(g, c);
    if cx == Lit::FALSE {
        if cl == Lit::TRUE {
            return Ok(t.clone());
        }
        if cl == Lit::FALSE {
            return Ok(f.clone());
        }
    }
    if t.width() != f.width() {
        // A data-dependent selection between different widths cannot be
        // expressed as per-bit taint (the merge width is the max, but a
        // definite selection keeps the arm's own width).
        return Err(BlastError::new("ternary arms of different widths"));
    }
    let w = t.width();
    let mut out = SVal::all_x(w);
    for i in 0..w {
        // Where the condition may be unknown the executor may select
        // either arm or x-merge them; the bit is only claimable when
        // both arms agree exactly (then the merge is that value too).
        if t.bits[i] == f.bits[i] && t.x[i] == Lit::FALSE && f.x[i] == Lit::FALSE {
            out.bits[i] = t.bits[i];
            out.x[i] = Lit::FALSE;
            continue;
        }
        out.bits[i] = g.mux(cl, t.bits[i], f.bits[i]);
        let branch_x = g.mux(cl, t.x[i], f.x[i]);
        out.x[i] = g.or(cx, branch_x);
    }
    Ok(out)
}
